// The operation signature — the identity the service layer keys everything
// on: the compiled-plan cache, request batching, and the per-signature
// verification history.
//
// A signature pins down one executable collective completely: the
// operation, the tree family routing it, the cube dimension, the root, the
// packet count, the internal packet (block) size B_int, and the port model
// the schedule is generated for. Two requests with equal signatures compile
// to byte-identical schedules (the generators are deterministic), which is
// what makes plan reuse and request coalescing sound.
#pragma once

#include "mbr/view.hpp"
#include "rt/plan.hpp"
#include "sim/cycle.hpp"
#include "sim/port_model.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>

namespace hcube::svc {

using hc::dim_t;
using hc::node_t;
using sim::packet_t;

/// Collective operations the service executes (the rt::Communicator set).
enum class Op : std::uint8_t {
    broadcast,
    scatter,
    gather,
    reduce,
    allgather,
    alltoall,
};

/// Spanning-tree families the request can be routed over (paper §3-5).
enum class Family : std::uint8_t {
    sbt,  ///< spanning binomial tree
    msbt, ///< n rotated edge-disjoint SBTs (broadcast only)
    bst,  ///< balanced spanning tree (scatter/gather only)
};

[[nodiscard]] constexpr std::string_view to_string(Op op) noexcept {
    switch (op) {
    case Op::broadcast: return "broadcast";
    case Op::scatter: return "scatter";
    case Op::gather: return "gather";
    case Op::reduce: return "reduce";
    case Op::allgather: return "allgather";
    case Op::alltoall: return "alltoall";
    }
    return "?";
}

[[nodiscard]] constexpr std::string_view to_string(Family f) noexcept {
    switch (f) {
    case Family::sbt: return "sbt";
    case Family::msbt: return "msbt";
    case Family::bst: return "bst";
    }
    return "?";
}

struct Signature {
    Op op = Op::broadcast;
    Family family = Family::sbt;
    dim_t n = 0;
    node_t root = 0;
    /// Total packets (broadcast/reduce), packets per destination
    /// (scatter/gather), packets per (src, dest) pair (alltoall); ignored
    /// by allgather (always one packet per node).
    packet_t packets = 1;
    /// Elements (doubles) per packet — the internal packet size B_int.
    std::uint32_t block_elems = 256;
    sim::PortModel model = sim::PortModel::one_port_full_duplex;
    /// Epoch of the signature's sub-cube member set (mbr::View::
    /// epoch_of_subcube(n)). 0 — the default, and the epoch of a view
    /// that never transitioned — reproduces the pre-membership identity
    /// bit-for-bit. Session::execute stamps the current epoch before the
    /// cache lookup, so a membership transition re-keys exactly the
    /// signatures whose sub-cube changed; clients leave it 0.
    std::uint64_t view_epoch = 0;

    friend bool operator==(const Signature&, const Signature&) = default;
    friend auto operator<=>(const Signature&, const Signature&) = default;

    [[nodiscard]] std::string to_string() const;
};

/// A signature lowered to something the runtime can execute.
struct GeneratedSchedule {
    /// The schedule the engines execute (for reduce: the time-reversed
    /// combining schedule, which the cycle executor cannot validate).
    sim::Schedule exec;
    /// The schedule the cycle executor proves feasible and whose makespan
    /// the barrier oracle must match (== exec except for reduce, where it
    /// is the forward broadcast).
    sim::Schedule feasibility;
    rt::DataMode mode = rt::DataMode::move;
};

/// Deterministically generates the schedule for `sig` via the
/// routing/schedule_export.hpp hooks. Validates the signature (e.g. the
/// MSBT needs packets divisible by n, the BST only routes scatter/gather);
/// throws check_error on violation.
[[nodiscard]] GeneratedSchedule make_schedule(const Signature& sig);

/// As above over the live members of `view` (whose dimension must equal
/// sig.n). A full view takes the exact full-cube path — byte-identical
/// schedules for every family. An incomplete view routes broadcast /
/// scatter / gather / reduce over the member tree (Family::sbt only —
/// the MSBT's edge-disjoint rotations and the BST's balanced relabelling
/// assume the full address space, and allgather/alltoall's recursive
/// exchanges pair every address); unsupported combinations throw
/// check_error.
[[nodiscard]] GeneratedSchedule make_schedule(const Signature& sig,
                                              const mbr::View& view);

} // namespace hcube::svc
