#include "svc/signature.hpp"

#include "common/check.hpp"
#include "routing/schedule_export.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

namespace hcube::svc {

std::string Signature::to_string() const {
    std::string out{svc::to_string(op)};
    out += '/';
    out += svc::to_string(family);
    out += " n=" + std::to_string(n);
    out += " root=" + std::to_string(root);
    out += " packets=" + std::to_string(packets);
    out += " B=" + std::to_string(block_elems);
    if (view_epoch != 0) {
        out += " epoch=" + std::to_string(view_epoch);
    }
    return out;
}

GeneratedSchedule make_schedule(const Signature& sig) {
    HCUBE_ENSURE(sig.n >= 1 && sig.n <= hc::kMaxDimension);
    HCUBE_ENSURE(sig.root < (node_t{1} << sig.n));
    HCUBE_ENSURE(sig.packets >= 1);
    HCUBE_ENSURE(sig.block_elems >= 1);

    GeneratedSchedule out;
    switch (sig.op) {
    case Op::broadcast:
        if (sig.family == Family::msbt) {
            HCUBE_ENSURE_MSG(sig.packets %
                                     static_cast<packet_t>(sig.n) ==
                                 0,
                             "MSBT broadcast needs packets divisible by n");
            out.exec = routing::make_msbt_broadcast(sig.n, sig.root,
                                                    sig.packets, sig.model);
        } else {
            HCUBE_ENSURE_MSG(sig.family == Family::sbt,
                             "broadcast routes over the SBT or the MSBT");
            out.exec = routing::make_tree_broadcast(
                trees::build_sbt(sig.n, sig.root),
                routing::BroadcastDiscipline::port_oriented, sig.packets,
                sig.model);
        }
        break;
    case Op::scatter:
    case Op::gather: {
        HCUBE_ENSURE_MSG(sig.family == Family::sbt ||
                             sig.family == Family::bst,
                         "scatter/gather route over the SBT or the BST");
        const trees::SpanningTree tree =
            sig.family == Family::bst ? trees::build_bst(sig.n, sig.root)
                                      : trees::build_sbt(sig.n, sig.root);
        const routing::ScatterPolicy policy =
            sig.family == Family::bst ? routing::ScatterPolicy::cyclic
                                      : routing::ScatterPolicy::descending;
        out.exec = sig.op == Op::scatter
                       ? routing::make_tree_scatter(tree, policy, sig.packets,
                                                    sig.model)
                       : routing::make_tree_gather(tree, policy, sig.packets,
                                                   sig.model);
        break;
    }
    case Op::reduce: {
        HCUBE_ENSURE_MSG(sig.family == Family::sbt,
                         "reduce routes over the time-reversed SBT broadcast");
        out.feasibility = routing::make_tree_broadcast(
            trees::build_sbt(sig.n, sig.root),
            routing::BroadcastDiscipline::port_oriented, sig.packets,
            sig.model);
        out.exec = routing::reverse_broadcast_for_reduce(out.feasibility,
                                                         sig.root);
        out.mode = rt::DataMode::combine;
        return out;
    }
    case Op::allgather:
        HCUBE_ENSURE_MSG(sig.model == sim::PortModel::one_port_full_duplex,
                         "allgather is generated one-port full-duplex");
        out.exec = routing::make_allgather_schedule(sig.n);
        break;
    case Op::alltoall:
        HCUBE_ENSURE_MSG(sig.model == sim::PortModel::one_port_full_duplex,
                         "alltoall is generated one-port full-duplex");
        out.exec = routing::make_alltoall_schedule(sig.n, sig.packets);
        break;
    }
    out.feasibility = out.exec;
    return out;
}

GeneratedSchedule make_schedule(const Signature& sig,
                                const mbr::View& view) {
    HCUBE_ENSURE(sig.n >= 1 && sig.n <= hc::kMaxDimension);
    HCUBE_ENSURE_MSG(view.dimension() == sig.n,
                     "view dimension does not match the signature");
    if (view.full()) {
        // The static world: every family, byte-identical schedules.
        return make_schedule(sig);
    }
    HCUBE_ENSURE(sig.root < (node_t{1} << sig.n));
    HCUBE_ENSURE_MSG(view.contains(sig.root),
                     "collective root is not a live member");
    HCUBE_ENSURE(sig.packets >= 1);
    HCUBE_ENSURE(sig.block_elems >= 1);
    HCUBE_ENSURE_MSG(sig.family == Family::sbt,
                     "incomplete cubes route over the member tree "
                     "(Family::sbt) only");

    GeneratedSchedule out;
    switch (sig.op) {
    case Op::broadcast:
        out.exec = routing::make_member_broadcast(
            view, sig.root, routing::BroadcastDiscipline::port_oriented,
            sig.packets, sig.model);
        break;
    case Op::scatter:
    case Op::gather:
        HCUBE_ENSURE_MSG(sig.model != sim::PortModel::one_port_half_duplex,
                         "half-duplex personalized communication is "
                         "modelled in the event engine, not as a cycle "
                         "schedule");
        out.exec = sig.op == Op::scatter
                       ? routing::make_member_scatter(view, sig.root,
                                                      sig.packets)
                       : routing::make_member_gather(view, sig.root,
                                                     sig.packets);
        break;
    case Op::reduce:
        out.feasibility = routing::make_member_broadcast(
            view, sig.root, routing::BroadcastDiscipline::port_oriented,
            sig.packets, sig.model);
        out.exec = routing::reverse_broadcast_for_reduce(out.feasibility,
                                                         sig.root);
        out.mode = rt::DataMode::combine;
        return out;
    case Op::allgather:
    case Op::alltoall:
        throw check_error("allgather/alltoall pair every cube address and "
                          "have no incomplete-cube construction");
    }
    out.feasibility = out.exec;
    return out;
}

} // namespace hcube::svc
