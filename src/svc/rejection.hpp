// Structured admission verdicts for the service layer's signature
// preflight: why a request cannot be served against the session's current
// membership view, carried as data a client can act on (retarget the root,
// pick another family) instead of a bare assertion string.
#pragma once

#include "common/check.hpp"
#include "hc/types.hpp"

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace hcube::svc {

/// Why a signature was refused before any plan work happened.
enum class RejectReason : std::uint8_t {
    dimension_out_of_range, ///< sig.n outside [1, session dimension]
    root_out_of_range,      ///< sig.root >= 2^sig.n
    root_not_live,          ///< root address holds no live member
    family_unsupported,     ///< family has no incomplete-cube construction
    op_unsupported,         ///< op has no incomplete-cube construction
};

[[nodiscard]] constexpr std::string_view
to_string(RejectReason r) noexcept {
    switch (r) {
    case RejectReason::dimension_out_of_range: return "dimension-range";
    case RejectReason::root_out_of_range: return "root-range";
    case RejectReason::root_not_live: return "root-not-live";
    case RejectReason::family_unsupported: return "family-unsupported";
    case RejectReason::op_unsupported: return "op-unsupported";
    }
    return "?";
}

struct Rejection {
    RejectReason reason = RejectReason::dimension_out_of_range;
    std::string detail; ///< human-readable explanation
    /// For root_not_live: the live member XOR-closest to the requested
    /// root — the retarget a client would most likely want.
    std::optional<hc::node_t> suggested_root;
};

/// The exception Session::execute raises for a preflight refusal. Derives
/// from check_error so existing catch sites keep mapping it to a failed
/// response; the structured Rejection rides along for callers that want
/// the verdict as data.
class rejected_error : public check_error {
public:
    explicit rejected_error(Rejection r)
        : check_error("request rejected [" +
                      std::string(to_string(r.reason)) + "]: " + r.detail),
          rejection_(std::move(r)) {}

    [[nodiscard]] const Rejection& rejection() const noexcept {
        return rejection_;
    }

private:
    Rejection rejection_;
};

} // namespace hcube::svc
