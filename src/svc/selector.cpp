#include "svc/selector.hpp"

#include "common/check.hpp"
#include "model/personalized_model.hpp"

#include <algorithm>
#include <cmath>

namespace hcube::svc {

namespace {

/// Clamps a model-optimal (real-valued) packet size to an executable
/// integer block size in [1, M].
std::uint32_t clamp_block(double bopt, std::uint64_t message_elems) {
    const double rounded = std::max(1.0, std::round(bopt));
    const double capped =
        std::min(rounded, static_cast<double>(message_elems));
    return static_cast<std::uint32_t>(capped);
}

packet_t packets_for(std::uint64_t message_elems, std::uint32_t block) {
    return static_cast<packet_t>((message_elems + block - 1) / block);
}

} // namespace

Selection AlgorithmSelector::select(Op op, dim_t n,
                                    std::uint64_t message_elems,
                                    sim::PortModel model) const {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(message_elems >= 1);
    const double M = static_cast<double>(message_elems);

    Selection sel;
    switch (op) {
    case Op::broadcast: {
        // Evaluate both families at their own model-optimal packet size
        // (clamped to the physical range [1, M]: B_opt formulas are
        // real-valued and can exceed the message) and keep the cheaper one
        // (Table 3 with calibrated τ, t_c).
        const double sbt_b = std::clamp(
            model::broadcast_bopt(model::Algorithm::sbt, model, M, n,
                                  params_),
            1.0, M);
        const double sbt_t = model::broadcast_time(model::Algorithm::sbt,
                                                   model, M, sbt_b, n,
                                                   params_);
        const double msbt_b = std::clamp(
            model::broadcast_bopt(model::Algorithm::msbt, model, M, n,
                                  params_),
            1.0, M);
        const double msbt_t = model::broadcast_time(model::Algorithm::msbt,
                                                    model, M, msbt_b, n,
                                                    params_);
        if (msbt_t < sbt_t) {
            sel.family = Family::msbt;
            sel.block_elems = clamp_block(msbt_b, message_elems);
            // The MSBT splits the message across its n rotated trees, so
            // the packet count must be a multiple of n.
            const auto np = static_cast<packet_t>(n);
            packet_t p = packets_for(message_elems, sel.block_elems);
            p = ((p + np - 1) / np) * np;
            sel.packets = p;
            sel.block_elems = static_cast<std::uint32_t>(
                std::max<std::uint64_t>(1, (message_elems + p - 1) / p));
            sel.predicted_seconds = msbt_t;
            sel.rejected_seconds = sbt_t;
        } else {
            sel.family = Family::sbt;
            sel.block_elems = clamp_block(sbt_b, message_elems);
            sel.packets = packets_for(message_elems, sel.block_elems);
            sel.predicted_seconds = sbt_t;
            sel.rejected_seconds = msbt_t;
        }
        return sel;
    }
    case Op::scatter:
    case Op::gather: {
        // One-port SBT and BST personalized communication cost the same
        // number of steps (Table 6 rows coincide for B <= M); the BST is
        // preferred for its balanced subtree depth, matching the paper's
        // §4.2.2 recommendation. message_elems is per destination; a single
        // maximal packet per destination is optimal one-port.
        sel.family = Family::bst;
        sel.packets = 1;
        sel.block_elems = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(message_elems, UINT32_MAX));
        const bool all_ports = model == sim::PortModel::all_port;
        sel.predicted_seconds = model::personalized_tmin(
            model::Algorithm::bst, all_ports, M, n, params_);
        sel.rejected_seconds = model::personalized_tmin(
            model::Algorithm::sbt, all_ports, M, n, params_);
        return sel;
    }
    case Op::reduce:
        // Reduce is the time-reversed SBT broadcast; its step count is the
        // forward port-oriented broadcast's (B = M, single packet).
        sel.family = Family::sbt;
        sel.packets = 1;
        sel.block_elems = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(message_elems, UINT32_MAX));
        sel.predicted_seconds = model::broadcast_time(
            model::Algorithm::sbt, model, M, M, n, params_);
        sel.rejected_seconds = sel.predicted_seconds;
        return sel;
    case Op::allgather:
    case Op::alltoall:
        // Single generated family each (recursive doubling / dimension
        // order); nothing to choose, the message size fixes the block.
        sel.family = Family::sbt;
        sel.packets = 1;
        sel.block_elems = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(message_elems, UINT32_MAX));
        sel.predicted_seconds = 0.0;
        sel.rejected_seconds = 0.0;
        return sel;
    }
    HCUBE_ENSURE_MSG(false, "unreachable op");
    __builtin_unreachable();
}

std::uint64_t AlgorithmSelector::broadcast_crossover(
    dim_t n, sim::PortModel model) const {
    // broadcast_time(MSBT) - broadcast_time(SBT) is monotone decreasing in
    // M under the one-port models (the SBT pays n full-message transfers,
    // the MSBT pipelines), so the smallest M where the selector flips to
    // the MSBT is well-defined and bisection applies.
    std::uint64_t lo = 1;
    std::uint64_t hi = 1;
    const std::uint64_t cap = std::uint64_t{1} << 40;
    while (hi < cap &&
           select(Op::broadcast, n, hi, model).family != Family::msbt) {
        hi *= 2;
    }
    if (select(Op::broadcast, n, hi, model).family != Family::msbt) {
        return cap; // never crosses below the cap (degenerate constants)
    }
    while (lo + 1 < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (select(Op::broadcast, n, mid, model).family == Family::msbt) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return hi;
}

} // namespace hcube::svc
