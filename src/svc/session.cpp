#include "svc/session.hpp"

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "rt/async_player.hpp"
#include "rt/checksum.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "rt/pool.hpp"
#include "rt/threads.hpp"
#include "sim/cycle.hpp"

#include <cstring>
#include <limits>
#include <vector>

namespace hcube::svc {

namespace {

using sim::packet_t;

/// Slot-ordered copy of a player's final memory (every slot is exactly
/// plan.block_elems doubles) — the oracle image a cached entry's later runs
/// are byte-compared against.
template <class P>
std::vector<double> snapshot_memory(const rt::Plan& plan, const P& player) {
    std::vector<double> image;
    image.reserve(plan.total_slots * plan.block_elems);
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const std::span<const double> b =
            player.block(plan.slot_node[s], plan.slot_packet[s]);
        image.insert(image.end(), b.begin(), b.end());
    }
    return image;
}

template <class P>
bool matches_image(const rt::Plan& plan, const P& player,
                   const std::vector<double>& image) {
    if (image.size() != plan.total_slots * plan.block_elems) {
        return false;
    }
    std::size_t off = 0;
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const std::span<const double> b =
            player.block(plan.slot_node[s], plan.slot_packet[s]);
        if (b.size() != plan.block_elems ||
            std::memcmp(b.data(), image.data() + off,
                        plan.block_elems * sizeof(double)) != 0) {
            return false;
        }
        off += plan.block_elems;
    }
    return true;
}

/// Move-mode steady-state check: every slot's final block must be the
/// canonical arena block of its packet. The expected image is *derived*
/// from the plan's immutable arena rather than stored per entry — on the
/// zero-copy path the view is pointer-identical to the arena block (no
/// byte compare at all), and copy-through finals memcmp against it.
template <class P>
bool matches_arena(const rt::Plan& plan, const P& player) {
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const std::span<const double> b =
            player.block(plan.slot_node[s], plan.slot_packet[s]);
        if (b.size() != plan.block_elems) {
            return false;
        }
        const double* canon = plan.arena_block(plan.slot_packet[s]);
        if (b.data() != canon &&
            std::memcmp(b.data(), canon,
                        plan.block_elems * sizeof(double)) != 0) {
            return false;
        }
    }
    return true;
}

/// FNV-1a over the slot-ordered canonical block digests — the identity of
/// the derived move-mode oracle image. Stored on the first verified pass
/// and recomputed on every steady-state run, so a perturbed slot table or
/// arena is caught even though no second image copy exists.
std::uint64_t arena_fingerprint(const rt::Plan& plan) {
    std::vector<std::uint64_t> digest(plan.packet_count);
    for (packet_t p = 0; p < plan.packet_count; ++p) {
        digest[p] = rt::canonical_checksum(p, plan.block_elems);
    }
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        h ^= digest[plan.slot_packet[s]];
        h *= 0x100000001b3ull;
    }
    return h;
}

/// Byte-identical final state across the barrier oracle and the async
/// engine (the Communicator's cross-check, replayed per cache entry).
bool identical_memory(const rt::Plan& plan, const rt::Player& ref,
                      const rt::AsyncPlayer& dut) {
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const std::span<const double> a =
            ref.block(plan.slot_node[s], plan.slot_packet[s]);
        const std::span<const double> b =
            dut.block(plan.slot_node[s], plan.slot_packet[s]);
        if (a.size() != b.size() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) !=
                0) {
            return false;
        }
    }
    return true;
}

/// Every (node, packet) the simulator says is held must hold the canonical
/// block, and nothing else may appear (move mode).
template <class P>
bool holdings_match(const P& player, const sim::Schedule& schedule,
                    const sim::CycleStats& sim_stats, dim_t n,
                    std::size_t block_elems) {
    const node_t count = node_t{1} << n;
    for (node_t i = 0; i < count; ++i) {
        for (packet_t p = 0; p < schedule.packet_count; ++p) {
            const bool held = sim_stats.holds(i, p);
            const std::span<const double> block = player.block(i, p);
            if (!held) {
                if (!block.empty()) {
                    return false;
                }
                continue;
            }
            if (block.empty() ||
                rt::block_checksum(block) !=
                    rt::canonical_checksum(p, block_elems)) {
                return false;
            }
        }
    }
    return true;
}

/// The root's block for every packet must equal the exact elementwise
/// integer sum of every contributing node (combine mode). A full-cube
/// reduction sums all 2^n contributions; a member reduction sums exactly
/// the live members' (`members` empty = full cube).
template <class P>
bool sums_match(const P& player, node_t root, packet_t packets, dim_t n,
                std::size_t block_elems, std::span<const node_t> members) {
    const node_t count = node_t{1} << n;
    for (packet_t p = 0; p < packets; ++p) {
        const std::span<const double> block = player.block(root, p);
        if (block.size() != block_elems) {
            return false;
        }
        for (std::size_t e = 0; e < block_elems; ++e) {
            double expected = 0.0;
            if (members.empty()) {
                for (node_t i = 0; i < count; ++i) {
                    expected += rt::contribution_element(i, p, e);
                }
            } else {
                for (const node_t i : members) {
                    expected += rt::contribution_element(i, p, e);
                }
            }
            if (block[e] != expected) {
                return false;
            }
        }
    }
    return true;
}

/// Preflight of `sig` against the session cube `n` and membership `view`
/// (nullopt = admissible). Pure — callers hold whatever lock keeps the
/// view stable.
std::optional<Rejection> preflight_against(const Signature& sig, dim_t n,
                                           const mbr::View& view) {
    if (sig.n < 1 || sig.n > n) {
        return Rejection{RejectReason::dimension_out_of_range,
                         "signature dimension " + std::to_string(sig.n) +
                             " outside the session's [1, " +
                             std::to_string(n) + "]",
                         std::nullopt};
    }
    if (sig.root >= (node_t{1} << sig.n)) {
        return Rejection{RejectReason::root_out_of_range,
                         "root " + std::to_string(sig.root) +
                             " outside the " + std::to_string(sig.n) +
                             "-cube",
                         std::nullopt};
    }
    const mbr::View sub = view.restricted(sig.n);
    if (!sub.contains(sig.root)) {
        Rejection r{RejectReason::root_not_live,
                    "root " + std::to_string(sig.root) +
                        " is not a live member",
                    std::nullopt};
        if (sub.count() > 0) {
            r.suggested_root = mbr::nearest_member(sub, sig.root);
            r.detail += " (nearest live member: " +
                        std::to_string(*r.suggested_root) + ")";
        }
        return r;
    }
    if (!sub.full()) {
        if (sig.family != Family::sbt) {
            return Rejection{
                RejectReason::family_unsupported,
                std::string(to_string(sig.family)) +
                    " assumes the full address space; incomplete cubes "
                    "route over the member tree (sbt)",
                std::nullopt};
        }
        if (sig.op == Op::allgather || sig.op == Op::alltoall) {
            return Rejection{
                RejectReason::op_unsupported,
                std::string(to_string(sig.op)) +
                    " pairs every cube address and has no "
                    "incomplete-cube construction",
                std::nullopt};
        }
    }
    return std::nullopt;
}

/// Publishes the delta between `current` (a monotonic source total, e.g.
/// LruCache::stats().evictions) and the high-water mark already forwarded
/// to `c`. Concurrent callers race on the mark, so the counter receives
/// each unit of the source total exactly once.
void sync_monotonic(obs::Counter& c,
                    std::atomic<std::uint64_t>& published,
                    std::uint64_t current) noexcept {
    std::uint64_t prev = published.load(std::memory_order_relaxed);
    for (;;) {
        if (prev >= current) {
            return;
        }
        if (published.compare_exchange_weak(prev, current,
                                            std::memory_order_relaxed)) {
            c.inc(current - prev);
            return;
        }
    }
}

} // namespace

/// One cached signature: the generated schedules, the compiled plan, the
/// resident players, and the oracle image its steady-state runs are
/// compared against. Heap-allocated and shared_ptr-held so an eviction
/// while another thread executes the entry only drops a reference.
struct Session::PlanEntry {
    GeneratedSchedule gen;
    /// Live members the schedule spans, ascending — populated only when
    /// the signature's sub-cube view was incomplete (empty = full cube,
    /// costing nothing against the byte budget), consumed by the
    /// member-aware combine verification and the plan's worker partition.
    std::vector<node_t> members;
    sim::CycleStats sim_stats; ///< of gen.feasibility (makespan + holdings)
    std::unique_ptr<rt::Plan> plan;
    /// Barrier engine: the executor under Engine::barrier; under
    /// Engine::async the oracle, dropped after the first verified pass
    /// when Verify::first no longer needs it.
    std::unique_ptr<rt::Player> barrier;
    std::unique_ptr<rt::AsyncPlayer> async; ///< executor, Engine::async
    /// Oracle image of the first verified run — combine mode only. Move
    /// mode stores no image (it would duplicate the plan's immutable
    /// arena); steady runs re-derive it and check oracle_fingerprint.
    std::vector<double> oracle_image;
    std::uint64_t oracle_fingerprint = 0; ///< move mode, arena-derived
    bool image_valid = false; ///< first verified pass has happened
    /// Serializes executions of this entry (the players hold mutable run
    /// state); distinct entries only contend on the worker pool.
    std::mutex exec_mutex;

    /// Exact bytes this entry keeps resident — the cost the byte-budgeted
    /// plan cache charges it. Itemized: the compiled plan (actions, dep
    /// graph, buckets, slots, channels, arena), each resident player's run
    /// state, and the combine-mode oracle image.
    [[nodiscard]] std::uint64_t resident_bytes() const {
        std::uint64_t bytes = plan->resident_bytes();
        if (async != nullptr) {
            bytes += async->resident_bytes();
        }
        if (barrier != nullptr) {
            bytes += barrier->resident_bytes();
        }
        bytes += std::uint64_t{oracle_image.capacity()} * sizeof(double);
        bytes += std::uint64_t{members.capacity()} * sizeof(node_t);
        return bytes;
    }
};

Session::Session(dim_t n, SessionParams params)
    : n_(n), params_(params),
      threads_(rt::pick_worker_threads(n, params.threads)),
      byte_budget_(params.plan_cache_bytes != 0),
      pool_(threads_ > 1 ? std::make_unique<rt::WorkerPool>(threads_)
                         : nullptr),
      selector_(params_.comm ? *params_.comm : calibrate()),
      cache_(byte_budget_ ? params_.plan_cache_bytes
                          : params_.plan_cache_capacity),
      view_(n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
}

Session::~Session() = default;

model::CommParams Session::calibrate() const {
    // Two serial single-link micro-probes (n = 1, one packet, small and
    // large block): time = τ + B·t_c fitted through both points. Below
    // timer resolution the fit degenerates; fall back to the iPSC
    // constants so selection still behaves sanely.
    const auto probe = [this](std::uint32_t block) {
        const Signature sig{Op::broadcast, Family::sbt, 1, 0, 1, block,
                            sim::PortModel::one_port_full_duplex};
        const GeneratedSchedule gen = make_schedule(sig);
        const rt::Plan plan =
            rt::compile_plan(gen.exec, gen.mode, block, 1);
        rt::Player player(plan, params_.channel_capacity);
        double best = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 5; ++rep) {
            const rt::PlayStats stats = player.play();
            if (stats.seconds > 0 && stats.seconds < best) {
                best = stats.seconds;
            }
        }
        return best == std::numeric_limits<double>::infinity() ? 0.0 : best;
    };
    const double small_t = probe(64);
    const double large_t = probe(8192);
    try {
        return model::fit_params(64.0, small_t, 8192.0, large_t);
    } catch (const std::exception&) {
        return model::ipsc_params();
    }
}

Signature Session::plan_signature(Op op, node_t root,
                                  std::uint64_t message_elems) const {
    const Selection sel =
        selector_.select(op, n_, message_elems, params_.model);
    Signature sig;
    sig.op = op;
    sig.family = sel.family;
    sig.n = n_;
    sig.root = root;
    sig.packets = sel.packets;
    sig.block_elems = sel.block_elems;
    sig.model = params_.model;
    return sig;
}

std::shared_ptr<Session::PlanEntry>
Session::entry_for(const Signature& sig, const mbr::View& sub,
                   bool& cache_hit) {
    bool built = false;
    const auto factory = [&] {
        built = true;
        auto e = std::make_shared<PlanEntry>();
        if (sub.full()) {
            e->gen = make_schedule(sig);
        } else {
            e->gen = make_schedule(sig, sub);
            e->members = sub.members();
        }
        // The cycle executor proves the schedule feasible under the port
        // model and pins the makespan + delivery matrix (for reduce:
        // of the forward broadcast, which time-reversal preserves).
        e->sim_stats = sim::execute_schedule(e->gen.feasibility, sig.model);
        // A signature never spreads over more workers than it has live
        // nodes (the plan compiler's partition balances workers over the
        // member set).
        const std::uint32_t workers = std::min(threads_, sub.count());
        e->plan = std::make_unique<rt::Plan>(
            rt::compile_plan(e->gen.exec, e->gen.mode, sig.block_elems,
                             workers, 8, params_.plan_layout, e->members));
        if (params_.engine == rt::Engine::async) {
            e->async = std::make_unique<rt::AsyncPlayer>(*e->plan);
        }
        if (params_.engine == rt::Engine::barrier ||
            params_.verify != rt::Verify::never) {
            e->barrier =
                std::make_unique<rt::Player>(*e->plan,
                                             params_.channel_capacity);
        }
        return e;
    };
    auto entry =
        byte_budget_
            ? cache_.get_or_create(
                  sig, factory,
                  [](const std::shared_ptr<PlanEntry>& e) {
                      return e->resident_bytes();
                  })
            : cache_.get_or_create(sig, factory);
    cache_hit = !built;
    return entry;
}

ExecStats Session::execute(const Signature& sig) {
    // The view stays stable for the whole execution: transitions take the
    // exclusive side, so a membership change can never invalidate a plan
    // mid-flight.
    const std::shared_lock<std::shared_mutex> view_lock(view_mutex_);
    if (std::optional<Rejection> rejection =
            preflight_against(sig, n_, view_)) {
        throw rejected_error(std::move(*rejection));
    }
    // Stamp the signature with its sub-cube's member-set epoch: the cache
    // key now names "this collective over this member set", so a
    // transition re-keys exactly the signatures whose sub-cube changed.
    Signature keyed = sig;
    keyed.view_epoch = view_.epoch_of_subcube(sig.n);
    const mbr::View sub = view_.restricted(sig.n);

    ExecStats out;
    out.view_epoch = keyed.view_epoch;
    out.member_count = sub.count();
    const std::shared_ptr<PlanEntry> entry =
        entry_for(keyed, sub, out.cache_hit);
    static obs::Counter& m_hits =
        obs::registry().counter("svc.plan_cache.hits");
    static obs::Counter& m_misses =
        obs::registry().counter("svc.plan_cache.misses");
    (out.cache_hit ? m_hits : m_misses).inc();
    const std::lock_guard<std::mutex> lock(entry->exec_mutex);

    const rt::Plan& plan = *entry->plan;
    const sim::Schedule& exec = entry->gen.exec;
    const bool combining = entry->gen.mode == rt::DataMode::combine;
    out.sim_makespan = entry->sim_stats.makespan;

    // Under Verify::first the full oracle pass runs until it has succeeded
    // once for this entry; afterwards (image_valid) runs take the
    // steady-state path. Verify::always re-runs it every time.
    const bool full_check =
        params_.verify == rt::Verify::always ||
        (params_.verify == rt::Verify::first && !entry->image_valid);
    out.oracle_checked = full_check && entry->barrier != nullptr;

    const auto structural_checks = [&](const auto& player,
                                       const rt::PlayStats& stats) {
        bool ok = stats.clean() &&
                  stats.blocks_delivered == exec.sends.size();
        if (!full_check && entry->image_valid) {
            // Steady state: combine entries byte-compare against the
            // oracle image of the first verified execution; move entries
            // re-derive the expected image from the plan's immutable
            // arena (pointer-identity on the zero-copy path) and check
            // its stored fingerprint — no second image copy exists.
            if (combining) {
                return ok &&
                       matches_image(plan, player, entry->oracle_image);
            }
            return ok &&
                   entry->oracle_fingerprint == arena_fingerprint(plan) &&
                   matches_arena(plan, player);
        }
        // Full check (or Verify::never, which has no image): recompute the
        // content checks from first principles. Structural checks run
        // against the schedule's own cube (exec.n), which may be a
        // sub-cube of the session's.
        if (combining) {
            ok = ok && sums_match(player, exec.initial_holder[0],
                                  exec.packet_count, exec.n,
                                  plan.block_elems, entry->members);
        } else {
            ok = ok && holdings_match(player, exec, entry->sim_stats,
                                      exec.n, plan.block_elems);
        }
        return ok;
    };

    bool ok = true;
    if (params_.engine == rt::Engine::barrier) {
        const rt::PlayStats stats = entry->barrier->play(pool_.get());
        // The barrier engine is its own oracle: its barriered cycle count
        // must equal the cycle-model makespan.
        ok = stats.cycles == entry->sim_stats.makespan &&
             structural_checks(*entry->barrier, stats);
        out.rt_cycles = stats.cycles;
        out.blocks_delivered = stats.blocks_delivered;
        out.payload_bytes = stats.payload_bytes;
        out.bytes_copied = stats.bytes_copied;
        out.exec_mode = stats.mode;
        out.transport = stats.transport;
        out.seconds = stats.seconds;
        if (ok && full_check && !entry->image_valid) {
            if (combining) {
                entry->oracle_image = snapshot_memory(plan, *entry->barrier);
            } else {
                entry->oracle_fingerprint = arena_fingerprint(plan);
            }
            entry->image_valid = true;
        }
    } else {
        rt::PlayStats ref_stats;
        if (full_check && entry->barrier != nullptr) {
            ref_stats = entry->barrier->play(pool_.get());
            ok = ref_stats.clean() &&
                 ref_stats.blocks_delivered == exec.sends.size() &&
                 ref_stats.cycles == entry->sim_stats.makespan;
        }
        const rt::PlayStats stats = entry->async->play(pool_.get());
        ok = ok && structural_checks(*entry->async, stats);
        if (full_check && entry->barrier != nullptr) {
            ok = ok && identical_memory(plan, *entry->barrier, *entry->async);
        }
        out.rt_cycles = stats.cycles;
        out.blocks_delivered = stats.blocks_delivered;
        out.payload_bytes = stats.payload_bytes;
        out.bytes_copied = stats.bytes_copied;
        out.exec_mode = stats.mode;
        out.transport = stats.transport;
        out.seconds = stats.seconds;
        if (ok && full_check && !entry->image_valid) {
            if (combining) {
                entry->oracle_image = snapshot_memory(plan, *entry->async);
            } else {
                entry->oracle_fingerprint = arena_fingerprint(plan);
            }
            entry->image_valid = true;
            if (params_.verify == rt::Verify::first) {
                // Steady state never re-runs the oracle; free its memory.
                entry->barrier.reset();
            }
        }
    }
    out.verified = ok;
    out.plan_resident_bytes = entry->resident_bytes();
    // The first verified pass changes what the entry keeps resident (the
    // oracle player is dropped, the combine image materializes); re-price
    // it so the byte budget stays exact.
    if (byte_budget_ && full_check) {
        cache_.update_cost(keyed, out.plan_resident_bytes);
    }
    static obs::Gauge& m_resident =
        obs::registry().gauge("svc.plan_cache.resident_bytes");
    static obs::Counter& m_evict =
        obs::registry().counter("svc.plan_cache.evictions");
    m_resident.set(static_cast<std::int64_t>(cache_.total_cost()));
    sync_monotonic(m_evict, evictions_published_, cache_.stats().evictions);
    return out;
}

std::optional<Rejection> Session::preflight(const Signature& sig) const {
    const std::shared_lock<std::shared_mutex> view_lock(view_mutex_);
    return preflight_against(sig, n_, view_);
}

mbr::View Session::view() const {
    const std::shared_lock<std::shared_mutex> view_lock(view_mutex_);
    return view_;
}

std::uint64_t Session::view_epoch() const {
    const std::shared_lock<std::shared_mutex> view_lock(view_mutex_);
    return view_.epoch();
}

std::size_t Session::evict_stale_epochs() {
    // Every resident key was stamped with its sub-cube's epoch at insert;
    // keys whose sub-cube saw this transition no longer match and are
    // dropped — keys below the touched address keep matching and stay.
    const std::size_t evicted = cache_.erase_if(
        [this](const Signature& key,
               const std::shared_ptr<PlanEntry>&) {
            return key.view_epoch != view_.epoch_of_subcube(key.n);
        });
    epoch_evictions_.fetch_add(evicted, std::memory_order_relaxed);
    static obs::Counter& m_epoch =
        obs::registry().counter("svc.plan_cache.epoch_evictions");
    static obs::Counter& m_evict =
        obs::registry().counter("svc.plan_cache.evictions");
    m_epoch.inc(evicted);
    sync_monotonic(m_evict, evictions_published_, cache_.stats().evictions);
    obs::registry()
        .gauge("svc.plan_cache.resident_bytes")
        .set(static_cast<std::int64_t>(cache_.total_cost()));
    return evicted;
}

std::size_t Session::join(node_t v) {
    const std::unique_lock<std::shared_mutex> view_lock(view_mutex_);
    view_.join(v);
    return evict_stale_epochs();
}

std::size_t Session::leave(node_t v) {
    const std::unique_lock<std::shared_mutex> view_lock(view_mutex_);
    view_.leave(v);
    return evict_stale_epochs();
}

std::size_t Session::apply(const mbr::Delta& delta) {
    const std::unique_lock<std::shared_mutex> view_lock(view_mutex_);
    view_.apply(delta);
    return evict_stale_epochs();
}

std::uint64_t Session::epoch_evictions() const noexcept {
    return epoch_evictions_.load(std::memory_order_relaxed);
}

hcube::CacheStats Session::cache_stats() const noexcept {
    return cache_.stats();
}

std::size_t Session::cached_plans() const { return cache_.size(); }

std::uint64_t Session::cache_resident_bytes() const {
    return cache_.total_cost();
}

std::uint64_t Session::pool_jobs() const {
    return pool_ ? pool_->jobs_run() : 0;
}

} // namespace hcube::svc
