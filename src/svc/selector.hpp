// Cost-model algorithm selection (satellite of the hcube::svc tentpole).
//
// The paper's central practical result is that no single spanning tree wins
// everywhere: under the one-port model the SBT broadcast costs n routing
// steps of the whole message (T = n·(τ + M·t_c) at B_opt = M), while the
// MSBT splits the message across n rotated edge-disjoint trees and pipelines
// it (T = (M/B + n - 1)·(τ + B·t_c), minimized at B_opt = √(M·τ/(n·t_c))).
// The crossover point depends on the machine constants τ and t_c — so the
// selector carries a model::CommParams, either calibrated from micro-probes
// on the actual runtime (Session does this at construction) or injected
// synthetically by tests, and evaluates model::broadcast_time at each
// family's optimal internal packet size to pick the cheaper tree.
#pragma once

#include "model/broadcast_model.hpp"
#include "svc/signature.hpp"

#include <cstdint>

namespace hcube::svc {

/// What the selector decided for one request, with the model numbers that
/// justify it (surfaced in bench rows and the selector tests).
struct Selection {
    Family family = Family::sbt;
    /// Packets the message is split into (MSBT: a multiple of n).
    packet_t packets = 1;
    /// Internal packet size B_int in elements (block_elems of the plan).
    std::uint32_t block_elems = 1;
    /// Predicted wall-clock of the chosen family at its B_opt [s].
    double predicted_seconds = 0.0;
    /// Predicted wall-clock of the best rejected alternative [s].
    double rejected_seconds = 0.0;
};

/// Picks the tree family and internal packet size B_int for a request given
/// the machine constants. Stateless apart from the CommParams; safe to call
/// concurrently.
class AlgorithmSelector {
  public:
    explicit AlgorithmSelector(model::CommParams params) noexcept
        : params_(params) {}

    [[nodiscard]] const model::CommParams& comm_params() const noexcept {
        return params_;
    }

    /// Chooses the family + packetization for moving `message_elems`
    /// elements (broadcast: SBT vs MSBT at each family's B_opt;
    /// scatter/gather: SBT vs BST — identical step counts one-port, BST
    /// chosen for its balanced subtree depth; reduce/allgather/alltoall have
    /// a single family). `model` is the port model the schedule targets.
    [[nodiscard]] Selection select(Op op, dim_t n, std::uint64_t message_elems,
                                   sim::PortModel model) const;

    /// The message size in elements at which the MSBT broadcast (at its
    /// B_opt) becomes cheaper than the SBT broadcast (at B = M) under these
    /// machine constants — found by bisection over select(). Exposed so the
    /// selector tests can assert SBT below / MSBT above the crossover.
    [[nodiscard]] std::uint64_t broadcast_crossover(dim_t n,
                                                    sim::PortModel model)
        const;

  private:
    model::CommParams params_;
};

} // namespace hcube::svc
