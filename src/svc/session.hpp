// svc::Session — the persistent execution context of the collective
// service: one resident worker pool, one compiled-plan cache, one set of
// calibrated machine constants, shared across every operation submitted for
// the session's lifetime.
//
// Where rt::Communicator recompiles the schedule and reallocates player
// memory on every call (its pool already persists — PR 5's satellite), the
// Session also caches the *compiled plan and its players*: a cache hit
// replays the resident AsyncPlayer (or barrier Player) on the resident
// pool, touching no allocator and no schedule generator. Verification in
// the cached steady state stays byte-exact without re-running the barrier
// oracle: combine-mode entries byte-compare against the oracle image
// snapshotted on the entry's first (fully oracle-checked) execution, and
// move-mode entries re-derive the expected final state from the plan's
// immutable block arena (storing only a fingerprint of it — the image
// would be a second full copy of arena bytes) (docs/SERVICE.md
// § Verification in steady state).
#pragma once

#include "common/lru_cache.hpp"
#include "model/broadcast_model.hpp"
#include "rt/communicator.hpp" // Engine, Verify
#include "rt/plan.hpp"         // PlanLayout
#include "svc/selector.hpp"
#include "svc/signature.hpp"

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

namespace hcube::rt {
class WorkerPool;
}

namespace hcube::svc {

struct SessionParams {
    /// Worker threads; 0 picks min(2^n, max(2, hardware_concurrency)).
    std::uint32_t threads = 0;
    /// Compiled plans (and their players) kept resident; 0 = unbounded.
    /// Entry-count mode, used only while plan_cache_bytes is 0.
    std::size_t plan_cache_capacity = 32;
    /// Byte budget for the plan cache. When nonzero the cache charges each
    /// entry its exact resident bytes (plan + players + oracle image; see
    /// Plan::resident_bytes) and evicts least-recently-used entries until
    /// the total fits — thousands of small-cube signatures coexist with a
    /// few large ones under one bound. 0 (the default) preserves the
    /// entry-count behavior of plan_cache_capacity.
    std::uint64_t plan_cache_bytes = 0;
    /// Plan encoding (rt::PlanLayout). The automatic default compiles the
    /// compact residency layout inside its validated envelope; wide is the
    /// pre-compaction reference encoding.
    rt::PlanLayout plan_layout = rt::PlanLayout::automatic;
    /// Engine whose stats ExecStats reports.
    rt::Engine engine = rt::Engine::async;
    /// Oracle policy. `first` (the service default) fully oracle-checks
    /// each signature's first execution and byte-compares repeats against
    /// the snapshotted oracle image; `always` re-runs the oracle every
    /// time; `never` skips it entirely (checksums + holdings only).
    rt::Verify verify = rt::Verify::first;
    /// Ring slots per link channel for the barrier engine.
    std::uint32_t channel_capacity = 2;
    /// Port model schedules are generated for and validated under.
    sim::PortModel model = sim::PortModel::one_port_full_duplex;
    /// Machine constants for the AlgorithmSelector. Unset → calibrated at
    /// construction from two serial micro-probes (model::fit_params), with
    /// model::ipsc_params() as the fallback when the probes are below
    /// timer resolution.
    std::optional<model::CommParams> comm;
};

/// Per-execution report (the service's analogue of rt::Result).
struct ExecStats {
    bool verified = false;      ///< all checks for this run passed
    bool oracle_checked = false;///< barrier oracle ran on this execution
    bool cache_hit = false;     ///< plan + players came from the cache
    std::uint32_t rt_cycles = 0;
    std::uint32_t sim_makespan = 0;
    std::uint64_t blocks_delivered = 0;
    std::uint64_t payload_bytes = 0;
    /// Payload bytes the reported engine memcpy'd (0 on the zero-copy
    /// delivery path; nonzero under copy-through — combine plans or
    /// fault-hooked runs).
    std::uint64_t bytes_copied = 0;
    /// How the reported engine executed (barrier / serial / stealing).
    rt::ExecMode exec_mode = rt::ExecMode::barrier;
    /// Medium the blocks moved over (always ring for an in-process
    /// session; netd reports its serving endpoint's transport instead).
    ft::TransportClass transport = ft::TransportClass::ring;
    /// Exact bytes this signature's cache entry keeps resident after the
    /// run (compiled plan + players + oracle image) — the cost the
    /// byte-budgeted cache charges it.
    std::uint64_t plan_resident_bytes = 0;
    double seconds = 0; ///< wall clock of the reported engine's play()
};

class Session {
  public:
    explicit Session(dim_t n, SessionParams params = {});
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    [[nodiscard]] dim_t dimension() const noexcept { return n_; }
    [[nodiscard]] std::uint32_t threads() const noexcept { return threads_; }

    /// Validates `sig`, fetches or compiles its plan entry, executes it on
    /// the resident pool, and verifies per the session's Verify policy.
    /// Accepts any sub-cube dimension 1 <= sig.n <= n (plans for smaller
    /// cubes clamp their worker count to 2^sig.n), so one session can
    /// serve a mixed-dimension signature population. Thread-safe;
    /// concurrent executions of the same signature serialize on the entry,
    /// distinct signatures only contend on the pool.
    [[nodiscard]] ExecStats execute(const Signature& sig);

    /// Cost-model selection with the session's calibrated constants.
    [[nodiscard]] const AlgorithmSelector& selector() const noexcept {
        return selector_;
    }

    /// Convenience: selector() applied to a message of `message_elems`
    /// elements, returning a ready-to-execute signature.
    [[nodiscard]] Signature plan_signature(Op op, node_t root,
                                           std::uint64_t message_elems) const;

    [[nodiscard]] hcube::CacheStats cache_stats() const noexcept;
    [[nodiscard]] std::size_t cached_plans() const;
    /// Total cost currently charged to the plan cache: exact resident
    /// bytes under a plan_cache_bytes budget, resident entry count in
    /// entry-count mode.
    [[nodiscard]] std::uint64_t cache_resident_bytes() const;
    /// Jobs dispatched onto the resident pool (0 when single-threaded).
    [[nodiscard]] std::uint64_t pool_jobs() const;

  private:
    struct PlanEntry;

    [[nodiscard]] std::shared_ptr<PlanEntry>
    entry_for(const Signature& sig, bool& cache_hit);
    [[nodiscard]] model::CommParams calibrate() const;

    dim_t n_;
    SessionParams params_;
    std::uint32_t threads_;
    bool byte_budget_; ///< plan_cache_bytes != 0: cost-aware eviction
    std::unique_ptr<rt::WorkerPool> pool_;
    AlgorithmSelector selector_;
    LruCache<Signature, std::shared_ptr<PlanEntry>> cache_;
};

} // namespace hcube::svc
