// svc::Session — the persistent execution context of the collective
// service: one resident worker pool, one compiled-plan cache, one set of
// calibrated machine constants, shared across every operation submitted for
// the session's lifetime.
//
// Where rt::Communicator recompiles the schedule and reallocates player
// memory on every call (its pool already persists — PR 5's satellite), the
// Session also caches the *compiled plan and its players*: a cache hit
// replays the resident AsyncPlayer (or barrier Player) on the resident
// pool, touching no allocator and no schedule generator. Verification in
// the cached steady state stays byte-exact without re-running the barrier
// oracle: combine-mode entries byte-compare against the oracle image
// snapshotted on the entry's first (fully oracle-checked) execution, and
// move-mode entries re-derive the expected final state from the plan's
// immutable block arena (storing only a fingerprint of it — the image
// would be a second full copy of arena bytes) (docs/SERVICE.md
// § Verification in steady state).
#pragma once

#include "common/lru_cache.hpp"
#include "mbr/view.hpp"
#include "model/broadcast_model.hpp"
#include "rt/communicator.hpp" // Engine, Verify
#include "rt/plan.hpp"         // PlanLayout
#include "svc/rejection.hpp"
#include "svc/selector.hpp"
#include "svc/signature.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>

namespace hcube::rt {
class WorkerPool;
}

namespace hcube::svc {

struct SessionParams {
    /// Worker threads; 0 picks min(2^n, max(2, hardware_concurrency)).
    std::uint32_t threads = 0;
    /// Compiled plans (and their players) kept resident; 0 = unbounded.
    /// Entry-count mode, used only while plan_cache_bytes is 0.
    std::size_t plan_cache_capacity = 32;
    /// Byte budget for the plan cache. When nonzero the cache charges each
    /// entry its exact resident bytes (plan + players + oracle image; see
    /// Plan::resident_bytes) and evicts least-recently-used entries until
    /// the total fits — thousands of small-cube signatures coexist with a
    /// few large ones under one bound. 0 (the default) preserves the
    /// entry-count behavior of plan_cache_capacity.
    std::uint64_t plan_cache_bytes = 0;
    /// Plan encoding (rt::PlanLayout). The automatic default compiles the
    /// compact residency layout inside its validated envelope; wide is the
    /// pre-compaction reference encoding.
    rt::PlanLayout plan_layout = rt::PlanLayout::automatic;
    /// Engine whose stats ExecStats reports.
    rt::Engine engine = rt::Engine::async;
    /// Oracle policy. `first` (the service default) fully oracle-checks
    /// each signature's first execution and byte-compares repeats against
    /// the snapshotted oracle image; `always` re-runs the oracle every
    /// time; `never` skips it entirely (checksums + holdings only).
    rt::Verify verify = rt::Verify::first;
    /// Ring slots per link channel for the barrier engine.
    std::uint32_t channel_capacity = 2;
    /// Port model schedules are generated for and validated under.
    sim::PortModel model = sim::PortModel::one_port_full_duplex;
    /// Machine constants for the AlgorithmSelector. Unset → calibrated at
    /// construction from two serial micro-probes (model::fit_params), with
    /// model::ipsc_params() as the fallback when the probes are below
    /// timer resolution.
    std::optional<model::CommParams> comm;
};

/// Per-execution report (the service's analogue of rt::Result).
struct ExecStats {
    bool verified = false;      ///< all checks for this run passed
    bool oracle_checked = false;///< barrier oracle ran on this execution
    bool cache_hit = false;     ///< plan + players came from the cache
    std::uint32_t rt_cycles = 0;
    std::uint32_t sim_makespan = 0;
    std::uint64_t blocks_delivered = 0;
    std::uint64_t payload_bytes = 0;
    /// Payload bytes the reported engine memcpy'd (0 on the zero-copy
    /// delivery path; nonzero under copy-through — combine plans or
    /// fault-hooked runs).
    std::uint64_t bytes_copied = 0;
    /// How the reported engine executed (barrier / serial / stealing).
    rt::ExecMode exec_mode = rt::ExecMode::barrier;
    /// Medium the blocks moved over (always ring for an in-process
    /// session; netd reports its serving endpoint's transport instead).
    ft::TransportClass transport = ft::TransportClass::ring;
    /// Exact bytes this signature's cache entry keeps resident after the
    /// run (compiled plan + players + oracle image) — the cost the
    /// byte-budgeted cache charges it.
    std::uint64_t plan_resident_bytes = 0;
    double seconds = 0; ///< wall clock of the reported engine's play()
    /// Member-set epoch the plan was keyed on (the signature sub-cube's
    /// epoch at execution time).
    std::uint64_t view_epoch = 0;
    /// Live members the collective spanned (2^sig.n on a full sub-cube).
    node_t member_count = 0;
};

class Session {
  public:
    explicit Session(dim_t n, SessionParams params = {});
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    [[nodiscard]] dim_t dimension() const noexcept { return n_; }
    [[nodiscard]] std::uint32_t threads() const noexcept { return threads_; }

    /// Validates `sig` against the current membership view (see
    /// preflight), fetches or compiles its plan entry, executes it on the
    /// resident pool, and verifies per the session's Verify policy.
    /// Accepts any sub-cube dimension 1 <= sig.n <= n (plans for smaller
    /// cubes clamp their worker count to the sub-cube's live member
    /// count), so one session can serve a mixed-dimension signature
    /// population; on an incomplete sub-cube the schedule spans exactly
    /// the live members. Throws rejected_error (with the structured
    /// Rejection) when preflight refuses the signature. Thread-safe;
    /// concurrent executions of the same signature serialize on the
    /// entry, distinct signatures only contend on the pool; membership
    /// transitions wait for in-flight executions to drain.
    [[nodiscard]] ExecStats execute(const Signature& sig);

    /// Why `sig` would be refused against the current view, or nullopt if
    /// it is admissible: dimension and root in range, root a live member
    /// of the signature's sub-cube (with the XOR-nearest live member
    /// suggested otherwise), and — on an incomplete sub-cube — a family
    /// and op the member tree can route.
    [[nodiscard]] std::optional<Rejection>
    preflight(const Signature& sig) const;

    // ---- membership ---------------------------------------------------

    /// Snapshot of the session's membership view (full cube at epoch 0
    /// until the first transition).
    [[nodiscard]] mbr::View view() const;
    [[nodiscard]] std::uint64_t view_epoch() const;

    /// Membership transitions. Each applies to the view atomically, then
    /// evicts exactly the cached plans whose sub-cube epoch went stale —
    /// a join at address 9 leaves every n <= 3 plan resident. Returns the
    /// number of entries evicted. Transitions wait for in-flight
    /// executions to drain; strictness (joining a live address, leaving a
    /// dead or last one) follows mbr::View and throws check_error with
    /// the view and cache unchanged.
    std::size_t join(node_t v);
    std::size_t leave(node_t v);
    std::size_t apply(const mbr::Delta& delta);

    /// Total cache entries evicted by membership transitions (subset of
    /// cache_stats().evictions).
    [[nodiscard]] std::uint64_t epoch_evictions() const noexcept;

    /// Cost-model selection with the session's calibrated constants.
    [[nodiscard]] const AlgorithmSelector& selector() const noexcept {
        return selector_;
    }

    /// Convenience: selector() applied to a message of `message_elems`
    /// elements, returning a ready-to-execute signature.
    [[nodiscard]] Signature plan_signature(Op op, node_t root,
                                           std::uint64_t message_elems) const;

    [[nodiscard]] hcube::CacheStats cache_stats() const noexcept;
    [[nodiscard]] std::size_t cached_plans() const;
    /// Total cost currently charged to the plan cache: exact resident
    /// bytes under a plan_cache_bytes budget, resident entry count in
    /// entry-count mode.
    [[nodiscard]] std::uint64_t cache_resident_bytes() const;
    /// Jobs dispatched onto the resident pool (0 when single-threaded).
    [[nodiscard]] std::uint64_t pool_jobs() const;

  private:
    struct PlanEntry;

    /// `sub` is the signature's sub-cube view (held stable by the shared
    /// view lock the caller holds across the lookup).
    [[nodiscard]] std::shared_ptr<PlanEntry>
    entry_for(const Signature& sig, const mbr::View& sub, bool& cache_hit);
    [[nodiscard]] model::CommParams calibrate() const;
    /// Evicts every cached plan whose sub-cube epoch no longer matches
    /// the view. Caller holds the exclusive view lock.
    std::size_t evict_stale_epochs();

    dim_t n_;
    SessionParams params_;
    std::uint32_t threads_;
    bool byte_budget_; ///< plan_cache_bytes != 0: cost-aware eviction
    std::unique_ptr<rt::WorkerPool> pool_;
    AlgorithmSelector selector_;
    LruCache<Signature, std::shared_ptr<PlanEntry>> cache_;
    /// Guards view_: shared across an execution (plans compile against a
    /// stable member set), exclusive for transitions — so a transition
    /// can never invalidate a plan mid-flight. Lock order: view_mutex_
    /// before any cache_ internal lock.
    mutable std::shared_mutex view_mutex_;
    mbr::View view_;
    std::atomic<std::uint64_t> epoch_evictions_{0};
    /// High-water mark of cache evictions already published to the obs
    /// registry — each Session forwards exactly its own eviction total once
    /// even when concurrent executions race the sync.
    std::atomic<std::uint64_t> evictions_published_{0};
};

} // namespace hcube::svc
