#include "svc/service.hpp"

#include "common/check.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace hcube::svc {

Service::Service(dim_t n, ServiceParams params)
    : session_(n, params.session), params_(params),
      dispatcher_([this] { dispatch_loop(); }) {
    HCUBE_ENSURE(params_.queue_depth >= 1);
}

Service::~Service() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        paused_ = false; // a paused service still drains on shutdown
    }
    admit_cv_.notify_all();
    dispatch_cv_.notify_all();
    dispatcher_.join();
}

std::future<Response> Service::submit(const Signature& sig) {
    Pending pending;
    pending.sig = sig;
    std::future<Response> future = pending.promise.get_future();

    std::unique_lock<std::mutex> lock(mutex_);
    HCUBE_ENSURE_MSG(!stopping_, "submit() on a stopping service");
    if (queue_.size() >= params_.queue_depth) {
        if (params_.admission == Admission::reject) {
            counters_.rejected += 1;
            lock.unlock();
            Response response;
            response.status = Status::rejected;
            pending.promise.set_value(std::move(response));
            return future;
        }
        admit_cv_.wait(lock, [this] {
            return stopping_ || queue_.size() < params_.queue_depth;
        });
        HCUBE_ENSURE_MSG(!stopping_, "submit() raced service shutdown");
    }
    counters_.submitted += 1;
    queue_.push_back(std::move(pending));
    lock.unlock();
    dispatch_cv_.notify_one();
    return future;
}

void Service::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && !busy_ && !paused_; });
}

void Service::pause() {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void Service::resume() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    dispatch_cv_.notify_all();
    idle_cv_.notify_all(); // a drain() waiter may now satisfy its predicate
}

Service::Counters Service::counters() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void Service::dispatch_loop() {
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        dispatch_cv_.wait(lock, [this] {
            return stopping_ || (!paused_ && !queue_.empty());
        });
        if (queue_.empty()) {
            if (stopping_) {
                idle_cv_.notify_all();
                return;
            }
            continue;
        }
        // FIFO head picks the signature; batching coalesces every queued
        // request with the same signature into this execution.
        Pending head = std::move(queue_.front());
        queue_.pop_front();
        std::vector<Pending> riders;
        if (params_.batching) {
            for (auto it = queue_.begin(); it != queue_.end();) {
                if (it->sig == head.sig) {
                    riders.push_back(std::move(*it));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
        }
        busy_ = true;
        counters_.batched += riders.size();
        lock.unlock();
        admit_cv_.notify_all(); // slots freed

        Response response;
        try {
            response.stats = session_.execute(head.sig);
            response.status = Status::ok;
        } catch (const rejected_error& ex) {
            response.status = Status::failed;
            response.error = ex.what();
            response.rejection = ex.rejection();
        } catch (const std::exception& ex) {
            response.status = Status::failed;
            response.error = ex.what();
        }

        lock.lock();
        counters_.executed += 1;
        if (response.status == Status::failed) {
            counters_.failed += 1 + riders.size();
        }
        busy_ = false;
        const bool idle = queue_.empty();
        lock.unlock();

        head.promise.set_value(response);
        for (Pending& rider : riders) {
            Response ride = response;
            ride.batched = true;
            ride.stats.cache_hit = true; // rode on the executed plan
            rider.promise.set_value(std::move(ride));
        }
        if (idle) {
            idle_cv_.notify_all();
        }
    }
}

} // namespace hcube::svc
