#include "svc/service.hpp"

#include "common/check.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hcube::svc {

namespace {

/// Process-wide mirrors of the per-instance Service counters, plus the
/// queue/latency instruments. Looked up once; the registry hands back
/// stable references.
struct ServiceMetrics {
    obs::Counter& submitted = obs::registry().counter("svc.submitted");
    obs::Counter& executed = obs::registry().counter("svc.executed");
    obs::Counter& batched = obs::registry().counter("svc.batched");
    obs::Counter& rejected = obs::registry().counter("svc.rejected");
    obs::Counter& failed = obs::registry().counter("svc.failed");
    obs::Gauge& queue_depth = obs::registry().gauge("svc.queue_depth");
    obs::Histogram& queue_wait_ns =
        obs::registry().histogram("svc.queue_wait_ns");
    obs::Histogram& execute_ns =
        obs::registry().histogram("svc.execute_ns");
};

ServiceMetrics& metrics() {
    static ServiceMetrics m;
    return m;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
}

} // namespace

Service::Service(dim_t n, ServiceParams params)
    : session_(n, params.session), params_(params),
      dispatcher_([this] { dispatch_loop(); }) {
    HCUBE_ENSURE(params_.queue_depth >= 1);
}

Service::~Service() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        paused_ = false; // a paused service still drains on shutdown
    }
    admit_cv_.notify_all();
    dispatch_cv_.notify_all();
    dispatcher_.join();
}

std::future<Response> Service::submit(const Request& req) {
    Pending pending;
    pending.sig = req.sig;
    pending.client_id = req.client_id;
    std::future<Response> future = pending.promise.get_future();

    std::unique_lock<std::mutex> lock(mutex_);
    HCUBE_ENSURE_MSG(!stopping_, "submit() on a stopping service");
    if (queue_.size() >= params_.queue_depth) {
        if (params_.admission == Admission::reject) {
            c_rejected_.inc();
            metrics().rejected.inc();
            lock.unlock();
            Response response;
            response.status = Status::rejected;
            fulfill(pending, std::move(response));
            return future;
        }
        admit_cv_.wait(lock, [this] {
            return stopping_ || queue_.size() < params_.queue_depth;
        });
        HCUBE_ENSURE_MSG(!stopping_, "submit() raced service shutdown");
    }
    c_submitted_.inc();
    metrics().submitted.inc();
    pending.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(pending));
    metrics().queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    lock.unlock();
    dispatch_cv_.notify_one();
    return future;
}

void Service::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && !busy_ && !paused_; });
}

void Service::pause() {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void Service::resume() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    dispatch_cv_.notify_all();
    idle_cv_.notify_all(); // a drain() waiter may now satisfy its predicate
}

Service::Counters Service::counters() const noexcept {
    Counters c;
    c.submitted = c_submitted_.value();
    c.executed = c_executed_.value();
    c.batched = c_batched_.value();
    c.rejected = c_rejected_.value();
    c.failed = c_failed_.value();
    return c;
}

namespace {

/// The tenant's latency histogram, memoized per thread: registry cells
/// are stable and the registry is leaked, so caching the reference skips
/// the name build + shared-lock lookup on every fulfilled request.
obs::Histogram& tenant_histogram(std::uint32_t client_id) {
    thread_local std::unordered_map<std::uint32_t, obs::Histogram*> cache;
    auto [it, fresh] = cache.try_emplace(client_id, nullptr);
    if (fresh) {
        it->second = &obs::registry().histogram(
            "svc.tenant." + std::to_string(client_id) + ".op_ns");
    }
    return *it->second;
}

} // namespace

void Service::fulfill(Pending& p, Response response) {
    // End-to-end tenant latency: admission to fulfilled promise, so queue
    // wait, batching and execution all land on the tenant that paid them.
    // Rejected submits never set `enqueued` and bill zero wait.
    const std::uint64_t ns =
        p.enqueued == std::chrono::steady_clock::time_point{}
            ? 0
            : elapsed_ns(p.enqueued);
    tenant_histogram(p.client_id).record(ns);
    p.promise.set_value(std::move(response));
}

void Service::dispatch_loop() {
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        dispatch_cv_.wait(lock, [this] {
            return stopping_ || (!paused_ && !queue_.empty());
        });
        if (queue_.empty()) {
            if (stopping_) {
                idle_cv_.notify_all();
                return;
            }
            continue;
        }
        // FIFO head picks the signature; batching coalesces every queued
        // request with the same signature into this execution.
        Pending head = std::move(queue_.front());
        queue_.pop_front();
        std::vector<Pending> riders;
        if (params_.batching) {
            for (auto it = queue_.begin(); it != queue_.end();) {
                if (it->sig == head.sig) {
                    riders.push_back(std::move(*it));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
        }
        busy_ = true;
        c_batched_.inc(riders.size());
        metrics().batched.inc(riders.size());
        metrics().queue_depth.set(static_cast<std::int64_t>(queue_.size()));
        lock.unlock();
        admit_cv_.notify_all(); // slots freed

        metrics().queue_wait_ns.record(elapsed_ns(head.enqueued));
        for (const Pending& rider : riders) {
            metrics().queue_wait_ns.record(elapsed_ns(rider.enqueued));
        }

        Response response;
        {
            const obs::ScopedTimer timer(&metrics().execute_ns);
            try {
                response.stats = session_.execute(head.sig);
                response.status = Status::ok;
            } catch (const rejected_error& ex) {
                response.status = Status::failed;
                response.error = ex.what();
                response.rejection = ex.rejection();
            } catch (const std::exception& ex) {
                response.status = Status::failed;
                response.error = ex.what();
            }
        }

        lock.lock();
        c_executed_.inc();
        metrics().executed.inc();
        if (response.status == Status::failed) {
            c_failed_.inc(1 + riders.size());
            metrics().failed.inc(1 + riders.size());
        }
        busy_ = false;
        const bool idle = queue_.empty();
        lock.unlock();

        fulfill(head, response);
        for (Pending& rider : riders) {
            Response ride = response;
            ride.batched = true;
            ride.stats.cache_hit = true; // rode on the executed plan
            fulfill(rider, std::move(ride));
        }
        if (idle) {
            idle_cv_.notify_all();
        }
    }
}

} // namespace hcube::svc
