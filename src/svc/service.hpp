// svc::Service — the concurrent front door of the collective service: a
// bounded admission queue feeding one dispatcher thread that executes
// requests on a persistent svc::Session.
//
// Clients submit() a Signature from any thread and receive a
// std::future<Response>. Admission is bounded: when the queue holds
// `queue_depth` pending requests, submit() either blocks until a slot
// frees (Admission::block, the default) or completes the future
// immediately with Status::rejected (Admission::reject) — the two
// backpressure policies a long-running service needs.
//
// Dispatch is FIFO by arrival of the *head* request; requests elsewhere in
// the queue whose signature equals the head's are coalesced into the same
// execution (batching): the schedule runs once on the session and every
// coalesced future receives the same verified Response with
// `batched = true` on the riders. Coalescing is sound because a collective
// is idempotent over the canonical payloads — equal signatures produce
// byte-identical verified final states, which is precisely what the plan
// cache already guarantees (docs/SERVICE.md § Batching).
#pragma once

#include "obs/metrics.hpp"
#include "svc/session.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace hcube::svc {

/// What submit() does when the admission queue is full.
enum class Admission : std::uint8_t {
    block,  ///< caller blocks until a slot frees (backpressure by waiting)
    reject, ///< future completes immediately with Status::rejected
};

enum class Status : std::uint8_t {
    ok,       ///< executed (see Response::verified for the integrity bit)
    rejected, ///< bounced by admission control; never executed
    failed,   ///< schedule generation/validation threw (Response::error)
};

[[nodiscard]] constexpr std::string_view to_string(Status s) noexcept {
    switch (s) {
    case Status::ok: return "ok";
    case Status::rejected: return "rejected";
    case Status::failed: return "failed";
    }
    return "?";
}

struct Response {
    Status status = Status::ok;
    /// Execution report (meaningful when status == ok).
    ExecStats stats;
    /// This request rode along on another request's execution (equal
    /// signatures coalesced into one run).
    bool batched = false;
    /// check_error text when status == failed.
    std::string error;
    /// Structured preflight verdict when the session refused the
    /// signature (status == failed with a Rejection cause): the reason
    /// as data plus, for a dead root, the nearest live member to
    /// retarget to. Status::rejected stays reserved for admission-queue
    /// bounces, which never reach the session.
    std::optional<Rejection> rejection;
};

/// A submitted operation: the collective signature plus the tenant it is
/// billed to. client_id deliberately lives *outside* the Signature — it
/// must not fragment the plan cache or defeat batching (two tenants
/// submitting the same collective coalesce into one execution) — so it
/// rides next to the signature and only the metrics plane keys on it
/// (svc.tenant.<id>.op_ns).
struct Request {
    Signature sig;
    std::uint32_t client_id = 0;
};

struct ServiceParams {
    SessionParams session;
    /// Pending requests admitted before backpressure engages.
    std::size_t queue_depth = 64;
    Admission admission = Admission::block;
    /// Coalesce queued requests with identical signatures into one
    /// execution.
    bool batching = true;
};

class Service {
  public:
    explicit Service(dim_t n, ServiceParams params = {});
    /// Drains every admitted request, then stops the dispatcher.
    ~Service();
    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /// Thread-safe. Enqueues the request (applying the admission policy)
    /// and returns the future its Response will arrive on.
    [[nodiscard]] std::future<Response> submit(const Request& req);
    [[nodiscard]] std::future<Response> submit(const Signature& sig) {
        return submit(Request{sig, 0});
    }

    /// submit() + wait: the synchronous convenience wrapper.
    [[nodiscard]] Response run(const Request& req) {
        return submit(req).get();
    }
    [[nodiscard]] Response run(const Signature& sig) {
        return submit(sig).get();
    }

    /// Blocks until the queue is empty and the dispatcher is idle.
    void drain();

    /// Gates the dispatcher (tests use this to fill the queue
    /// deterministically before any request executes). Admission control
    /// keeps applying while paused.
    void pause();
    void resume();

    struct Counters {
        std::uint64_t submitted = 0; ///< admitted into the queue
        std::uint64_t executed = 0;  ///< schedule executions run
        std::uint64_t batched = 0;   ///< requests that rode along
        std::uint64_t rejected = 0;  ///< bounced by admission control
        std::uint64_t failed = 0;    ///< completed with Status::failed
    };
    /// Wait-free: reads five relaxed atomics (obs::Counter cells), never
    /// touching the admission mutex — a monitoring thread can poll it
    /// while the dispatcher is mid-batch.
    [[nodiscard]] Counters counters() const noexcept;

    /// The persistent execution context (selector, plan cache, pool).
    [[nodiscard]] Session& session() noexcept { return session_; }
    [[nodiscard]] const Session& session() const noexcept {
        return session_;
    }

  private:
    struct Pending {
        Signature sig;
        std::uint32_t client_id = 0;
        std::chrono::steady_clock::time_point enqueued;
        std::promise<Response> promise;
    };

    void dispatch_loop();
    /// Completes `p` with `response`, stamping the tenant's end-to-end op
    /// latency (enqueue → promise fulfilled) into svc.tenant.<id>.op_ns.
    void fulfill(Pending& p, Response response);

    Session session_;
    ServiceParams params_;

    mutable std::mutex mutex_;
    std::condition_variable admit_cv_;    ///< queue has room / stopping
    std::condition_variable dispatch_cv_; ///< work available / unpaused
    std::condition_variable idle_cv_;     ///< queue empty and idle
    std::deque<Pending> queue_;
    bool paused_ = false;
    bool stopping_ = false;
    bool busy_ = false; ///< dispatcher is executing a batch

    /// Per-instance counter cells behind counters(). Mirrored into the
    /// process-wide registry (svc.*) for the telemetry plane.
    obs::Counter c_submitted_;
    obs::Counter c_executed_;
    obs::Counter c_batched_;
    obs::Counter c_rejected_;
    obs::Counter c_failed_;

    std::thread dispatcher_; ///< last member: starts after state is ready
};

} // namespace hcube::svc
