// Umbrella header: everything a downstream user needs.
//
//   #include "hypercoll.hpp"
//
// pulls in the cube arithmetic (hcube::hc), the spanning structures
// (hcube::trees), both simulators (hcube::sim), the routing algorithms and
// data-carrying collectives (hcube::routing), the threaded collective
// runtime (hcube::rt), and the analytic models (hcube::model). Individual
// headers remain includable on their own.
#pragma once

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"

#include "hc/bits.hpp"
#include "hc/cube.hpp"
#include "hc/embed.hpp"
#include "hc/gray.hpp"
#include "hc/necklace.hpp"
#include "hc/paths.hpp"
#include "hc/rotate.hpp"
#include "hc/types.hpp"

#include "trees/bst.hpp"
#include "trees/fault.hpp"
#include "trees/hp.hpp"
#include "trees/msbt.hpp"
#include "trees/sbt.hpp"
#include "trees/spanning_tree.hpp"
#include "trees/tcbt.hpp"

#include "sim/cycle.hpp"
#include "sim/event.hpp"
#include "sim/port_model.hpp"
#include "sim/trace.hpp"

#include "routing/alltoall.hpp"
#include "routing/broadcast.hpp"
#include "routing/collectives.hpp"
#include "routing/multipath.hpp"
#include "routing/protocols.hpp"
#include "routing/scatter.hpp"
#include "routing/schedule_export.hpp"

#include "rt/channel.hpp"
#include "rt/checksum.hpp"
#include "rt/communicator.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"

#include "model/broadcast_model.hpp"
#include "model/personalized_model.hpp"
