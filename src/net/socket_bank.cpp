#include "net/socket_bank.hpp"

#include "common/check.hpp"
#include "rt/simd.hpp"

#include <algorithm>
#include <bit>

namespace hcube::net {

std::uint32_t SocketChannelBank::ring_capacity(const rt::Plan& plan) {
    // Max pushes any single channel sees over the whole schedule: with the
    // ring at least that deep, the engine's own pacing is the only flow
    // control the local path needs, and an ingress burst can never drop.
    std::vector<std::uint32_t> pushes(plan.channel_count, 0);
    for (const rt::Action& a : plan.sends) {
        ++pushes[a.channel];
    }
    const std::uint32_t deepest =
        pushes.empty() ? 0u : *std::ranges::max_element(pushes);
    return std::bit_ceil(std::clamp<std::uint32_t>(deepest, 2u, 4096u));
}

SocketChannelBank::SocketChannelBank(const rt::Plan& plan,
                                     std::uint32_t rank, PeerBus& bus)
    : plan_(plan), rank_(rank), bus_(bus),
      inner_(plan.channel_count, ring_capacity(plan), plan.block_elems,
             /*inline_payload=*/true),
      route_(plan.channel_count,
             static_cast<std::uint8_t>(Route::foreign)),
      dest_(plan.channel_count, 0), send_seq_(plan.channel_count, 0) {
    HCUBE_ENSURE_MSG(rank < plan.workers,
                     "rank outside the plan's worker range");
    for (std::uint32_t c = 0; c < plan.channel_count; ++c) {
        const std::uint32_t from = plan.owner_of(plan.channel_from(c));
        const std::uint32_t to = plan.owner_of(plan.channel_to(c));
        dest_[c] = to;
        Route r = Route::foreign;
        if (from == rank && to == rank) {
            r = Route::local;
        } else if (from == rank) {
            r = Route::egress;
        } else if (to == rank) {
            r = Route::ingress;
        }
        route_[c] = static_cast<std::uint8_t>(r);
    }
}

bool SocketChannelBank::try_push(std::uint32_t channel, std::uint32_t packet,
                                 std::span<const double> block,
                                 std::uint64_t checksum) noexcept {
    switch (route(channel)) {
    case Route::local:
        return inner_.try_push(channel, packet, block, checksum);
    case Route::egress: {
        // The frame digest is always the digest of the bytes being sent:
        // move-mode pushes pass the canonical expectation (identical for a
        // healthy block), but combine-mode partial sums pass 0 — the wire
        // check needs the real one.
        const std::uint64_t digest =
            rt::simd::checksum(block.data(), block.size());
        return bus_.send_data(dest_[channel], channel, send_seq_[channel]++,
                              packet, digest, block);
    }
    case Route::ingress:
    case Route::foreign:
        // A compute-side push on a channel this rank does not produce is a
        // plan/ownership bug; surface it as a channel fault.
        return false;
    }
    return false;
}

void SocketChannelBank::reset() noexcept {
    inner_.reset();
    std::ranges::fill(send_seq_, 0u);
}

} // namespace hcube::net
