#include "net/net_player.hpp"

#include "common/check.hpp"
#include "rt/checksum.hpp"
#include "rt/delivery.hpp"

#include <chrono>

namespace hcube::net {

NetPlayer::NetPlayer(const rt::Plan& plan, std::uint32_t rank,
                     SocketChannelBank& bank, ft::DetectConfig detect,
                     ft::TransportClass transport)
    : plan_(plan), rank_(rank), bank_(bank), detect_(detect),
      transport_(transport),
      views_(static_cast<std::size_t>(plan.total_slots), nullptr),
      memory_(static_cast<std::size_t>(plan.total_slots) * plan.block_elems,
              0.0) {
    HCUBE_ENSURE_MSG(rank < plan.workers,
                     "rank outside the plan's worker range");
    // Detection is never off over a wire: an absent peer must become a
    // bounded, reported arrival timeout, not a hang.
    if (!detect_.enabled()) {
        detect_ = ft::DetectConfig::for_transport(transport);
    }
    if (plan.mode == rt::DataMode::move) {
        expected_checksum_.resize(plan.packet_count);
        for (packet_t p = 0; p < plan.packet_count; ++p) {
            expected_checksum_[p] =
                rt::canonical_checksum(p, plan.block_elems);
        }
    }
    // Copy-through always: seed every slot and point the views at the
    // local memory image, exactly like the barrier Player's copy-through
    // prepare_views() — the precondition for byte-identical finals.
    seed_plan_memory(plan_, memory_);
    for (std::uint64_t s = 0; s < plan_.total_slots; ++s) {
        views_[static_cast<std::size_t>(s)] =
            memory_.data() + static_cast<std::size_t>(s) * plan_.block_elems;
    }
}

NetPlayStats NetPlayer::play() {
    arbiter_.reset();
    rt::PlayStats stats;
    const rt::RunContextT<SocketChannelBank> ctx{
        plan_,    bank_,     views_.data(),
        memory_.data(),      expected_checksum_.data(),
        detect_,  arbiter_,  nullptr,
        /*detecting=*/true,  /*copy_through=*/true};

    const auto start = std::chrono::steady_clock::now();
    const std::uint32_t workers = plan_.workers;
    for (std::uint32_t cycle = 0; cycle < plan_.cycles; ++cycle) {
        if (arbiter_.aborted()) {
            break; // no barriers to keep crossing: just stop
        }
        const std::size_t bucket = std::size_t{cycle} * workers + rank_;
        for (std::size_t i = plan_.send_begin[bucket];
             i < plan_.send_begin[bucket + 1]; ++i) {
            const rt::ActionFields a = plan_.bucket_send(i);
            rt::send_block(ctx, {a.channel, a.slot, a.packet, a.seq, cycle},
                           rank_, stats);
        }
        for (std::size_t i = plan_.recv_begin[bucket];
             i < plan_.recv_begin[bucket + 1]; ++i) {
            const rt::ActionFields a = plan_.bucket_recv(i);
            // check_seq: in-order reliable delivery restores the exact
            // push order, so the ring's sequence stamps must equal the
            // plan's — a stricter check than the barrier engine needs.
            const rt::DeliverOutcome out = rt::deliver_block(
                ctx, {a.channel, a.slot, a.packet, a.seq, cycle},
                /*check_seq=*/true, rank_, stats);
            if (out == rt::DeliverOutcome::drained ||
                (out == rt::DeliverOutcome::skipped &&
                 arbiter_.aborted())) {
                break;
            }
        }
    }
    const auto stop = std::chrono::steady_clock::now();

    stats.cycles = plan_.cycles;
    stats.mode = rt::ExecMode::barrier; // lockstep bucket order, no steals
    stats.transport = transport_;
    stats.seconds = std::chrono::duration<double>(stop - start).count();
    stats.payload_bytes =
        stats.blocks_delivered * plan_.block_elems * sizeof(double);
    return {stats, arbiter_.report()};
}

std::span<const double> NetPlayer::block(node_t node,
                                         packet_t packet) const {
    const std::uint64_t slot = plan_.slot_of(node, packet);
    if (slot == rt::Plan::kNoSlot) {
        return {};
    }
    const double* view = views_[static_cast<std::size_t>(slot)];
    if (view == nullptr) {
        return {};
    }
    return {view, plan_.block_elems};
}

} // namespace hcube::net
