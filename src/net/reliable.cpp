#include "net/reliable.hpp"

#include "common/check.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"

#include <algorithm>

namespace hcube::net {

// ---- WireFaults -------------------------------------------------------

WireFaults::WireFaults(const rt::Plan& plan, const Config& cfg)
    : duplicate_percent_(std::min<std::uint32_t>(cfg.duplicate_percent, 100)),
      prng_(cfg.seed) {
    // Map link-addressed specs onto compiled channel ids, exactly like the
    // in-process ft::FaultInjector does.
    for (const ft::FaultSpec& spec : cfg.plan.specs()) {
        for (std::uint32_t c = 0; c < plan.channel_count; ++c) {
            if (plan.channel_from(c) != spec.link.from ||
                plan.channel_to(c) != spec.link.to) {
                continue;
            }
            Window w;
            w.at = spec.at_push;
            w.salt = std::max<std::uint32_t>(spec.param, 1);
            switch (spec.cls) {
            case ft::InjectClass::kill_link:
                w.cls = 2;
                w.count = ~std::uint32_t{0};
                break;
            case ft::InjectClass::transient_drop:
                w.cls = 0;
                w.count = spec.pushes;
                break;
            case ft::InjectClass::corrupt_payload:
                w.cls = 1;
                w.count = spec.pushes;
                break;
            case ft::InjectClass::delay_delivery:
                // Real sockets supply latency; the bounded arrival wait
                // (scaled per transport class) is the knob that absorbs it.
                continue;
            }
            by_channel_[c].push_back(w);
        }
    }
}

WireFaults::Verdict
WireFaults::on_first_send(std::uint32_t channel,
                          std::span<std::uint8_t> payload) {
    const std::lock_guard<std::mutex> lock(m_);
    const std::uint32_t k = sent_[channel]++;
    if (const auto it = by_channel_.find(channel); it != by_channel_.end()) {
        for (const Window& w : it->second) {
            if (k < w.at || (w.count != ~std::uint32_t{0} &&
                             k >= w.at + w.count)) {
                continue;
            }
            if (w.cls == 2) {
                return Verdict::kill;
            }
            if (w.cls == 0) {
                return Verdict::drop;
            }
            if (!payload.empty()) {
                payload[w.salt % payload.size()] ^= 0xa5;
            }
            return Verdict::corrupt;
        }
    }
    if (duplicate_percent_ > 0 &&
        prng_.next_below(100) < duplicate_percent_) {
        return Verdict::duplicate;
    }
    return Verdict::deliver;
}

// ---- ReliableLink -----------------------------------------------------

ReliableLink::ReliableLink(int fd, const ReliableConfig& cfg,
                           WireFaults* faults)
    : fd_(fd), cfg_(cfg), faults_(faults), prng_(cfg.jitter_seed) {
    HCUBE_ENSURE(cfg.window >= 1 && cfg.max_attempts >= 1);
}

std::chrono::microseconds ReliableLink::backoff(std::uint32_t attempt) {
    // base << (attempt-1), capped, plus uniform jitter of the same
    // magnitude: bounded (< 2 * cap) and randomized (desynchronizes the
    // retry bursts of independent links).
    const std::uint32_t shift = std::min(attempt - 1, 16u);
    const std::uint64_t exp =
        std::min<std::uint64_t>(std::uint64_t{cfg_.backoff_base_us} << shift,
                                cfg_.backoff_cap_us);
    return std::chrono::microseconds(exp + prng_.next_below(exp));
}

void ReliableLink::flush_locked() {
    std::vector<std::uint8_t> frame;
    while (out_.pop(frame)) {
        if (write_frame(fd_, frame) != IoStatus::ok) {
            failed_ = true;
            ++counters_.link_failures;
            window_cv_.notify_all();
            return;
        }
    }
}

void ReliableLink::transmit_first_locked(Pending& p) {
    ++counters_.data_sent;
    if (faults_ == nullptr || !faults_->armed()) {
        out_.push_data(p.frame);
        flush_locked();
        return;
    }
    // Verdicts apply to a copy; `p.frame` stays the clean encoding every
    // retransmit falls back to.
    std::vector<std::uint8_t> wire = p.frame;
    const std::span<std::uint8_t> payload{wire.data() + kDataHeaderBytes,
                                          wire.size() - kDataHeaderBytes};
    switch (faults_->on_first_send(p.channel, payload)) {
    case WireFaults::Verdict::kill:
        ++counters_.injected_drop;
        p.blackholed = true; // retransmits blackhole too: dead link
        return;
    case WireFaults::Verdict::drop:
        ++counters_.injected_drop;
        return; // the ack deadline will retransmit the clean frame
    case WireFaults::Verdict::corrupt:
        ++counters_.injected_corrupt;
        out_.push_data(std::move(wire));
        break;
    case WireFaults::Verdict::duplicate:
        ++counters_.injected_dup;
        out_.push_data(wire);
        out_.push_data(std::move(wire));
        break;
    case WireFaults::Verdict::deliver:
        out_.push_data(std::move(wire));
        break;
    }
    flush_locked();
}

bool ReliableLink::send_data(std::uint64_t plan_fp, std::uint32_t channel,
                            std::uint32_t seq, std::uint32_t packet,
                            std::uint64_t checksum,
                            std::span<const double> block) {
    std::unique_lock<std::mutex> lock(m_);
    window_cv_.wait(lock, [&] {
        return failed_ || in_flight_[channel] < cfg_.window;
    });
    if (failed_) {
        return false;
    }
    ++in_flight_[channel];
    Pending p;
    p.channel = channel;
    p.seq = seq;
    p.attempts = 1;
    p.blackholed = false;
    p.deadline = clock::now() + backoff(1);
    encode_data(p.frame, plan_fp, channel, seq, packet, checksum, block);
    pending_.push_back(std::move(p));
    transmit_first_locked(pending_.back());
    return !failed_;
}

void ReliableLink::enqueue_ack(std::uint32_t channel, std::uint32_t seq) {
    const std::lock_guard<std::mutex> lock(m_);
    if (failed_) {
        return;
    }
    std::vector<std::uint8_t> frame;
    encode_ack(frame, {channel, seq});
    out_.push_ack(std::move(frame));
    ++counters_.acks_sent;
    flush_locked();
}

void ReliableLink::on_ack(const AckMsg& ack) {
    const std::lock_guard<std::mutex> lock(m_);
    ++counters_.acks_received;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->channel == ack.channel && it->seq == ack.seq) {
            pending_.erase(it);
            auto fl = in_flight_.find(ack.channel);
            if (fl != in_flight_.end() && fl->second > 0) {
                --fl->second;
            }
            window_cv_.notify_all();
            return;
        }
    }
    // Unknown {channel, seq}: the ack of a retransmit whose original
    // already completed — benign, ignore.
}

void ReliableLink::tick(clock::time_point now) {
    const std::lock_guard<std::mutex> lock(m_);
    if (failed_) {
        return;
    }
    for (Pending& p : pending_) {
        if (p.deadline > now) {
            continue;
        }
        if (p.attempts >= cfg_.max_attempts) {
            failed_ = true;
            ++counters_.link_failures;
            window_cv_.notify_all();
            return;
        }
        ++p.attempts;
        const std::chrono::microseconds wait = backoff(p.attempts);
        p.deadline = now + wait;
        ++counters_.retransmits;
        static obs::Counter& m_retx =
            obs::registry().counter("net.retransmits");
        static obs::Counter& m_waits =
            obs::registry().counter("net.backoff_waits");
        static obs::Histogram& m_backoff =
            obs::registry().histogram("net.backoff_ns");
        m_retx.inc();
        m_waits.inc();
        m_backoff.record(static_cast<std::uint64_t>(wait.count()) * 1000);
        if (!p.blackholed) {
            out_.push_data(p.frame); // always the clean encoding
        }
    }
    flush_locked();
}

ReliableLink::clock::time_point ReliableLink::next_deadline() {
    const std::lock_guard<std::mutex> lock(m_);
    clock::time_point earliest = clock::time_point::max();
    for (const Pending& p : pending_) {
        earliest = std::min(earliest, p.deadline);
    }
    return earliest;
}

void ReliableLink::fail() noexcept {
    const std::lock_guard<std::mutex> lock(m_);
    if (!failed_) {
        failed_ = true;
        ++counters_.link_failures;
    }
    window_cv_.notify_all();
}

bool ReliableLink::failed() const noexcept {
    const std::lock_guard<std::mutex> lock(m_);
    return failed_;
}

bool ReliableLink::drained() {
    const std::lock_guard<std::mutex> lock(m_);
    return pending_.empty() && out_.empty();
}

WireCounters ReliableLink::counters() {
    const std::lock_guard<std::mutex> lock(m_);
    return counters_;
}

void ReliableLink::count_received(std::uint64_t data, std::uint64_t dup,
                                  std::uint64_t corrupt,
                                  std::uint64_t stashed) {
    const std::lock_guard<std::mutex> lock(m_);
    counters_.data_received += data;
    counters_.dup_suppressed += dup;
    counters_.corrupt_dropped += corrupt;
    counters_.stashed += stashed;
    if (dup > 0) {
        static obs::Counter& m_dup =
            obs::registry().counter("net.dup_suppressed");
        m_dup.inc(dup);
    }
}

void ReliableLink::count_flush_timeout() {
    const std::lock_guard<std::mutex> lock(m_);
    ++counters_.flush_timeouts;
}

} // namespace hcube::net
