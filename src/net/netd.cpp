#include "net/netd.hpp"

#include "common/check.hpp"
#include "net/frame.hpp"

#include <sys/socket.h>
#include <unistd.h>

namespace hcube::net {

Netd::Netd(dim_t n, NetdParams params)
    : service_(n, params.service), endpoint_(std::move(params.endpoint)),
      transport_(endpoint_.kind) {
    listen_fd_ = listen_endpoint(endpoint_);
    if (endpoint_.kind == ft::TransportClass::tcp && endpoint_.port == 0) {
        endpoint_.port = local_port(listen_fd_);
    }
    acceptor_ = std::thread([this] { accept_loop(); });
}

Netd::~Netd() {
    running_.store(false, std::memory_order_release);
    // Closing the listener kicks accept_peer's poll out with an error.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    std::vector<int> clients;
    std::vector<std::thread> threads;
    {
        const std::lock_guard<std::mutex> lock(m_);
        clients.swap(clients_);
        threads.swap(threads_);
    }
    for (const int fd : clients) {
        ::shutdown(fd, SHUT_RDWR); // unblocks a serve thread mid-read
    }
    for (std::thread& t : threads) {
        if (t.joinable()) {
            t.join();
        }
    }
    for (const int fd : clients) {
        ::close(fd);
    }
}

void Netd::accept_loop() {
    while (running_.load(std::memory_order_acquire)) {
        const int fd = accept_peer(listen_fd_, 200);
        if (fd < 0) {
            continue; // timeout or shutdown; the flag decides
        }
        const std::lock_guard<std::mutex> lock(m_);
        if (!running_.load(std::memory_order_acquire)) {
            ::close(fd);
            return;
        }
        clients_.push_back(fd);
        threads_.emplace_back([this, fd] { serve(fd); });
    }
}

void Netd::serve(int fd) {
    std::vector<std::uint8_t> frame;
    std::vector<std::uint8_t> reply;
    while (running_.load(std::memory_order_acquire)) {
        if (read_frame(fd, frame) != IoStatus::ok) {
            return; // client hung up (or teardown shut the socket)
        }
        if (frame_type(frame) == MsgType::metrics && frame.size() == 1) {
            // A bare METRICS frame is a scrape: answer with the process
            // registry (counters the in-process side and every serve
            // thread share), not with an OP_RESPONSE. A metrics frame
            // *with* a body is not a request at all — it falls through
            // to the garbage path below like any other malformed frame.
            encode_metrics(reply, obs::registry().snapshot());
            if (write_frame(fd, reply) != IoStatus::ok) {
                return;
            }
            continue;
        }
        OpResponseMsg resp;
        resp.transport = static_cast<std::uint8_t>(transport_);
        OpRequestMsg req;
        if (frame_type(frame) == MsgType::op_request &&
            decode_op_request(frame, req)) {
            resp.req_id = req.req_id;
            const svc::Response r = service_.run(req.sig);
            resp.status = static_cast<std::uint8_t>(r.status);
            resp.verified = r.stats.verified;
            resp.oracle_checked = r.stats.oracle_checked;
            resp.cache_hit = r.stats.cache_hit;
            resp.batched = r.batched;
            resp.rt_cycles = r.stats.rt_cycles;
            resp.sim_makespan = r.stats.sim_makespan;
            resp.blocks_delivered = r.stats.blocks_delivered;
            resp.payload_bytes = r.stats.payload_bytes;
            resp.seconds = r.stats.seconds;
            resp.error = r.error;
        } else {
            resp.status = static_cast<std::uint8_t>(svc::Status::failed);
            resp.error = "bad request frame";
        }
        served_.fetch_add(1, std::memory_order_relaxed);
        encode_op_response(reply, resp);
        if (write_frame(fd, reply) != IoStatus::ok) {
            return;
        }
    }
}

NetClient::NetClient(const Endpoint& endpoint, int timeout_ms) {
    fd_ = connect_endpoint(endpoint, timeout_ms);
}

NetClient::~NetClient() {
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

obs::RegistrySnapshot NetClient::scrape() {
    std::vector<std::uint8_t> frame;
    encode_bare(frame, MsgType::metrics);
    HCUBE_ENSURE_MSG(write_frame(fd_, frame) == IoStatus::ok,
                     "netd connection lost on scrape request");
    obs::RegistrySnapshot snap;
    HCUBE_ENSURE_MSG(read_frame(fd_, frame) == IoStatus::ok &&
                         decode_metrics(frame, snap),
                     "netd connection lost on scrape response");
    return snap;
}

OpResponseMsg NetClient::run(const svc::Signature& sig) {
    OpRequestMsg req;
    req.req_id = next_req_++;
    req.sig = sig;
    std::vector<std::uint8_t> frame;
    encode_op_request(frame, req);
    HCUBE_ENSURE_MSG(write_frame(fd_, frame) == IoStatus::ok,
                     "netd connection lost on request");
    OpResponseMsg resp;
    HCUBE_ENSURE_MSG(read_frame(fd_, frame) == IoStatus::ok &&
                         decode_op_response(frame, resp),
                     "netd connection lost on response");
    HCUBE_ENSURE_MSG(resp.req_id == req.req_id,
                     "netd response out of sequence");
    return resp;
}

} // namespace hcube::net
