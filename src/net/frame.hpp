// Length-prefixed framing over byte-stream sockets — the lowest layer of
// the net transport (docs/NETWORK.md § Framing).
//
// A frame is a u32 little-endian payload length followed by that many
// payload bytes. The reader and writer absorb the two realities of POSIX
// stream I/O that every protocol on top must never see: short reads/writes
// (loop until the count is satisfied) and EINTR (retry the call). EOF at a
// frame boundary reports `closed` (the peer finished cleanly); EOF inside
// a frame, or any other errno, reports `failed`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hcube::net {

enum class IoStatus : std::uint8_t {
    ok,
    closed, ///< clean EOF at a frame boundary
    failed, ///< errno-level failure or EOF mid-frame
};

[[nodiscard]] constexpr const char* to_string(IoStatus s) noexcept {
    switch (s) {
    case IoStatus::ok: return "ok";
    case IoStatus::closed: return "closed";
    case IoStatus::failed: return "failed";
    }
    return "?";
}

/// Hard upper bound on a frame payload (64 MiB): a corrupt or hostile
/// length prefix must not become an allocation bomb.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 26;

/// Writes exactly `len` bytes, looping over short writes and retrying
/// EINTR. Uses send(MSG_NOSIGNAL) on sockets so a vanished peer surfaces
/// as IoStatus::failed instead of SIGPIPE; falls back to write() for
/// non-socket fds (the unit tests drive pipes through the same path).
[[nodiscard]] IoStatus io_write_all(int fd, const void* data,
                                    std::size_t len) noexcept;

/// Reads exactly `len` bytes, looping over short reads and retrying
/// EINTR. `closed` only when EOF lands before the first byte.
[[nodiscard]] IoStatus io_read_exact(int fd, void* data,
                                     std::size_t len) noexcept;

/// Writes the u32 length prefix and the payload as one buffered write —
/// a frame is never interleaved with another writer's bytes as long as
/// callers serialize per fd (the reliability layer holds a per-link lock).
[[nodiscard]] IoStatus write_frame(int fd,
                                   std::span<const std::uint8_t> payload);

/// Reads one frame into `out` (resized to the payload length). Rejects
/// prefixes above `max_payload` as `failed` without reading the body.
[[nodiscard]] IoStatus read_frame(int fd, std::vector<std::uint8_t>& out,
                                  std::uint32_t max_payload = kMaxFramePayload);

} // namespace hcube::net
