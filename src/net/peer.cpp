#include "net/peer.hpp"

#include "common/check.hpp"
#include "common/endian.hpp"
#include "net/frame.hpp"
#include "rt/simd.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace hcube::net {

namespace {

using clock_t_ = std::chrono::steady_clock;

void tune_socket(int fd) noexcept {
    // TCP_NODELAY matters for the ack path (tiny frames must not wait out
    // Nagle); harmlessly refused on Unix-domain sockets.
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[nodiscard]] int remaining_ms(clock_t_::time_point deadline) noexcept {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - clock_t_::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

} // namespace

std::string Endpoint::to_string() const {
    if (kind == ft::TransportClass::uds) {
        return "uds:" + path;
    }
    return "tcp:" + host + ":" + std::to_string(port);
}

int listen_endpoint(const Endpoint& ep) {
    if (ep.kind == ft::TransportClass::uds) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        HCUBE_ENSURE_MSG(ep.path.size() < sizeof(addr.sun_path),
                         "unix socket path too long: " + ep.path);
        std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        HCUBE_ENSURE_MSG(fd >= 0, "socket(AF_UNIX) failed");
        ::unlink(ep.path.c_str()); // stale path from a dead prior run
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 64) != 0) {
            ::close(fd);
            HCUBE_ENSURE_MSG(false, "bind/listen failed on " + ep.to_string());
        }
        return fd;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    HCUBE_ENSURE_MSG(fd >= 0, "socket(AF_INET) failed");
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    if (!ep.host.empty() &&
        ::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        HCUBE_ENSURE_MSG(false, "bad listen address: " + ep.host);
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        ::close(fd);
        HCUBE_ENSURE_MSG(false, "bind/listen failed on " + ep.to_string());
    }
    return fd;
}

int accept_peer(int listen_fd, int timeout_ms) {
    pollfd pfd{listen_fd, POLLIN, 0};
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0 && errno == EINTR) {
            continue;
        }
        if (rc <= 0) {
            return -1;
        }
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0 && (errno == EINTR || errno == ECONNABORTED)) {
            continue;
        }
        if (fd >= 0) {
            tune_socket(fd);
        }
        return fd;
    }
}

int connect_endpoint(const Endpoint& ep, int timeout_ms) {
    const clock_t_::time_point deadline =
        clock_t_::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        int fd = -1;
        bool connected = false;
        if (ep.kind == ft::TransportClass::uds) {
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            HCUBE_ENSURE_MSG(ep.path.size() < sizeof(addr.sun_path),
                             "unix socket path too long: " + ep.path);
            std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            HCUBE_ENSURE_MSG(fd >= 0, "socket(AF_UNIX) failed");
            connected = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                                  sizeof(addr)) == 0;
        } else {
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_port = htons(ep.port);
            HCUBE_ENSURE_MSG(
                ::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) == 1,
                "bad connect address: " + ep.host);
            fd = ::socket(AF_INET, SOCK_STREAM, 0);
            HCUBE_ENSURE_MSG(fd >= 0, "socket(AF_INET) failed");
            connected = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                                  sizeof(addr)) == 0;
        }
        if (connected) {
            tune_socket(fd);
            return fd;
        }
        ::close(fd);
        // The peer's listener may simply not exist yet (launch stagger).
        HCUBE_ENSURE_MSG(clock_t_::now() < deadline,
                         "connect timeout to " + ep.to_string());
        ::poll(nullptr, 0, 2); // short sleep, EINTR-tolerant
    }
}

std::uint16_t local_port(int fd) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    HCUBE_ENSURE(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                               &len) == 0 &&
                 addr.sin_family == AF_INET);
    return ntohs(addr.sin_port);
}

// ---- PeerBus ----------------------------------------------------------

PeerBus::PeerBus(const rt::Plan& plan, std::uint32_t rank,
                 std::uint32_t procs, Params params)
    : plan_(plan), rank_(rank), procs_(procs), params_(std::move(params)),
      faults_(plan, params_.faults), links_(procs),
      recv_(plan.channel_count), recent_(params_.recent_capacity) {
    HCUBE_ENSURE(rank_ < procs_);
    HCUBE_ENSURE_MSG(::pipe(wake_pipe_) == 0, "pipe() failed");
}

PeerBus::~PeerBus() {
    stop();
    for (auto& link : links_) {
        if (link != nullptr) {
            ::close(link->fd());
        }
    }
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
}

void PeerBus::connect_mesh(int listen_fd,
                           const std::vector<Endpoint>& peers) {
    HCUBE_ENSURE(peers.size() == procs_);
    HCUBE_ENSURE_MSG(ingress_ != nullptr,
                     "set_ingress() before connect_mesh()");
    const clock_t_::time_point deadline =
        clock_t_::now() +
        std::chrono::milliseconds(params_.handshake_timeout_ms);
    std::vector<std::uint8_t> hello;
    encode_hello(hello, {rank_, params_.plan_fp});
    WireFaults* const faults = faults_.armed() ? &faults_ : nullptr;

    const auto adopt = [&](std::uint32_t peer, int fd) {
        HCUBE_ENSURE_MSG(links_[peer] == nullptr,
                         "duplicate mesh connection from rank " +
                             std::to_string(peer));
        links_[peer] = std::make_unique<ReliableLink>(fd, params_.reliable,
                                                      faults);
    };

    // Active side: connect to every lower rank, introduce ourselves, and
    // check the echoed identity + fingerprint.
    std::vector<std::uint8_t> buf;
    for (std::uint32_t q = 0; q < rank_; ++q) {
        const int fd = connect_endpoint(peers[q], remaining_ms(deadline));
        HCUBE_ENSURE_MSG(write_frame(fd, hello) == IoStatus::ok &&
                             read_frame(fd, buf) == IoStatus::ok,
                         "mesh handshake I/O failed with rank " +
                             std::to_string(q));
        HelloMsg peer_hello;
        HCUBE_ENSURE_MSG(decode_hello(buf, peer_hello) &&
                             peer_hello.rank == q &&
                             peer_hello.plan_fp == params_.plan_fp,
                         "mesh handshake mismatch with rank " +
                             std::to_string(q));
        adopt(q, fd);
    }
    // Passive side: accept every higher rank, identified by its HELLO.
    for (std::uint32_t remaining = procs_ - rank_ - 1; remaining > 0;
         --remaining) {
        const int fd = accept_peer(listen_fd, remaining_ms(deadline));
        HCUBE_ENSURE_MSG(fd >= 0, "mesh accept timeout at rank " +
                                      std::to_string(rank_));
        HelloMsg peer_hello;
        if (read_frame(fd, buf) != IoStatus::ok ||
            !decode_hello(buf, peer_hello) || peer_hello.rank <= rank_ ||
            peer_hello.rank >= procs_ ||
            peer_hello.plan_fp != params_.plan_fp) {
            ::close(fd);
            HCUBE_ENSURE_MSG(false, "mesh handshake mismatch on accept");
        }
        HCUBE_ENSURE_MSG(write_frame(fd, hello) == IoStatus::ok,
                         "mesh handshake echo failed");
        adopt(peer_hello.rank, fd);
    }
}

void PeerBus::start() {
    HCUBE_ENSURE(!running_.load());
    running_.store(true);
    io_ = std::thread([this] { io_loop(); });
}

void PeerBus::stop() {
    if (!running_.exchange(false)) {
        if (io_.joinable()) {
            io_.join();
        }
        return;
    }
    const std::uint8_t byte = 1;
    (void)!::write(wake_pipe_[1], &byte, 1);
    if (io_.joinable()) {
        io_.join();
    }
}

bool PeerBus::send_data(std::uint32_t dest, std::uint32_t channel,
                        std::uint32_t seq, std::uint32_t packet,
                        std::uint64_t checksum,
                        std::span<const double> block) {
    if (dest >= procs_ || links_[dest] == nullptr) {
        return false;
    }
    return links_[dest]->send_data(params_.plan_fp, channel, seq, packet,
                                   checksum, block);
}

void PeerBus::io_loop() {
    std::vector<pollfd> fds;
    std::vector<std::uint32_t> owner; // fds[i] belongs to links_[owner[i]]
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    owner.push_back(~std::uint32_t{0});
    for (std::uint32_t q = 0; q < procs_; ++q) {
        if (links_[q] != nullptr) {
            fds.push_back({links_[q]->fd(), POLLIN, 0});
            owner.push_back(q);
        }
    }
    std::vector<std::uint8_t> frame;
    while (running_.load(std::memory_order_acquire)) {
        const int rc = ::poll(fds.data(), fds.size(), 1);
        if (rc < 0 && errno != EINTR) {
            break;
        }
        if (fds[0].revents != 0) {
            std::uint8_t drain[16];
            (void)!::read(wake_pipe_[0], drain, sizeof(drain));
        }
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (fds[i].fd < 0 ||
                (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
                continue;
            }
            const std::uint32_t peer = owner[i];
            if (read_frame(fds[i].fd, frame) == IoStatus::ok) {
                handle_frame(peer, frame);
            } else {
                // A vanished peer mid-run is a link failure; drop the fd
                // from the poll set so it cannot spin.
                links_[peer]->fail();
                fds[i].fd = -1;
            }
        }
        const auto now = ReliableLink::clock::now();
        for (auto& link : links_) {
            if (link != nullptr) {
                link->tick(now);
            }
        }
        drain_overflow();
    }
}

void PeerBus::handle_frame(std::uint32_t peer,
                           std::span<const std::uint8_t> frame) {
    const std::optional<MsgType> type = frame_type(frame);
    if (!type.has_value()) {
        return;
    }
    ReliableLink& link = *links_[peer];
    if (*type == MsgType::ack) {
        AckMsg ack;
        if (decode_ack(frame, ack)) {
            link.on_ack(ack);
        }
        return;
    }
    if (*type != MsgType::data) {
        return; // unknown plane on a data link: ignore
    }
    DataView view;
    const std::size_t blk = plan_.block_elems;
    if (!decode_data(frame, view) || view.plan_fp != params_.plan_fp ||
        view.channel >= plan_.channel_count ||
        view.payload.size() != blk * sizeof(double)) {
        link.count_received(1, 0, 1, 0); // unusable frame; no ack
        return;
    }
    // Decode and re-digest the arrived bytes: the end-to-end check that
    // catches wire corruption before the frame can be acknowledged (a
    // corrupt frame is silently dropped so the sender's retry replaces it).
    Stashed s;
    s.packet = view.packet;
    s.block.resize(blk);
    ByteReader r(view.payload);
    r.blocks(s.block.data(), blk);
    s.checksum = rt::simd::checksum(s.block.data(), blk);
    if (s.checksum != view.checksum) {
        link.count_received(1, 0, 1, 0);
        return;
    }
    if (!recent_.insert(RecentSet::key(view.channel, view.seq))) {
        // Duplicate (injected, or a retransmit racing its own ack): the
        // first copy was delivered, so re-ack and suppress.
        link.count_received(1, 1, 0, 0);
        link.enqueue_ack(view.channel, view.seq);
        return;
    }
    link.enqueue_ack(view.channel, view.seq);
    RecvChan& rc = recv_[view.channel];
    if (view.seq == rc.next_seq) {
        link.count_received(1, 0, 0, 0);
        publish_or_queue(view.channel, std::move(s));
        ++rc.next_seq;
        // The gap may have closed for stashed successors.
        for (auto it = rc.stash.find(rc.next_seq); it != rc.stash.end();
             it = rc.stash.find(rc.next_seq)) {
            publish_or_queue(view.channel, std::move(it->second));
            rc.stash.erase(it);
            ++rc.next_seq;
        }
    } else if (view.seq > rc.next_seq) {
        link.count_received(1, 0, 0, 1);
        rc.stash.emplace(view.seq, std::move(s));
    } else {
        // Below next_seq but past the recent-set horizon: already
        // delivered long ago; the ack above is all the sender needs.
        link.count_received(1, 1, 0, 0);
    }
}

void PeerBus::publish_or_queue(std::uint32_t channel, Stashed&& s) {
    RecvChan& rc = recv_[channel];
    if (rc.overflow.empty() &&
        ingress_(channel, s.packet, s.block, s.checksum)) {
        return;
    }
    // Ring momentarily full (or earlier blocks already queued): preserve
    // order and retry on the next io tick.
    rc.overflow.push_back(std::move(s));
}

void PeerBus::drain_overflow() {
    for (std::uint32_t c = 0; c < recv_.size(); ++c) {
        RecvChan& rc = recv_[c];
        while (!rc.overflow.empty()) {
            Stashed& s = rc.overflow.front();
            if (!ingress_(c, s.packet, s.block, s.checksum)) {
                break;
            }
            rc.overflow.pop_front();
        }
    }
}

bool PeerBus::flush(std::chrono::milliseconds timeout) {
    const clock_t_::time_point deadline = clock_t_::now() + timeout;
    for (;;) {
        bool drained = true;
        bool dead = false;
        for (auto& link : links_) {
            if (link == nullptr) {
                continue;
            }
            if (link->failed()) {
                dead = true;
            } else if (!link->drained()) {
                drained = false;
            }
        }
        if (drained || dead) {
            return drained && !dead;
        }
        if (clock_t_::now() >= deadline) {
            for (auto& link : links_) {
                if (link != nullptr && !link->failed() && !link->drained()) {
                    link->count_flush_timeout();
                }
            }
            return false;
        }
        ::poll(nullptr, 0, 1);
    }
}

bool PeerBus::healthy() const {
    for (const auto& link : links_) {
        if (link != nullptr && link->failed()) {
            return false;
        }
    }
    return true;
}

WireCounters PeerBus::counters() const {
    WireCounters total;
    for (const auto& link : links_) {
        if (link != nullptr) {
            total += link->counters();
        }
    }
    return total;
}

} // namespace hcube::net
