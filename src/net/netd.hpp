// net::Netd — svc::Service over the wire (docs/NETWORK.md § Service).
//
// A daemon owns one svc::Service and serves it on a listening endpoint
// (Unix-domain or TCP) with the same length-prefixed framing the data
// plane uses: clients send OP_REQUEST{req_id, Signature} frames and get
// back OP_RESPONSE{req_id, status, ExecStats summary}. One serve thread
// per accepted connection; requests on a connection execute in order
// through Service::run (the service's own admission/batching machinery is
// what provides concurrency across connections). A frame that fails to
// decode gets a status=failed response — a daemon never tears down
// because one client spoke garbage.
//
// NetClient is the matching blocking client: connect once, run() many.
#pragma once

#include "net/peer.hpp"
#include "net/protocol.hpp"
#include "svc/service.hpp"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hcube::net {

using hc::dim_t;

struct NetdParams {
    svc::ServiceParams service;
    /// Serving endpoint; its kind is the TransportClass every response
    /// reports (uds or tcp).
    Endpoint endpoint = Endpoint::unix_path("/tmp/hcube-netd.sock");
};

class Netd {
public:
    /// Binds and starts serving immediately. Throws check_error when the
    /// endpoint cannot be bound.
    Netd(dim_t n, NetdParams params);
    /// Stops accepting, closes every client connection, joins the serve
    /// threads, then drains the service.
    ~Netd();

    Netd(const Netd&) = delete;
    Netd& operator=(const Netd&) = delete;

    /// The bound endpoint — with the real port for tcp port-0 binds.
    [[nodiscard]] const Endpoint& endpoint() const noexcept {
        return endpoint_;
    }
    [[nodiscard]] svc::Service& service() noexcept { return service_; }
    /// OP_REQUEST frames answered so far (any status).
    [[nodiscard]] std::uint64_t served() const noexcept {
        return served_.load(std::memory_order_relaxed);
    }

private:
    void accept_loop();
    void serve(int fd);

    svc::Service service_;
    Endpoint endpoint_;
    ft::TransportClass transport_;
    int listen_fd_ = -1;
    std::atomic<bool> running_{true};
    std::atomic<std::uint64_t> served_{0};
    std::mutex m_; ///< guards clients_ / threads_
    std::vector<int> clients_;
    std::vector<std::thread> threads_;
    std::thread acceptor_;
};

/// Blocking client of a Netd endpoint.
class NetClient {
public:
    /// Connects (retrying until `timeout_ms`); throws check_error on
    /// failure.
    explicit NetClient(const Endpoint& endpoint, int timeout_ms = 5'000);
    ~NetClient();

    NetClient(const NetClient&) = delete;
    NetClient& operator=(const NetClient&) = delete;

    /// One round trip: OP_REQUEST out, OP_RESPONSE back. Throws
    /// check_error when the connection breaks mid-exchange.
    [[nodiscard]] OpResponseMsg run(const svc::Signature& sig);

    /// Scrapes the daemon's live metrics registry: bare METRICS out,
    /// snapshot back. Throws check_error when the connection breaks.
    [[nodiscard]] obs::RegistrySnapshot scrape();

private:
    int fd_ = -1;
    std::uint32_t next_req_ = 1;
};

} // namespace hcube::net
