#include "net/frame.hpp"

#include "common/endian.hpp"
#include "obs/metrics.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace hcube::net {

namespace {

/// One write attempt: MSG_NOSIGNAL send() for sockets, plain write() for
/// anything else (pipes in the unit tests). ENOTSOCK is how we find out.
ssize_t write_some(int fd, const std::uint8_t* p, std::size_t len) noexcept {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
        return ::write(fd, p, len);
    }
    return n;
}

} // namespace

IoStatus io_write_all(int fd, const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = write_some(fd, p + done, len - done);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return IoStatus::failed;
        }
        done += static_cast<std::size_t>(n);
    }
    return IoStatus::ok;
}

IoStatus io_read_exact(int fd, void* data, std::size_t len) noexcept {
    auto* p = static_cast<std::uint8_t*>(data);
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::read(fd, p + done, len - done);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return IoStatus::failed;
        }
        if (n == 0) {
            // EOF: clean only when nothing of this read was consumed yet.
            return done == 0 ? IoStatus::closed : IoStatus::failed;
        }
        done += static_cast<std::size_t>(n);
    }
    return IoStatus::ok;
}

IoStatus write_frame(int fd, std::span<const std::uint8_t> payload) {
    if (payload.size() > kMaxFramePayload) {
        return IoStatus::failed;
    }
    // One contiguous buffer: prefix + payload leave in a single stream
    // position, so per-fd serialization is the only interleaving concern.
    std::vector<std::uint8_t> buf(sizeof(std::uint32_t) + payload.size());
    store_le32(buf.data(), static_cast<std::uint32_t>(payload.size()));
    if (!payload.empty()) {
        std::memcpy(buf.data() + sizeof(std::uint32_t), payload.data(),
                    payload.size());
    }
    static obs::Counter& m_out =
        obs::registry().counter("net.frame_bytes_out");
    const IoStatus status = io_write_all(fd, buf.data(), buf.size());
    if (status == IoStatus::ok) {
        m_out.inc(buf.size());
    }
    return status;
}

IoStatus read_frame(int fd, std::vector<std::uint8_t>& out,
                    std::uint32_t max_payload) {
    std::uint8_t prefix[sizeof(std::uint32_t)];
    const IoStatus head = io_read_exact(fd, prefix, sizeof(prefix));
    if (head != IoStatus::ok) {
        return head;
    }
    const std::uint32_t len = load_le32(prefix);
    if (len > max_payload) {
        return IoStatus::failed;
    }
    static obs::Counter& m_in =
        obs::registry().counter("net.frame_bytes_in");
    out.resize(len);
    if (len == 0) {
        m_in.inc(sizeof(prefix));
        return IoStatus::ok;
    }
    const IoStatus body = io_read_exact(fd, out.data(), len);
    if (body == IoStatus::ok) {
        m_in.inc(sizeof(prefix) + len);
    }
    // EOF between prefix and body is always a torn frame.
    return body == IoStatus::ok ? IoStatus::ok : IoStatus::failed;
}

} // namespace hcube::net
