#include "net/protocol.hpp"

#include <algorithm>

namespace hcube::net {

namespace {

/// Strips and checks the leading type byte; latches the reader on
/// mismatch so the caller's final ok()/done() check fails.
[[nodiscard]] bool expect_type(ByteReader& r, MsgType want) noexcept {
    return r.u8() == static_cast<std::uint8_t>(want) && r.ok();
}

} // namespace

std::optional<MsgType>
frame_type(std::span<const std::uint8_t> payload) noexcept {
    if (payload.empty()) {
        return std::nullopt;
    }
    const std::uint8_t b = payload[0];
    if (b < static_cast<std::uint8_t>(MsgType::hello) ||
        b > static_cast<std::uint8_t>(MsgType::metrics)) {
        return std::nullopt;
    }
    return static_cast<MsgType>(b);
}

// ---- data plane -------------------------------------------------------

void encode_data(std::vector<std::uint8_t>& out, std::uint64_t plan_fp,
                 std::uint32_t channel, std::uint32_t seq,
                 std::uint32_t packet, std::uint64_t checksum,
                 std::span<const double> block) {
    out.clear();
    out.reserve(1 + 8 + 4 + 4 + 4 + 8 + block.size() * sizeof(double));
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::data));
    w.u64(plan_fp);
    w.u32(channel);
    w.u32(seq);
    w.u32(packet);
    w.u64(checksum);
    w.blocks(block);
}

bool decode_data(std::span<const std::uint8_t> frame,
                 DataView& view) noexcept {
    ByteReader r(frame);
    if (!expect_type(r, MsgType::data)) {
        return false;
    }
    view.plan_fp = r.u64();
    view.channel = r.u32();
    view.seq = r.u32();
    view.packet = r.u32();
    view.checksum = r.u64();
    const std::size_t rest = r.remaining();
    if (rest % sizeof(double) != 0) {
        return false;
    }
    view.payload = r.bytes(rest);
    return r.done();
}

void encode_ack(std::vector<std::uint8_t>& out, const AckMsg& msg) {
    out.clear();
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::ack));
    w.u32(msg.channel);
    w.u32(msg.seq);
}

bool decode_ack(std::span<const std::uint8_t> frame, AckMsg& msg) noexcept {
    ByteReader r(frame);
    if (!expect_type(r, MsgType::ack)) {
        return false;
    }
    msg.channel = r.u32();
    msg.seq = r.u32();
    return r.done();
}

// ---- control plane ----------------------------------------------------

void encode_hello(std::vector<std::uint8_t>& out, const HelloMsg& msg) {
    out.clear();
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::hello));
    w.u32(kMagic);
    w.u16(kVersion);
    w.u32(msg.rank);
    w.u64(msg.plan_fp);
}

bool decode_hello(std::span<const std::uint8_t> frame,
                  HelloMsg& msg) noexcept {
    ByteReader r(frame);
    if (!expect_type(r, MsgType::hello)) {
        return false;
    }
    if (r.u32() != kMagic || r.u16() != kVersion) {
        return false;
    }
    msg.rank = r.u32();
    msg.plan_fp = r.u64();
    return r.done();
}

void encode_bare(std::vector<std::uint8_t>& out, MsgType type) {
    out.clear();
    out.push_back(static_cast<std::uint8_t>(type));
}

void encode_dump(std::vector<std::uint8_t>& out, std::uint64_t slot,
                 std::span<const double> block) {
    out.clear();
    out.reserve(1 + 8 + block.size() * sizeof(double));
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::dump));
    w.u64(slot);
    w.blocks(block);
}

bool decode_dump(std::span<const std::uint8_t> frame,
                 DumpView& view) noexcept {
    ByteReader r(frame);
    if (!expect_type(r, MsgType::dump)) {
        return false;
    }
    view.slot = r.u64();
    const std::size_t rest = r.remaining();
    if (rest % sizeof(double) != 0) {
        return false;
    }
    view.payload = r.bytes(rest);
    return r.done();
}

WireCounters& WireCounters::operator+=(const WireCounters& o) noexcept {
    data_sent += o.data_sent;
    data_received += o.data_received;
    acks_sent += o.acks_sent;
    acks_received += o.acks_received;
    retransmits += o.retransmits;
    dup_suppressed += o.dup_suppressed;
    corrupt_dropped += o.corrupt_dropped;
    stashed += o.stashed;
    injected_drop += o.injected_drop;
    injected_corrupt += o.injected_corrupt;
    injected_dup += o.injected_dup;
    link_failures += o.link_failures;
    flush_timeouts += o.flush_timeouts;
    return *this;
}

void encode_report(std::vector<std::uint8_t>& out, const ReportMsg& msg) {
    out.clear();
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::report));
    w.u32(msg.rank);
    // PlayStats (steals omitted: the per-process engine never steals).
    w.u32(msg.play.cycles);
    w.u64(msg.play.blocks_sent);
    w.u64(msg.play.blocks_delivered);
    w.u64(msg.play.payload_bytes);
    w.u64(msg.play.bytes_copied);
    w.u64(msg.play.checksum_failures);
    w.u64(msg.play.channel_faults);
    w.u64(msg.play.timeouts);
    w.f64(msg.play.seconds);
    w.u8(static_cast<std::uint8_t>(msg.play.mode));
    w.u8(static_cast<std::uint8_t>(msg.play.transport));
    // WireCounters.
    w.u64(msg.wire.data_sent);
    w.u64(msg.wire.data_received);
    w.u64(msg.wire.acks_sent);
    w.u64(msg.wire.acks_received);
    w.u64(msg.wire.retransmits);
    w.u64(msg.wire.dup_suppressed);
    w.u64(msg.wire.corrupt_dropped);
    w.u64(msg.wire.stashed);
    w.u64(msg.wire.injected_drop);
    w.u64(msg.wire.injected_corrupt);
    w.u64(msg.wire.injected_dup);
    w.u64(msg.wire.link_failures);
    w.u64(msg.wire.flush_timeouts);
    // First detected fault.
    w.u8(static_cast<std::uint8_t>(msg.fault.cls));
    w.u32(msg.fault.from);
    w.u32(msg.fault.to);
    w.u32(msg.fault.channel);
    w.u32(msg.fault.cycle);
    w.u32(msg.fault.packet);
}

bool decode_report(std::span<const std::uint8_t> frame,
                   ReportMsg& msg) noexcept {
    ByteReader r(frame);
    if (!expect_type(r, MsgType::report)) {
        return false;
    }
    msg.rank = r.u32();
    msg.play.cycles = r.u32();
    msg.play.blocks_sent = r.u64();
    msg.play.blocks_delivered = r.u64();
    msg.play.payload_bytes = r.u64();
    msg.play.bytes_copied = r.u64();
    msg.play.checksum_failures = r.u64();
    msg.play.channel_faults = r.u64();
    msg.play.timeouts = r.u64();
    msg.play.seconds = r.f64();
    const std::uint8_t mode = r.u8();
    const std::uint8_t transport = r.u8();
    msg.wire.data_sent = r.u64();
    msg.wire.data_received = r.u64();
    msg.wire.acks_sent = r.u64();
    msg.wire.acks_received = r.u64();
    msg.wire.retransmits = r.u64();
    msg.wire.dup_suppressed = r.u64();
    msg.wire.corrupt_dropped = r.u64();
    msg.wire.stashed = r.u64();
    msg.wire.injected_drop = r.u64();
    msg.wire.injected_corrupt = r.u64();
    msg.wire.injected_dup = r.u64();
    msg.wire.link_failures = r.u64();
    msg.wire.flush_timeouts = r.u64();
    const std::uint8_t cls = r.u8();
    msg.fault.from = r.u32();
    msg.fault.to = r.u32();
    msg.fault.channel = r.u32();
    msg.fault.cycle = r.u32();
    msg.fault.packet = r.u32();
    if (!r.done() ||
        mode > static_cast<std::uint8_t>(rt::ExecMode::stealing) ||
        transport > static_cast<std::uint8_t>(ft::TransportClass::tcp) ||
        cls > static_cast<std::uint8_t>(ft::DetectClass::stream_mismatch)) {
        return false;
    }
    msg.play.mode = static_cast<rt::ExecMode>(mode);
    msg.play.transport = static_cast<ft::TransportClass>(transport);
    msg.fault.cls = static_cast<ft::DetectClass>(cls);
    return true;
}

// ---- service plane ----------------------------------------------------

void encode_op_request(std::vector<std::uint8_t>& out,
                       const OpRequestMsg& msg) {
    out.clear();
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::op_request));
    w.u32(msg.req_id);
    w.u8(static_cast<std::uint8_t>(msg.sig.op));
    w.u8(static_cast<std::uint8_t>(msg.sig.family));
    w.u8(static_cast<std::uint8_t>(msg.sig.n));
    w.u32(msg.sig.root);
    w.u32(msg.sig.packets);
    w.u32(msg.sig.block_elems);
    w.u8(static_cast<std::uint8_t>(msg.sig.model));
}

bool decode_op_request(std::span<const std::uint8_t> frame,
                       OpRequestMsg& msg) noexcept {
    ByteReader r(frame);
    if (!expect_type(r, MsgType::op_request)) {
        return false;
    }
    msg.req_id = r.u32();
    const std::uint8_t op = r.u8();
    const std::uint8_t family = r.u8();
    msg.sig.n = r.u8();
    msg.sig.root = r.u32();
    msg.sig.packets = r.u32();
    msg.sig.block_elems = r.u32();
    const std::uint8_t model = r.u8();
    if (!r.done() || op > static_cast<std::uint8_t>(svc::Op::alltoall) ||
        family > static_cast<std::uint8_t>(svc::Family::bst) ||
        model > static_cast<std::uint8_t>(sim::PortModel::all_port)) {
        return false;
    }
    msg.sig.op = static_cast<svc::Op>(op);
    msg.sig.family = static_cast<svc::Family>(family);
    msg.sig.model = static_cast<sim::PortModel>(model);
    return true;
}

void encode_op_response(std::vector<std::uint8_t>& out,
                        const OpResponseMsg& msg) {
    out.clear();
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::op_response));
    w.u32(msg.req_id);
    w.u8(msg.status);
    w.u8(msg.verified ? 1 : 0);
    w.u8(msg.oracle_checked ? 1 : 0);
    w.u8(msg.cache_hit ? 1 : 0);
    w.u8(msg.batched ? 1 : 0);
    w.u32(msg.rt_cycles);
    w.u32(msg.sim_makespan);
    w.u64(msg.blocks_delivered);
    w.u64(msg.payload_bytes);
    w.f64(msg.seconds);
    w.u8(msg.transport);
    w.str(msg.error);
}

bool decode_op_response(std::span<const std::uint8_t> frame,
                        OpResponseMsg& msg) noexcept {
    ByteReader r(frame);
    if (!expect_type(r, MsgType::op_response)) {
        return false;
    }
    msg.req_id = r.u32();
    msg.status = r.u8();
    msg.verified = r.u8() != 0;
    msg.oracle_checked = r.u8() != 0;
    msg.cache_hit = r.u8() != 0;
    msg.batched = r.u8() != 0;
    msg.rt_cycles = r.u32();
    msg.sim_makespan = r.u32();
    msg.blocks_delivered = r.u64();
    msg.payload_bytes = r.u64();
    msg.seconds = r.f64();
    msg.transport = r.u8();
    msg.error = r.str();
    return r.done();
}

// ---- telemetry plane --------------------------------------------------

namespace {

/// Sanity bounds a decoder enforces on a peer's snapshot: far above any
/// real registry, far below anything that could balloon memory.
constexpr std::uint32_t kMaxWireMetrics = 65536;
constexpr std::uint32_t kMaxWireBuckets = 4096;

} // namespace

void encode_metrics(std::vector<std::uint8_t>& out,
                    const obs::RegistrySnapshot& snap) {
    out.clear();
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::metrics));
    w.u32(static_cast<std::uint32_t>(snap.metrics.size()));
    for (const obs::MetricSnapshot& m : snap.metrics) {
        w.str(m.name);
        w.u8(static_cast<std::uint8_t>(m.kind));
        switch (m.kind) {
        case obs::Kind::counter: w.u64(m.counter_value); break;
        case obs::Kind::gauge:
            w.u64(static_cast<std::uint64_t>(m.gauge_value));
            break;
        case obs::Kind::histogram: {
            w.u64(m.hist.count);
            w.u64(m.hist.sum);
            w.u64(m.hist.max);
            std::uint32_t nonzero = 0;
            for (const std::uint64_t c : m.hist.counts) {
                if (c != 0) {
                    ++nonzero;
                }
            }
            w.u32(nonzero);
            for (std::uint32_t b = 0; b < m.hist.counts.size(); ++b) {
                if (m.hist.counts[b] != 0) {
                    w.u32(b);
                    w.u64(m.hist.counts[b]);
                }
            }
            break;
        }
        }
    }
}

bool decode_metrics(std::span<const std::uint8_t> frame,
                    obs::RegistrySnapshot& snap) {
    ByteReader r(frame);
    if (!expect_type(r, MsgType::metrics)) {
        return false;
    }
    const std::uint32_t count = r.u32();
    if (!r.ok() || count > kMaxWireMetrics) {
        return false;
    }
    snap.metrics.clear();
    snap.metrics.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        obs::MetricSnapshot m;
        m.name = r.str();
        const std::uint8_t kind = r.u8();
        if (!r.ok() ||
            kind > static_cast<std::uint8_t>(obs::Kind::histogram)) {
            return false;
        }
        m.kind = static_cast<obs::Kind>(kind);
        switch (m.kind) {
        case obs::Kind::counter: m.counter_value = r.u64(); break;
        case obs::Kind::gauge:
            m.gauge_value = static_cast<std::int64_t>(r.u64());
            break;
        case obs::Kind::histogram: {
            m.hist.count = r.u64();
            m.hist.sum = r.u64();
            m.hist.max = r.u64();
            const std::uint32_t pairs = r.u32();
            if (!r.ok() || pairs > kMaxWireBuckets) {
                return false;
            }
            for (std::uint32_t p = 0; p < pairs; ++p) {
                const std::uint32_t bucket = r.u32();
                const std::uint64_t c = r.u64();
                if (!r.ok() || bucket >= obs::Histogram::kBuckets) {
                    return false;
                }
                if (m.hist.counts.size() <= bucket) {
                    m.hist.counts.resize(bucket + 1, 0);
                }
                m.hist.counts[bucket] = c;
            }
            break;
        }
        }
        snap.metrics.push_back(std::move(m));
    }
    if (!r.done()) {
        return false;
    }
    // merge()/find() assume name order; don't trust the peer to have
    // sorted.
    std::sort(snap.metrics.begin(), snap.metrics.end(),
              [](const obs::MetricSnapshot& a,
                 const obs::MetricSnapshot& b) { return a.name < b.name; });
    return true;
}

} // namespace hcube::net
