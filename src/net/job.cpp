#include "net/job.hpp"

#include "common/check.hpp"
#include "common/endian.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace hcube::net {

namespace {

struct CompiledJob {
    svc::GeneratedSchedule gen;
    rt::Plan plan;
    std::uint64_t fp = 0;
};

CompiledJob compile(const JobSpec& spec) {
    HCUBE_ENSURE_MSG(spec.procs >= 1 &&
                         spec.procs <= (std::uint32_t{1} << spec.sig.n),
                     "procs must be in [1, 2^n]");
    CompiledJob job;
    job.gen = svc::make_schedule(spec.sig);
    job.plan = rt::compile_plan(job.gen.exec, job.gen.mode,
                                spec.sig.block_elems, spec.procs);
    job.fp = rt::schedule_fingerprint(job.gen.exec);
    return job;
}

Endpoint control_endpoint(const JobSpec& spec) {
    return Endpoint::unix_path(spec.dir + "/ctl.sock");
}

Endpoint data_endpoint(const JobSpec& spec, std::uint32_t rank,
                       std::uint16_t port) {
    if (spec.transport == ft::TransportClass::uds) {
        return Endpoint::unix_path(spec.dir + "/peer" +
                                   std::to_string(rank) + ".sock");
    }
    return Endpoint::tcp("127.0.0.1", port);
}

void set_recv_timeout(int fd, int ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<decltype(tv.tv_usec)>((ms % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// The rank-side protocol, shared by fork and exec spawning. Returns the
/// child's exit code; never throws (the caller _exit()s with the code).
int child_main(const JobSpec& spec, std::uint32_t rank,
               const CompiledJob& job, int listen_fd,
               const std::vector<Endpoint>& endpoints) noexcept {
    try {
        // Fork-mode children inherit whatever the parent recorded before
        // launch; baseline it away so the METRICS frame carries only this
        // rank's own activity.
        const obs::RegistrySnapshot obs_base = obs::registry().snapshot();
        const ft::DetectConfig detect = effective_detect(spec);
        PeerBus::Params bus_params;
        bus_params.reliable = spec.reliable;
        bus_params.faults = spec.faults;
        bus_params.plan_fp = job.fp;
        PeerBus bus(job.plan, rank, spec.procs, bus_params);
        SocketChannelBank bank(job.plan, rank, bus);
        bus.set_ingress([&bank](std::uint32_t c, std::uint32_t p,
                                std::span<const double> b, std::uint64_t ck) {
            return bank.push_received(c, p, b, ck);
        });
        bus.connect_mesh(listen_fd, endpoints);
        ::close(listen_fd);

        // Mesh is up: report in and wait for the race-free start signal.
        const int ctl = connect_endpoint(control_endpoint(spec), 10'000);
        set_recv_timeout(ctl, 60'000);
        std::vector<std::uint8_t> frame;
        encode_hello(frame, {rank, job.fp});
        if (write_frame(ctl, frame) != IoStatus::ok) {
            ::close(ctl);
            return 3;
        }
        if (read_frame(ctl, frame) != IoStatus::ok ||
            frame_type(frame) != MsgType::go) {
            ::close(ctl);
            return 3;
        }

        bus.start();
        NetPlayer player(job.plan, rank, bank, detect, spec.transport);
        const NetPlayStats st = player.play();

        // Drain before reporting: a peer may still need our retransmits
        // acked away. Sized to outlast the full retry ladder.
        const auto flush_budget = std::chrono::milliseconds(
            2'000 + 2 * (detect.arrival_timeout_us / 1'000));
        (void)bus.flush(flush_budget);

        ReportMsg report;
        report.rank = rank;
        report.play = st.play;
        report.wire = bus.counters();
        report.fault = st.fault;
        encode_report(frame, report);
        bool ctl_ok = write_frame(ctl, frame) == IoStatus::ok;

        // Dump every owned slot's final bytes (copy-through: every owned
        // slot has a materialized block).
        for (std::uint64_t s = 0; ctl_ok && s < job.plan.total_slots; ++s) {
            const node_t node = job.plan.slot_node[s];
            if (!player.owns(node)) {
                continue;
            }
            const std::span<const double> block =
                player.block(node, job.plan.slot_packet[s]);
            if (block.empty()) {
                continue;
            }
            encode_dump(frame, s, block);
            ctl_ok = write_frame(ctl, frame) == IoStatus::ok;
        }
        if (ctl_ok) {
            obs::RegistrySnapshot delta = obs::registry().snapshot();
            delta.subtract(obs_base);
            encode_metrics(frame, delta);
            ctl_ok = write_frame(ctl, frame) == IoStatus::ok;
        }
        encode_bare(frame, MsgType::fin);
        ctl_ok = ctl_ok && write_frame(ctl, frame) == IoStatus::ok;

        // Keep the io thread alive until every rank has finished: the BYE
        // only arrives after the last FIN, so nobody's retransmit or
        // re-ack partner disappears early.
        int code = ctl_ok ? 0 : 3;
        if (ctl_ok && (read_frame(ctl, frame) != IoStatus::ok ||
                       frame_type(frame) != MsgType::bye)) {
            code = 3;
        }
        bus.stop();
        ::close(ctl);
        return code;
    } catch (...) {
        return 1;
    }
}

void append_error(std::string& error, const std::string& msg) {
    if (error.empty()) {
        error = msg;
    }
}

} // namespace

ft::DetectConfig effective_detect(const JobSpec& spec) {
    if (spec.arrival_timeout_us != 0) {
        return {.arrival_timeout_us = spec.arrival_timeout_us,
                .abort_on_fault = true};
    }
    return ft::DetectConfig::for_transport(spec.transport);
}

std::span<const double> JobResult::block(const rt::Plan& plan, node_t node,
                                         packet_t packet) const {
    const std::uint64_t slot = plan.slot_of(node, packet);
    if (slot == rt::Plan::kNoSlot || slot >= total_slots ||
        have[static_cast<std::size_t>(slot)] == 0) {
        return {};
    }
    return {memory.data() + static_cast<std::size_t>(slot) * block_elems,
            block_elems};
}

int run_child(const JobSpec& spec, std::uint32_t rank) {
    HCUBE_ENSURE_MSG(!spec.dir.empty(), "run_child requires spec.dir");
    HCUBE_ENSURE_MSG(spec.transport == ft::TransportClass::uds ||
                         spec.base_port != 0,
                     "exec mode over tcp requires an explicit base_port");
    HCUBE_ENSURE(rank < spec.procs);
    const CompiledJob job = compile(spec);
    std::vector<Endpoint> endpoints;
    endpoints.reserve(spec.procs);
    for (std::uint32_t r = 0; r < spec.procs; ++r) {
        endpoints.push_back(data_endpoint(
            spec, r, static_cast<std::uint16_t>(spec.base_port + r)));
    }
    const int listen_fd = listen_endpoint(endpoints[rank]);
    return child_main(spec, rank, job, listen_fd, endpoints);
}

JobResult run_job(const JobSpec& spec_in) {
    JobSpec spec = spec_in;
    const CompiledJob job = compile(spec);
    const bool fork_mode = spec.exec_argv.empty();

    // Socket directory: caller-provided or a private mkdtemp.
    bool own_dir = false;
    if (spec.dir.empty()) {
        const char* base = std::getenv("TMPDIR");
        std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                           "/hcnet.XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        HCUBE_ENSURE_MSG(::mkdtemp(buf.data()) != nullptr,
                         "mkdtemp failed for the socket directory");
        spec.dir = buf.data();
        own_dir = true;
    }
    HCUBE_ENSURE_MSG(fork_mode || spec.transport == ft::TransportClass::uds ||
                         spec.base_port != 0,
                     "exec mode over tcp requires an explicit base_port");

    const Endpoint control_ep = control_endpoint(spec);
    const int control_lfd = listen_endpoint(control_ep);

    // Data listeners. Fork mode pre-binds every rank's listener here —
    // children inherit the fds (no bind race, and TCP port 0 resolves to
    // real ephemeral ports before anyone needs to connect).
    std::vector<int> data_lfd(spec.procs, -1);
    std::vector<Endpoint> endpoints(spec.procs);
    for (std::uint32_t r = 0; r < spec.procs; ++r) {
        endpoints[r] = data_endpoint(
            spec, r, static_cast<std::uint16_t>(spec.base_port + r));
        if (fork_mode) {
            data_lfd[r] = listen_endpoint(endpoints[r]);
            if (spec.transport == ft::TransportClass::tcp &&
                spec.base_port == 0) {
                endpoints[r].port = local_port(data_lfd[r]);
            }
        }
    }

    // Spawn.
    std::fflush(nullptr); // no buffered stdio duplicated into children
    std::vector<pid_t> pids(spec.procs, -1);
    for (std::uint32_t r = 0; r < spec.procs; ++r) {
        const pid_t pid = ::fork();
        HCUBE_ENSURE_MSG(pid >= 0, "fork failed");
        if (pid != 0) {
            pids[r] = pid;
            continue;
        }
        // ---- child ----
        ::close(control_lfd);
        if (fork_mode) {
            for (std::uint32_t q = 0; q < spec.procs; ++q) {
                if (q != r && data_lfd[q] >= 0) {
                    ::close(data_lfd[q]);
                }
            }
            ::_exit(child_main(spec, r, job, data_lfd[r], endpoints));
        }
        std::vector<std::string> argv_s = spec.exec_argv;
        argv_s.emplace_back("--net-rank");
        argv_s.push_back(std::to_string(r));
        std::vector<char*> argv;
        argv.reserve(argv_s.size() + 1);
        for (std::string& a : argv_s) {
            argv.push_back(a.data());
        }
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        ::_exit(127); // exec failed
    }
    for (std::uint32_t r = 0; r < spec.procs; ++r) {
        if (data_lfd[r] >= 0) {
            ::close(data_lfd[r]);
        }
    }

    JobResult res;
    res.total_slots = job.plan.total_slots;
    res.block_elems = job.plan.block_elems;
    res.memory.assign(static_cast<std::size_t>(res.total_slots) *
                          res.block_elems,
                      0.0);
    res.have.assign(static_cast<std::size_t>(res.total_slots), 0);
    res.ranks.resize(spec.procs);
    for (std::uint32_t r = 0; r < spec.procs; ++r) {
        res.ranks[r].rank = r;
    }

    // Admit every rank: HELLO identifies it and cross-checks the plan.
    std::vector<int> ctl(spec.procs, -1);
    bool protocol_ok = true;
    std::vector<std::uint8_t> frame;
    for (std::uint32_t i = 0; i < spec.procs && protocol_ok; ++i) {
        const int fd = accept_peer(control_lfd, 30'000);
        if (fd < 0) {
            append_error(res.error, "control accept timeout");
            protocol_ok = false;
            break;
        }
        set_recv_timeout(fd, 30'000);
        HelloMsg hello;
        if (read_frame(fd, frame) != IoStatus::ok ||
            !decode_hello(frame, hello) || hello.rank >= spec.procs ||
            ctl[hello.rank] >= 0) {
            ::close(fd);
            append_error(res.error, "bad control HELLO");
            protocol_ok = false;
            break;
        }
        if (hello.plan_fp != job.fp) {
            ::close(fd);
            append_error(res.error,
                         "plan fingerprint mismatch at rank " +
                             std::to_string(hello.rank));
            protocol_ok = false;
            break;
        }
        ctl[hello.rank] = fd;
    }

    // GO — every mesh is up, so play() starts race-free everywhere.
    if (protocol_ok) {
        encode_bare(frame, MsgType::go);
        for (std::uint32_t r = 0; r < spec.procs && protocol_ok; ++r) {
            if (write_frame(ctl[r], frame) != IoStatus::ok) {
                append_error(res.error, "GO lost to rank " +
                                            std::to_string(r));
                protocol_ok = false;
            }
        }
    }

    // Collect REPORT + DUMPs + FIN per rank.
    if (protocol_ok) {
        for (std::uint32_t r = 0; r < spec.procs; ++r) {
            set_recv_timeout(ctl[r], 120'000);
            bool fin = false;
            while (!fin) {
                if (read_frame(ctl[r], frame) != IoStatus::ok) {
                    append_error(res.error, "control stream lost to rank " +
                                                std::to_string(r));
                    protocol_ok = false;
                    break;
                }
                const std::optional<MsgType> type = frame_type(frame);
                if (type == MsgType::fin) {
                    fin = true;
                } else if (type == MsgType::report) {
                    ReportMsg msg;
                    if (decode_report(frame, msg) && msg.rank == r) {
                        res.ranks[r].play = msg.play;
                        res.ranks[r].wire = msg.wire;
                        res.ranks[r].fault = msg.fault;
                        res.ranks[r].reported = true;
                    }
                } else if (type == MsgType::metrics) {
                    obs::RegistrySnapshot snap;
                    if (decode_metrics(frame, snap)) {
                        res.ranks[r].metrics = std::move(snap);
                    }
                } else if (type == MsgType::dump) {
                    DumpView dump;
                    if (decode_dump(frame, dump) &&
                        dump.slot < res.total_slots &&
                        dump.payload.size() ==
                            res.block_elems * sizeof(double)) {
                        ByteReader rd(dump.payload);
                        rd.blocks(res.memory.data() +
                                      static_cast<std::size_t>(dump.slot) *
                                          res.block_elems,
                                  res.block_elems);
                        res.have[static_cast<std::size_t>(dump.slot)] = 1;
                    }
                }
            }
        }
    }

    // BYE releases every rank's io thread (all FINs are in: nobody still
    // needs a peer's retransmits).
    encode_bare(frame, MsgType::bye);
    for (std::uint32_t r = 0; r < spec.procs; ++r) {
        if (ctl[r] >= 0) {
            (void)write_frame(ctl[r], frame);
        }
    }
    if (!protocol_ok) {
        // A wedged child cannot be drained politely.
        for (const pid_t pid : pids) {
            if (pid > 0) {
                (void)::kill(pid, SIGKILL);
            }
        }
    }
    for (std::uint32_t r = 0; r < spec.procs; ++r) {
        int status = 0;
        if (pids[r] > 0 && ::waitpid(pids[r], &status, 0) == pids[r]) {
            res.ranks[r].exit_code =
                WIFEXITED(status) ? WEXITSTATUS(status) : 128;
        }
        if (ctl[r] >= 0) {
            ::close(ctl[r]);
        }
    }
    ::close(control_lfd);

    // Socket-file cleanup (best effort).
    ::unlink(control_ep.path.c_str());
    if (spec.transport == ft::TransportClass::uds) {
        for (std::uint32_t r = 0; r < spec.procs; ++r) {
            ::unlink(endpoints[r].path.c_str());
        }
    }
    if (own_dir) {
        ::rmdir(spec.dir.c_str());
    }

    // Verdict.
    res.ok = protocol_ok;
    double max_seconds = 0;
    for (std::uint32_t r = 0; r < spec.procs; ++r) {
        const RankReport& rr = res.ranks[r];
        if (rr.exit_code != 0) {
            append_error(res.error, "rank " + std::to_string(r) +
                                        " exited " +
                                        std::to_string(rr.exit_code));
            res.ok = false;
        }
        if (!rr.reported) {
            append_error(res.error,
                         "rank " + std::to_string(r) + " never reported");
            res.ok = false;
            continue;
        }
        if (!rr.play.clean() || rr.fault.faulted()) {
            append_error(res.error,
                         "rank " + std::to_string(r) + " faulted: " +
                             ft::to_string(rr.fault.cls));
            res.ok = false;
        }
        if (rr.wire.link_failures != 0) {
            append_error(res.error, "rank " + std::to_string(r) +
                                        " lost a link");
            res.ok = false;
        }
        max_seconds = std::max(max_seconds, rr.play.seconds);
        res.wire += rr.wire;
        res.metrics.merge(rr.metrics);
    }
    res.seconds = max_seconds;
    for (std::uint64_t s = 0; s < res.total_slots; ++s) {
        if (res.have[static_cast<std::size_t>(s)] == 0) {
            append_error(res.error, "slot " + std::to_string(s) +
                                        " never collected");
            res.ok = false;
            break;
        }
    }
    return res;
}

} // namespace hcube::net
