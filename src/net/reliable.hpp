// The per-link reliability sublayer of the net transport: ack/retransmit
// with bounded randomized backoff, duplicate suppression, and ack-priority
// send queueing (docs/NETWORK.md § Reliability).
//
// The wire below this layer is a connected byte stream, so the sublayer is
// not defending against the kernel — TCP and Unix sockets do not lose
// frames. It exists because the *transport contract* of the runtime
// demands it anyway: the torture tests inject drop/corrupt/duplicate
// faults at this exact seam (ft::FaultPlan mapped onto first
// transmissions), and a real multi-host deployment interposes links that
// can genuinely fail. The state machine per DATA frame:
//
//   send: record {channel, seq, clean frame} as pending, apply the wire
//     fault verdict to a copy, transmit, arm an ack deadline of
//     base * 2^(attempt-1) + jitter (jitter uniform in [0, that), so the
//     total is bounded by 2x the exponential term, capped).
//   ack arrives: drop the pending entry, release the channel's window.
//   deadline passes: retransmit the CLEAN frame (faults only ever apply
//     to first transmissions — retry convergence is unconditional),
//     re-arm with the next backoff step; after max_attempts the link is
//     declared failed and every blocked sender is released with an error.
//
// Acks always leave before queued data (OutQueue) — under load the
// peer's window opens as early as possible, the meshtastic priority rule.
#pragma once

#include "common/prng.hpp"
#include "ft/fault_model.hpp"
#include "net/protocol.hpp"
#include "rt/plan.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace hcube::net {

struct ReliableConfig {
    /// Max unacked DATA frames in flight per channel; senders block when
    /// the window is full (backpressure toward the schedule's own pacing).
    std::uint32_t window = 64;
    /// First transmission + retries before the link is declared failed.
    std::uint32_t max_attempts = 6;
    /// Ack-timeout backoff: base << (attempt-1) plus uniform jitter of the
    /// same magnitude, capped. Bounded and randomized per the meshtastic
    /// retransmission idiom.
    std::uint32_t backoff_base_us = 2'000;
    std::uint32_t backoff_cap_us = 256'000;
    std::uint64_t jitter_seed = 0x9e37'79b9'7f4a'7c15ULL;
};

/// Wire-level fault injection, mapped from an ft::FaultPlan onto the
/// plan's directed channels exactly like the in-process injector — but
/// applied to a frame's FIRST transmission only, so the ack/retransmit
/// loop provably converges (kill_link maps to drop-forever and is the one
/// class that exhausts the retry budget by design). delay_delivery is
/// ignored here: real sockets already add latency, and the bounded
/// arrival wait absorbs it.
class WireFaults {
public:
    /// Every `duplicate_percent` of first transmissions is sent twice —
    /// the dedup torture knob, orthogonal to the FaultPlan classes.
    struct Config {
        ft::FaultPlan plan;
        std::uint32_t duplicate_percent = 0;
        std::uint64_t seed = 1;
    };

    /// `drop`/`corrupt`/`duplicate` perturb the first transmission only
    /// (retransmits go clean — convergence). `kill` is permanent: the
    /// frame AND all its retransmits are blackholed, so the sender's retry
    /// budget exhausts and the link is declared failed — the wire analogue
    /// of ft::InjectClass::kill_link.
    enum class Verdict : std::uint8_t {
        deliver,
        drop,
        corrupt,
        duplicate,
        kill,
    };

    WireFaults() = default;
    WireFaults(const rt::Plan& plan, const Config& cfg);

    [[nodiscard]] bool armed() const noexcept {
        return !by_channel_.empty() || duplicate_percent_ > 0;
    }

    /// Verdict for the `k`-th first-transmission on `channel` (k counted
    /// internally). For `corrupt` the frame's payload region is perturbed
    /// in place before transmission. Internally synchronized: one instance
    /// is shared by every link of a bus.
    [[nodiscard]] Verdict on_first_send(std::uint32_t channel,
                                        std::span<std::uint8_t> payload);

private:
    std::mutex m_;
    struct Window {
        std::uint8_t cls = 0; ///< 0 drop, 1 corrupt, 2 kill
        std::uint32_t at = 0;
        std::uint32_t count = 0; ///< ~0 = forever
        std::uint32_t salt = 1;
    };
    std::unordered_map<std::uint32_t, std::vector<Window>> by_channel_;
    std::unordered_map<std::uint32_t, std::uint32_t> sent_;
    std::uint32_t duplicate_percent_ = 0;
    SplitMix64 prng_{1};
};

/// Two-class priority queue of encoded frames: acks drain before data.
class OutQueue {
public:
    void push_ack(std::vector<std::uint8_t> frame) {
        acks_.push_back(std::move(frame));
    }
    void push_data(std::vector<std::uint8_t> frame) {
        data_.push_back(std::move(frame));
    }
    [[nodiscard]] bool pop(std::vector<std::uint8_t>& frame) {
        auto& q = !acks_.empty() ? acks_ : data_;
        if (q.empty()) {
            return false;
        }
        frame = std::move(q.front());
        q.pop_front();
        return true;
    }
    [[nodiscard]] bool empty() const noexcept {
        return acks_.empty() && data_.empty();
    }

private:
    std::deque<std::vector<std::uint8_t>> acks_;
    std::deque<std::vector<std::uint8_t>> data_;
};

/// Bounded membership set over {channel, seq} keys — "have I delivered
/// this frame already?". FIFO eviction once `capacity` keys are held;
/// capacity just has to exceed the retransmit horizon, not the run.
class RecentSet {
public:
    explicit RecentSet(std::size_t capacity) : capacity_(capacity) {}

    /// True if the key was new (inserted); false if already present.
    bool insert(std::uint64_t key) {
        if (seen_.contains(key)) {
            return false;
        }
        seen_.insert(key);
        order_.push_back(key);
        while (order_.size() > capacity_) {
            seen_.erase(order_.front());
            order_.pop_front();
        }
        return true;
    }

    [[nodiscard]] static std::uint64_t key(std::uint32_t channel,
                                           std::uint32_t seq) noexcept {
        return (std::uint64_t{channel} << 32) | seq;
    }

private:
    std::size_t capacity_;
    std::unordered_set<std::uint64_t> seen_;
    std::deque<std::uint64_t> order_;
};

/// One reliable peer connection. Thread contract: any compute thread may
/// call send_data() (it blocks on the window); the io thread calls
/// on_ack()/enqueue_ack()/tick(); fail() may come from either side.
class ReliableLink {
public:
    using clock = std::chrono::steady_clock;

    ReliableLink(int fd, const ReliableConfig& cfg, WireFaults* faults);

    /// Encodes, registers the pending entry, applies the wire-fault
    /// verdict, transmits. Blocks while the channel's window is full.
    /// False once the link is failed (retry budget or socket error).
    [[nodiscard]] bool send_data(std::uint64_t plan_fp, std::uint32_t channel,
                                 std::uint32_t seq, std::uint32_t packet,
                                 std::uint64_t checksum,
                                 std::span<const double> block);

    /// Queues (ack priority) and flushes an ACK for {channel, seq}.
    void enqueue_ack(std::uint32_t channel, std::uint32_t seq);

    /// Peer acknowledged {channel, seq}: retire the pending entry.
    void on_ack(const AckMsg& ack);

    /// Retransmit every pending frame whose deadline passed; declares the
    /// link failed once a frame exhausts max_attempts.
    void tick(clock::time_point now);

    /// Earliest pending deadline, or clock::time_point::max() — the io
    /// thread's poll horizon.
    [[nodiscard]] clock::time_point next_deadline();

    /// Marks the link failed and releases every window-blocked sender.
    void fail() noexcept;

    [[nodiscard]] bool failed() const noexcept;
    /// True when every sent frame has been acked (teardown gate).
    [[nodiscard]] bool drained();
    [[nodiscard]] int fd() const noexcept { return fd_; }
    [[nodiscard]] WireCounters counters();

    /// Receive-side bookkeeping the bus tallies into this link's counters.
    void count_received(std::uint64_t data, std::uint64_t dup,
                        std::uint64_t corrupt, std::uint64_t stashed);
    void count_flush_timeout();

private:
    struct Pending {
        std::uint32_t channel;
        std::uint32_t seq;
        std::uint32_t attempts;
        bool blackholed; ///< kill verdict: retransmits never hit the wire
        clock::time_point deadline;
        std::vector<std::uint8_t> frame; ///< clean encoding (retransmits)
    };

    [[nodiscard]] std::chrono::microseconds backoff(std::uint32_t attempt);
    void flush_locked();
    void transmit_first_locked(Pending& p);

    const int fd_;
    const ReliableConfig cfg_;
    WireFaults* const faults_; ///< shared across links; self-synchronized

    mutable std::mutex m_;
    std::condition_variable window_cv_;
    std::list<Pending> pending_;
    std::unordered_map<std::uint32_t, std::uint32_t> in_flight_;
    OutQueue out_;
    SplitMix64 prng_;
    WireCounters counters_;
    bool failed_ = false;
};

} // namespace hcube::net
