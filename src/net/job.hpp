// net::run_job — the single-host launcher of the net transport: one call
// turns a svc::Signature into an n-rank job of *processes*, each a cube-
// node partition connected to its peers over Unix-domain or TCP sockets,
// and collects the verified final memory image back in the parent
// (docs/NETWORK.md § Launcher).
//
// Two spawn modes share the protocol:
//   fork  (exec_argv empty) — the parent pre-binds every rank's data
//     listener plus the control socket, then forks; children inherit the
//     listen fds, so there is no bind race and TCP jobs can use ephemeral
//     ports (the parent reads them back before forking).
//   exec  (exec_argv set)  — the parent spawns `exec_argv... --net-rank r`
//     per rank; each child binds its own listener and calls run_child()
//     with a JobSpec it reconstructs itself (deterministic generators make
//     the plans identical; the mesh handshake pins the fingerprint).
//
// Control protocol, per child, over the control socket: HELLO (rank +
// locally compiled plan fingerprint, sent after the peer mesh is up) →
// GO (parent, once every rank reported — play() starts race-free) →
// REPORT + one DUMP per owned slot + FIN (child, after draining its
// reliability layer) → BYE (parent, once ALL ranks finished — no io
// thread dies while a peer still needs its retransmits or re-acks).
#pragma once

#include "ft/fault_model.hpp"
#include "net/net_player.hpp"
#include "net/peer.hpp"
#include "obs/metrics.hpp"
#include "svc/signature.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hcube::net {

struct JobSpec {
    svc::Signature sig;
    /// Rank processes; the plan compiles with workers == procs, so rank r
    /// owns the barrier Player's worker-r node range. 1 <= procs <= 2^n.
    std::uint32_t procs = 2;
    ft::TransportClass transport = ft::TransportClass::uds;
    /// Socket directory (uds data sockets + the control socket live here).
    /// Empty: run_job creates and removes a mkdtemp directory (fork mode);
    /// run_child (exec mode) requires it set.
    std::string dir;
    /// TCP data endpoints bind 127.0.0.1:(base_port + rank); 0 lets the
    /// fork-mode parent pre-bind ephemeral ports (exec + tcp requires an
    /// explicit base_port).
    std::uint16_t base_port = 0;
    /// Bounded arrival wait of the per-rank engine; 0 takes the
    /// per-transport default (ft::DetectConfig::for_transport).
    std::uint32_t arrival_timeout_us = 0;
    ReliableConfig reliable;
    /// Wire-layer fault torture (first transmissions only; see
    /// net/reliable.hpp).
    WireFaults::Config faults;
    /// Non-empty: exec mode — the command each rank is spawned as, with
    /// `--net-rank <r>` appended. The binary must call run_child(spec, r)
    /// with an identical spec.
    std::vector<std::string> exec_argv;
};

/// The engine detection config a job's ranks run with.
[[nodiscard]] ft::DetectConfig effective_detect(const JobSpec& spec);

/// One rank's end-of-run report, as received over the control socket.
struct RankReport {
    std::uint32_t rank = 0;
    rt::PlayStats play;
    WireCounters wire;
    ft::FaultReport fault;
    /// The rank's obs registry delta (everything it recorded between
    /// child entry and FIN — fork-inherited pre-launch counts are
    /// subtracted out on the child side).
    obs::RegistrySnapshot metrics;
    bool reported = false; ///< REPORT frame arrived before FIN
    int exit_code = -1;
};

struct JobResult {
    bool ok = false;       ///< every rank clean, every slot collected
    std::string error;     ///< first failure description when !ok
    double seconds = 0;    ///< max rank play() wall clock
    std::uint64_t total_slots = 0;
    std::size_t block_elems = 0;
    /// Final memory image, total_slots x block_elems, assembled from the
    /// per-rank slot dumps.
    std::vector<double> memory;
    std::vector<std::uint8_t> have; ///< per slot: dump arrived
    std::vector<RankReport> ranks;
    WireCounters wire; ///< aggregate over ranks
    /// Job-level metrics report: every rank's registry delta merged
    /// (counters sum, histograms bucket-merge), so per-tenant latency and
    /// wire counters aggregate across the whole process fleet.
    obs::RegistrySnapshot metrics;

    /// The collected block of (node, packet) under `plan` (the caller's
    /// identically compiled plan); empty span if absent.
    [[nodiscard]] std::span<const double> block(const rt::Plan& plan,
                                                node_t node,
                                                packet_t packet) const;
};

/// Launches the job, runs the collective across the rank processes, and
/// returns the assembled result. Throws check_error on invalid specs;
/// runtime failures (a faulted rank, a lost child) come back as ok=false.
[[nodiscard]] JobResult run_job(const JobSpec& spec);

/// Exec-mode child entry: binds rank `rank`'s data listener, joins the
/// mesh, plays, reports, and returns the process exit code (0 on protocol
/// completion, even for runs that detected faults — the parent judges
/// cleanliness from the REPORT).
[[nodiscard]] int run_child(const JobSpec& spec, std::uint32_t rank);

} // namespace hcube::net
