// The wire message set of the net transport (docs/NETWORK.md § Protocol).
//
// Every message is one frame (net/frame.hpp): byte 0 is the MsgType, the
// rest is the little-endian field encoding (common/endian.hpp). Three
// message groups share the format:
//
//   data plane (peer <-> peer)  — DATA carries one block with the plan
//     fingerprint, channel (directed-link) id, per-channel sequence number,
//     packet id, and the xxHash-class payload digest; ACK confirms one
//     {channel, seq}. These two are the entire reliability vocabulary.
//
//   control plane (launcher <-> rank) — HELLO announces a rank and its
//     locally compiled plan fingerprint, GO releases the ranks into play(),
//     DUMP returns one owned slot's final bytes, REPORT returns the rank's
//     PlayStats + wire counters, FIN/BYE sequence the teardown so no io
//     thread dies while a peer still drains retransmits.
//
//   service plane (client <-> netd) — OP_REQUEST carries a svc::Signature,
//     OP_RESPONSE the svc::Response summary, so a remote client drives a
//     collective service over the same framing the data plane uses.
//
// Decoders never trust the peer: every field is bounds-checked through
// ByteReader and a failed decode returns false instead of tearing.
#pragma once

#include "common/endian.hpp"
#include "ft/fault_model.hpp"
#include "obs/metrics.hpp" // RegistrySnapshot
#include "rt/player.hpp"   // PlayStats
#include "svc/signature.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace hcube::net {

enum class MsgType : std::uint8_t {
    hello = 1,
    go = 2,
    data = 3,
    ack = 4,
    dump = 5,
    report = 6,
    fin = 7,
    bye = 8,
    op_request = 9,
    op_response = 10,
    metrics = 11,
};

/// Protocol magic ("HCN1") carried in HELLO — a wrong-port connect fails
/// the handshake instead of feeding garbage into the data plane.
inline constexpr std::uint32_t kMagic = 0x3148'434E;
inline constexpr std::uint16_t kVersion = 1;

/// Peeks the MsgType of a decoded frame payload (nullopt on empty frame).
[[nodiscard]] std::optional<MsgType>
frame_type(std::span<const std::uint8_t> payload) noexcept;

// ---- data plane -------------------------------------------------------

/// Bytes of a DATA frame before its block payload (type + plan_fp +
/// channel + seq + packet + checksum) — where a wire-fault corruption
/// perturbs and where the payload slice starts.
inline constexpr std::size_t kDataHeaderBytes = 1 + 8 + 4 + 4 + 4 + 8;

/// Decoded view of a DATA frame; `payload` aliases the frame buffer.
struct DataView {
    std::uint64_t plan_fp = 0;
    std::uint32_t channel = 0;
    std::uint32_t seq = 0;
    std::uint32_t packet = 0;
    std::uint64_t checksum = 0; ///< digest of the block as sent
    std::span<const std::uint8_t> payload; ///< block_elems LE doubles
};

void encode_data(std::vector<std::uint8_t>& out, std::uint64_t plan_fp,
                 std::uint32_t channel, std::uint32_t seq,
                 std::uint32_t packet, std::uint64_t checksum,
                 std::span<const double> block);
[[nodiscard]] bool decode_data(std::span<const std::uint8_t> frame,
                               DataView& view) noexcept;

struct AckMsg {
    std::uint32_t channel = 0;
    std::uint32_t seq = 0;
};

void encode_ack(std::vector<std::uint8_t>& out, const AckMsg& msg);
[[nodiscard]] bool decode_ack(std::span<const std::uint8_t> frame,
                              AckMsg& msg) noexcept;

// ---- control plane ----------------------------------------------------

struct HelloMsg {
    std::uint32_t rank = 0;
    std::uint64_t plan_fp = 0;
};

void encode_hello(std::vector<std::uint8_t>& out, const HelloMsg& msg);
[[nodiscard]] bool decode_hello(std::span<const std::uint8_t> frame,
                                HelloMsg& msg) noexcept;

/// GO / FIN / BYE are bare type bytes.
void encode_bare(std::vector<std::uint8_t>& out, MsgType type);

/// One owned slot's final block bytes.
struct DumpView {
    std::uint64_t slot = 0;
    std::span<const std::uint8_t> payload; ///< block_elems LE doubles
};

void encode_dump(std::vector<std::uint8_t>& out, std::uint64_t slot,
                 std::span<const double> block);
[[nodiscard]] bool decode_dump(std::span<const std::uint8_t> frame,
                               DumpView& view) noexcept;

/// Receive- and send-side counters of one rank's reliability layer —
/// the wire analogue of PlayStats' fault counters.
struct WireCounters {
    std::uint64_t data_sent = 0;       ///< first transmissions written
    std::uint64_t data_received = 0;   ///< DATA frames decoded
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t retransmits = 0;     ///< ack-timeout re-sends
    std::uint64_t dup_suppressed = 0;  ///< recent-set hits, re-acked only
    std::uint64_t corrupt_dropped = 0; ///< digest-failed frames, not acked
    std::uint64_t stashed = 0;         ///< out-of-order arrivals held back
    std::uint64_t injected_drop = 0;   ///< wire faults applied on send
    std::uint64_t injected_corrupt = 0;
    std::uint64_t injected_dup = 0;
    std::uint64_t link_failures = 0;   ///< retry budget exhausted
    std::uint64_t flush_timeouts = 0;  ///< post-play ack drain expired

    WireCounters& operator+=(const WireCounters& o) noexcept;
};

/// A rank's end-of-play report to the launcher.
struct ReportMsg {
    std::uint32_t rank = 0;
    rt::PlayStats play;
    WireCounters wire;
    ft::FaultReport fault;
};

void encode_report(std::vector<std::uint8_t>& out, const ReportMsg& msg);
[[nodiscard]] bool decode_report(std::span<const std::uint8_t> frame,
                                 ReportMsg& msg) noexcept;

// ---- service plane ----------------------------------------------------

struct OpRequestMsg {
    std::uint32_t req_id = 0;
    svc::Signature sig;
};

void encode_op_request(std::vector<std::uint8_t>& out,
                       const OpRequestMsg& msg);
[[nodiscard]] bool decode_op_request(std::span<const std::uint8_t> frame,
                                     OpRequestMsg& msg) noexcept;

/// svc::Response flattened for the wire (status + the ExecStats summary).
struct OpResponseMsg {
    std::uint32_t req_id = 0;
    std::uint8_t status = 0; ///< svc::Status
    bool verified = false;
    bool oracle_checked = false;
    bool cache_hit = false;
    bool batched = false;
    std::uint32_t rt_cycles = 0;
    std::uint32_t sim_makespan = 0;
    std::uint64_t blocks_delivered = 0;
    std::uint64_t payload_bytes = 0;
    double seconds = 0;
    std::uint8_t transport = 0; ///< ft::TransportClass of the serving endpoint
    std::string error;
};

void encode_op_response(std::vector<std::uint8_t>& out,
                        const OpResponseMsg& msg);
[[nodiscard]] bool decode_op_response(std::span<const std::uint8_t> frame,
                                      OpResponseMsg& msg) noexcept;

// ---- telemetry plane --------------------------------------------------

/// METRICS is dual-use by direction: a *bare* METRICS frame (the type byte
/// alone, encode_bare) is a scrape request — netd answers with a framed
/// registry snapshot; a rank in net::run_job pushes its snapshot to the
/// launcher unprompted before FIN. Histograms travel sparsely: count / sum
/// / max plus only the non-zero (bucket, count) pairs, so an idle registry
/// costs bytes proportional to what it measured, not to kBuckets.
void encode_metrics(std::vector<std::uint8_t>& out,
                    const obs::RegistrySnapshot& snap);
[[nodiscard]] bool decode_metrics(std::span<const std::uint8_t> frame,
                                  obs::RegistrySnapshot& snap);

} // namespace hcube::net
