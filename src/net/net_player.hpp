// net::NetPlayer — the per-process execution engine of the net transport.
//
// Each rank process runs one NetPlayer over the SAME compiled plan
// (regenerated locally from the svc::Signature — the generators are
// deterministic, and the mesh handshake pins the fingerprint), compiled
// with workers == procs. Rank r executes exactly the (cycle, r) action
// buckets the barrier Player's worker r would execute, through the same
// rt/delivery.hpp send/deliver helpers — but with no cross-process
// barriers: the ordering a barrier provides in-process is supplied here by
// the transport itself (per-channel in-order reliable delivery) plus the
// bounded arrival wait, which is always on and scaled to the transport
// class (a wire crossing, and its ack-timeout retransmits, need more
// patience than a ring buffer; ft::DetectConfig::for_transport).
//
// Copy-through is unconditional (inbound payloads land in transient wire
// buffers), so delivery re-digests every arrived block against the
// canonical expectation — the third integrity check a block crosses after
// the sender-side frame digest and the bus's wire verification. The final
// memory image is byte-comparable against the in-process oracle: same
// seeding, same accumulation order, same delivery protocol.
#pragma once

#include "ft/fault_model.hpp"
#include "net/socket_bank.hpp"
#include "rt/detect.hpp"
#include "rt/player.hpp" // PlayStats
#include "rt/plan.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace hcube::net {

using hc::dim_t;
using hc::node_t;
using sim::packet_t;

struct NetPlayStats {
    rt::PlayStats play;
    ft::FaultReport fault;
};

class NetPlayer {
public:
    /// `plan.workers` must equal the job's process count; `rank` picks the
    /// bucket column this process executes. Single-shot: one play() per
    /// constructed player (wire sequence state is per-connection).
    NetPlayer(const rt::Plan& plan, std::uint32_t rank,
              SocketChannelBank& bank, ft::DetectConfig detect,
              ft::TransportClass transport);

    [[nodiscard]] NetPlayStats play();

    /// Post-run view of the block held by (node, packet); empty if the
    /// node has no slot, or is not owned by this rank.
    [[nodiscard]] std::span<const double> block(node_t node,
                                                packet_t packet) const;

    [[nodiscard]] bool owns(node_t node) const noexcept {
        return plan_.owner_of(node) == rank_;
    }
    [[nodiscard]] const rt::Plan& plan() const noexcept { return plan_; }

private:
    const rt::Plan& plan_;
    const std::uint32_t rank_;
    SocketChannelBank& bank_;
    ft::DetectConfig detect_;
    ft::TransportClass transport_;
    std::vector<const double*> views_;
    std::vector<double> memory_;
    std::vector<std::uint64_t> expected_checksum_;
    rt::FaultArbiter arbiter_;
};

} // namespace hcube::net
