// Socket endpoints and the per-process peer mesh of the net transport.
//
// A PeerBus owns one reliable link (net/reliable.hpp) per peer rank, a
// single io thread multiplexing every link with poll(2), and the
// receive-side half of the reliability protocol: payload digest
// verification, duplicate suppression, per-channel in-order restoration
// (out-of-order frames stash until the gap closes), and publication into
// the process's SocketChannelBank through an ingress callback — with a
// per-channel overflow queue that retries when the inner ring is full, so
// wire pressure never deadlocks against ring capacity.
//
// Mesh establishment is rank-ordered to stay deadlock-free: rank r
// actively connects to every q < r (sending HELLO with its rank and plan
// fingerprint) and accepts from every q > r (identifying the peer by its
// HELLO). A fingerprint mismatch aborts the handshake — two processes
// disagreeing on the compiled plan must never exchange blocks.
#pragma once

#include "ft/fault_model.hpp"
#include "net/reliable.hpp"
#include "rt/plan.hpp"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace hcube::net {

/// Where a peer listens: a Unix-domain socket path or a TCP host:port.
struct Endpoint {
    ft::TransportClass kind = ft::TransportClass::uds;
    std::string path;        ///< uds
    std::string host;        ///< tcp
    std::uint16_t port = 0;  ///< tcp

    [[nodiscard]] static Endpoint unix_path(std::string p) {
        Endpoint e;
        e.kind = ft::TransportClass::uds;
        e.path = std::move(p);
        return e;
    }
    [[nodiscard]] static Endpoint tcp(std::string host, std::uint16_t port) {
        Endpoint e;
        e.kind = ft::TransportClass::tcp;
        e.host = std::move(host);
        e.port = port;
        return e;
    }
    [[nodiscard]] std::string to_string() const;
};

/// Binds and listens on `ep` (unlinking a stale uds path first). TCP port
/// 0 binds ephemerally — read the outcome with local_port(). Throws
/// check_error on failure.
[[nodiscard]] int listen_endpoint(const Endpoint& ep);

/// Accepts one connection, waiting at most `timeout_ms`; -1 on timeout.
[[nodiscard]] int accept_peer(int listen_fd, int timeout_ms);

/// Connects to `ep`, retrying (the peer may not have bound yet) until
/// `timeout_ms` expires. Throws check_error on timeout.
[[nodiscard]] int connect_endpoint(const Endpoint& ep, int timeout_ms);

/// The locally bound TCP port of a listening fd (ephemeral-bind readback).
[[nodiscard]] std::uint16_t local_port(int fd);

class PeerBus {
public:
    struct Params {
        ReliableConfig reliable;
        WireFaults::Config faults;
        std::uint64_t plan_fp = 0;
        /// {channel, seq} keys remembered for duplicate suppression; must
        /// exceed the retransmit horizon, not the run length.
        std::size_t recent_capacity = 4096;
        /// Handshake patience (mesh connect/accept), milliseconds.
        int handshake_timeout_ms = 10'000;
    };

    /// Publishes one verified in-order block into the process-local bank;
    /// false means the ring is momentarily full (the bus retries).
    using IngressFn = std::function<bool(
        std::uint32_t channel, std::uint32_t packet,
        std::span<const double> block, std::uint64_t checksum)>;

    PeerBus(const rt::Plan& plan, std::uint32_t rank, std::uint32_t procs,
            Params params);
    ~PeerBus();
    PeerBus(const PeerBus&) = delete;
    PeerBus& operator=(const PeerBus&) = delete;

    /// Must be set before connect_mesh()/start().
    void set_ingress(IngressFn fn) { ingress_ = std::move(fn); }

    /// Establishes the full rank-ordered mesh. `listen_fd` must already be
    /// bound and listening on this rank's endpoint (the launcher pre-binds
    /// it so no peer can connect before the listener exists). Throws
    /// check_error on timeout or fingerprint mismatch.
    void connect_mesh(int listen_fd, const std::vector<Endpoint>& peers);

    void start();
    void stop();

    /// Reliable in-order send toward `dest`'s channel ring. Blocks on the
    /// link's window; false once the link has failed.
    [[nodiscard]] bool send_data(std::uint32_t dest, std::uint32_t channel,
                                 std::uint32_t seq, std::uint32_t packet,
                                 std::uint64_t checksum,
                                 std::span<const double> block);

    /// Waits until every link's pending frames are acked (the teardown
    /// gate: a peer may still need our retransmits). False on timeout.
    bool flush(std::chrono::milliseconds timeout);

    [[nodiscard]] bool healthy() const;
    [[nodiscard]] WireCounters counters() const;

private:
    struct Stashed {
        std::uint32_t packet;
        std::uint64_t checksum;
        std::vector<double> block;
    };
    struct RecvChan {
        std::uint32_t next_seq = 0;
        std::map<std::uint32_t, Stashed> stash; ///< out-of-order arrivals
        std::deque<Stashed> overflow; ///< in-order, waiting for ring room
    };

    void io_loop();
    void handle_frame(std::uint32_t peer,
                      std::span<const std::uint8_t> frame);
    void publish_or_queue(std::uint32_t channel, Stashed&& s);
    void drain_overflow();

    const rt::Plan& plan_;
    const std::uint32_t rank_;
    const std::uint32_t procs_;
    Params params_;
    WireFaults faults_;
    IngressFn ingress_;

    std::vector<std::unique_ptr<ReliableLink>> links_; ///< by peer rank
    std::vector<RecvChan> recv_;                       ///< by channel
    RecentSet recent_;
    int wake_pipe_[2] = {-1, -1};
    std::thread io_;
    std::atomic<bool> running_{false};
};

} // namespace hcube::net
