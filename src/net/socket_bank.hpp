// net::SocketChannelBank — the socket-backed implementation of the
// rt::Transport concept (rt/transport.hpp).
//
// One instance lives in each rank process. It wraps an in-process
// rt::ChannelBank (inline staging always on — inbound payloads arrive in
// transient wire buffers, so delivery must run the copy-through protocol)
// and routes each channel by the plan's link endpoints:
//
//   local   — both endpoints owned by this rank: a plain ring push, the
//             unchanged in-process fast path.
//   egress  — produced here, consumed remotely: the push re-digests the
//             block (combine-mode descriptors carry no expectation, and
//             the wire check needs the digest of what was actually sent)
//             and hands it to the PeerBus with the channel's next wire
//             sequence number.
//   ingress — produced remotely: the io thread publishes verified
//             in-order blocks through push_received(); the engine's pops
//             see exactly the ring it would see in-process.
//   foreign — neither endpoint here; never pushed or popped by this rank.
//
// The inner ring capacity is sized from the plan (max pushes on any one
// channel, next power of two) so a whole run can never overflow a ring —
// wire pressure is absorbed by the bus's overflow queue, not lost.
#pragma once

#include "net/peer.hpp"
#include "rt/channel.hpp"
#include "rt/plan.hpp"
#include "rt/transport.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace hcube::net {

class SocketChannelBank {
public:
    using Desc = rt::ChannelBank::Desc;

    /// `owner_of_node(node) == rank` decides locality; the plan's workers
    /// field must equal `procs` so plan.owner_of is that mapping.
    SocketChannelBank(const rt::Plan& plan, std::uint32_t rank,
                      PeerBus& bus);

    // ---- rt::Transport surface (engine side) -------------------------
    [[nodiscard]] bool try_push(std::uint32_t channel, std::uint32_t packet,
                                std::span<const double> block,
                                std::uint64_t checksum) noexcept;
    [[nodiscard]] bool front(std::uint32_t channel, Desc& d) const noexcept {
        return inner_.front(channel, d);
    }
    void pop_front(std::uint32_t channel) noexcept {
        inner_.pop_front(channel);
    }
    void reset() noexcept;
    [[nodiscard]] std::uint32_t channel_count() const noexcept {
        return inner_.channel_count();
    }
    [[nodiscard]] std::size_t block_elems() const noexcept {
        return inner_.block_elems();
    }
    /// Always true: inbound wire payloads live in transient buffers, so
    /// the engine must run the copy-through delivery protocol.
    [[nodiscard]] bool inline_active() const noexcept { return true; }

    // ---- wire side (io thread) ---------------------------------------
    /// Publishes a verified in-order wire block into the inner ring;
    /// false when the ring is momentarily full (the bus retries).
    [[nodiscard]] bool push_received(std::uint32_t channel,
                                     std::uint32_t packet,
                                     std::span<const double> block,
                                     std::uint64_t checksum) noexcept {
        return inner_.push_received(channel, packet, block, checksum);
    }

    enum class Route : std::uint8_t { local, egress, ingress, foreign };
    [[nodiscard]] Route route(std::uint32_t channel) const noexcept {
        return static_cast<Route>(route_[channel]);
    }
    [[nodiscard]] std::uint32_t dest_rank(std::uint32_t channel) const noexcept {
        return dest_[channel];
    }
    /// Ring slots per channel the plan was sized for.
    [[nodiscard]] std::uint32_t capacity() const noexcept {
        return inner_.capacity();
    }

private:
    [[nodiscard]] static std::uint32_t ring_capacity(const rt::Plan& plan);

    const rt::Plan& plan_;
    const std::uint32_t rank_;
    PeerBus& bus_;
    rt::ChannelBank inner_;
    std::vector<std::uint8_t> route_;  ///< Route per channel
    std::vector<std::uint32_t> dest_;  ///< consumer rank per egress channel
    std::vector<std::uint32_t> send_seq_; ///< next wire seq per channel
};

static_assert(rt::Transport<SocketChannelBank>,
              "SocketChannelBank must satisfy the transport concept");

} // namespace hcube::net
