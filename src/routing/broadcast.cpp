#include "routing/broadcast.hpp"

#include "common/check.hpp"
#include "trees/msbt.hpp"

#include <algorithm>

namespace hcube::routing {

Schedule port_oriented_broadcast(const trees::SpanningTree& tree,
                                 packet_t packets) {
    HCUBE_ENSURE(packets >= 1);
    Schedule schedule;
    schedule.n = tree.n;
    schedule.packet_count = packets;
    schedule.initial_holder.assign(packets, tree.root);

    // completes_at[u]: cycle by which u holds the whole message.
    std::vector<std::uint32_t> completes_at(tree.node_count(), 0);
    for (const node_t u : tree.bfs_order()) {
        std::uint32_t cursor = completes_at[u];
        for (const node_t child : tree.children[u]) {
            for (packet_t p = 0; p < packets; ++p) {
                schedule.sends.push_back({cursor, u, child, p});
                ++cursor;
            }
            completes_at[child] = cursor;
        }
    }
    return schedule;
}

Schedule paced_broadcast(const trees::SpanningTree& tree, packet_t packets,
                         PortModel model) {
    HCUBE_ENSURE(packets >= 1);
    Schedule schedule;
    schedule.n = tree.n;
    schedule.packet_count = packets;
    schedule.initial_holder.assign(packets, tree.root);

    // Global cadence: cycles between consecutive packets of the pipeline.
    std::uint32_t cadence = 1;
    if (model != PortModel::all_port) {
        for (node_t u = 0; u < tree.node_count(); ++u) {
            if (tree.children[u].empty()) {
                continue;
            }
            const auto ops =
                static_cast<std::uint32_t>(tree.children[u].size()) +
                ((model == PortModel::one_port_half_duplex && u != tree.root)
                     ? 1u
                     : 0u);
            cadence = std::max(cadence, ops);
        }
    }

    // receive_cycle[u]: cycle during which packet 0 arrives at u
    // (virtually -1 at the root, meaning "held before cycle 0").
    std::vector<std::int64_t> receive_cycle(tree.node_count(), 0);
    receive_cycle[tree.root] = -1;
    for (const node_t u : tree.bfs_order()) {
        std::uint32_t offset = 1;
        for (const node_t child : tree.children[u]) {
            receive_cycle[child] =
                receive_cycle[u] +
                ((model == PortModel::all_port) ? 1 : offset);
            for (packet_t p = 0; p < packets; ++p) {
                schedule.sends.push_back(
                    {static_cast<std::uint32_t>(receive_cycle[child]) +
                         cadence * p,
                     u, child, p});
            }
            ++offset;
        }
    }
    return schedule;
}

Schedule msbt_broadcast(dim_t n, node_t source, packet_t packets_per_subtree,
                        PortModel model) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(packets_per_subtree >= 1);
    const node_t count = node_t{1} << n;
    HCUBE_ENSURE(source < count);

    Schedule schedule;
    schedule.n = n;
    schedule.packet_count =
        static_cast<packet_t>(n) * packets_per_subtree;
    schedule.initial_holder.assign(schedule.packet_count, source);

    const auto packet_id = [&](dim_t j, packet_t p) {
        return static_cast<packet_t>(j) * packets_per_subtree + p;
    };

    if (model == PortModel::all_port) {
        // Each ERSBT pipelines its own stream at cadence 1; edge-disjointness
        // keeps the streams from colliding.
        for (dim_t j = 0; j < n; ++j) {
            const trees::SpanningTree ersbt = trees::build_ersbt(n, j, source);
            for (node_t i = 0; i < count; ++i) {
                if (i == source) {
                    continue;
                }
                const node_t parent = ersbt.parent[i];
                const auto arrival =
                    static_cast<std::uint32_t>(ersbt.level[i]) - 1;
                for (packet_t p = 0; p < packets_per_subtree; ++p) {
                    schedule.sends.push_back(
                        {arrival + p, parent, i, packet_id(j, p)});
                }
            }
        }
        return schedule;
    }

    // One-port full duplex: the labelling f gives a conflict-free schedule
    // with one new packet per subtree every n cycles.
    for (dim_t j = 0; j < n; ++j) {
        for (node_t i = 0; i < count; ++i) {
            if (i == source) {
                continue;
            }
            const node_t parent = trees::msbt_parent(i, j, source, n);
            const auto label = static_cast<std::uint32_t>(
                trees::msbt_edge_label(i, j, source, n));
            for (packet_t p = 0; p < packets_per_subtree; ++p) {
                schedule.sends.push_back(
                    {label + p * static_cast<std::uint32_t>(n), parent, i,
                     packet_id(j, p)});
            }
        }
    }
    if (model == PortModel::one_port_half_duplex) {
        return sim::stretch_to_half_duplex(schedule);
    }
    return schedule;
}

} // namespace hcube::routing
