// Data-carrying collective operations — the library layer a downstream user
// actually calls.
//
// The schedules and protocols elsewhere in routing/ move *abstract* packets
// (ids and sizes) because the paper's results are statements about cycle
// counts and times. This layer runs the same algorithms while moving real
// buffers of doubles through the event engine, so correctness means "every
// node ends up with the right values", verified in tests element by element.
//
// Operations and the algorithms behind them:
//   broadcast   — SBT port-oriented (the one-port classic) or MSBT streams
//                 (the paper's bandwidth-optimal pipeline);
//   scatter     — personalized distribution down the SBT (descending order)
//                 or the BST (cyclic subtree order);
//   gather      — the reverse operation, pipelined piecewise up the tree;
//   all-gather  — recursive doubling over cube dimensions (data doubles
//                 each round; N-1 elements' worth of transfer per node);
//   all-reduce  — recursive doubling with elementwise summation
//                 (log N rounds of fixed-size exchange).
#pragma once

#include "hc/types.hpp"
#include "sim/event.hpp"

#include <vector>

namespace hcube::routing {

/// One node's local data.
using Buffer = std::vector<double>;

/// Which spanning structure a rooted collective uses.
enum class BroadcastAlgo {
    sbt_port_oriented, ///< whole message per child, §3.3.1 one-port
    msbt_streams,      ///< log N pipelined streams, §3.3.2
};
enum class ScatterAlgo {
    sbt_descending, ///< §5.2 descending-address order on the SBT
    bst_cyclic,     ///< §4.2.2 cyclic subtree order on the BST
};

/// Outcome of one collective run.
struct CollectiveResult {
    double time = 0;           ///< simulated completion time [s]
    sim::EventStats stats;     ///< raw engine statistics
};

/// Runs data-carrying collectives on a simulated n-cube. Each call builds a
/// fresh engine with the stored machine parameters; `data` is indexed by
/// node address.
class CollectiveComm {
public:
    /// `params.model` selects the port model; sizes are in elements
    /// (element == one double for payload accounting).
    CollectiveComm(hc::dim_t n, sim::EventParams params);

    [[nodiscard]] hc::dim_t dimension() const noexcept { return n_; }
    [[nodiscard]] hc::node_t node_count() const noexcept {
        return hc::node_t{1} << n_;
    }

    /// Replicates data[root] into every data[i]. `chunk` is the external
    /// packet size in elements.
    CollectiveResult broadcast(std::vector<Buffer>& data, hc::node_t root,
                               BroadcastAlgo algo, double chunk);

    /// Distributes slices[i] (one buffer per destination, root's own slice
    /// included) into data[i]. All slices must have equal size.
    CollectiveResult scatter(const std::vector<Buffer>& slices,
                             std::vector<Buffer>& data, hc::node_t root,
                             ScatterAlgo algo);

    /// Collects every data[i] into gathered[i] at the root (gathered has one
    /// entry per source node; non-root nodes' views are left empty).
    CollectiveResult gather(const std::vector<Buffer>& data,
                            std::vector<Buffer>& gathered, hc::node_t root,
                            ScatterAlgo algo);

    /// Elementwise global sum: every data[i] is replaced by the sum over all
    /// nodes. All buffers must have equal size.
    CollectiveResult allreduce_sum(std::vector<Buffer>& data);

    /// Every node ends with the concatenation of all nodes' buffers in node
    /// order: out[i][j] = original data[j mapped]. All buffers equal size.
    CollectiveResult allgather(const std::vector<Buffer>& data,
                               std::vector<Buffer>& out);

    /// All-to-all personalized exchange (complete exchange / transpose,
    /// §1's matrix-transposition motivation): every data[i] holds N equal
    /// blocks, block b destined to node b; afterwards out[i] holds the N
    /// blocks addressed to i, in source order (out[i] block j = data[j]
    /// block i). Dimension-order recursive exchange: log N rounds, each
    /// moving half of every node's payload.
    CollectiveResult alltoall(const std::vector<Buffer>& data,
                              std::vector<Buffer>& out);

    /// Reduce-scatter: every data[i] holds N equal blocks (block b is node
    /// i's contribution to node b); afterwards out[i] is the elementwise sum
    /// over all contributions to block i. Recursive halving: log N rounds of
    /// geometrically shrinking exchanges (bandwidth-optimal, ~ N M t_c).
    CollectiveResult reduce_scatter_sum(const std::vector<Buffer>& data,
                                        std::vector<Buffer>& out);

private:
    hc::dim_t n_;
    sim::EventParams params_;
};

} // namespace hcube::routing
