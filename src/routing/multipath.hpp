// Multipath point-to-point transfer over the log N node-disjoint paths
// (paper §1's structural fact, put to work).
//
// A single cube link limits an a→b transfer to 1/t_c bandwidth; splitting
// the message across the n disjoint paths multiplies the bandwidth by
// ~log N at the cost of longer (d or d+2 hop) routes. With chunked
// store-and-forward pipelining each path delivers its share in
//   (ceil(share/chunk) + hops - 1) · (τ + chunk·t_c),
// so for transfer-dominated messages the speedup approaches log N.
#pragma once

#include "hc/paths.hpp"
#include "sim/event.hpp"

#include <cstddef>
#include <vector>

namespace hcube::routing {

/// Sends `total_size` elements from `src` to `dst`, split evenly over the
/// first `path_count` node-disjoint paths (1 <= path_count <= n), each path
/// pipelined in `chunk`-element pieces. Requires PortModel::all_port for
/// actual concurrency (other models serialize at the endpoints).
class MultipathTransfer final : public sim::Protocol {
public:
    MultipathTransfer(hc::dim_t n, hc::node_t src, hc::node_t dst,
                      double total_size, double chunk,
                      std::size_t path_count);

    void on_start(sim::NodeContext& ctx) override;
    void on_receive(sim::NodeContext& ctx, const sim::Message& message) override;

    /// Elements that reached the destination.
    [[nodiscard]] double received() const { return received_; }
    /// True once the whole message arrived.
    [[nodiscard]] bool complete() const {
        return received_ >= total_size_ - 1e-9;
    }

private:
    hc::node_t src_;
    hc::node_t dst_;
    double total_size_;
    double chunk_;
    std::vector<hc::Path> paths_;
    /// position_[p][node] = index of `node` in path p (or npos).
    std::vector<std::vector<std::size_t>> position_;
    double received_ = 0;
};

} // namespace hcube::routing
