// Cycle-level personalized-communication (scatter) schedules (paper §4) and
// their reversals (gather).
//
// The root owns M elements (= `packets_per_dest` packets of B elements) for
// every other node and sends them down a spanning tree; internal nodes
// forward in FIFO order. The root's emission policy is the algorithmic knob:
//
//  * SBT, one port (§5.2): destinations in descending relative address,
//    which uses root ports in the binary-reflected Gray code transition
//    order — port 0 every other cycle, port 1 every fourth, ...
//  * BST, one port (§4.2.2): subtrees served cyclically, one packet per
//    subtree per round.
//  * all ports (lemma 4.2): every root port streams its own subtree,
//    farthest destinations first (reverse breadth-first), which makes the
//    root the last-finishing sender and attains the lower bound.
//
// Packet identifiers: packet (rel - 1) * packets_per_dest + k is the k-th
// packet destined to relative address rel.
//
// Cycle schedules cover the full-duplex and all-port models; half-duplex
// personalized communication (receive blocking) is modelled in the event
// engine, which is where the paper's Figure 8 lives.
#pragma once

#include "sim/cycle.hpp"
#include "trees/spanning_tree.hpp"

#include <functional>
#include <vector>

namespace hcube::routing {

using hc::dim_t;
using hc::node_t;
using sim::packet_t;
using sim::PortModel;
using sim::Schedule;

/// Traversal order of destinations inside one subtree (§5.2 calls both out
/// as viable; reverse breadth-first sends to the most remote nodes first).
enum class SubtreeOrder {
    depth_first,           ///< preorder, the order the paper measured
    reverse_breadth_first, ///< deepest level first — the lower-bound order
};

/// Destinations in descending relative address (the SBT §5.2 policy),
/// as absolute node addresses.
[[nodiscard]] std::vector<node_t>
descending_dest_order(const trees::SpanningTree& tree);

/// Destinations interleaved round-robin across the root's subtrees, each
/// subtree internally in `order` (the BST one-port policy).
[[nodiscard]] std::vector<node_t>
cyclic_dest_order(const trees::SpanningTree& tree, SubtreeOrder order);

/// Per-root-port destination lists (index = first-hop dimension), each in
/// `order` — the all-port emission policy.
[[nodiscard]] std::vector<std::vector<node_t>>
per_subtree_dest_orders(const trees::SpanningTree& tree, SubtreeOrder order);

/// One-port (full-duplex) scatter: the root emits one packet per cycle
/// following `dest_sequence` (each destination expanded to its
/// packets_per_dest packets in sequence position); every other node forwards
/// FIFO at one send per cycle.
[[nodiscard]] Schedule
scatter_one_port(const trees::SpanningTree& tree,
                 const std::vector<node_t>& dest_sequence,
                 packet_t packets_per_dest);

/// Maps a destination and per-destination index to a packet id. The full
/// cube numbers by relative address (scatter_packet_id); incomplete-cube
/// scatters number by dense member rank so ids stay contiguous.
using ScatterIdFn = std::function<packet_t(node_t dest, packet_t k)>;

/// The scatter_one_port emission loop over an arbitrary destination set: a
/// tree that spans any subset, `dest_sequence` covering each destination
/// exactly once, and `packet_id` assigning the (dest, k) packet numbers
/// (which must be a bijection onto [0, dests * packets_per_dest)).
/// scatter_one_port delegates here, so full-cube schedules are unchanged.
[[nodiscard]] Schedule
scatter_one_port_partial(const trees::SpanningTree& tree,
                         const std::vector<node_t>& dest_sequence,
                         packet_t packets_per_dest,
                         const ScatterIdFn& packet_id);

/// All-port scatter: every root port streams its own subtree's packets, one
/// per cycle; other nodes forward FIFO per port.
[[nodiscard]] Schedule
scatter_all_port(const trees::SpanningTree& tree,
                 const std::vector<std::vector<node_t>>& port_sequences,
                 packet_t packets_per_dest);

/// Time-reverses a schedule in which every packet ends at a single node:
/// scatter becomes gather (all-to-one collection, the paper's "reverse
/// operation"). Feasible under the same port model by symmetry.
[[nodiscard]] Schedule reverse_schedule(const Schedule& schedule);

/// The packet id of the k-th packet destined to `dest` under root `s`.
[[nodiscard]] packet_t scatter_packet_id(node_t dest, node_t s,
                                         packet_t packets_per_dest,
                                         packet_t k);

} // namespace hcube::routing
