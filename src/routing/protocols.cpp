#include "routing/protocols.hpp"

#include "common/check.hpp"
#include "trees/msbt.hpp"

#include <algorithm>
#include <cmath>

namespace hcube::routing {

namespace {

/// The child of `u` on the tree path from `u` down to `dest`.
hc::node_t next_hop(const trees::SpanningTree& tree, hc::node_t u,
                    hc::node_t dest) {
    hc::node_t x = dest;
    while (tree.parent[x] != u) {
        x = tree.parent[x];
        HCUBE_ENSURE_MSG(x != tree.root, "dest is not below u in the tree");
    }
    return x;
}

/// Emits `total` elements to `to` in protocol messages of at most `chunk`.
void send_chunked(NodeContext& ctx, hc::node_t to, double total, double chunk,
                  std::uint64_t tag) {
    double remaining = total;
    while (remaining > 0) {
        const double piece = std::min(remaining, chunk);
        ctx.send(to, Message{to, piece, tag});
        remaining -= piece;
    }
}

} // namespace

// ---------------------------------------------------------------- broadcast

PortOrientedBroadcast::PortOrientedBroadcast(const trees::SpanningTree& tree,
                                             double total_size, double chunk)
    : tree_(tree), total_size_(total_size), chunk_(chunk),
      received_(tree.node_count(), 0) {
    HCUBE_ENSURE(total_size > 0 && chunk > 0);
}

void PortOrientedBroadcast::on_start(NodeContext& ctx) {
    if (ctx.self() == tree_.root) {
        received_[ctx.self()] = total_size_;
        forward_all(ctx);
    }
}

void PortOrientedBroadcast::on_receive(NodeContext& ctx,
                                       const Message& message) {
    double& got = received_[ctx.self()];
    const bool was_complete = got >= total_size_;
    got += message.size;
    if (!was_complete && got >= total_size_) {
        forward_all(ctx);
    }
}

void PortOrientedBroadcast::forward_all(NodeContext& ctx) {
    for (const hc::node_t child : tree_.children[ctx.self()]) {
        send_chunked(ctx, child, total_size_, chunk_, 0);
    }
}

bool PortOrientedBroadcast::complete() const {
    return std::ranges::all_of(
        received_, [&](double r) { return r >= total_size_; });
}

PipelinedBroadcast::PipelinedBroadcast(const trees::SpanningTree& tree,
                                       double total_size, double chunk)
    : tree_(tree), total_size_(total_size), chunk_(chunk),
      received_(tree.node_count(), 0) {
    HCUBE_ENSURE(total_size > 0 && chunk > 0);
}

void PipelinedBroadcast::on_start(NodeContext& ctx) {
    if (ctx.self() != tree_.root) {
        return;
    }
    received_[ctx.self()] = total_size_;
    // Chunk-major emission: chunk 0 to every child, then chunk 1, ... so
    // the pipeline fills breadth-first.
    double remaining = total_size_;
    while (remaining > 0) {
        const double piece = std::min(remaining, chunk_);
        for (const hc::node_t child : tree_.children[ctx.self()]) {
            ctx.send(child, Message{child, piece, 0});
        }
        remaining -= piece;
    }
}

void PipelinedBroadcast::on_receive(NodeContext& ctx,
                                    const Message& message) {
    received_[ctx.self()] += message.size;
    for (const hc::node_t child : tree_.children[ctx.self()]) {
        ctx.send(child, Message{child, message.size, message.tag});
    }
}

bool PipelinedBroadcast::complete() const {
    return std::ranges::all_of(received_, [&](double r) {
        return r >= total_size_ - 1e-9;
    });
}

MsbtBroadcastProtocol::MsbtBroadcastProtocol(hc::dim_t n, hc::node_t source,
                                             double total_size, double chunk)
    : n_(n), source_(source),
      stream_size_(total_size / n), chunk_(chunk),
      received_(hc::node_t{1} << n, 0), expected_total_(total_size) {
    HCUBE_ENSURE(total_size > 0 && chunk > 0);
    const hc::node_t count = hc::node_t{1} << n;
    children_.assign(static_cast<std::size_t>(n), {});
    for (hc::dim_t j = 0; j < n; ++j) {
        auto& per_node = children_[static_cast<std::size_t>(j)];
        per_node.resize(count);
        for (hc::node_t i = 0; i < count; ++i) {
            auto kids = trees::msbt_children(i, j, source, n);
            std::ranges::sort(kids, [&](hc::node_t a, hc::node_t b) {
                return trees::msbt_edge_label(a, j, source, n) <
                       trees::msbt_edge_label(b, j, source, n);
            });
            per_node[i] = std::move(kids);
        }
    }
}

void MsbtBroadcastProtocol::on_start(NodeContext& ctx) {
    if (ctx.self() != source_) {
        return;
    }
    received_[source_] = expected_total_;
    // Chunk-major across the n streams: one new chunk per subtree per round.
    const auto rounds = static_cast<std::uint64_t>(
        std::ceil(stream_size_ / chunk_));
    double sent = 0;
    for (std::uint64_t r = 0; r < rounds; ++r) {
        const double piece = std::min(chunk_, stream_size_ - sent);
        for (hc::dim_t j = 0; j < n_; ++j) {
            const auto& kids =
                children_[static_cast<std::size_t>(j)][source_];
            HCUBE_ENSURE(kids.size() == 1);
            ctx.send(kids[0], Message{kids[0], piece,
                                      static_cast<std::uint64_t>(j)});
        }
        sent += piece;
    }
}

void MsbtBroadcastProtocol::on_receive(NodeContext& ctx,
                                       const Message& message) {
    received_[ctx.self()] += message.size;
    const auto j = static_cast<std::size_t>(message.tag);
    for (const hc::node_t child : children_[j][ctx.self()]) {
        ctx.send(child, Message{child, message.size, message.tag});
    }
}

bool MsbtBroadcastProtocol::complete() const {
    return std::ranges::all_of(received_, [&](double r) {
        return r >= expected_total_ - 1e-6;
    });
}

// ------------------------------------------------------------------ scatter

ScatterProtocol::ScatterProtocol(const trees::SpanningTree& tree,
                                 std::vector<hc::node_t> dest_sequence,
                                 double size_per_dest)
    : tree_(tree), dest_sequence_(std::move(dest_sequence)),
      size_per_dest_(size_per_dest) {
    HCUBE_ENSURE(size_per_dest > 0);
    HCUBE_ENSURE_MSG(dest_sequence_.size() == tree.node_count() - 1,
                     "destination sequence must cover every non-root node");
}

void ScatterProtocol::on_start(NodeContext& ctx) {
    if (ctx.self() != tree_.root) {
        return;
    }
    for (const hc::node_t dest : dest_sequence_) {
        ctx.send(next_hop(tree_, tree_.root, dest),
                 Message{dest, size_per_dest_, 0});
    }
}

void ScatterProtocol::on_receive(NodeContext& ctx, const Message& message) {
    if (message.dest == ctx.self()) {
        ++delivered_;
        return;
    }
    ctx.send(next_hop(tree_, ctx.self(), message.dest), message);
}

MergedScatterProtocol::MergedScatterProtocol(const trees::SpanningTree& tree,
                                             double size_per_dest)
    : tree_(tree), size_per_dest_(size_per_dest),
      subtree_size_(tree.node_count(), 1) {
    HCUBE_ENSURE(size_per_dest > 0);
    const auto order = tree.bfs_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        for (const hc::node_t child : tree_.children[*it]) {
            subtree_size_[*it] += subtree_size_[child];
        }
    }
}

void MergedScatterProtocol::send_merged(NodeContext& ctx, hc::node_t child) {
    ctx.send(child,
             Message{child,
                     static_cast<double>(subtree_size_[child]) *
                         size_per_dest_,
                     1});
}

void MergedScatterProtocol::on_start(NodeContext& ctx) {
    if (ctx.self() != tree_.root) {
        return;
    }
    for (const hc::node_t child : tree_.children[ctx.self()]) {
        send_merged(ctx, child);
    }
}

void MergedScatterProtocol::on_receive(NodeContext& ctx,
                                       const Message& message) {
    (void)message;
    ++delivered_; // this node's own M elements just arrived (inside the merge)
    for (const hc::node_t child : tree_.children[ctx.self()]) {
        send_merged(ctx, child);
    }
}

// ------------------------------------------------------------ gather/reduce

GatherProtocol::GatherProtocol(const trees::SpanningTree& tree,
                               double size_per_node, bool combining)
    : tree_(tree), size_per_node_(size_per_node), combining_(combining),
      pending_children_(tree.node_count()),
      accumulated_(tree.node_count(), size_per_node) {
    HCUBE_ENSURE(size_per_node > 0);
    for (hc::node_t i = 0; i < tree.node_count(); ++i) {
        pending_children_[i] = tree_.children[i].size();
    }
}

void GatherProtocol::on_start(NodeContext& ctx) {
    if (pending_children_[ctx.self()] == 0 && ctx.self() != tree_.root) {
        maybe_send_up(ctx);
    }
}

void GatherProtocol::on_receive(NodeContext& ctx, const Message& message) {
    const hc::node_t self = ctx.self();
    if (!combining_) {
        accumulated_[self] += message.size;
    }
    HCUBE_ENSURE(pending_children_[self] > 0);
    if (--pending_children_[self] == 0) {
        if (self == tree_.root) {
            complete_ = true;
        } else {
            maybe_send_up(ctx);
        }
    }
}

void GatherProtocol::maybe_send_up(NodeContext& ctx) {
    const hc::node_t self = ctx.self();
    const double size = combining_ ? size_per_node_ : accumulated_[self];
    ctx.send(tree_.parent[self], Message{tree_.parent[self], size, 0});
}

} // namespace hcube::routing
