// All-to-all extensions (paper §1: "lower bound algorithms for broadcasting
// from every node ... and sending personalized data from every node ... can
// be attained by using N BSTs rooted at each node concurrently").
//
// Two all-to-all personalized (complete exchange / transpose) algorithms:
//
//  * recursive exchange — the classical dimension-order algorithm: n rounds,
//    one cube dimension per round; every node exchanges half of its held
//    data with its neighbour across that dimension. Exact cycle count
//    n · N/2 · Pd under one-port full duplex; produced as a verified
//    cycle-level schedule.
//
//  * concurrent BST scatter — every node runs the BST scatter rooted at
//    itself, all N scatters in flight simultaneously (the translated BSTs of
//    the paper); provided as an event-engine protocol where link contention
//    resolves dynamically.
#pragma once

#include "sim/cycle.hpp"
#include "sim/event.hpp"
#include "trees/spanning_tree.hpp"

#include <vector>

namespace hcube::routing {

/// Packet id of the k-th packet from `src` to `dest` in an all-to-all
/// exchange with `packets_per_pair` packets per (src, dest) pair.
[[nodiscard]] sim::packet_t alltoall_packet_id(hc::node_t src, hc::node_t dest,
                                               hc::dim_t n,
                                               sim::packet_t packets_per_pair,
                                               sim::packet_t k);

/// The dimension-order complete exchange as a cycle schedule (one-port full
/// duplex): round d occupies cycles [d·K, (d+1)·K) with K = N/2 ·
/// packets_per_pair, during which every node sends its held packets whose
/// destination differs in bit d to the neighbour across dimension d.
[[nodiscard]] sim::Schedule
alltoall_recursive_exchange(hc::dim_t n, sim::packet_t packets_per_pair);

/// All-to-all *broadcast* (gossip / allgather) by recursive doubling, as a
/// cycle schedule under one-port full duplex: in round d every node
/// exchanges its 2^d accumulated packets with the neighbour across
/// dimension d. Total makespan sum_d 2^d = N - 1 cycles — the lower bound,
/// since every node must receive N - 1 distinct packets at one per cycle.
/// Packet j is node j's contribution.
[[nodiscard]] sim::Schedule allgather_recursive_doubling(hc::dim_t n);

/// Event protocol: all N BST scatters at once. Every node acts as the root
/// of its own translated BST and emits one message of `size_per_pair`
/// elements per destination (cyclic subtree order); intermediate nodes
/// forward within the *source's* tree.
class AllToAllBstProtocol final : public sim::Protocol {
public:
    AllToAllBstProtocol(hc::dim_t n, double size_per_pair);

    void on_start(sim::NodeContext& ctx) override;
    void on_receive(sim::NodeContext& ctx, const sim::Message& message) override;

    /// Total (src, dest) payloads delivered.
    [[nodiscard]] std::size_t delivered() const { return delivered_; }

private:
    hc::dim_t n_;
    double size_per_pair_;
    /// One BST per source root (translation of the BST at 0).
    std::vector<trees::SpanningTree> trees_;
    std::size_t delivered_ = 0;
};

} // namespace hcube::routing
