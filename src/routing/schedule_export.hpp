// Named schedule families exported for consumers that *execute* schedules
// rather than generate them piecemeal — the threaded runtime (hcube::rt) and
// the bench harnesses. Each hook pairs a generator from broadcast.hpp /
// scatter.hpp / alltoall.hpp with the argument plumbing (tree, ordering
// policy, port model) so every consumer builds byte-identical schedules.
#pragma once

#include "mbr/view.hpp"
#include "routing/scatter.hpp"
#include "sim/cycle.hpp"
#include "trees/spanning_tree.hpp"

#include <string_view>

namespace hcube::routing {

/// How a single-tree broadcast forwards the message (paper §2).
enum class BroadcastDiscipline {
    port_oriented, ///< receive everything, then retransmit whole (§3.3.1)
    paced,         ///< pipelined packet-by-packet forwarding
};

/// Root emission policy for a single-tree scatter (paper §4-5).
enum class ScatterPolicy {
    descending, ///< descending relative address (SBT §5.2), one port
    cyclic,     ///< round-robin across subtrees (BST §4.2.2), one port
    per_port,   ///< every root port streams its own subtree (lemma 4.2)
};

[[nodiscard]] constexpr std::string_view
to_string(BroadcastDiscipline d) noexcept {
    return d == BroadcastDiscipline::port_oriented ? "port-oriented" : "paced";
}

[[nodiscard]] constexpr std::string_view to_string(ScatterPolicy p) noexcept {
    switch (p) {
    case ScatterPolicy::descending: return "descending";
    case ScatterPolicy::cyclic: return "cyclic";
    case ScatterPolicy::per_port: return "per-port";
    }
    return "?";
}

/// Broadcast of `packets` packets from tree.root down `tree` under
/// `discipline`. Works for any spanning tree (SBT, BST, TCBT, HP).
[[nodiscard]] Schedule make_tree_broadcast(const trees::SpanningTree& tree,
                                           BroadcastDiscipline discipline,
                                           packet_t packets, PortModel model);

/// MSBT broadcast of `packets` total packets (must be divisible by n; each
/// of the n ERSBT streams carries packets/n of them).
[[nodiscard]] Schedule make_msbt_broadcast(hc::dim_t n, hc::node_t root,
                                           packet_t packets, PortModel model);

/// Scatter of `packets_per_dest` packets to every non-root node down `tree`.
/// `per_port` requires the all-port model; the one-port policies are
/// generated against the full-duplex cycle model (and remain feasible under
/// all-port).
[[nodiscard]] Schedule make_tree_scatter(const trees::SpanningTree& tree,
                                         ScatterPolicy policy,
                                         packet_t packets_per_dest,
                                         PortModel model);

/// Gather: the time-reversed scatter (every node's packets collected at the
/// root), feasible under the same port model by symmetry.
[[nodiscard]] Schedule make_tree_gather(const trees::SpanningTree& tree,
                                        ScatterPolicy policy,
                                        packet_t packets_per_dest,
                                        PortModel model);

// ---- incomplete-cube (membership) hooks --------------------------------
//
// The member hooks run the same generators over the tree that spans only
// the live members of an mbr::View (mbr::build_member_tree). On a full
// view that tree IS the SBT — structure and children order — so every
// member schedule below is byte-identical to its full-cube counterpart
// there; on a partial view live members relay around the holes. Packet
// numbering switches from relative address to dense member rank so ids
// stay contiguous in [0, packet_count) at any member count.

/// Broadcast of `packets` packets from live member `root` to every live
/// member of `view`. Full view + any discipline: byte-identical to
/// make_tree_broadcast(build_sbt(n, root), ...).
[[nodiscard]] Schedule make_member_broadcast(const mbr::View& view,
                                             hc::node_t root,
                                             BroadcastDiscipline discipline,
                                             packet_t packets,
                                             PortModel model);

/// One-port scatter of `packets_per_dest` packets to every live non-root
/// member, destinations in descending relative address (the SBT §5.2
/// policy restricted to the member set). Full view: byte-identical to
/// make_tree_scatter(build_sbt(n, root), descending, ...).
[[nodiscard]] Schedule make_member_scatter(const mbr::View& view,
                                           hc::node_t root,
                                           packet_t packets_per_dest);

/// Gather: the time-reversed member scatter.
[[nodiscard]] Schedule make_member_gather(const mbr::View& view,
                                          hc::node_t root,
                                          packet_t packets_per_dest);

/// The packet id of the k-th packet destined to live member `dest` in a
/// member scatter from `root`: dest's rank among the live relative
/// addresses (excluding the root's own 0), scaled by packets_per_dest. On
/// a full view this is exactly scatter_packet_id.
[[nodiscard]] packet_t member_scatter_packet_id(const mbr::View& view,
                                                hc::node_t dest,
                                                hc::node_t root,
                                                packet_t packets_per_dest,
                                                packet_t k);

/// All-to-all broadcast (allgather) by recursive doubling; packet j is node
/// j's contribution. One-port full duplex, N - 1 cycles.
[[nodiscard]] Schedule make_allgather_schedule(hc::dim_t n);

/// Dimension-order complete exchange with `packets_per_pair` packets per
/// (src, dest) pair. One-port full duplex.
[[nodiscard]] Schedule make_alltoall_schedule(hc::dim_t n,
                                              packet_t packets_per_pair);

/// Time-reverses a broadcast schedule into a *combining* reduction schedule:
/// every forward send (c, u -> v, p) becomes (T-1-c, v -> u, p), so each
/// non-root node sends packet p exactly once (its accumulated partial sum)
/// and every internal node has received all of its children's contributions
/// strictly before its own send — the store-and-forward availability rule of
/// the forward schedule time-reverses into exactly this guarantee. The
/// result is NOT a valid schedule for sim::execute_schedule (a reduction
/// delivers packet p to the root once per child, which the executor rejects
/// as duplicate delivery); it is meant for the runtime's combining mode,
/// where duplicate arrivals accumulate. initial_holder is rewritten to the
/// reduction root for every packet.
[[nodiscard]] Schedule reverse_broadcast_for_reduce(const Schedule& broadcast,
                                                    hc::node_t root);

} // namespace hcube::routing
