// Event-engine protocols: the distributed routing programs behind the
// paper's iPSC measurements (Figures 5-8).
//
// Sizes are in elements (bytes on the iPSC). `chunk` is the *external*
// packet size of §5.1 — the granularity at which the program hands data to
// the transport; the engine applies the machine's internal packet size on
// top of it.
#pragma once

#include "sim/event.hpp"
#include "trees/spanning_tree.hpp"

#include <cstdint>
#include <vector>

namespace hcube::routing {

using sim::Message;
using sim::NodeContext;
using sim::Protocol;

/// Port-oriented broadcast (§2, §3.3.1): every node receives the whole
/// message before retransmitting it, child by child in stored order. This is
/// the classical one-port SBT broadcast when run on an SBT; Figures 5 and 6
/// measure it.
class PortOrientedBroadcast final : public Protocol {
public:
    /// Broadcasts `total_size` elements from tree.root in external packets
    /// of `chunk` elements.
    PortOrientedBroadcast(const trees::SpanningTree& tree, double total_size,
                          double chunk);

    void on_start(NodeContext& ctx) override;
    void on_receive(NodeContext& ctx, const Message& message) override;

    /// True once every node has the full message (queryable after run()).
    [[nodiscard]] bool complete() const;

private:
    void forward_all(NodeContext& ctx);

    const trees::SpanningTree& tree_;
    double total_size_;
    double chunk_;
    std::vector<double> received_;
};

/// Packet-oriented pipelined broadcast: every chunk is forwarded to all
/// children as soon as it arrives (chunk-major send order at the root).
/// On the SBT under all-port this is the (ceil(M/B) + log N - 1)-step
/// pipeline of §3.3.1.
class PipelinedBroadcast final : public Protocol {
public:
    PipelinedBroadcast(const trees::SpanningTree& tree, double total_size,
                       double chunk);

    void on_start(NodeContext& ctx) override;
    void on_receive(NodeContext& ctx, const Message& message) override;

    [[nodiscard]] bool complete() const;

private:
    const trees::SpanningTree& tree_;
    double total_size_;
    double chunk_;
    std::vector<double> received_;
};

/// MSBT broadcast (§3.3.2): the message splits into n equal streams, one
/// pipelined down each edge-reversed SBT; a node forwards a stream-j chunk
/// to its ERSBT-j children in edge-label order. Figures 6 and 7 measure
/// this against the port-oriented SBT.
class MsbtBroadcastProtocol final : public Protocol {
public:
    MsbtBroadcastProtocol(hc::dim_t n, hc::node_t source, double total_size,
                          double chunk);

    void on_start(NodeContext& ctx) override;
    void on_receive(NodeContext& ctx, const Message& message) override;

    [[nodiscard]] bool complete() const;

private:
    hc::dim_t n_;
    hc::node_t source_;
    double stream_size_; ///< total_size / n per subtree stream
    double chunk_;
    /// children_[j][i]: ERSBT-j children of node i, ascending edge label.
    std::vector<std::vector<std::vector<hc::node_t>>> children_;
    std::vector<double> received_;
    double expected_total_;
};

/// Personalized communication (scatter) with one message of M elements per
/// destination (the B <= M regime): the root emits messages in the given
/// destination order; intermediate nodes forward towards message.dest along
/// tree paths. Figure 8 measures this for the SBT (descending order) and
/// BST (cyclic order) under one-port with overlap.
class ScatterProtocol final : public Protocol {
public:
    ScatterProtocol(const trees::SpanningTree& tree,
                    std::vector<hc::node_t> dest_sequence,
                    double size_per_dest);

    void on_start(NodeContext& ctx) override;
    void on_receive(NodeContext& ctx, const Message& message) override;

    /// Number of destinations that got their payload.
    [[nodiscard]] std::size_t delivered() const { return delivered_; }

private:
    const trees::SpanningTree& tree_;
    std::vector<hc::node_t> dest_sequence_;
    double size_per_dest_;
    std::size_t delivered_ = 0;
};

/// Scatter in the large-packet regime (B >= subtree loads): the root sends
/// each subtree root one merged message carrying the entire subtree's data;
/// nodes split off their own M elements and forward per-child merged
/// messages. This is the §4.2 recursive algorithm whose one-port time is
/// (N-1) M t_c + log N τ on the SBT.
class MergedScatterProtocol final : public Protocol {
public:
    MergedScatterProtocol(const trees::SpanningTree& tree,
                          double size_per_dest);

    void on_start(NodeContext& ctx) override;
    void on_receive(NodeContext& ctx, const Message& message) override;

    [[nodiscard]] std::size_t delivered() const { return delivered_; }

private:
    void send_merged(NodeContext& ctx, hc::node_t child);

    const trees::SpanningTree& tree_;
    double size_per_dest_;
    std::vector<std::uint64_t> subtree_size_; ///< descendants incl. self
    std::size_t delivered_ = 0;
};

/// Gather / reduce — the paper's "reverse operation" (§1): leaves send
/// upward; an internal node waits for all children, then forwards. With
/// `combining` the upward message stays M elements (reduction); without it
/// the message grows to (subtree size) * M (gather / collection).
class GatherProtocol final : public Protocol {
public:
    GatherProtocol(const trees::SpanningTree& tree, double size_per_node,
                   bool combining);

    void on_start(NodeContext& ctx) override;
    void on_receive(NodeContext& ctx, const Message& message) override;

    /// True once the root has everything.
    [[nodiscard]] bool complete() const { return complete_; }

private:
    void maybe_send_up(NodeContext& ctx);

    const trees::SpanningTree& tree_;
    double size_per_node_;
    bool combining_;
    std::vector<std::size_t> pending_children_;
    std::vector<double> accumulated_;
    bool complete_ = false;
};

} // namespace hcube::routing
