#include "routing/scatter.hpp"

#include "common/check.hpp"

#include <algorithm>
#include <cstdint>

namespace hcube::routing {

namespace {

/// Path from the tree root to `dest`, inclusive.
std::vector<node_t> root_path(const trees::SpanningTree& tree, node_t dest) {
    std::vector<node_t> path;
    for (node_t u = dest; u != tree.root; u = tree.parent[u]) {
        path.push_back(u);
    }
    path.push_back(tree.root);
    std::ranges::reverse(path);
    return path;
}

/// Nodes of subtree `j` in the requested traversal order.
std::vector<node_t> subtree_order(const trees::SpanningTree& tree, dim_t j,
                                  SubtreeOrder order) {
    std::vector<node_t> nodes = tree.subtree_preorder(j);
    if (order == SubtreeOrder::reverse_breadth_first) {
        std::ranges::stable_sort(nodes, [&](node_t a, node_t b) {
            return tree.level[a] > tree.level[b];
        });
    }
    return nodes;
}

} // namespace

packet_t scatter_packet_id(node_t dest, node_t s, packet_t packets_per_dest,
                           packet_t k) {
    return ((dest ^ s) - 1) * packets_per_dest + k;
}

std::vector<node_t> descending_dest_order(const trees::SpanningTree& tree) {
    std::vector<node_t> dests;
    dests.reserve(tree.node_count() - 1);
    for (node_t rel = tree.node_count() - 1; rel >= 1; --rel) {
        dests.push_back(tree.root ^ rel);
    }
    return dests;
}

std::vector<node_t> cyclic_dest_order(const trees::SpanningTree& tree,
                                      SubtreeOrder order) {
    std::vector<std::vector<node_t>> lists =
        per_subtree_dest_orders(tree, order);
    std::vector<std::size_t> cursor(lists.size(), 0);
    std::vector<node_t> sequence;
    sequence.reserve(tree.node_count() - 1);
    bool any = true;
    while (any) {
        any = false;
        for (std::size_t j = 0; j < lists.size(); ++j) {
            if (cursor[j] < lists[j].size()) {
                sequence.push_back(lists[j][cursor[j]++]);
                any = true;
            }
        }
    }
    return sequence;
}

std::vector<std::vector<node_t>>
per_subtree_dest_orders(const trees::SpanningTree& tree, SubtreeOrder order) {
    std::vector<std::vector<node_t>> lists(static_cast<std::size_t>(tree.n));
    for (dim_t j = 0; j < tree.n; ++j) {
        lists[static_cast<std::size_t>(j)] = subtree_order(tree, j, order);
    }
    return lists;
}

Schedule scatter_one_port(const trees::SpanningTree& tree,
                          const std::vector<node_t>& dest_sequence,
                          packet_t packets_per_dest) {
    HCUBE_ENSURE_MSG(dest_sequence.size() == tree.node_count() - 1,
                     "destination sequence must cover every non-root node");
    return scatter_one_port_partial(
        tree, dest_sequence, packets_per_dest,
        [&tree, packets_per_dest](node_t dest, packet_t k) {
            return scatter_packet_id(dest, tree.root, packets_per_dest, k);
        });
}

Schedule scatter_one_port_partial(const trees::SpanningTree& tree,
                                  const std::vector<node_t>& dest_sequence,
                                  packet_t packets_per_dest,
                                  const ScatterIdFn& packet_id) {
    HCUBE_ENSURE(packets_per_dest >= 1);

    Schedule schedule;
    schedule.n = tree.n;
    schedule.packet_count =
        static_cast<packet_t>(dest_sequence.size()) * packets_per_dest;
    schedule.initial_holder.assign(schedule.packet_count, tree.root);

    // last_send[u]: last cycle in which u transmitted (-1 = never). One send
    // per node per cycle is the full-duplex constraint; receives cannot
    // conflict because each node has a single tree parent.
    std::vector<std::int64_t> last_send(tree.node_count(), -1);

    std::uint32_t emission = 0;
    for (const node_t dest : dest_sequence) {
        const std::vector<node_t> path = root_path(tree, dest);
        for (packet_t k = 0; k < packets_per_dest; ++k) {
            const packet_t packet = packet_id(dest, k);
            HCUBE_ENSURE_MSG(packet < schedule.packet_count,
                             "scatter packet id out of range");
            std::int64_t cycle = emission++;
            last_send[tree.root] = cycle;
            schedule.sends.push_back({static_cast<std::uint32_t>(cycle),
                                      path[0], path[1], packet});
            for (std::size_t hop = 1; hop + 1 < path.size(); ++hop) {
                const node_t u = path[hop];
                cycle = std::max(cycle + 1, last_send[u] + 1);
                last_send[u] = cycle;
                schedule.sends.push_back({static_cast<std::uint32_t>(cycle),
                                          u, path[hop + 1], packet});
            }
        }
    }
    return schedule;
}

Schedule scatter_all_port(const trees::SpanningTree& tree,
                          const std::vector<std::vector<node_t>>& port_sequences,
                          packet_t packets_per_dest) {
    HCUBE_ENSURE(packets_per_dest >= 1);

    Schedule schedule;
    schedule.n = tree.n;
    schedule.packet_count =
        static_cast<packet_t>(tree.node_count() - 1) * packets_per_dest;
    schedule.initial_holder.assign(schedule.packet_count, tree.root);

    // Streams through different root ports never share an internal node (a
    // tree path stays inside its subtree), so each subtree schedules
    // independently.
    std::size_t covered = 0;
    for (const auto& sequence : port_sequences) {
        std::vector<std::int64_t> last_send(tree.node_count(), -1);
        std::uint32_t emission = 0;
        for (const node_t dest : sequence) {
            ++covered;
            const std::vector<node_t> path = root_path(tree, dest);
            for (packet_t k = 0; k < packets_per_dest; ++k) {
                const packet_t packet =
                    scatter_packet_id(dest, tree.root, packets_per_dest, k);
                std::int64_t cycle = emission++;
                schedule.sends.push_back({static_cast<std::uint32_t>(cycle),
                                          path[0], path[1], packet});
                for (std::size_t hop = 1; hop + 1 < path.size(); ++hop) {
                    const node_t u = path[hop];
                    // Serializing u's sends at one per cycle costs nothing:
                    // everything u forwards arrives over the single link
                    // from its parent, at most one packet per cycle.
                    cycle = std::max(cycle + 1, last_send[u] + 1);
                    last_send[u] = cycle;
                    schedule.sends.push_back(
                        {static_cast<std::uint32_t>(cycle), u, path[hop + 1],
                         packet});
                }
            }
        }
    }
    HCUBE_ENSURE_MSG(covered == tree.node_count() - 1,
                     "port sequences must cover every non-root node");
    return schedule;
}

Schedule reverse_schedule(const Schedule& schedule) {
    std::uint32_t makespan = 0;
    for (const auto& send : schedule.sends) {
        makespan = std::max(makespan, send.cycle + 1);
    }

    Schedule out;
    out.n = schedule.n;
    out.packet_count = schedule.packet_count;

    // Final holder of each packet = receiver of its chronologically last
    // transmission (or the initial holder if it never moved).
    out.initial_holder = schedule.initial_holder;
    std::vector<std::uint32_t> last_cycle(schedule.packet_count, 0);
    std::vector<bool> moved(schedule.packet_count, false);
    for (const auto& send : schedule.sends) {
        if (!moved[send.packet] || send.cycle >= last_cycle[send.packet]) {
            moved[send.packet] = true;
            last_cycle[send.packet] = send.cycle;
            out.initial_holder[send.packet] = send.to;
        }
    }

    out.sends.reserve(schedule.sends.size());
    for (const auto& send : schedule.sends) {
        out.sends.push_back(
            {makespan - 1 - send.cycle, send.to, send.from, send.packet});
    }
    return out;
}

} // namespace hcube::routing
