#include "routing/collectives.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"
#include "routing/scatter.hpp"
#include "trees/bst.hpp"
#include "trees/msbt.hpp"
#include "trees/sbt.hpp"

#include <algorithm>
#include <memory>

namespace hcube::routing {

namespace {

using hc::dim_t;
using hc::node_t;
using sim::Message;
using sim::NodeContext;

std::shared_ptr<const Buffer> slice_of(const Buffer& source,
                                       std::size_t offset,
                                       std::size_t length) {
    return std::make_shared<Buffer>(source.begin() +
                                        static_cast<std::ptrdiff_t>(offset),
                                    source.begin() +
                                        static_cast<std::ptrdiff_t>(offset +
                                                                    length));
}

// ------------------------------------------------------------- broadcast

/// Port-oriented SBT broadcast carrying data: chunks tagged with their
/// element offset; a node forwards the whole assembled message per child.
class DataBroadcastSbt final : public sim::Protocol {
public:
    DataBroadcastSbt(const trees::SpanningTree& tree,
                     std::vector<Buffer>& data, double chunk)
        : tree_(tree), data_(data), chunk_(static_cast<std::size_t>(chunk)),
          received_(tree.node_count(), 0) {
        HCUBE_ENSURE(chunk_ > 0);
        total_ = data_[tree_.root].size();
        HCUBE_ENSURE_MSG(total_ > 0, "nothing to broadcast");
    }

    void on_start(NodeContext& ctx) override {
        if (ctx.self() == tree_.root) {
            received_[ctx.self()] = total_;
            forward(ctx);
        }
    }

    void on_receive(NodeContext& ctx, const Message& message) override {
        Buffer& mine = data_[ctx.self()];
        mine.resize(total_);
        const auto offset = static_cast<std::size_t>(message.tag);
        std::ranges::copy(*message.payload,
                          mine.begin() + static_cast<std::ptrdiff_t>(offset));
        received_[ctx.self()] += message.payload->size();
        if (received_[ctx.self()] == total_) {
            forward(ctx);
        }
    }

private:
    void forward(NodeContext& ctx) {
        const Buffer& mine = data_[ctx.self()];
        for (const node_t child : tree_.children[ctx.self()]) {
            for (std::size_t off = 0; off < total_; off += chunk_) {
                const std::size_t len = std::min(chunk_, total_ - off);
                ctx.send(child, Message{child, static_cast<double>(len), off,
                                        slice_of(mine, off, len)});
            }
        }
    }

    const trees::SpanningTree& tree_;
    std::vector<Buffer>& data_;
    std::size_t chunk_;
    std::size_t total_ = 0;
    std::vector<std::size_t> received_;
};

/// MSBT broadcast carrying data: the message splits into log N contiguous
/// slices, slice j pipelined down ERSBT j in chunks. Tags pack
/// (element offset << 6 | stream).
class DataBroadcastMsbt final : public sim::Protocol {
public:
    DataBroadcastMsbt(dim_t n, node_t source, std::vector<Buffer>& data,
                      double chunk)
        : n_(n), source_(source), data_(data),
          chunk_(static_cast<std::size_t>(chunk)),
          received_(node_t{1} << n, 0) {
        HCUBE_ENSURE(chunk_ > 0);
        total_ = data_[source].size();
        HCUBE_ENSURE_MSG(total_ >= static_cast<std::size_t>(n),
                         "message smaller than the stream count");
        const node_t count = node_t{1} << n;
        children_.assign(static_cast<std::size_t>(n), {});
        for (dim_t j = 0; j < n; ++j) {
            auto& per_node = children_[static_cast<std::size_t>(j)];
            per_node.resize(count);
            for (node_t i = 0; i < count; ++i) {
                auto kids = trees::msbt_children(i, j, source, n);
                std::ranges::sort(kids, [&](node_t a, node_t b) {
                    return trees::msbt_edge_label(a, j, source, n) <
                           trees::msbt_edge_label(b, j, source, n);
                });
                per_node[i] = std::move(kids);
            }
        }
    }

    void on_start(NodeContext& ctx) override {
        if (ctx.self() != source_) {
            return;
        }
        received_[source_] = total_;
        const Buffer& mine = data_[source_];
        // Stream j owns the contiguous slice [bounds(j), bounds(j+1));
        // emit chunk r of every stream before chunk r+1 of any (chunk-major).
        bool emitted = true;
        for (std::size_t r = 0; emitted; ++r) {
            emitted = false;
            for (dim_t j = 0; j < n_; ++j) {
                const auto [begin, end] = stream_bounds(j);
                const std::size_t off = begin + r * chunk_;
                if (off >= end) {
                    continue;
                }
                const std::size_t len = std::min(chunk_, end - off);
                const node_t child =
                    children_[static_cast<std::size_t>(j)][source_][0];
                ctx.send(child,
                         Message{child, static_cast<double>(len),
                                 pack_tag(off, j), slice_of(mine, off, len)});
                emitted = true;
            }
        }
    }

    void on_receive(NodeContext& ctx, const Message& message) override {
        Buffer& mine = data_[ctx.self()];
        mine.resize(total_);
        const auto [offset, stream] = unpack_tag(message.tag);
        std::ranges::copy(*message.payload,
                          mine.begin() + static_cast<std::ptrdiff_t>(offset));
        received_[ctx.self()] += message.payload->size();
        for (const node_t child : children_[stream][ctx.self()]) {
            ctx.send(child, Message{child, message.size, message.tag,
                                    message.payload});
        }
    }

    [[nodiscard]] bool complete() const {
        return std::ranges::all_of(received_, [&](std::size_t r) {
            return r >= total_;
        });
    }

private:
    [[nodiscard]] std::pair<std::size_t, std::size_t>
    stream_bounds(dim_t j) const {
        // Near-equal contiguous split of total_ into n_ slices.
        const auto idx = static_cast<std::size_t>(j);
        const auto streams = static_cast<std::size_t>(n_);
        return {total_ * idx / streams, total_ * (idx + 1) / streams};
    }

    static std::uint64_t pack_tag(std::size_t offset, dim_t stream) {
        return (static_cast<std::uint64_t>(offset) << 6) |
               static_cast<std::uint64_t>(stream);
    }
    static std::pair<std::size_t, std::size_t>
    unpack_tag(std::uint64_t tag) {
        return {static_cast<std::size_t>(tag >> 6),
                static_cast<std::size_t>(tag & 0x3f)};
    }

    dim_t n_;
    node_t source_;
    std::vector<Buffer>& data_;
    std::size_t chunk_;
    std::size_t total_ = 0;
    std::vector<std::vector<std::vector<node_t>>> children_;
    std::vector<std::size_t> received_;
};

// ------------------------------------------------------- scatter / gather

/// Personalized distribution with real payloads along tree paths.
class DataScatter final : public sim::Protocol {
public:
    DataScatter(const trees::SpanningTree& tree,
                const std::vector<Buffer>& slices, std::vector<Buffer>& data,
                std::vector<node_t> order)
        : tree_(tree), slices_(slices), data_(data),
          order_(std::move(order)) {}

    void on_start(NodeContext& ctx) override {
        if (ctx.self() != tree_.root) {
            return;
        }
        data_[tree_.root] = slices_[tree_.root];
        for (const node_t dest : order_) {
            ctx.send(next_hop(dest, tree_.root),
                     Message{dest, static_cast<double>(slices_[dest].size()),
                             0, std::make_shared<Buffer>(slices_[dest])});
        }
    }

    void on_receive(NodeContext& ctx, const Message& message) override {
        if (message.dest == ctx.self()) {
            data_[ctx.self()] = *message.payload;
            return;
        }
        ctx.send(next_hop(message.dest, ctx.self()), message);
    }

private:
    [[nodiscard]] node_t next_hop(node_t dest, node_t from) const {
        node_t x = dest;
        while (tree_.parent[x] != from) {
            x = tree_.parent[x];
        }
        return x;
    }

    const trees::SpanningTree& tree_;
    const std::vector<Buffer>& slices_;
    std::vector<Buffer>& data_;
    std::vector<node_t> order_;
};

/// Pipelined piecewise gather: every node ships its buffer towards the root
/// immediately; internal nodes relay pieces as they arrive.
class DataGather final : public sim::Protocol {
public:
    DataGather(const trees::SpanningTree& tree,
               const std::vector<Buffer>& data,
               std::vector<Buffer>& gathered)
        : tree_(tree), data_(data), gathered_(gathered) {}

    void on_start(NodeContext& ctx) override {
        const node_t self = ctx.self();
        if (self == tree_.root) {
            gathered_[self] = data_[self];
            return;
        }
        ctx.send(tree_.parent[self],
                 Message{tree_.root, static_cast<double>(data_[self].size()),
                         self, std::make_shared<Buffer>(data_[self])});
    }

    void on_receive(NodeContext& ctx, const Message& message) override {
        if (ctx.self() == tree_.root) {
            gathered_[static_cast<node_t>(message.tag)] = *message.payload;
            return;
        }
        ctx.send(tree_.parent[ctx.self()], message);
    }

private:
    const trees::SpanningTree& tree_;
    const std::vector<Buffer>& data_;
    std::vector<Buffer>& gathered_;
};

// ------------------------------------------- recursive-doubling exchanges

/// Shared skeleton for the dimension-order exchanges: per-node round
/// counter plus reordering of early-arriving partner messages. Early
/// arrivals park in a flat (node, round) slot array — rounds are bounded by
/// n, so no associative container is needed.
class RecursiveDoubling : public sim::Protocol {
public:
    RecursiveDoubling(dim_t n, node_t count)
        : n_(n), round_(count, 0),
          pending_(static_cast<std::size_t>(count) *
                   static_cast<std::size_t>(n)) {}

    void on_start(NodeContext& ctx) override { send_round(ctx); }

    void on_receive(NodeContext& ctx, const Message& message) override {
        HCUBE_ENSURE(message.tag < static_cast<std::uint64_t>(n_));
        pending_[slot(ctx.self(), message.tag)] = message.payload;
        auto& r = round_[ctx.self()];
        while (r < static_cast<std::uint64_t>(n_) &&
               pending_[slot(ctx.self(), r)] != nullptr) {
            const auto payload = std::move(pending_[slot(ctx.self(), r)]);
            pending_[slot(ctx.self(), r)] = nullptr;
            absorb(ctx.self(), static_cast<dim_t>(r), *payload);
            ++r;
            if (r < static_cast<std::uint64_t>(n_)) {
                send_round(ctx);
            }
        }
    }

protected:
    /// Payload this node contributes in round `r` (its current accumulator).
    virtual std::shared_ptr<const Buffer> outgoing(node_t self, dim_t r) = 0;
    /// Merge the partner's round-r data into the local state.
    virtual void absorb(node_t self, dim_t r, const Buffer& incoming) = 0;

    dim_t n_;

private:
    [[nodiscard]] std::size_t slot(node_t node,
                                   std::uint64_t r) const noexcept {
        return static_cast<std::size_t>(node) *
                   static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(r);
    }

    void send_round(NodeContext& ctx) {
        const node_t self = ctx.self();
        const auto r = static_cast<dim_t>(round_[self]);
        const node_t partner = hc::flip_bit(self, r);
        auto payload = outgoing(self, r);
        ctx.send(partner,
                 Message{partner, static_cast<double>(payload->size()),
                         static_cast<std::uint64_t>(r), std::move(payload)});
    }

    std::vector<std::uint64_t> round_;
    std::vector<std::shared_ptr<const Buffer>> pending_;
};

/// All-reduce (elementwise sum) by recursive doubling.
class DataAllreduce final : public RecursiveDoubling {
public:
    DataAllreduce(dim_t n, std::vector<Buffer>& data)
        : RecursiveDoubling(n, static_cast<node_t>(data.size())),
          data_(data) {}

protected:
    std::shared_ptr<const Buffer> outgoing(node_t self, dim_t) override {
        return std::make_shared<Buffer>(data_[self]);
    }

    void absorb(node_t self, dim_t, const Buffer& incoming) override {
        Buffer& mine = data_[self];
        HCUBE_ENSURE(incoming.size() == mine.size());
        for (std::size_t e = 0; e < mine.size(); ++e) {
            mine[e] += incoming[e];
        }
    }

private:
    std::vector<Buffer>& data_;
};

/// All-gather by recursive doubling: after round r a node holds the blocks
/// of every address agreeing with it on bits >= r+1; blocks travel in
/// ascending-source order so both sides can place them without metadata.
class DataAllgather final : public RecursiveDoubling {
public:
    DataAllgather(dim_t n, const std::vector<Buffer>& data,
                  std::vector<Buffer>& out)
        : RecursiveDoubling(n, static_cast<node_t>(data.size())), out_(out),
          block_(data.empty() ? 0 : data[0].size()) {
        const node_t count = node_t{1} << n;
        for (node_t i = 0; i < count; ++i) {
            HCUBE_ENSURE_MSG(data[i].size() == block_,
                             "allgather needs equal block sizes");
            out_[i].assign(static_cast<std::size_t>(count) * block_, 0);
            std::ranges::copy(data[i],
                              out_[i].begin() +
                                  static_cast<std::ptrdiff_t>(i * block_));
        }
    }

protected:
    std::shared_ptr<const Buffer> outgoing(node_t self, dim_t r) override {
        // Serialize own current blocks, ascending source address.
        auto payload = std::make_shared<Buffer>();
        payload->reserve((std::size_t{1} << r) * block_);
        for (const node_t src : block_set(self, r)) {
            const auto begin = out_[self].begin() +
                               static_cast<std::ptrdiff_t>(src * block_);
            payload->insert(payload->end(), begin,
                            begin + static_cast<std::ptrdiff_t>(block_));
        }
        return payload;
    }

    void absorb(node_t self, dim_t r, const Buffer& incoming) override {
        const node_t partner = hc::flip_bit(self, r);
        std::size_t cursor = 0;
        for (const node_t src : block_set(partner, r)) {
            std::copy(incoming.begin() +
                          static_cast<std::ptrdiff_t>(cursor),
                      incoming.begin() +
                          static_cast<std::ptrdiff_t>(cursor + block_),
                      out_[self].begin() +
                          static_cast<std::ptrdiff_t>(src * block_));
            cursor += block_;
        }
        HCUBE_ENSURE(cursor == incoming.size());
    }

private:
    /// Addresses whose blocks `node` holds before round r, ascending.
    [[nodiscard]] std::vector<node_t> block_set(node_t node, dim_t r) const {
        std::vector<node_t> set;
        set.reserve(std::size_t{1} << r);
        for (node_t x = 0; x < (node_t{1} << r); ++x) {
            set.push_back(node ^ x);
        }
        std::ranges::sort(set);
        return set;
    }

    std::vector<Buffer>& out_;
    std::size_t block_;
};

/// All-to-all personalized exchange by dimension-order recursive exchange:
/// at round r node i ships every held (src, dest) block whose dest differs
/// from i in bit r (dropping its local copy); the held set has a closed
/// form — before round r, node i holds exactly the blocks
///   { (i ^ x, d) : x < 2^r, d agreeing with i on bits 0..r-1 } —
/// so both sides serialize and place blocks in the same (src, dest)
/// lexicographic order without any metadata.
class DataAllToAll final : public RecursiveDoubling {
public:
    DataAllToAll(dim_t n, const std::vector<Buffer>& data,
                 std::vector<Buffer>& out)
        : RecursiveDoubling(n, static_cast<node_t>(data.size())), out_(out) {
        const node_t count = node_t{1} << n;
        block_ = data[0].size() / count;
        keys_.resize(count);
        elems_.resize(count);
        for (node_t i = 0; i < count; ++i) {
            HCUBE_ENSURE_MSG(data[i].size() ==
                                 static_cast<std::size_t>(count) * block_,
                             "alltoall needs N equal blocks per node");
            // data[i] is already block dest's elements at dest·block_, i.e.
            // ascending (src = i, dest) key order.
            elems_[i] = data[i];
            keys_[i].resize(count);
            for (node_t dest = 0; dest < count; ++dest) {
                keys_[i][dest] = make_key(i, dest);
            }
        }
    }

    void finish() {
        const node_t count = static_cast<node_t>(out_.size());
        for (node_t i = 0; i < count; ++i) {
            out_[i].assign(static_cast<std::size_t>(count) * block_, 0);
            HCUBE_ENSURE_MSG(keys_[i].size() == count,
                             "wrong number of blocks after the exchange");
            for (std::size_t k = 0; k < keys_[i].size(); ++k) {
                HCUBE_ENSURE_MSG(key_dest(keys_[i][k]) == i,
                                 "undelivered block after the exchange");
                const auto begin =
                    elems_[i].begin() +
                    static_cast<std::ptrdiff_t>(k * block_);
                std::copy(begin, begin + static_cast<std::ptrdiff_t>(block_),
                          out_[i].begin() +
                              static_cast<std::ptrdiff_t>(
                                  key_src(keys_[i][k]) * block_));
            }
        }
    }

protected:
    std::shared_ptr<const Buffer> outgoing(node_t self, dim_t r) override {
        // Serialize and drop the blocks leaving this node: those whose dest
        // differs from self in bit r. The per-node store is kept in
        // ascending (src, dest) key order, so one stable partition both
        // produces the wire order both sides agree on and compacts the
        // staying blocks — no per-block lookups or allocations.
        auto payload = std::make_shared<Buffer>();
        const std::vector<std::uint64_t>& keys = keys_[self];
        const Buffer& elems = elems_[self];
        payload->reserve(keys.size() / 2 * block_);
        scratch_keys_.clear();
        scratch_elems_.clear();
        for (std::size_t k = 0; k < keys.size(); ++k) {
            const auto begin =
                elems.begin() + static_cast<std::ptrdiff_t>(k * block_);
            const auto end = begin + static_cast<std::ptrdiff_t>(block_);
            if (hc::test_bit(key_dest(keys[k]) ^ self, r)) {
                payload->insert(payload->end(), begin, end);
            } else {
                scratch_keys_.push_back(keys[k]);
                scratch_elems_.insert(scratch_elems_.end(), begin, end);
            }
        }
        keys_[self].swap(scratch_keys_);
        elems_[self].swap(scratch_elems_);
        return payload;
    }

    void absorb(node_t self, dim_t r, const Buffer& incoming) override {
        // The partner ships the blocks { (partner ^ x, d) : x < 2^r, d
        // agreeing with partner on bits 0..r-1 and with self on bit r } in
        // ascending (src, dest) order. Both that stream and the staying
        // blocks are key-sorted, so a single merge restores the invariant.
        const node_t partner = hc::flip_bit(self, r);
        const node_t count = node_t{1} << n_;
        HCUBE_ENSURE(incoming.size() ==
                     static_cast<std::size_t>(count / 2) * block_);
        const node_t src_base = partner & ~hc::low_mask(r);
        const node_t dest_fixed =
            (partner & hc::low_mask(r)) | (self & (node_t{1} << r));
        const std::vector<std::uint64_t>& keys = keys_[self];
        const Buffer& elems = elems_[self];
        scratch_keys_.clear();
        scratch_elems_.clear();
        scratch_keys_.reserve(count);
        scratch_elems_.reserve(static_cast<std::size_t>(count) * block_);

        std::size_t stay = 0;
        std::size_t cursor = 0;
        const auto copy_staying = [&](std::size_t k) {
            const auto begin =
                elems.begin() + static_cast<std::ptrdiff_t>(k * block_);
            scratch_keys_.push_back(keys[k]);
            scratch_elems_.insert(scratch_elems_.end(), begin,
                                  begin + static_cast<std::ptrdiff_t>(
                                              block_));
        };
        for (node_t y = 0; y < (node_t{1} << r); ++y) {
            const node_t src = src_base | y;
            for (node_t hi = 0; hi < (count >> (r + 1)); ++hi) {
                const std::uint64_t key =
                    make_key(src, dest_fixed | (hi << (r + 1)));
                while (stay < keys.size() && keys[stay] < key) {
                    copy_staying(stay++);
                }
                scratch_keys_.push_back(key);
                scratch_elems_.insert(
                    scratch_elems_.end(),
                    incoming.begin() + static_cast<std::ptrdiff_t>(cursor),
                    incoming.begin() +
                        static_cast<std::ptrdiff_t>(cursor + block_));
                cursor += block_;
            }
        }
        while (stay < keys.size()) {
            copy_staying(stay++);
        }
        HCUBE_ENSURE(cursor == incoming.size());
        keys_[self].swap(scratch_keys_);
        elems_[self].swap(scratch_elems_);
    }

private:
    /// Ascending (src, dest) lexicographic order == ascending key order.
    [[nodiscard]] static std::uint64_t make_key(node_t src,
                                                node_t dest) noexcept {
        return (std::uint64_t{src} << 32) | dest;
    }
    [[nodiscard]] static node_t key_src(std::uint64_t key) noexcept {
        return static_cast<node_t>(key >> 32);
    }
    [[nodiscard]] static node_t key_dest(std::uint64_t key) noexcept {
        return static_cast<node_t>(key & 0xffffffffu);
    }

    std::vector<Buffer>& out_;
    std::size_t block_ = 0;
    /// Node i's resident blocks: keys_[i] ascending, elems_[i] the block
    /// elements in the same order (block k at k·block_), contiguous.
    std::vector<std::vector<std::uint64_t>> keys_;
    std::vector<Buffer> elems_;
    std::vector<std::uint64_t> scratch_keys_;
    Buffer scratch_elems_;
};

/// Reduce-scatter by recursive halving: after round r a node's *active*
/// blocks agree with its address on bits 0..r; round r ships the half of
/// the active set matching the partner's bit r (ascending block order) and
/// sums the received half in place.
class DataReduceScatter final : public RecursiveDoubling {
public:
    DataReduceScatter(dim_t n, const std::vector<Buffer>& data,
                      std::vector<Buffer>& out)
        : RecursiveDoubling(n, static_cast<node_t>(data.size())),
          work_(data), out_(out) {
        const node_t count = node_t{1} << n;
        block_ = data[0].size() / count;
        for (node_t i = 0; i < count; ++i) {
            HCUBE_ENSURE_MSG(data[i].size() ==
                                 static_cast<std::size_t>(count) * block_,
                             "reduce_scatter needs N equal blocks per node");
        }
    }

    void finish() {
        const node_t count = node_t{1} << n_;
        for (node_t i = 0; i < count; ++i) {
            const auto begin =
                work_[i].begin() + static_cast<std::ptrdiff_t>(i * block_);
            out_[i].assign(begin, begin + static_cast<std::ptrdiff_t>(block_));
        }
    }

protected:
    std::shared_ptr<const Buffer> outgoing(node_t self, dim_t r) override {
        auto payload = std::make_shared<Buffer>();
        for (const node_t b : half_set(self, r, /*mine=*/false)) {
            const auto begin =
                work_[self].begin() + static_cast<std::ptrdiff_t>(b * block_);
            payload->insert(payload->end(), begin,
                            begin + static_cast<std::ptrdiff_t>(block_));
        }
        return payload;
    }

    void absorb(node_t self, dim_t r, const Buffer& incoming) override {
        std::size_t cursor = 0;
        for (const node_t b : half_set(self, r, /*mine=*/true)) {
            for (std::size_t e = 0; e < block_; ++e) {
                work_[self][b * block_ + e] += incoming[cursor++];
            }
        }
        HCUBE_ENSURE(cursor == incoming.size());
    }

private:
    /// Active blocks before round r whose bit r equals (mine ? self's :
    /// partner's) bit, ascending.
    [[nodiscard]] std::vector<node_t> half_set(node_t self, dim_t r,
                                               bool mine) const {
        const node_t count = node_t{1} << n_;
        const node_t low_mask = (node_t{1} << r) - 1;
        const bool want = mine ? hc::test_bit(self, r)
                               : !hc::test_bit(self, r);
        std::vector<node_t> blocks;
        for (node_t b = 0; b < count; ++b) {
            if ((b & low_mask) == (self & low_mask) &&
                hc::test_bit(b, r) == want) {
                blocks.push_back(b);
            }
        }
        return blocks;
    }

    std::vector<Buffer> work_;
    std::vector<Buffer>& out_;
    std::size_t block_ = 0;
};

} // namespace

// ------------------------------------------------------------ public API

CollectiveComm::CollectiveComm(dim_t n, sim::EventParams params)
    : n_(n), params_(params) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
}

CollectiveResult CollectiveComm::broadcast(std::vector<Buffer>& data,
                                           node_t root, BroadcastAlgo algo,
                                           double chunk) {
    HCUBE_ENSURE(data.size() == node_count());
    sim::EventEngine engine(n_, params_);
    CollectiveResult result;
    if (algo == BroadcastAlgo::sbt_port_oriented) {
        const trees::SpanningTree tree = trees::build_sbt(n_, root);
        DataBroadcastSbt protocol(tree, data, chunk);
        result.stats = engine.run(protocol);
    } else {
        DataBroadcastMsbt protocol(n_, root, data, chunk);
        result.stats = engine.run(protocol);
        HCUBE_ENSURE_MSG(protocol.complete(), "broadcast did not complete");
    }
    result.time = result.stats.completion_time;
    return result;
}

CollectiveResult CollectiveComm::scatter(const std::vector<Buffer>& slices,
                                         std::vector<Buffer>& data,
                                         node_t root, ScatterAlgo algo) {
    HCUBE_ENSURE(slices.size() == node_count());
    HCUBE_ENSURE(data.size() == node_count());
    const trees::SpanningTree tree = (algo == ScatterAlgo::sbt_descending)
                                         ? trees::build_sbt(n_, root)
                                         : trees::build_bst(n_, root);
    const auto order =
        (algo == ScatterAlgo::sbt_descending)
            ? descending_dest_order(tree)
            : cyclic_dest_order(tree, SubtreeOrder::reverse_breadth_first);
    sim::EventEngine engine(n_, params_);
    DataScatter protocol(tree, slices, data, order);
    CollectiveResult result;
    result.stats = engine.run(protocol);
    result.time = result.stats.completion_time;
    return result;
}

CollectiveResult CollectiveComm::gather(const std::vector<Buffer>& data,
                                        std::vector<Buffer>& gathered,
                                        node_t root, ScatterAlgo algo) {
    HCUBE_ENSURE(data.size() == node_count());
    gathered.assign(node_count(), {});
    const trees::SpanningTree tree = (algo == ScatterAlgo::sbt_descending)
                                         ? trees::build_sbt(n_, root)
                                         : trees::build_bst(n_, root);
    sim::EventEngine engine(n_, params_);
    DataGather protocol(tree, data, gathered);
    CollectiveResult result;
    result.stats = engine.run(protocol);
    result.time = result.stats.completion_time;
    return result;
}

CollectiveResult CollectiveComm::allreduce_sum(std::vector<Buffer>& data) {
    HCUBE_ENSURE(data.size() == node_count());
    sim::EventEngine engine(n_, params_);
    DataAllreduce protocol(n_, data);
    CollectiveResult result;
    result.stats = engine.run(protocol);
    result.time = result.stats.completion_time;
    return result;
}

CollectiveResult CollectiveComm::alltoall(const std::vector<Buffer>& data,
                                          std::vector<Buffer>& out) {
    HCUBE_ENSURE(data.size() == node_count());
    out.assign(node_count(), {});
    sim::EventEngine engine(n_, params_);
    DataAllToAll protocol(n_, data, out);
    CollectiveResult result;
    result.stats = engine.run(protocol);
    protocol.finish();
    result.time = result.stats.completion_time;
    return result;
}

CollectiveResult
CollectiveComm::reduce_scatter_sum(const std::vector<Buffer>& data,
                                   std::vector<Buffer>& out) {
    HCUBE_ENSURE(data.size() == node_count());
    out.assign(node_count(), {});
    sim::EventEngine engine(n_, params_);
    DataReduceScatter protocol(n_, data, out);
    CollectiveResult result;
    result.stats = engine.run(protocol);
    protocol.finish();
    result.time = result.stats.completion_time;
    return result;
}

CollectiveResult CollectiveComm::allgather(const std::vector<Buffer>& data,
                                           std::vector<Buffer>& out) {
    HCUBE_ENSURE(data.size() == node_count());
    out.assign(node_count(), {});
    sim::EventEngine engine(n_, params_);
    DataAllgather protocol(n_, data, out);
    CollectiveResult result;
    result.stats = engine.run(protocol);
    result.time = result.stats.completion_time;
    return result;
}

} // namespace hcube::routing
