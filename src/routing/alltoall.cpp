#include "routing/alltoall.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"
#include "routing/scatter.hpp"
#include "trees/bst.hpp"

#include <algorithm>

namespace hcube::routing {

sim::packet_t alltoall_packet_id(hc::node_t src, hc::node_t dest, hc::dim_t n,
                                 sim::packet_t packets_per_pair,
                                 sim::packet_t k) {
    const auto count = sim::packet_t{1} << n;
    return (src * count + dest) * packets_per_pair + k;
}

sim::Schedule alltoall_recursive_exchange(hc::dim_t n,
                                          sim::packet_t packets_per_pair) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(packets_per_pair >= 1);
    const hc::node_t count = hc::node_t{1} << n;

    sim::Schedule schedule;
    schedule.n = n;
    schedule.packet_count = count * count * packets_per_pair;
    schedule.initial_holder.resize(schedule.packet_count);
    for (hc::node_t src = 0; src < count; ++src) {
        for (hc::node_t dest = 0; dest < count; ++dest) {
            for (sim::packet_t k = 0; k < packets_per_pair; ++k) {
                schedule.initial_holder[alltoall_packet_id(
                    src, dest, n, packets_per_pair, k)] = src;
            }
        }
    }

    // hold[i]: packets currently at node i that still have to move
    // (destination != i). Self-destined packets never enter.
    std::vector<std::vector<sim::packet_t>> hold(count);
    for (hc::node_t src = 0; src < count; ++src) {
        for (hc::node_t dest = 0; dest < count; ++dest) {
            if (dest == src) {
                continue;
            }
            for (sim::packet_t k = 0; k < packets_per_pair; ++k) {
                hold[src].push_back(
                    alltoall_packet_id(src, dest, n, packets_per_pair, k));
            }
        }
    }

    const auto dest_of = [&](sim::packet_t packet) {
        return static_cast<hc::node_t>((packet / packets_per_pair) % count);
    };
    const std::uint32_t cycles_per_round = (count / 2) * packets_per_pair;

    for (hc::dim_t d = 0; d < n; ++d) {
        const std::uint32_t round_start =
            static_cast<std::uint32_t>(d) * cycles_per_round;
        std::vector<std::vector<sim::packet_t>> next(count);
        for (hc::node_t i = 0; i < count; ++i) {
            std::uint32_t slot = 0;
            for (const sim::packet_t packet : hold[i]) {
                const hc::node_t dest = dest_of(packet);
                if (hc::test_bit(dest, d) == hc::test_bit(i, d)) {
                    if (dest != i) {
                        next[i].push_back(packet);
                    }
                    continue;
                }
                const hc::node_t partner = hc::flip_bit(i, d);
                schedule.sends.push_back(
                    {round_start + slot, i, partner, packet});
                ++slot;
                if (dest != partner) {
                    next[partner].push_back(packet);
                }
            }
            HCUBE_ENSURE_MSG(slot <= cycles_per_round,
                             "round overflow in recursive exchange");
        }
        hold = std::move(next);
    }
    for (const auto& left : hold) {
        HCUBE_ENSURE_MSG(left.empty(), "undelivered packets after n rounds");
    }
    return schedule;
}

sim::Schedule allgather_recursive_doubling(hc::dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    const hc::node_t count = hc::node_t{1} << n;

    sim::Schedule schedule;
    schedule.n = n;
    schedule.packet_count = count;
    schedule.initial_holder.resize(count);
    for (hc::node_t i = 0; i < count; ++i) {
        schedule.initial_holder[i] = i;
    }

    // Before round d, node i holds the packets of {i ^ x : x < 2^d}; it
    // sends them all to i ^ 2^d during the round's 2^d cycles.
    std::uint32_t round_start = 0;
    for (hc::dim_t d = 0; d < n; ++d) {
        const hc::node_t held = hc::node_t{1} << d;
        for (hc::node_t i = 0; i < count; ++i) {
            const hc::node_t partner = hc::flip_bit(i, d);
            for (hc::node_t x = 0; x < held; ++x) {
                schedule.sends.push_back(
                    {round_start + x, i, partner, i ^ x});
            }
        }
        round_start += held;
    }
    return schedule;
}

namespace {

hc::node_t next_hop_in(const trees::SpanningTree& tree, hc::node_t u,
                       hc::node_t dest) {
    hc::node_t x = dest;
    while (tree.parent[x] != u) {
        x = tree.parent[x];
        HCUBE_ENSURE_MSG(x != tree.root, "dest is not below u in the tree");
    }
    return x;
}

} // namespace

AllToAllBstProtocol::AllToAllBstProtocol(hc::dim_t n, double size_per_pair)
    : n_(n), size_per_pair_(size_per_pair) {
    HCUBE_ENSURE(size_per_pair > 0);
    const hc::node_t count = hc::node_t{1} << n;
    trees_.reserve(count);
    for (hc::node_t s = 0; s < count; ++s) {
        trees_.push_back(trees::build_bst(n, s));
    }
}

void AllToAllBstProtocol::on_start(sim::NodeContext& ctx) {
    const hc::node_t self = ctx.self();
    const trees::SpanningTree& tree = trees_[self];
    for (const hc::node_t dest :
         cyclic_dest_order(tree, SubtreeOrder::reverse_breadth_first)) {
        ctx.send(next_hop_in(tree, self, dest),
                 sim::Message{dest, size_per_pair_, self});
    }
}

void AllToAllBstProtocol::on_receive(sim::NodeContext& ctx,
                                     const sim::Message& message) {
    if (message.dest == ctx.self()) {
        ++delivered_;
        return;
    }
    const trees::SpanningTree& tree =
        trees_[static_cast<hc::node_t>(message.tag)];
    ctx.send(next_hop_in(tree, ctx.self(), message.dest), message);
}

} // namespace hcube::routing
