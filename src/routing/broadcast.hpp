// Cycle-level broadcast schedules (paper §3).
//
// Each generator returns an explicit Schedule that sim::execute_schedule
// validates under the corresponding port model. P counts packets (units of
// at most B elements): P = ceil(M/B).
//
// The makespans reproduce the cycle counts behind Table 3:
//
//   SBT  port-oriented (either one-port model)       n·P
//   SBT  paced pipeline, all ports                   P + n - 1
//   HP   end, half duplex                            2P + N - 3
//   HP   end, full duplex / all ports                P + N - 2
//   TCBT paced, half / full / all (n >= 3)           3P+2n-5 / 2P+2n-4 / P+n-1
//   MSBT full duplex (labelling f)                   P + n        (P = n·Pps)
//   MSBT half duplex (stretched)                     2P + n - 1
//   MSBT all ports                                   Pps + n
#pragma once

#include "sim/cycle.hpp"
#include "trees/spanning_tree.hpp"

namespace hcube::routing {

using hc::dim_t;
using hc::node_t;
using sim::packet_t;
using sim::PortModel;
using sim::Schedule;

/// Port-oriented broadcast down any spanning tree (paper §2's
/// "port-oriented" discipline): every node first receives the whole message,
/// then retransmits it whole to each child in stored order. This is the
/// classical one-port SBT algorithm (§3.3.1); on the SBT it completes in
/// exactly n·P cycles and is feasible under every port model.
[[nodiscard]] Schedule port_oriented_broadcast(const trees::SpanningTree& tree,
                                               packet_t packets);

/// Packet-oriented ("paced") pipelined broadcast down any spanning tree:
/// a node forwards packet p to child c_i one cycle apart (i cycles after
/// receiving under the one-port models, same cycle on all ports), with a
/// global cadence of
///   half duplex: max over nodes of (children + [node != root]),
///   full duplex: max over nodes of children count,
///   all ports:   1
/// cycles per packet. Reproduces the paper's pipelined SBT (all ports), HP
/// and TCBT cycle counts exactly.
[[nodiscard]] Schedule paced_broadcast(const trees::SpanningTree& tree,
                                       packet_t packets, PortModel model);

/// MSBT broadcast (paper §3.3.2): the message splits into n streams of
/// `packets_per_subtree` packets, one stream pipelined down each ERSBT.
///  * one_port_full_duplex: the labelling f schedules stream j's packet p
///    across the edge into node i at cycle f(i,j) + p·n;
///  * one_port_half_duplex: the full-duplex schedule stretched by per-cycle
///    2-colouring (sim::stretch_to_half_duplex);
///  * all_port: each ERSBT pipelines independently at cadence 1.
/// Packet identifiers are j·packets_per_subtree + p.
[[nodiscard]] Schedule msbt_broadcast(dim_t n, node_t source,
                                      packet_t packets_per_subtree,
                                      PortModel model);

} // namespace hcube::routing
