#include "routing/multipath.hpp"

#include "common/check.hpp"

#include <algorithm>
#include <limits>

namespace hcube::routing {

namespace {
constexpr std::size_t kNotOnPath = std::numeric_limits<std::size_t>::max();
} // namespace

MultipathTransfer::MultipathTransfer(hc::dim_t n, hc::node_t src,
                                     hc::node_t dst, double total_size,
                                     double chunk, std::size_t path_count)
    : src_(src), dst_(dst), total_size_(total_size), chunk_(chunk) {
    HCUBE_ENSURE(total_size > 0 && chunk > 0);
    auto all_paths = hc::disjoint_paths(src, dst, n);
    HCUBE_ENSURE_MSG(path_count >= 1 && path_count <= all_paths.size(),
                     "path_count out of range");
    // The construction orders short (distance-length) paths first; using a
    // prefix keeps the hop penalty minimal at small path counts.
    paths_.assign(all_paths.begin(),
                  all_paths.begin() + static_cast<std::ptrdiff_t>(path_count));

    const hc::node_t count = hc::node_t{1} << n;
    position_.assign(paths_.size(),
                     std::vector<std::size_t>(count, kNotOnPath));
    for (std::size_t p = 0; p < paths_.size(); ++p) {
        for (std::size_t hop = 0; hop < paths_[p].size(); ++hop) {
            position_[p][paths_[p][hop]] = hop;
        }
    }
}

void MultipathTransfer::on_start(sim::NodeContext& ctx) {
    if (ctx.self() != src_) {
        return;
    }
    // Split the message evenly; path p's share travels in chunks, each
    // tagged with its path so intermediates know where to forward.
    const double share = total_size_ / static_cast<double>(paths_.size());
    for (std::size_t p = 0; p < paths_.size(); ++p) {
        double remaining = share;
        while (remaining > 1e-9) {
            const double piece = std::min(remaining, chunk_);
            ctx.send(paths_[p][1],
                     sim::Message{dst_, piece,
                                  static_cast<std::uint64_t>(p), nullptr});
            remaining -= piece;
        }
    }
}

void MultipathTransfer::on_receive(sim::NodeContext& ctx,
                                   const sim::Message& message) {
    if (ctx.self() == dst_) {
        received_ += message.size;
        return;
    }
    const auto p = static_cast<std::size_t>(message.tag);
    const std::size_t hop = position_[p][ctx.self()];
    HCUBE_ENSURE_MSG(hop != kNotOnPath, "chunk strayed off its path");
    ctx.send(paths_[p][hop + 1], message);
}

} // namespace hcube::routing
