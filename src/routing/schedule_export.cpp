#include "routing/schedule_export.hpp"

#include "common/check.hpp"
#include "mbr/tree.hpp"
#include "routing/alltoall.hpp"
#include "routing/broadcast.hpp"

#include <algorithm>

namespace hcube::routing {

Schedule make_tree_broadcast(const trees::SpanningTree& tree,
                             BroadcastDiscipline discipline, packet_t packets,
                             PortModel model) {
    HCUBE_ENSURE_MSG(packets >= 1, "broadcast needs at least one packet");
    if (discipline == BroadcastDiscipline::port_oriented) {
        // Feasible under every port model as generated.
        return port_oriented_broadcast(tree, packets);
    }
    return paced_broadcast(tree, packets, model);
}

Schedule make_msbt_broadcast(hc::dim_t n, hc::node_t root, packet_t packets,
                             PortModel model) {
    HCUBE_ENSURE_MSG(n >= 1 && packets >= 1 &&
                         packets % static_cast<packet_t>(n) == 0,
                     "MSBT total packet count must be a positive multiple "
                     "of n (one equal stream per ERSBT)");
    return msbt_broadcast(n, root, packets / static_cast<packet_t>(n), model);
}

Schedule make_tree_scatter(const trees::SpanningTree& tree,
                           ScatterPolicy policy, packet_t packets_per_dest,
                           PortModel model) {
    HCUBE_ENSURE_MSG(packets_per_dest >= 1,
                     "scatter needs at least one packet per destination");
    HCUBE_ENSURE_MSG(model != PortModel::one_port_half_duplex,
                     "half-duplex personalized communication is modelled in "
                     "the event engine, not as a cycle schedule");
    switch (policy) {
    case ScatterPolicy::descending:
        return scatter_one_port(tree, descending_dest_order(tree),
                                packets_per_dest);
    case ScatterPolicy::cyclic:
        return scatter_one_port(
            tree,
            cyclic_dest_order(tree, SubtreeOrder::reverse_breadth_first),
            packets_per_dest);
    case ScatterPolicy::per_port:
        HCUBE_ENSURE_MSG(model == PortModel::all_port,
                         "per-port scatter streams all root ports at once "
                         "and needs the all-port model");
        return scatter_all_port(
            tree,
            per_subtree_dest_orders(tree,
                                    SubtreeOrder::reverse_breadth_first),
            packets_per_dest);
    }
    throw check_error("unknown scatter policy");
}

Schedule make_tree_gather(const trees::SpanningTree& tree,
                          ScatterPolicy policy, packet_t packets_per_dest,
                          PortModel model) {
    return reverse_schedule(
        make_tree_scatter(tree, policy, packets_per_dest, model));
}

Schedule make_member_broadcast(const mbr::View& view, hc::node_t root,
                               BroadcastDiscipline discipline,
                               packet_t packets, PortModel model) {
    HCUBE_ENSURE_MSG(packets >= 1, "broadcast needs at least one packet");
    const trees::SpanningTree tree = mbr::build_member_tree(view, root);
    if (discipline == BroadcastDiscipline::port_oriented) {
        return port_oriented_broadcast(tree, packets);
    }
    return paced_broadcast(tree, packets, model);
}

Schedule make_member_scatter(const mbr::View& view, hc::node_t root,
                             packet_t packets_per_dest) {
    HCUBE_ENSURE_MSG(packets_per_dest >= 1,
                     "scatter needs at least one packet per destination");
    const trees::SpanningTree tree = mbr::build_member_tree(view, root);
    std::vector<hc::node_t> dests;
    dests.reserve(view.count() - 1);
    for (const hc::node_t v : view.members()) {
        if (v != root) {
            dests.push_back(v);
        }
    }
    std::ranges::sort(dests, [root](hc::node_t a, hc::node_t b) {
        return (a ^ root) > (b ^ root);
    });
    // dests is descending by relative address, so dest i (0-based) has
    // member-rank dests.size() - 1 - i among the non-root members — the
    // base packet id of member_scatter_packet_id without the per-packet
    // rank scan.
    std::vector<packet_t> base(node_t{1} << view.dimension(), 0);
    for (std::size_t i = 0; i < dests.size(); ++i) {
        base[dests[i]] =
            static_cast<packet_t>(dests.size() - 1 - i) * packets_per_dest;
    }
    return scatter_one_port_partial(
        tree, dests, packets_per_dest,
        [&base](hc::node_t dest, packet_t k) { return base[dest] + k; });
}

Schedule make_member_gather(const mbr::View& view, hc::node_t root,
                            packet_t packets_per_dest) {
    return reverse_schedule(
        make_member_scatter(view, root, packets_per_dest));
}

packet_t member_scatter_packet_id(const mbr::View& view, hc::node_t dest,
                                  hc::node_t root, packet_t packets_per_dest,
                                  packet_t k) {
    HCUBE_ENSURE(k < packets_per_dest);
    HCUBE_ENSURE_MSG(view.contains(dest) && view.contains(root),
                     "scatter endpoints must be live members");
    HCUBE_ENSURE_MSG(dest != root, "the root keeps its own block");
    // Rank of dest's relative address among all live relative addresses;
    // the root (relative address 0) always ranks first, so non-root ranks
    // start at 1 and ids stay dense from 0. On a full view the rank of a
    // relative address is the address itself, recovering the (rel - 1)
    // numbering of scatter_packet_id.
    const hc::node_t rel = dest ^ root;
    packet_t rank = 0;
    for (const hc::node_t v : view.members()) {
        if ((v ^ root) < rel) {
            ++rank;
        }
    }
    return (rank - 1) * packets_per_dest + k;
}

Schedule make_allgather_schedule(hc::dim_t n) {
    return allgather_recursive_doubling(n);
}

Schedule make_alltoall_schedule(hc::dim_t n, packet_t packets_per_pair) {
    HCUBE_ENSURE_MSG(packets_per_pair >= 1,
                     "all-to-all needs at least one packet per pair");
    return alltoall_recursive_exchange(n, packets_per_pair);
}

Schedule reverse_broadcast_for_reduce(const Schedule& broadcast,
                                      hc::node_t root) {
    std::uint32_t makespan = 0;
    for (const auto& send : broadcast.sends) {
        makespan = std::max(makespan, send.cycle + 1);
    }
    Schedule out;
    out.n = broadcast.n;
    out.packet_count = broadcast.packet_count;
    out.initial_holder.assign(broadcast.packet_count, root);
    out.sends.reserve(broadcast.sends.size());
    for (const auto& send : broadcast.sends) {
        out.sends.push_back(
            {makespan - 1 - send.cycle, send.to, send.from, send.packet});
    }
    return out;
}

} // namespace hcube::routing
