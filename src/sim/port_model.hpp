// The paper's three communication-capability assumptions (§2, §3.3).
#pragma once

#include <string_view>

namespace hcube::sim {

/// What a node may do in one communication cycle.
enum class PortModel {
    /// "1 s or r": at most one send *or* one receive per cycle
    /// (half-duplex, one port at a time).
    one_port_half_duplex,
    /// "1 s and r": one send concurrently with one receive
    /// (full-duplex, one port each way; effectively the Intel iPSC).
    one_port_full_duplex,
    /// "all ports": concurrent communication on all log N ports,
    /// each port full-duplex.
    all_port,
};

[[nodiscard]] constexpr std::string_view to_string(PortModel model) noexcept {
    switch (model) {
    case PortModel::one_port_half_duplex: return "1 s or r";
    case PortModel::one_port_full_duplex: return "1 s and r";
    case PortModel::all_port: return "all ports";
    }
    return "?";
}

} // namespace hcube::sim
