// Synchronous cycle-accurate schedule executor.
//
// The paper's Tables 1-3 are statements about *routing steps*: how many
// synchronized cycles a routing scheme needs when every link can carry one
// packet of up to B elements per cycle and each node obeys a port model.
// The routing layer produces explicit schedules — lists of
// (cycle, from, to, packet) sends — and this executor *proves* them
// feasible: adjacency, packet availability (store-and-forward: a packet
// received in cycle t can be forwarded from cycle t+1), link capacity, and
// the port-model constraints. It also measures the quantities the tables
// report (makespan, per-packet delivery cycles, link load).
//
// The executor is a flat, allocation-free hot path (docs/PERFORMANCE.md):
// sends are counting-sorted by cycle once, directed-link occupancy lives in
// a 2^n·n bit array, port constraints in epoch-stamped per-node counters,
// and diagnostics are formatted only on violation — which is what lets the
// same validation loop run n = 20 schedules with tens of millions of sends.
#pragma once

#include "hc/types.hpp"
#include "sim/delivery_map.hpp"
#include "sim/port_model.hpp"

#include <cstdint>
#include <vector>

namespace hcube::sim {

using hc::dim_t;
using hc::node_t;

/// One scheduled packet transmission: `from` sends `packet` to `to` during
/// `cycle` (0-based); `to` holds the packet from cycle+1 onwards.
struct ScheduledSend {
    std::uint32_t cycle;
    node_t from;
    node_t to;
    packet_t packet;

    friend bool operator==(const ScheduledSend&,
                           const ScheduledSend&) = default;
};

/// A complete schedule plus the initial packet placement.
struct Schedule {
    dim_t n = 0;                      ///< cube dimension
    packet_t packet_count = 0;        ///< distinct packets
    std::vector<ScheduledSend> sends; ///< in any order; executor sorts
    /// initial_holder[p] = node that owns packet p at cycle 0.
    std::vector<node_t> initial_holder;
};

/// How execute_schedule materializes the delivery matrix.
enum class DeliveryTracking {
    /// Dense when N·P is small or the schedule delivers a comparable number
    /// of (node, packet) pairs (broadcasts); sparse otherwise (scatter /
    /// all-to-all, where most pairs are never delivered).
    automatic,
    dense,
    sparse,
};

/// Results of executing a schedule.
struct CycleStats {
    /// Number of cycles used: 1 + the largest cycle index with a send.
    std::uint32_t makespan = 0;
    std::uint64_t total_sends = 0;
    /// Busiest single cycle (sends in flight).
    std::uint64_t max_sends_in_one_cycle = 0;
    /// delivery_cycle[node][packet] = first cycle *after* which the node
    /// holds the packet (0 for initial holdings); kNever if never received.
    /// Packet-major dense matrix or (packet, node)-keyed hash, per the
    /// DeliveryTracking mode.
    DeliveryMap delivery_cycle;

    static constexpr std::uint32_t kNever = DeliveryMap::kNever;

    /// True if `node` ends up holding `packet`.
    [[nodiscard]] bool holds(node_t node, packet_t packet) const {
        return delivery_cycle.get(node, packet) != kNever;
    }
};

/// Executes `schedule` under `model`, throwing check_error on the first
/// constraint violation. See file comment for the checked invariants.
[[nodiscard]] CycleStats
execute_schedule(const Schedule& schedule, PortModel model,
                 DeliveryTracking tracking = DeliveryTracking::automatic);

/// Transforms a schedule that is feasible under one_port_full_duplex into
/// one feasible under one_port_half_duplex by splitting every cycle in which
/// some node both sends and receives into two sub-cycles (a 2-colouring of
/// that cycle's transfer graph; §3.3.2's "transform each cycle into two").
/// Cycles whose transfers are unidirectional at every node stay single, so
/// the MSBT broadcast stretches from ceil(M/B) + log N to
/// 2 ceil(M/B) + log N - 1 cycles exactly as the paper states.
/// Throws check_error if some cycle's transfer graph has an odd cycle
/// (cannot happen for the schedules generated in this library; tests sweep).
[[nodiscard]] Schedule stretch_to_half_duplex(const Schedule& schedule);

} // namespace hcube::sim
