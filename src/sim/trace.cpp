#include "sim/trace.hpp"

#include "common/csv.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace hcube::sim {

LinkUtilization link_utilization(const Schedule& schedule) {
    LinkUtilization util;
    util.directed_links_total =
        (std::uint64_t{1} << schedule.n) * static_cast<std::uint64_t>(schedule.n);

    std::map<std::pair<node_t, node_t>, std::uint64_t> per_link;
    std::uint32_t makespan = 0;
    for (const auto& send : schedule.sends) {
        ++per_link[{send.from, send.to}];
        makespan = std::max(makespan, send.cycle + 1);
    }
    util.directed_links_used = per_link.size();
    for (const auto& [link, count] : per_link) {
        util.busiest_link_sends = std::max(util.busiest_link_sends, count);
    }
    if (!per_link.empty()) {
        util.mean_sends_per_used_link =
            static_cast<double>(schedule.sends.size()) /
            static_cast<double>(per_link.size());
    }
    if (makespan > 0 && !per_link.empty()) {
        util.busy_fraction = static_cast<double>(schedule.sends.size()) /
                             (static_cast<double>(per_link.size()) *
                              static_cast<double>(makespan));
    }
    return util;
}

void schedule_to_csv(const Schedule& schedule, const std::string& path) {
    CsvWriter csv(path, {"cycle", "from", "to", "packet"});
    for (const auto& send : schedule.sends) {
        csv.write_row({std::to_string(send.cycle), std::to_string(send.from),
                       std::to_string(send.to),
                       std::to_string(send.packet)});
    }
}

std::string render_gantt(const Schedule& schedule, std::size_t max_links,
                         std::size_t max_cycles) {
    std::uint32_t makespan = 0;
    std::map<std::pair<node_t, node_t>, std::vector<std::uint32_t>> per_link;
    for (const auto& send : schedule.sends) {
        per_link[{send.from, send.to}].push_back(send.cycle);
        makespan = std::max(makespan, send.cycle + 1);
    }
    const std::size_t cycles =
        std::min<std::size_t>(makespan, max_cycles);

    std::string out;
    out += "cycle        ";
    for (std::size_t c = 0; c < cycles; ++c) {
        out += (c % 10 == 0) ? ('0' + static_cast<char>((c / 10) % 10)) : ' ';
    }
    out += '\n';

    std::size_t rows = 0;
    for (const auto& [link, sends] : per_link) {
        if (++rows > max_links) {
            out += "... (" +
                   std::to_string(per_link.size() - max_links) +
                   " more links)\n";
            break;
        }
        char label[16];
        std::snprintf(label, sizeof label, "%4u->%-4u    ", link.first,
                      link.second);
        out += label;
        std::string line(cycles, '.');
        for (const std::uint32_t c : sends) {
            if (c < cycles) {
                line[c] = '#';
            }
        }
        out += line;
        out += '\n';
    }
    return out;
}

} // namespace hcube::sim
