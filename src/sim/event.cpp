#include "sim/event.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

namespace hcube::sim {

namespace {

/// A serializing resource (a node's channel processor, or one direction of
/// one port). Tracks the last operation so the cross-port overlap credit can
/// be applied: an operation on a *different* port may begin `overlap`
/// fraction of the previous operation early.
struct Resource {
    double busy_end = 0;
    double prev_duration = 0;
    dim_t last_port = -1;

    [[nodiscard]] double available(dim_t port, double overlap) const {
        if (last_port == -1 || port == last_port) {
            return busy_end;
        }
        return busy_end - overlap * prev_duration;
    }

    void occupy(dim_t port, double start, double end) {
        busy_end = end;
        prev_duration = end - start;
        last_port = port;
    }
};

/// One physical packet in flight or queued.
struct PacketJob {
    node_t to = 0;
    double size = 0;    ///< elements in this packet
    double ready = 0;   ///< earliest start (enqueue time)
    Message message;    ///< protocol message this packet belongs to
    bool last = false;  ///< completes the message on delivery
};

struct Event {
    double time = 0;
    std::uint64_t seq = 0;
    enum class Kind { attempt, delivery } kind = Kind::attempt;
    std::size_t queue = 0; // attempt: which send queue to try
    node_t to = 0;         // delivery: receiving node
    Message message;       // delivery payload

    friend bool operator>(const Event& a, const Event& b) {
        if (a.time != b.time) {
            return a.time > b.time;
        }
        return a.seq > b.seq;
    }
};

} // namespace

struct EventEngine::Impl {
    dim_t n;
    EventParams params;
    node_t count;

    double now = 0;
    std::uint64_t next_seq = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

    std::vector<std::deque<PacketJob>> queues; ///< per sending resource
    std::vector<Resource> node_resources;      ///< indexed by resource_index
    std::vector<double> link_free;             ///< per (node, dim)

    EventStats stats;
    Protocol* protocol = nullptr;
    bool ran = false;

    Impl(dim_t n_, EventParams p) : n(n_), params(p), count(node_t{1} << n_) {
        HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
        HCUBE_ENSURE(params.tau >= 0 && params.tc >= 0);
        HCUBE_ENSURE(params.packet_capacity > 0);
        HCUBE_ENSURE(params.overlap >= 0 && params.overlap < 1);
        const std::size_t nodes = count;
        const std::size_t ports = static_cast<std::size_t>(n);
        switch (params.model) {
        case PortModel::one_port_half_duplex:
            queues.resize(nodes);
            node_resources.resize(nodes);
            break;
        case PortModel::one_port_full_duplex:
            queues.resize(nodes);
            node_resources.resize(nodes * 2);
            break;
        case PortModel::all_port:
            queues.resize(nodes * ports);
            node_resources.resize(nodes * ports * 2);
            break;
        }
        link_free.assign(nodes * ports, 0);
    }

    /// Send queue feeding node `from` through port `port`.
    [[nodiscard]] std::size_t queue_index(node_t from, dim_t port) const {
        if (params.model == PortModel::all_port) {
            return static_cast<std::size_t>(from) *
                       static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(port);
        }
        return from;
    }

    /// Resource serializing `dir` (0 = send, 1 = receive) operations of
    /// `node` on `port`.
    [[nodiscard]] Resource& resource(node_t node, dim_t port, int dir) {
        switch (params.model) {
        case PortModel::one_port_half_duplex:
            return node_resources[node];
        case PortModel::one_port_full_duplex:
            return node_resources[static_cast<std::size_t>(node) * 2 +
                                  static_cast<std::size_t>(dir)];
        case PortModel::all_port:
            return node_resources[(static_cast<std::size_t>(node) *
                                       static_cast<std::size_t>(n) +
                                   static_cast<std::size_t>(port)) *
                                      2 +
                                  static_cast<std::size_t>(dir)];
        }
        __builtin_unreachable();
    }

    void push_event(Event event) {
        event.seq = next_seq++;
        events.push(std::move(event));
    }

    void enqueue_packets(node_t from, node_t to, const Message& message) {
        HCUBE_ENSURE_MSG(hc::hamming(from, to) == 1,
                         "protocol sent to a non-neighbor");
        HCUBE_ENSURE_MSG(message.size > 0, "empty message");
        const dim_t port = hc::lowest_one_bit(from ^ to);
        const std::size_t q = queue_index(from, port);
        const bool was_empty = queues[q].empty();

        double remaining = message.size;
        while (remaining > 0) {
            const double piece = std::min(remaining, params.packet_capacity);
            remaining -= piece;
            queues[q].push_back(
                {to, piece, now, message, remaining <= 0});
        }
        if (was_empty) {
            push_event({now, 0, Event::Kind::attempt, q, 0, {}});
        }
    }

    void try_queue(std::size_t q) {
        if (queues[q].empty()) {
            return;
        }
        const PacketJob& job = queues[q].front();
        const node_t from = (params.model == PortModel::all_port)
                                ? static_cast<node_t>(
                                      q / static_cast<std::size_t>(n))
                                : static_cast<node_t>(q);
        const dim_t port = hc::lowest_one_bit(from ^ job.to);

        Resource& snd = resource(from, port, 0);
        Resource& rcv = resource(job.to, port, 1);
        const double link = link_free[static_cast<std::size_t>(from) *
                                          static_cast<std::size_t>(n) +
                                      static_cast<std::size_t>(port)];
        const double start =
            std::max({job.ready, snd.available(port, params.overlap),
                      rcv.available(port, params.overlap), link, now});
        if (start > now) {
            push_event({start, 0, Event::Kind::attempt, q, 0, {}});
            return;
        }

        // Commit the transfer.
        const double duration = params.tau + job.size * params.tc;
        const double end = start + duration;
        snd.occupy(port, start, end);
        // The same Resource object may serve both roles under half-duplex;
        // occupying twice is idempotent there.
        rcv.occupy(port, start, end);
        link_free[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(port)] = end;
        ++stats.transfers;
        stats.total_busy_time += duration;
        if (params.record_trace) {
            stats.trace.push_back({from, job.to, start, end, job.size});
        }

        if (job.last) {
            push_event({end, 0, Event::Kind::delivery, 0, job.to,
                        job.message});
        }
        queues[q].pop_front();
        if (!queues[q].empty()) {
            // Optimistic wake-up at the earliest the sender could go again.
            push_event({std::max(now, end - params.overlap * duration), 0,
                        Event::Kind::attempt, q, 0, {}});
        }
    }

    EventStats run(Protocol& proto) {
        HCUBE_ENSURE_MSG(!ran, "EventEngine::run is single-shot");
        ran = true;
        protocol = &proto;
        for (node_t i = 0; i < count; ++i) {
            NodeContext ctx(*owner, i);
            proto.on_start(ctx);
        }
        while (!events.empty()) {
            Event event = events.top();
            events.pop();
            now = std::max(now, event.time);
            if (event.kind == Event::Kind::attempt) {
                try_queue(event.queue);
            } else {
                ++stats.messages;
                stats.completion_time =
                    std::max(stats.completion_time, event.time);
                NodeContext ctx(*owner, event.to);
                proto.on_receive(ctx, event.message);
            }
        }
        return stats;
    }

    EventEngine* owner = nullptr;
};

EventEngine::EventEngine(dim_t n, EventParams params)
    : impl_(std::make_unique<Impl>(n, params)) {
    impl_->owner = this;
}

EventEngine::~EventEngine() = default;

EventStats EventEngine::run(Protocol& protocol) {
    return impl_->run(protocol);
}

double NodeContext::now() const noexcept {
    return engine_->impl_->now;
}

void NodeContext::send(node_t to, const Message& message) {
    engine_->impl_->enqueue_packets(node_, to, message);
}

} // namespace hcube::sim
