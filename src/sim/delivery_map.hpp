// Flat first-delivery tracking for the schedule executor.
//
// The executor's result is conceptually a matrix delivery[node][packet] of
// first-delivery cycles. Broadcast workloads fill the whole matrix, so a
// single contiguous packet-major array is the fastest representation; for
// scatter / all-to-all workloads almost every (node, packet) pair stays
// undelivered and the dense matrix is O(N·P) waste — at n = 20 a scatter has
// N·P ≈ 2^40 cells but only ~n·P actual deliveries. DeliveryMap offers both
// layouts behind one interface: a dense packet-major array, or an
// open-addressing hash table keyed by (packet, node) sized once from the
// schedule's send count (so the executor's hot path never rehashes).
#pragma once

#include "common/check.hpp"
#include "hc/types.hpp"

#include <bit>
#include <cstdint>
#include <vector>

namespace hcube::sim {

using hc::node_t;

/// Identifies one unit of data (one packet of up to B elements).
using packet_t = std::uint32_t;

class DeliveryMap {
public:
    /// Sentinel "never delivered" cycle; real cycles stay below it.
    static constexpr std::uint32_t kNever = 0xffffffffu;

    DeliveryMap() = default;

    /// Dense packet-major matrix: cell (node, packet) at packet·N + node.
    [[nodiscard]] static DeliveryMap dense(node_t nodes, packet_t packets) {
        DeliveryMap map;
        map.nodes_ = nodes;
        map.packets_ = packets;
        const std::uint64_t cells = std::uint64_t{nodes} * packets;
        HCUBE_ENSURE_MSG(cells <= (std::uint64_t{1} << 32),
                         "dense delivery matrix too large; use sparse "
                         "tracking");
        map.cells_.assign(static_cast<std::size_t>(cells), kNever);
        return map;
    }

    /// Hash map sized for `expected_entries` insertions without rehashing.
    [[nodiscard]] static DeliveryMap sparse(node_t nodes, packet_t packets,
                                            std::size_t expected_entries) {
        DeliveryMap map;
        map.nodes_ = nodes;
        map.packets_ = packets;
        map.sparse_ = true;
        map.rehash(table_size_for(expected_entries));
        return map;
    }

    [[nodiscard]] bool is_sparse() const noexcept { return sparse_; }
    [[nodiscard]] node_t nodes() const noexcept { return nodes_; }
    [[nodiscard]] packet_t packets() const noexcept { return packets_; }
    /// Number of (node, packet) pairs with a recorded cycle (sparse mode);
    /// in dense mode, the number of cells written via set().
    [[nodiscard]] std::size_t entry_count() const noexcept { return entries_; }

    /// First cycle after which `node` holds `packet`; kNever if it never
    /// does. Unchecked hot-path accessor: both indices must be in range.
    [[nodiscard]] std::uint32_t get(node_t node,
                                    packet_t packet) const noexcept {
        if (!sparse_) {
            return cells_[cell_index(node, packet)];
        }
        const std::uint64_t key = make_key(node, packet);
        std::size_t slot = probe_start(key);
        while (true) {
            const std::uint64_t found = keys_[slot];
            if (found == key) {
                return values_[slot];
            }
            if (found == kEmptyKey) {
                return kNever;
            }
            slot = (slot + 1) & mask_;
        }
    }

    /// Records (or overwrites) the delivery cycle of (node, packet).
    void set(node_t node, packet_t packet, std::uint32_t cycle) {
        if (!sparse_) {
            std::uint32_t& cell = cells_[cell_index(node, packet)];
            entries_ += cell == kNever;
            cell = cycle;
            return;
        }
        if ((entries_ + 1) * 4 > 3 * (mask_ + 1)) {
            rehash((mask_ + 1) * 2);
        }
        const std::uint64_t key = make_key(node, packet);
        std::size_t slot = probe_start(key);
        while (keys_[slot] != kEmptyKey && keys_[slot] != key) {
            slot = (slot + 1) & mask_;
        }
        entries_ += keys_[slot] == kEmptyKey;
        keys_[slot] = key;
        values_[slot] = cycle;
    }

    /// Bounds-checked read-only row view preserving the historical
    /// map[node][packet] indexing.
    class Row {
    public:
        Row(const DeliveryMap& map, node_t node) : map_(&map), node_(node) {}
        [[nodiscard]] std::uint32_t operator[](packet_t packet) const {
            HCUBE_ENSURE(node_ < map_->nodes_ && packet < map_->packets_);
            return map_->get(node_, packet);
        }

    private:
        const DeliveryMap* map_;
        node_t node_;
    };

    [[nodiscard]] Row operator[](node_t node) const noexcept {
        return Row(*this, node);
    }

private:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    [[nodiscard]] std::size_t cell_index(node_t node,
                                         packet_t packet) const noexcept {
        return static_cast<std::size_t>(packet) * nodes_ + node;
    }

    [[nodiscard]] static std::uint64_t make_key(node_t node,
                                                packet_t packet) noexcept {
        // Cannot collide with kEmptyKey: node < 2^kMaxDimension < 2^32 - 1.
        return (std::uint64_t{packet} << 32) | node;
    }

    [[nodiscard]] std::size_t probe_start(std::uint64_t key) const noexcept {
        // Fibonacci hashing spreads the low-entropy (packet, node) keys.
        const std::uint64_t mixed =
            key * std::uint64_t{0x9e3779b97f4a7c15};
        return static_cast<std::size_t>(mixed >> 32) & mask_;
    }

    [[nodiscard]] static std::size_t
    table_size_for(std::size_t expected_entries) noexcept {
        // Keep the load factor at or below 1/2 after `expected_entries`.
        return std::bit_ceil(std::max<std::size_t>(16, expected_entries * 2));
    }

    void rehash(std::size_t new_size) {
        std::vector<std::uint64_t> old_keys(new_size, kEmptyKey);
        std::vector<std::uint32_t> old_values(new_size, 0);
        old_keys.swap(keys_);
        old_values.swap(values_);
        mask_ = new_size - 1;
        for (std::size_t slot = 0; slot < old_keys.size(); ++slot) {
            if (old_keys[slot] == kEmptyKey) {
                continue;
            }
            std::size_t target = probe_start(old_keys[slot]);
            while (keys_[target] != kEmptyKey) {
                target = (target + 1) & mask_;
            }
            keys_[target] = old_keys[slot];
            values_[target] = old_values[slot];
        }
    }

    node_t nodes_ = 0;
    packet_t packets_ = 0;
    bool sparse_ = false;
    std::size_t entries_ = 0;
    std::vector<std::uint32_t> cells_;   ///< dense: packet-major matrix
    std::vector<std::uint64_t> keys_;    ///< sparse: open addressing
    std::vector<std::uint32_t> values_;  ///< sparse: cycle per key slot
    std::size_t mask_ = 0;
};

} // namespace hcube::sim
