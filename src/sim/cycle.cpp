#include "sim/cycle.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <string>
#include <vector>

namespace hcube::sim {

namespace {

// Cold failure paths. Formatting the diagnostic only once a violation is
// found keeps the validation loop free of string construction — the single
// biggest cost of the previous executor.
[[noreturn]] [[gnu::cold]] [[gnu::noinline]] void
fail_send(const char* what, const ScheduledSend& send) {
    throw check_error(std::string("schedule violation: ") + what +
                      " (cycle " + std::to_string(send.cycle) + ", " +
                      std::to_string(send.from) + " -> " +
                      std::to_string(send.to) + ", packet " +
                      std::to_string(send.packet) + ")");
}

/// Sends ordered by cycle. `view` aliases the input when it was already
/// non-decreasing (the common case for generator output), else `storage`
/// holds a stable counting-sorted copy (O(S + makespan)); a comparison sort
/// only ever runs for adversarial cycle numbering far beyond the send count.
struct OrderedSends {
    std::vector<ScheduledSend> storage;
    std::span<const ScheduledSend> view;
};

OrderedSends order_by_cycle(std::span<const ScheduledSend> sends) {
    OrderedSends out;
    bool sorted = true;
    std::uint32_t max_cycle = 0;
    for (std::size_t i = 0; i < sends.size(); ++i) {
        sorted &= i == 0 || sends[i].cycle >= sends[i - 1].cycle;
        max_cycle = std::max(max_cycle, sends[i].cycle);
    }
    if (sorted) {
        out.view = sends;
        return out;
    }
    if (std::uint64_t{max_cycle} <= 2 * sends.size() + 4096) {
        std::vector<std::uint64_t> start(std::size_t{max_cycle} + 1, 0);
        for (const ScheduledSend& send : sends) {
            ++start[send.cycle];
        }
        std::uint64_t acc = 0;
        for (std::uint64_t& slot : start) {
            const std::uint64_t bucket = slot;
            slot = acc;
            acc += bucket;
        }
        out.storage.resize(sends.size());
        for (const ScheduledSend& send : sends) {
            out.storage[start[send.cycle]++] = send;
        }
    } else {
        out.storage.assign(sends.begin(), sends.end());
        std::ranges::stable_sort(out.storage, {}, &ScheduledSend::cycle);
    }
    out.view = out.storage;
    return out;
}

} // namespace

CycleStats execute_schedule(const Schedule& schedule, PortModel model,
                            DeliveryTracking tracking) {
    HCUBE_ENSURE(schedule.n >= 1 && schedule.n <= hc::kMaxDimension);
    const node_t count = node_t{1} << schedule.n;
    const auto n = static_cast<std::uint32_t>(schedule.n);
    HCUBE_ENSURE(schedule.initial_holder.size() == schedule.packet_count);

    CycleStats stats;
    const std::uint64_t dense_cells =
        std::uint64_t{count} * schedule.packet_count;
    const std::uint64_t expected_entries =
        schedule.packet_count + std::uint64_t{schedule.sends.size()};
    // Dense unless the matrix dwarfs both a fixed budget and the number of
    // deliveries the schedule can actually make (one per send + initials).
    const bool use_sparse =
        tracking == DeliveryTracking::sparse ||
        (tracking == DeliveryTracking::automatic &&
         dense_cells > std::max<std::uint64_t>(std::uint64_t{1} << 22,
                                               8 * expected_entries));
    stats.delivery_cycle =
        use_sparse
            ? DeliveryMap::sparse(count, schedule.packet_count,
                                  static_cast<std::size_t>(expected_entries))
            : DeliveryMap::dense(count, schedule.packet_count);
    DeliveryMap& delivered = stats.delivery_cycle;
    for (packet_t p = 0; p < schedule.packet_count; ++p) {
        const node_t holder = schedule.initial_holder[p];
        HCUBE_ENSURE(holder < count);
        delivered.set(holder, p, 0);
    }

    const OrderedSends ordered = order_by_cycle(schedule.sends);
    const std::span<const ScheduledSend> sends = ordered.view;

    // Directed-link occupancy of the current cycle: bit from·n + dim. Bits
    // set while validating a cycle are cleared by re-walking that cycle's
    // sends, so the whole run touches O(total sends) words.
    std::vector<std::uint64_t> link_used(
        static_cast<std::size_t>((std::uint64_t{count} * n + 63) / 64), 0);
    // Epoch-stamped per-node port state: a node sent (received) in the
    // current cycle iff its stamp equals cycle + 1. Never cleared.
    std::vector<std::uint32_t> sent_stamp;
    std::vector<std::uint32_t> recv_stamp;
    if (model != PortModel::all_port) {
        sent_stamp.assign(count, 0);
        recv_stamp.assign(count, 0);
    }

    std::size_t at = 0;
    while (at < sends.size()) {
        const std::uint32_t cycle = sends[at].cycle;
        if (cycle + 2 == 0 || cycle + 1 == 0) [[unlikely]] {
            // cycle + 1 must stay below kNever (reserved) and nonzero (the
            // epoch stamps use 0 as "never").
            fail_send("cycle index too large", sends[at]);
        }
        const std::uint32_t stamp = cycle + 1;
        std::size_t end = at;
        while (end < sends.size() && sends[end].cycle == cycle) {
            ++end;
        }

        for (std::size_t idx = at; idx < end; ++idx) {
            const ScheduledSend& send = sends[idx];
            if (send.from >= count || send.to >= count) [[unlikely]] {
                fail_send("node out of range", send);
            }
            const node_t diff = send.from ^ send.to;
            if (!std::has_single_bit(diff)) [[unlikely]] {
                fail_send("send between non-neighbors", send);
            }
            if (send.packet >= schedule.packet_count) [[unlikely]] {
                fail_send("unknown packet", send);
            }

            const auto dim =
                static_cast<std::uint32_t>(std::countr_zero(diff));
            const std::uint64_t link = std::uint64_t{send.from} * n + dim;
            std::uint64_t& word = link_used[static_cast<std::size_t>(
                link >> 6)];
            const std::uint64_t bit = std::uint64_t{1} << (link & 63);
            if ((word & bit) != 0) [[unlikely]] {
                fail_send("two packets on one directed link in one cycle",
                          send);
            }
            word |= bit;

            switch (model) {
            case PortModel::one_port_half_duplex:
                // At most one operation — send *or* receive — per node.
                if (sent_stamp[send.from] == stamp ||
                    recv_stamp[send.from] == stamp) [[unlikely]] {
                    fail_send("half-duplex sender already busy this cycle",
                              send);
                }
                if (sent_stamp[send.to] == stamp ||
                    recv_stamp[send.to] == stamp) [[unlikely]] {
                    fail_send("half-duplex receiver already busy this cycle",
                              send);
                }
                sent_stamp[send.from] = stamp;
                recv_stamp[send.to] = stamp;
                break;
            case PortModel::one_port_full_duplex:
                if (sent_stamp[send.from] == stamp) [[unlikely]] {
                    fail_send("full-duplex node sends twice in one cycle",
                              send);
                }
                if (recv_stamp[send.to] == stamp) [[unlikely]] {
                    fail_send("full-duplex node receives twice in one cycle",
                              send);
                }
                sent_stamp[send.from] = stamp;
                recv_stamp[send.to] = stamp;
                break;
            case PortModel::all_port:
                // One packet per directed link per cycle is the only
                // constraint, already enforced via link_used (ports are in
                // bijection with incident links).
                break;
            }

            // kNever compares greater than every admissible cycle, so one
            // comparison covers both "never held" and "held too late".
            if (delivered.get(send.from, send.packet) > cycle) [[unlikely]] {
                fail_send("sender does not hold the packet yet", send);
            }
            if (delivered.get(send.to, send.packet) !=
                CycleStats::kNever) [[unlikely]] {
                fail_send("receiver already holds the packet", send);
            }
            delivered.set(send.to, send.packet, cycle + 1);
        }

        for (std::size_t idx = at; idx < end; ++idx) {
            const ScheduledSend& send = sends[idx];
            const auto dim = static_cast<std::uint32_t>(
                std::countr_zero(send.from ^ send.to));
            const std::uint64_t link = std::uint64_t{send.from} * n + dim;
            link_used[static_cast<std::size_t>(link >> 6)] &=
                ~(std::uint64_t{1} << (link & 63));
        }

        stats.total_sends += end - at;
        stats.max_sends_in_one_cycle =
            std::max<std::uint64_t>(stats.max_sends_in_one_cycle, end - at);
        stats.makespan = cycle + 1;
        at = end;
    }
    return stats;
}

Schedule stretch_to_half_duplex(const Schedule& schedule) {
    HCUBE_ENSURE(schedule.n >= 1 && schedule.n <= hc::kMaxDimension);
    const node_t count = node_t{1} << schedule.n;

    const OrderedSends ordered = order_by_cycle(schedule.sends);
    const std::span<const ScheduledSend> sends = ordered.view;

    Schedule out;
    out.n = schedule.n;
    out.packet_count = schedule.packet_count;
    out.initial_holder = schedule.initial_holder;
    out.sends.reserve(sends.size());

    // Per node: index of its outgoing / incoming transfer in the current
    // cycle's group, epoch-stamped by cycle + 1 so nothing is cleared.
    std::vector<std::uint32_t> out_idx(count, 0);
    std::vector<std::uint32_t> in_idx(count, 0);
    std::vector<std::uint32_t> out_stamp(count, 0);
    std::vector<std::uint32_t> in_stamp(count, 0);
    std::vector<int> colour;
    std::vector<std::uint32_t> stack;

    std::uint32_t next_cycle = 0;
    std::size_t at = 0;
    while (at < sends.size()) {
        const std::uint32_t cycle = sends[at].cycle;
        if (cycle + 1 == 0) [[unlikely]] {
            fail_send("cycle index too large", sends[at]);
        }
        const std::uint32_t stamp = cycle + 1;
        std::size_t end = at;
        while (end < sends.size() && sends[end].cycle == cycle) {
            ++end;
        }
        const auto group = static_cast<std::uint32_t>(end - at);

        bool bidirectional_node = false;
        for (std::size_t idx = at; idx < end; ++idx) {
            const ScheduledSend& send = sends[idx];
            if (send.from >= count || send.to >= count) [[unlikely]] {
                fail_send("node out of range", send);
            }
            if (out_stamp[send.from] == stamp ||
                in_stamp[send.to] == stamp) [[unlikely]] {
                fail_send(
                    "stretch_to_half_duplex input is not full-duplex "
                    "feasible",
                    send);
            }
            const auto t = static_cast<std::uint32_t>(idx - at);
            out_stamp[send.from] = stamp;
            out_idx[send.from] = t;
            in_stamp[send.to] = stamp;
            in_idx[send.to] = t;
            bidirectional_node |= in_stamp[send.from] == stamp;
            bidirectional_node |= out_stamp[send.to] == stamp;
        }

        if (!bidirectional_node) {
            // Unidirectional cycle: stays a single step (the paper's first
            // log N steps and last step).
            for (std::size_t idx = at; idx < end; ++idx) {
                out.sends.push_back({next_cycle, sends[idx].from,
                                     sends[idx].to, sends[idx].packet});
            }
            ++next_cycle;
        } else {
            // 2-colour the transfer graph. Each transfer conflicts with at
            // most two others (the transfer into its sender and the transfer
            // out of its receiver), so components are paths or cycles;
            // alternate colours along them. Odd cycles would be infeasible.
            colour.assign(group, -1);
            for (std::uint32_t seed = 0; seed < group; ++seed) {
                if (colour[seed] != -1) {
                    continue;
                }
                colour[seed] = 0;
                stack.clear();
                stack.push_back(seed);
                while (!stack.empty()) {
                    const std::uint32_t t = stack.back();
                    stack.pop_back();
                    const ScheduledSend& s = sends[at + t];
                    const std::uint32_t neighbours[2] = {
                        in_stamp[s.from] == stamp ? in_idx[s.from] : group,
                        out_stamp[s.to] == stamp ? out_idx[s.to] : group,
                    };
                    for (const std::uint32_t u : neighbours) {
                        if (u == group) {
                            continue;
                        }
                        if (colour[u] == -1) {
                            colour[u] = 1 - colour[t];
                            stack.push_back(u);
                        } else if (colour[u] == colour[t]) [[unlikely]] {
                            fail_send("odd transfer cycle: not half-duplex "
                                      "schedulable in two sub-cycles",
                                      s);
                        }
                    }
                }
            }
            for (std::size_t idx = at; idx < end; ++idx) {
                out.sends.push_back(
                    {next_cycle +
                         static_cast<std::uint32_t>(colour[idx - at]),
                     sends[idx].from, sends[idx].to, sends[idx].packet});
            }
            next_cycle += 2;
        }
        at = end;
    }
    return out;
}

} // namespace hcube::sim
