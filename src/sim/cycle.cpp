#include "sim/cycle.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace hcube::sim {

CycleStats execute_schedule(const Schedule& schedule, PortModel model) {
    HCUBE_ENSURE(schedule.n >= 1 && schedule.n <= hc::kMaxDimension);
    const node_t count = node_t{1} << schedule.n;
    HCUBE_ENSURE(schedule.initial_holder.size() == schedule.packet_count);

    CycleStats stats;
    stats.delivery_cycle.assign(
        count, std::vector<std::uint32_t>(schedule.packet_count,
                                          CycleStats::kNever));
    for (packet_t p = 0; p < schedule.packet_count; ++p) {
        const node_t holder = schedule.initial_holder[p];
        HCUBE_ENSURE(holder < count);
        stats.delivery_cycle[holder][p] = 0;
    }

    std::vector<ScheduledSend> sends(schedule.sends.begin(),
                                     schedule.sends.end());
    std::ranges::stable_sort(sends, {}, &ScheduledSend::cycle);

    std::size_t at = 0;
    while (at < sends.size()) {
        const std::uint32_t cycle = sends[at].cycle;
        std::size_t end = at;
        while (end < sends.size() && sends[end].cycle == cycle) {
            ++end;
        }

        std::set<std::pair<node_t, node_t>> links_used;
        std::map<node_t, int> sends_by_node;
        std::map<node_t, int> recvs_by_node;

        for (std::size_t idx = at; idx < end; ++idx) {
            const ScheduledSend& send = sends[idx];
            const std::string where = "cycle " + std::to_string(cycle) +
                                      ", " + std::to_string(send.from) +
                                      " -> " + std::to_string(send.to) +
                                      ", packet " +
                                      std::to_string(send.packet);
            HCUBE_ENSURE_MSG(send.from < count && send.to < count,
                             "node out of range: " + where);
            HCUBE_ENSURE_MSG(hc::hamming(send.from, send.to) == 1,
                             "send between non-neighbors: " + where);
            HCUBE_ENSURE_MSG(send.packet < schedule.packet_count,
                             "unknown packet: " + where);
            HCUBE_ENSURE_MSG(
                stats.delivery_cycle[send.from][send.packet] <= cycle,
                "sender does not hold the packet yet: " + where);
            HCUBE_ENSURE_MSG(
                stats.delivery_cycle[send.to][send.packet] ==
                    CycleStats::kNever,
                "receiver already holds the packet: " + where);
            HCUBE_ENSURE_MSG(
                links_used.emplace(send.from, send.to).second,
                "two packets on one directed link in one cycle: " + where);

            ++sends_by_node[send.from];
            ++recvs_by_node[send.to];
            stats.delivery_cycle[send.to][send.packet] = cycle + 1;
        }

        // Port-model constraints over the whole cycle.
        switch (model) {
        case PortModel::one_port_half_duplex:
            for (const auto& [node, n_sends] : sends_by_node) {
                auto it = recvs_by_node.find(node);
                const int n_recvs = (it == recvs_by_node.end()) ? 0
                                                                : it->second;
                HCUBE_ENSURE_MSG(n_sends + n_recvs <= 1,
                                 "half-duplex node " + std::to_string(node) +
                                     " does more than one operation in cycle " +
                                     std::to_string(cycle));
            }
            for (const auto& [node, n_recvs] : recvs_by_node) {
                HCUBE_ENSURE_MSG(n_recvs <= 1,
                                 "half-duplex node " + std::to_string(node) +
                                     " receives twice in cycle " +
                                     std::to_string(cycle));
            }
            break;
        case PortModel::one_port_full_duplex:
            for (const auto& [node, n_sends] : sends_by_node) {
                HCUBE_ENSURE_MSG(n_sends <= 1,
                                 "full-duplex node " + std::to_string(node) +
                                     " sends twice in cycle " +
                                     std::to_string(cycle));
            }
            for (const auto& [node, n_recvs] : recvs_by_node) {
                HCUBE_ENSURE_MSG(n_recvs <= 1,
                                 "full-duplex node " + std::to_string(node) +
                                     " receives twice in cycle " +
                                     std::to_string(cycle));
            }
            break;
        case PortModel::all_port:
            // One packet per directed link per cycle is the only constraint,
            // already enforced via links_used (ports are in bijection with
            // incident links).
            break;
        }

        stats.total_sends += end - at;
        stats.max_sends_in_one_cycle =
            std::max<std::uint64_t>(stats.max_sends_in_one_cycle, end - at);
        stats.makespan = cycle + 1;
        at = end;
    }
    return stats;
}

Schedule stretch_to_half_duplex(const Schedule& schedule) {
    std::vector<ScheduledSend> sends(schedule.sends.begin(),
                                     schedule.sends.end());
    std::ranges::stable_sort(sends, {}, &ScheduledSend::cycle);

    Schedule out;
    out.n = schedule.n;
    out.packet_count = schedule.packet_count;
    out.initial_holder = schedule.initial_holder;
    out.sends.reserve(sends.size());

    std::uint32_t next_cycle = 0;
    std::size_t at = 0;
    while (at < sends.size()) {
        const std::uint32_t cycle = sends[at].cycle;
        std::size_t end = at;
        while (end < sends.size() && sends[end].cycle == cycle) {
            ++end;
        }
        const std::size_t group = end - at;

        // Per node: index of its outgoing / incoming transfer in this cycle.
        std::map<node_t, std::size_t> out_of;
        std::map<node_t, std::size_t> in_of;
        bool bidirectional_node = false;
        for (std::size_t idx = at; idx < end; ++idx) {
            HCUBE_ENSURE_MSG(
                out_of.emplace(sends[idx].from, idx - at).second,
                "stretch_to_half_duplex input is not full-duplex feasible");
            HCUBE_ENSURE_MSG(
                in_of.emplace(sends[idx].to, idx - at).second,
                "stretch_to_half_duplex input is not full-duplex feasible");
        }
        for (const auto& [node, _] : out_of) {
            if (in_of.contains(node)) {
                bidirectional_node = true;
            }
        }

        if (!bidirectional_node) {
            // Unidirectional cycle: stays a single step (the paper's first
            // log N steps and last step).
            for (std::size_t idx = at; idx < end; ++idx) {
                out.sends.push_back({next_cycle, sends[idx].from,
                                     sends[idx].to, sends[idx].packet});
            }
            ++next_cycle;
        } else {
            // 2-colour the transfer graph. Each transfer conflicts with at
            // most two others (the transfer into its sender and the transfer
            // out of its receiver), so components are paths or cycles;
            // alternate colours along them. Odd cycles would be infeasible.
            std::vector<int> colour(group, -1);
            for (std::size_t seed = 0; seed < group; ++seed) {
                if (colour[seed] != -1) {
                    continue;
                }
                colour[seed] = 0;
                std::vector<std::size_t> stack{seed};
                while (!stack.empty()) {
                    const std::size_t t = stack.back();
                    stack.pop_back();
                    const ScheduledSend& s = sends[at + t];
                    const std::size_t neighbours[2] = {
                        in_of.contains(s.from) ? in_of.at(s.from) : group,
                        out_of.contains(s.to) ? out_of.at(s.to) : group,
                    };
                    for (const std::size_t u : neighbours) {
                        if (u == group) {
                            continue;
                        }
                        if (colour[u] == -1) {
                            colour[u] = 1 - colour[t];
                            stack.push_back(u);
                        } else {
                            HCUBE_ENSURE_MSG(
                                colour[u] != colour[t],
                                "odd transfer cycle: not half-duplex "
                                "schedulable in two sub-cycles");
                        }
                    }
                }
            }
            for (std::size_t idx = at; idx < end; ++idx) {
                out.sends.push_back(
                    {next_cycle +
                         static_cast<std::uint32_t>(colour[idx - at]),
                     sends[idx].from, sends[idx].to, sends[idx].packet});
            }
            next_cycle += 2;
        }
        at = end;
    }
    return out;
}

} // namespace hcube::sim
