// Schedule inspection: text Gantt rendering and link-utilization statistics.
//
// The paper's arguments are all about which links are busy when — the MSBT
// uses every directed edge except n of them, the SBT leaves most idle. These
// helpers make that visible for any cycle schedule.
#pragma once

#include "sim/cycle.hpp"

#include <string>

namespace hcube::sim {

/// Per-schedule link statistics.
struct LinkUtilization {
    std::uint64_t directed_links_used = 0;  ///< distinct (from,to) pairs
    std::uint64_t directed_links_total = 0; ///< N * n
    std::uint64_t busiest_link_sends = 0;   ///< max sends over one link
    double mean_sends_per_used_link = 0;
    /// Fraction of link-cycles actually carrying a packet
    /// (total sends / (links used * makespan)).
    double busy_fraction = 0;
};

/// Computes utilization statistics for a schedule.
[[nodiscard]] LinkUtilization link_utilization(const Schedule& schedule);

/// Writes the schedule as CSV (cycle,from,to,packet) for external
/// visualization. Throws std::runtime_error if the file cannot be opened.
void schedule_to_csv(const Schedule& schedule, const std::string& path);

/// Renders a per-link time line: one row per *used* directed link, one
/// column per cycle ('#' = packet in flight, '.' = idle). Rows and columns
/// are truncated to `max_links` / `max_cycles` to stay readable.
[[nodiscard]] std::string render_gantt(const Schedule& schedule,
                                       std::size_t max_links = 48,
                                       std::size_t max_cycles = 100);

} // namespace hcube::sim
