// Continuous-time, event-driven network simulator — the iPSC/d7 stand-in.
//
// The paper's measurements (Figures 5-8) are wall-clock times on an Intel
// iPSC/d7 whose behaviour the paper's own analysis reduces to: a message of
// m elements on one link costs τ + m·t_c, messages longer than the internal
// packet size B are split into packets (each paying its own τ), nodes obey a
// port model, and communication actions on *different ports* of a node can
// overlap by a small fraction (~20%, §5.2's explanation of Figure 8).
//
// This engine models exactly those mechanisms:
//  * every node runs a Protocol (a distributed routing program): it gets
//    on_start() once, on_receive() per delivered message, and issues sends;
//  * sends from one node drain in FIFO order per sending resource;
//  * a transfer occupies the sender, the receiver and the link for its whole
//    duration; consecutive operations on the *same* resource may overlap by
//    `overlap` fraction of the earlier operation when they use different
//    ports (0 disables overlap);
//  * under one_port_half_duplex a busy receiver delays the transfer, which
//    back-pressures the sender — the cascade the paper blames for the SBT's
//    measured disadvantage in Figure 8.
#pragma once

#include "hc/types.hpp"
#include "sim/port_model.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace hcube::sim {

using hc::dim_t;
using hc::node_t;

/// Machine/communication parameters (defaults: our iPSC/d7 approximation;
/// see DESIGN.md — shapes matter, not absolute numbers).
struct EventParams {
    double tau = 1.7e-3;      ///< start-up time per packet [s]
    double tc = 2.86e-6;      ///< transfer time per element (byte) [s]
    double packet_capacity = 1024; ///< internal max packet size B [elements]
    double overlap = 0.0;     ///< cross-port overlap fraction in [0, 1)
    PortModel model = PortModel::one_port_full_duplex;
    bool record_trace = false; ///< collect per-transfer records in the stats
};

/// A message as seen by protocols. `size` is in elements; `dest` is the
/// final destination (== receiving node for broadcast data); `tag`
/// distinguishes streams (e.g. MSBT subtree index or scatter packet index).
/// `payload` optionally carries actual data for the data-moving collectives
/// (routing/collectives.hpp); the engine itself never looks inside it.
struct Message {
    node_t dest = 0;
    double size = 0;
    std::uint64_t tag = 0;
    std::shared_ptr<const std::vector<double>> payload{};
};

class EventEngine;

/// Handle protocols use to issue sends from a node.
class NodeContext {
public:
    NodeContext(EventEngine& engine, node_t node) noexcept
        : engine_(&engine), node_(node) {}

    /// This node's address.
    [[nodiscard]] node_t self() const noexcept { return node_; }

    /// Current simulation time [s].
    [[nodiscard]] double now() const noexcept;

    /// Enqueues `message` for transmission to neighbor `to`. Messages from
    /// one node drain in enqueue order (per port under all_port).
    void send(node_t to, const Message& message);

private:
    EventEngine* engine_;
    node_t node_;
};

/// A distributed routing program: one instance serves all nodes (node
/// identity arrives via the context). Implementations must be stateless or
/// keep per-node state keyed by ctx.self().
class Protocol {
public:
    virtual ~Protocol() = default;

    /// Called once per node at time 0 (sources enqueue their initial sends).
    virtual void on_start(NodeContext& ctx) { (void)ctx; }

    /// Called when a complete message has been delivered to ctx.self().
    virtual void on_receive(NodeContext& ctx, const Message& message) = 0;
};

/// One committed physical packet transfer (recorded when
/// EventParams::record_trace is set).
struct TransferRecord {
    node_t from = 0;
    node_t to = 0;
    double start = 0; ///< [s]
    double end = 0;   ///< [s]
    double size = 0;  ///< elements
};

/// Simulation results.
struct EventStats {
    double completion_time = 0;   ///< time of the last delivery [s]
    std::uint64_t transfers = 0;  ///< physical packet transfers
    std::uint64_t messages = 0;   ///< protocol-level messages delivered
    double total_busy_time = 0;   ///< sum of link busy time [s·links]
    /// Per-transfer records, in commit order (empty unless
    /// EventParams::record_trace).
    std::vector<TransferRecord> trace;
};

/// Runs `protocol` on an n-cube until no work remains.
class EventEngine {
public:
    EventEngine(dim_t n, EventParams params);
    ~EventEngine();

    EventEngine(const EventEngine&) = delete;
    EventEngine& operator=(const EventEngine&) = delete;

    /// Runs to quiescence; callable once per engine instance.
    EventStats run(Protocol& protocol);

private:
    friend class NodeContext;

    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace hcube::sim
