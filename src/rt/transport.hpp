// The transport interface of the threaded runtime, extracted from
// rt/channel.hpp.
//
// Everything the execution engines (and the shared delivery path in
// rt/delivery.hpp) demand of a channel backend is this compile-time
// interface: publish a block descriptor on a directed link (send side),
// observe and retire the oldest undelivered descriptor (arrival wait and
// drain on the receive side), and rewind between runs. Two backends
// implement it:
//
//   rt::ChannelBank        — the in-process SPSC descriptor rings (nodes
//                            are threads; the original backend, and the
//                            differential oracle for every other one);
//   net::SocketChannelBank — the multi-process backend (hcube::net): local
//                            links stay in-process rings, links whose
//                            endpoints live in different processes cross a
//                            Unix-domain or TCP socket through a
//                            reliability sublayer (src/net/).
//
// The interface is a C++20 concept rather than a virtual base on purpose:
// the per-block hot path (docs/PERFORMANCE.md) is a pointer publish plus a
// digest-word compare, and a virtual dispatch per hop would be measurable.
// Each engine's translation unit instantiates the delivery helpers against
// the one concrete bank it drives, so both backends get fully inlined
// channel operations.
#pragma once

#include "ft/fault_model.hpp"
#include "rt/channel.hpp"

#include <concepts>
#include <cstdint>
#include <span>

namespace hcube::rt {

/// The transport medium enum lives in ft (fault_model.hpp) so detection
/// policy can scale with it without ft depending on rt; alias it into rt,
/// where the runtime-facing surface (PlayStats, Result, bench JSON) uses it.
using ft::TransportClass;

/// What an execution engine requires of a channel backend. `Desc` is the
/// descriptor every backend hands to consumers (rt::ChannelBank::Desc).
template <class B>
concept Transport = requires(B& bank, const B& cbank, std::uint32_t channel,
                             std::uint32_t packet,
                             std::span<const double> block,
                             std::uint64_t checksum, ChannelBank::Desc& d) {
    // Send side: publish `block`'s descriptor on `channel`; false only on
    // a full ring (or a dead remote link).
    { bank.try_push(channel, packet, block, checksum) } -> std::same_as<bool>;
    // Receive side: observe the oldest undelivered descriptor (the arrival
    // wait in rt/detect.hpp polls this), then retire it.
    { cbank.front(channel, d) } -> std::same_as<bool>;
    { bank.pop_front(channel) };
    // Rewind counters between runs (valid only while quiescent).
    { bank.reset() };
    // Geometry the engines size their loops against.
    { cbank.channel_count() } -> std::convertible_to<std::uint32_t>;
    { cbank.block_elems() } -> std::convertible_to<std::size_t>;
    // True when pushes copy payload through backend-owned staging (the
    // engines pick the copy-through delivery protocol accordingly).
    { cbank.inline_active() } -> std::same_as<bool>;
};

static_assert(Transport<ChannelBank>,
              "the in-process ring bank must satisfy the transport concept");

} // namespace hcube::rt
