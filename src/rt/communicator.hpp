// rt::Communicator — the collective API of the threaded runtime.
//
// Where routing::CollectiveComm runs the paper's algorithms on the *event
// simulator* (simulated seconds), this communicator runs the cycle-exact
// schedules as *real data movement*: logical cube nodes mapped onto a
// thread pool, directed links as sequence-stamped ring-buffer channels,
// and a checksum check on every delivered block. Two engines execute a
// compiled plan: the two-barrier-per-cycle Player (the cycle-exact
// reference oracle) and the dependency-driven AsyncPlayer (the fast path,
// no global barriers). With Engine::async the barrier engine still runs
// once per operation as the oracle, and verification additionally demands
// a byte-identical final memory state across the two. Every operation also
// executes the same schedule through sim::execute_schedule, so the result
// carries both the measured wall clock and the cycle-model cross-check:
// for uniform packets the barrier engine's cycle count equals the
// CycleExecutor makespan exactly (the async engine reports the same
// logical depth without ever synchronizing on it).
//
// Operations map onto the paper's schedule families via the
// routing/schedule_export.hpp hooks:
//   broadcast  — any spanning tree (port-oriented or paced) or the MSBT;
//   scatter    — SBT descending / BST cyclic / all-port per-subtree;
//   gather     — the time-reversed scatter;
//   reduce     — the time-reversed broadcast, combining elementwise;
//   allgather  — recursive doubling (packet j = node j's block);
//   alltoall   — dimension-order complete exchange.
#pragma once

#include "routing/schedule_export.hpp"
#include "rt/player.hpp" // PlayStats, ExecMode
#include "sim/port_model.hpp"
#include "trees/spanning_tree.hpp"

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_set>

namespace hcube::rt {

/// Which execution engine runs the schedule.
enum class Engine {
    barrier, ///< cycle-exact two-barrier-per-cycle Player (the oracle)
    async,   ///< dependency-driven work-stealing AsyncPlayer (no barriers)
};

[[nodiscard]] constexpr std::string_view to_string(Engine e) noexcept {
    return e == Engine::barrier ? "barrier" : "async";
}

/// When the async engine's barrier-oracle cross-check runs (see
/// docs/RUNTIME.md § Verification policy). Irrelevant under
/// Engine::barrier, where the measured engine *is* the oracle.
enum class Verify {
    always, ///< oracle re-executes every operation (the safest default)
    first,  ///< oracle runs once per distinct schedule fingerprint; later
            ///< repeats rely on per-block checksums + the holdings check
    never,  ///< oracle never runs; checksums + holdings only
};

[[nodiscard]] constexpr std::string_view to_string(Verify v) noexcept {
    switch (v) {
    case Verify::always: return "always";
    case Verify::first: return "first";
    case Verify::never: return "never";
    }
    return "?";
}

struct Params {
    /// Worker threads; 0 picks min(2^n, max(2, hardware_concurrency))
    /// (rt/threads.hpp).
    std::uint32_t threads = 0;
    /// Elements (doubles) per packet — the internal packet size B_int.
    std::size_t block_elems = 256;
    /// Ring slots per link channel (barrier engine; the async engine sizes
    /// its rings from the plan's async_depth).
    std::uint32_t channel_capacity = 2;
    /// Port model the schedules are generated for and validated under.
    sim::PortModel model = sim::PortModel::one_port_full_duplex;
    /// Engine whose stats the Result reports. Engine::async still runs the
    /// barrier engine once as the reference oracle and cross-checks the
    /// final memory states byte for byte — unless `verify` relaxes it.
    Engine engine = Engine::async;
    /// Barrier-oracle policy for the async engine. Tests default to
    /// `always`; the service layer's cached steady state uses `first`.
    Verify verify = Verify::always;
};

struct Result {
    std::uint32_t rt_cycles = 0;    ///< logical cycles of the schedule
    std::uint32_t sim_makespan = 0; ///< CycleExecutor makespan (cross-check)
    std::uint64_t blocks_delivered = 0;
    std::uint64_t payload_bytes = 0; ///< bytes drained from link channels
    std::uint64_t bytes_copied = 0;  ///< payload bytes memcpy'd by the
                                     ///< reported engine (0 = pure zero-copy)
    double seconds = 0;              ///< wall clock of the reported engine
    double ref_seconds = 0; ///< barrier-oracle wall clock (async engine)
    std::uint64_t steals = 0; ///< work-stealing count (async engine)
    /// Fault counters of the reported engine's run (all zero on a healthy
    /// machine; nonzero under ft fault injection or real failures).
    std::uint64_t checksum_failures = 0;
    std::uint64_t channel_faults = 0;
    std::uint64_t timeouts = 0;
    bool verified = false; ///< per-block checksums + final-state checks
    /// The barrier oracle executed and cross-checked this operation (false
    /// when Verify::first already covered the fingerprint or Verify::never
    /// suppressed it; meaningless under Engine::barrier, where it is true).
    bool oracle_checked = false;
    /// The run executed on a persistent worker pool (or the single-worker
    /// serial path) — no thread was created or joined for this operation.
    bool pool_reused = false;
    Engine engine = Engine::barrier; ///< engine the stats above came from
    /// How the reported engine's run actually executed: barrier phases,
    /// the AsyncPlayer's serial fast path, or its work-stealing mode (the
    /// adaptive tuner's per-run choice).
    ExecMode exec_mode = ExecMode::barrier;
    /// Medium the reported engine moved blocks over ("ring" for the
    /// in-process bank; "uds"/"tcp" when a net-backend result is folded
    /// into the same schema).
    ft::TransportClass transport = ft::TransportClass::ring;
    std::uint32_t threads = 1;

    [[nodiscard]] double gbytes_per_sec() const noexcept {
        return seconds > 0
                   ? static_cast<double>(payload_bytes) / seconds * 1e-9
                   : 0.0;
    }
};

class WorkerPool;

class Communicator {
public:
    explicit Communicator(hc::dim_t n, Params params = {});
    ~Communicator();
    Communicator(const Communicator&) = delete;
    Communicator& operator=(const Communicator&) = delete;

    [[nodiscard]] hc::dim_t dimension() const noexcept { return n_; }
    [[nodiscard]] std::uint32_t threads() const noexcept { return threads_; }

    /// Broadcast `packets` blocks from tree.root down `tree`.
    Result broadcast(const trees::SpanningTree& tree,
                     routing::BroadcastDiscipline discipline,
                     sim::packet_t packets);

    /// MSBT broadcast of `packets` blocks (divisible by n) from `root`.
    Result broadcast_msbt(hc::node_t root, sim::packet_t packets);

    /// Scatter `packets_per_dest` blocks from tree.root to every node.
    Result scatter(const trees::SpanningTree& tree,
                   routing::ScatterPolicy policy,
                   sim::packet_t packets_per_dest);

    /// Gather every node's blocks at tree.root (time-reversed scatter).
    Result gather(const trees::SpanningTree& tree,
                  routing::ScatterPolicy policy,
                  sim::packet_t packets_per_dest);

    /// Elementwise-sum reduction of `packets` blocks per node into
    /// tree.root, down the time-reversed port-oriented broadcast of `tree`.
    /// Verified against the exact integer sums of every contribution.
    Result reduce(const trees::SpanningTree& tree, sim::packet_t packets);

    /// Allgather: node j's block (packet j) reaches every node.
    Result allgather();

    /// All-to-all personalized exchange, `packets_per_pair` blocks per
    /// (src, dest) pair.
    Result alltoall(sim::packet_t packets_per_pair);

private:
    /// Validates via the cycle executor, compiles, plays, verifies final
    /// holdings block by block.
    Result run_move(const sim::Schedule& schedule);

    /// True when the barrier oracle must run for this schedule under the
    /// configured Verify policy (records the fingerprint under ::first).
    [[nodiscard]] bool oracle_due(const sim::Schedule& schedule);

    hc::dim_t n_;
    Params params_;
    std::uint32_t threads_;
    /// Resident threads every operation replays on (constructed once, in
    /// the constructor); null when one worker suffices, whose serial path
    /// never creates a thread either.
    std::unique_ptr<WorkerPool> pool_;
    /// Schedule fingerprints whose oracle cross-check already passed
    /// (Verify::first bookkeeping).
    std::unordered_set<std::uint64_t> oracle_seen_;
};

} // namespace hcube::rt
