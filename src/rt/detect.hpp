// Shared fault-detection machinery of the two execution engines.
//
// Detection turns the runtime's silent failure counters into the
// structured abort the recovery layer needs: the first worker to observe a
// failure claims the engine's single FaultReport slot (an exchange on one
// atomic flag — first wins, every later claim is a no-op) and raises the
// abort flag; every other worker polls the flag at its next natural
// boundary and drains out without executing further payload work.
//
// The bounded arrival wait exploits an engine invariant: by the time a pop
// runs, any block that *was* published on its channel is already visible
// (the barrier Player separates phases with a full barrier; the AsyncPlayer
// orders the pop after the push action through an acq_rel dependency edge).
// An empty channel at pop time therefore means the block is never coming —
// the wait exists to give injected *delays* (which stall the producer
// before publication) room to land, and to put a hard bound on how long a
// dead link can stall a run.
#pragma once

#include "ft/fault_model.hpp"
#include "obs/metrics.hpp"
#include "rt/channel.hpp"
#include "rt/plan.hpp"

#include <atomic>
#include <chrono>
#include <span>
#include <string>
#include <thread>

namespace hcube::rt {

/// Fills a FaultReport from the plan's channel diagnostics: the directed
/// link behind `channel`, the logical schedule `cycle` of the receive, and
/// the `packet` it expected.
[[nodiscard]] inline ft::FaultReport
make_fault_report(const Plan& plan, ft::DetectClass cls,
                  std::uint32_t channel, std::uint32_t cycle,
                  packet_t packet) {
    ft::FaultReport report;
    report.cls = cls;
    report.from = plan.channel_from(channel);
    report.to = plan.channel_to(channel);
    report.channel = channel;
    report.cycle = cycle;
    report.packet = packet;
    return report;
}

/// First-wins fault report slot plus the abort flag the workers poll.
/// reset() between runs; raise() from any worker; report() after join.
class FaultArbiter {
public:
    /// Only valid while no worker thread is active.
    void reset() noexcept {
        claimed_.store(false, std::memory_order_relaxed);
        abort_.store(false, std::memory_order_relaxed);
        report_ = {};
    }

    [[nodiscard]] bool aborted() const noexcept {
        return abort_.load(std::memory_order_acquire);
    }

    /// Claims the report slot for `report` if no fault was claimed yet and
    /// (if `abort` is set) raises the abort flag. The report fields are
    /// written only by the winning claimer, before the abort release-store,
    /// so the post-join reader sees them complete.
    void raise(const ft::FaultReport& report, bool abort) noexcept {
        if (claimed_.exchange(true, std::memory_order_acq_rel)) {
            return;
        }
        report_ = report;
        // Winning claim only — one registry lookup per detected fault, off
        // the clean-run path entirely.
        obs::registry()
            .counter(std::string("ft.report.") + ft::to_string(report.cls))
            .inc();
        if (abort) {
            abort_.store(true, std::memory_order_release);
        }
    }

    /// The first claimed fault (cls == none if the run was clean). Only
    /// valid after the worker pool has been joined.
    [[nodiscard]] const ft::FaultReport& report() const noexcept {
        return report_;
    }

private:
    std::atomic<bool> claimed_{false};
    std::atomic<bool> abort_{false};
    ft::FaultReport report_{};
};

/// Polls `channels.front(channel)` until a descriptor appears, the arbiter
/// aborts, or `timeout_us` elapses. Returns false on timeout/abort. The
/// caller re-checks packet/seq itself. Generic over the channel backend
/// (rt/transport.hpp): on the socket transport this is the wait that gives
/// a wire crossing — and its ack-timeout retransmits — room to land.
template <class Bank>
[[nodiscard]] inline bool
await_front(const Bank& channels, std::uint32_t channel,
            ChannelBank::Desc& d, std::uint32_t timeout_us,
            const FaultArbiter& arbiter) {
    using clock = std::chrono::steady_clock;
    const clock::time_point deadline =
        clock::now() + std::chrono::microseconds(timeout_us);
    for (;;) {
        if (channels.front(channel, d)) {
            return true;
        }
        if (arbiter.aborted() || clock::now() >= deadline) {
            return false;
        }
        std::this_thread::yield();
    }
}

} // namespace hcube::rt
