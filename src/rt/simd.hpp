// Runtime-dispatched SIMD kernels for the per-block byte work of the
// threaded runtime: a lane-parallel 64-bit block checksum (xxHash64-style,
// four independent accumulator lanes over the doubles' bit patterns) and
// the elementwise accumulation of combine-mode delivery.
//
// Dispatch happens once, at first use. The vector accumulate engages
// whenever the CPU has AVX2 (pure adds — a clear win); the vector *hash*
// must additionally beat the scalar hash in a one-shot micro-probe, since
// AVX2 lacks a 64x64 multiply and the emulated one can lose to the
// hardware scalar multiplier on xxHash64's serial per-lane chain. Both
// paths implement the same integer algorithm, so they produce bit-identical
// digests — the property the forced-scalar CI leg (HCUBE_CHECKSUM_SCALAR)
// and the checksum unit tests pin down. HCUBE_CHECKSUM=scalar|avx2 forces
// either hash path at runtime for A/B measurement.
//
// Elementwise double addition is performed in the same element order on
// both paths (no reassociation), so combine-mode reductions stay bit-exact
// against the barrier oracle regardless of which path ran.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hcube::rt::simd {

/// Portable reference path: the algorithm's definition. Exposed so tests
/// can pin the dispatched path against it bit for bit.
[[nodiscard]] std::uint64_t checksum_scalar(const double* data,
                                            std::size_t n) noexcept;

/// Dispatched 64-bit digest of `n` doubles (their bit patterns).
[[nodiscard]] std::uint64_t checksum(const double* data,
                                     std::size_t n) noexcept;

/// Portable reference path of accumulate(); identical element order.
void accumulate_scalar(double* dst, const double* src, std::size_t n) noexcept;

/// Dispatched elementwise dst[i] += src[i] over `n` doubles. `dst` and
/// `src` must not overlap.
void accumulate(double* dst, const double* src, std::size_t n) noexcept;

/// Active dispatch target: "avx2" (vector hash + vector reduce),
/// "avx2-reduce" (scalar hash won the probe, vector reduce), or "scalar".
[[nodiscard]] const char* dispatch_name() noexcept;

} // namespace hcube::rt::simd
