#include "rt/async_player.hpp"

#include "common/check.hpp"
#include "rt/checksum.hpp"
#include "rt/pool.hpp"

#include <bit>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

namespace hcube::rt {

namespace {

constexpr std::uint32_t kNoAction = ~std::uint32_t{0};

} // namespace

/// Per-worker run queue + stats, padded so two workers' queue heads never
/// false-share. The owner pops from the back (LIFO: depth-first along the
/// chain of actions it just enabled); thieves pop from the front (FIFO:
/// the oldest ready action is the most likely to unblock a long chain).
struct alignas(64) AsyncPlayer::Worker {
    std::mutex mutex;
    std::deque<std::uint32_t> queue;
    PlayStats stats;
};

AsyncPlayer::AsyncPlayer(const Plan& plan, std::uint32_t channel_capacity)
    : plan_(plan),
      channels_(plan.channel_count,
                channel_capacity == 0 ? plan.async_depth : channel_capacity,
                plan.block_elems),
      deps_(plan.dep_count.size()) {
    HCUBE_ENSURE_MSG(channels_.capacity() >= plan.async_depth,
                     "channel ring shallower than the depth the plan's "
                     "capacity edges were emitted for");
    const std::uint64_t bytes =
        plan.total_slots * plan.block_elems * sizeof(double);
    HCUBE_ENSURE_MSG(bytes <= (std::uint64_t{1} << 34),
                     "runtime payload exceeds 16 GiB; shrink the schedule "
                     "or the block size");
    memory_.assign(static_cast<std::size_t>(plan.total_slots) *
                       plan.block_elems,
                   0.0);
    if (plan.mode == DataMode::move) {
        expected_checksum_.resize(plan.packet_count);
        for (packet_t p = 0; p < plan.packet_count; ++p) {
            expected_checksum_[p] = canonical_checksum(p, plan.block_elems);
        }
    }
}

std::span<const double> AsyncPlayer::block(node_t node,
                                           packet_t packet) const {
    const std::uint64_t slot = plan_.slot_of(node, packet);
    if (slot == Plan::kNoSlot) {
        return {};
    }
    return {memory_.data() +
                static_cast<std::size_t>(slot) * plan_.block_elems,
            plan_.block_elems};
}

void AsyncPlayer::execute(std::uint32_t action, std::uint32_t worker,
                          PlayStats& stats) {
    const std::size_t blk = plan_.block_elems;
    const bool detecting = detect_.enabled();
    TraceRecorder* const trace = trace_;
    if (plan_.is_send_action(action)) {
        const Action& a = plan_.flat_sends[action];
        const std::span<const double> block{
            memory_.data() + static_cast<std::size_t>(a.slot) * blk, blk};
        const TraceRecorder::clock::time_point t0 =
            trace != nullptr ? TraceRecorder::clock::now()
                             : TraceRecorder::clock::time_point{};
        if (!channels_.try_push(a.channel, a.packet, block)) [[unlikely]] {
            ++stats.channel_faults; // impossible while capacity edges hold
            if (detecting) {
                arbiter_.raise(make_fault_report(
                                   plan_, ft::DetectClass::stream_mismatch,
                                   a.channel, plan_.flat_cycle[action],
                                   a.packet),
                               detect_.abort_on_fault);
            }
        } else {
            ++stats.blocks_sent;
        }
        if (trace != nullptr) {
            trace->record(worker, TraceKind::send, t0,
                          TraceRecorder::clock::now(), a.channel, a.packet,
                          plan_.flat_cycle[action]);
        }
        return;
    }
    const std::uint32_t index =
        action - static_cast<std::uint32_t>(plan_.flat_sends.size());
    const Action& a = plan_.flat_recvs[index];
    const std::uint32_t cycle = plan_.flat_cycle[index];
    const TraceRecorder::clock::time_point t0 =
        trace != nullptr ? TraceRecorder::clock::now()
                         : TraceRecorder::clock::time_point{};
    std::uint32_t packet = 0;
    std::uint32_t seq = 0;
    const std::span<const double> arrived =
        detecting ? await_front(channels_, a.channel, packet, seq,
                                detect_.arrival_timeout_us, arbiter_)
                  : channels_.front(a.channel, packet, seq);
    if (arrived.empty()) [[unlikely]] {
        if (detecting && arbiter_.aborted()) {
            return; // another action's fault won; this one just drains
        }
        ++stats.channel_faults;
        if (detecting) {
            ++stats.timeouts;
            arbiter_.raise(
                make_fault_report(plan_, ft::DetectClass::arrival_timeout,
                                  a.channel, cycle, a.packet),
                detect_.abort_on_fault);
        }
        return;
    }
    if (packet != a.packet || seq != a.seq) [[unlikely]] {
        ++stats.channel_faults;
        if (detecting) {
            arbiter_.raise(
                make_fault_report(plan_, ft::DetectClass::stream_mismatch,
                                  a.channel, cycle, a.packet),
                detect_.abort_on_fault);
        }
        return;
    }
    double* dst = memory_.data() + static_cast<std::size_t>(a.slot) * blk;
    if (plan_.mode == DataMode::move) {
        if (block_checksum(arrived) != expected_checksum_[a.packet])
            [[unlikely]] {
            ++stats.checksum_failures;
            if (detecting) {
                arbiter_.raise(make_fault_report(
                                   plan_, ft::DetectClass::checksum_mismatch,
                                   a.channel, cycle, a.packet),
                               detect_.abort_on_fault);
            }
        }
        std::memcpy(dst, arrived.data(), blk * sizeof(double));
    } else {
        for (std::size_t e = 0; e < blk; ++e) {
            dst[e] += arrived[e];
        }
    }
    channels_.pop_front(a.channel);
    ++stats.blocks_delivered;
    if (trace != nullptr) {
        trace->record(worker, TraceKind::recv, t0,
                      TraceRecorder::clock::now(), a.channel, a.packet,
                      cycle);
    }
}

void AsyncPlayer::finish(std::uint32_t action, Worker* workers) {
    for (std::uint32_t e = plan_.succ_begin[action];
         e < plan_.succ_begin[action + 1]; ++e) {
        const std::uint32_t succ = plan_.succ[e];
        // acq_rel: the final decrement acquires every predecessor's writes
        // (block memory, ring slots) before the successor may run anywhere.
        if (deps_[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // A newly ready action always goes to its owner's queue, even
            // when a thief completed the enabling action — LIFO locality is
            // the owner's, stealing only rebalances.
            Worker& target = workers[plan_.owner_of(plan_.action(succ).node)];
            const std::lock_guard lock(target.mutex);
            target.queue.push_back(succ);
        }
    }
    completed_.fetch_add(1, std::memory_order_release);
}

void AsyncPlayer::run_worker(std::uint32_t worker, Worker* workers) {
    Worker& self = workers[worker];
    const std::uint32_t count = plan_.workers;
    const std::uint64_t total = plan_.action_count();
    std::uint32_t misses = 0;
    // On abort every worker simply exits its loop: unfinished actions stay
    // unfinished (their dep counters never reach zero), and play() rewinds
    // channels and counters before the next run.
    while (completed_.load(std::memory_order_acquire) < total &&
           !arbiter_.aborted()) {
        std::uint32_t action = kNoAction;
        {
            const std::lock_guard lock(self.mutex);
            if (!self.queue.empty()) {
                action = self.queue.back();
                self.queue.pop_back();
            }
        }
        if (action == kNoAction) {
            for (std::uint32_t d = 1; d < count && action == kNoAction;
                 ++d) {
                Worker& victim = workers[(worker + d) % count];
                const std::lock_guard lock(victim.mutex);
                if (!victim.queue.empty()) {
                    action = victim.queue.front();
                    victim.queue.pop_front();
                    ++self.stats.steals;
                }
            }
        }
        if (action == kNoAction) {
            // Out of work but the run is not over: someone else holds the
            // frontier. Yield (oversubscribed hosts) and eventually nap.
            if (++misses < 1024) {
                std::this_thread::yield();
            } else {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
            continue;
        }
        misses = 0;
        execute(action, worker, self.stats);
        finish(action, workers);
    }
}

PlayStats AsyncPlayer::play(WorkerPool* pool) {
    seed_plan_memory(plan_, memory_);
    channels_.reset();
    arbiter_.reset();
    if (trace_ != nullptr) {
        HCUBE_ENSURE_MSG(trace_->workers() >= plan_.workers,
                         "trace recorder has fewer lanes than plan workers");
    }
    completed_.store(0, std::memory_order_relaxed);
    const std::uint32_t total = plan_.action_count();
    for (std::uint32_t a = 0; a < total; ++a) {
        deps_[a].store(plan_.dep_count[a], std::memory_order_relaxed);
    }

    std::vector<Worker> workers(plan_.workers);
    for (std::uint32_t a = 0; a < total; ++a) {
        if (plan_.dep_count[a] == 0) {
            workers[plan_.owner_of(plan_.action(a).node)].queue.push_back(a);
        }
    }

    const auto start = std::chrono::steady_clock::now();
    if (plan_.workers == 1) {
        // Serial fast path: (cycle, sends-before-recvs) is a topological
        // order of the dependency graph, so a single worker can walk the
        // actions in lowered order — same semantics and same per-slot
        // accumulation order, none of the queue/atomic bookkeeping. With
        // one worker the (cycle, worker) buckets are the per-cycle ranges
        // of the flat lowered arrays, so bucket index i is action id i.
        PlayStats& stats = workers[0].stats;
        for (std::uint32_t cycle = 0;
             cycle < plan_.cycles && !arbiter_.aborted(); ++cycle) {
            for (std::uint64_t i = plan_.send_begin[cycle];
                 i < plan_.send_begin[cycle + 1]; ++i) {
                execute(static_cast<std::uint32_t>(i), 0, stats);
            }
            const auto sends =
                static_cast<std::uint32_t>(plan_.flat_sends.size());
            for (std::uint64_t i = plan_.recv_begin[cycle];
                 i < plan_.recv_begin[cycle + 1] && !arbiter_.aborted();
                 ++i) {
                execute(sends + static_cast<std::uint32_t>(i), 0, stats);
            }
        }
    } else if (pool != nullptr) {
        HCUBE_ENSURE_MSG(pool->size() >= plan_.workers,
                         "worker pool narrower than the plan");
        pool->run(plan_.workers, [this, &workers](std::uint32_t w) {
            run_worker(w, workers.data());
        });
    } else {
        std::vector<std::thread> threads;
        threads.reserve(plan_.workers);
        for (std::uint32_t w = 0; w < plan_.workers; ++w) {
            threads.emplace_back(
                [this, w, &workers] { run_worker(w, workers.data()); });
        }
        for (std::thread& t : threads) {
            t.join();
        }
    }
    const auto stop = std::chrono::steady_clock::now();

    PlayStats stats;
    stats.cycles = plan_.cycles; // logical schedule depth, never barriered
    stats.seconds = std::chrono::duration<double>(stop - start).count();
    for (const Worker& w : workers) {
        stats.blocks_sent += w.stats.blocks_sent;
        stats.blocks_delivered += w.stats.blocks_delivered;
        stats.checksum_failures += w.stats.checksum_failures;
        stats.channel_faults += w.stats.channel_faults;
        stats.timeouts += w.stats.timeouts;
        stats.steals += w.stats.steals;
    }
    stats.payload_bytes =
        stats.blocks_delivered * plan_.block_elems * sizeof(double);
    return stats;
}

} // namespace hcube::rt
