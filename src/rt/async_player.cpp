#include "rt/async_player.hpp"

#include "common/check.hpp"
#include "rt/checksum.hpp"

#include <bit>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

namespace hcube::rt {

namespace {

constexpr std::uint32_t kNoAction = ~std::uint32_t{0};

} // namespace

/// Per-worker run queue + stats, padded so two workers' queue heads never
/// false-share. The owner pops from the back (LIFO: depth-first along the
/// chain of actions it just enabled); thieves pop from the front (FIFO:
/// the oldest ready action is the most likely to unblock a long chain).
struct alignas(64) AsyncPlayer::Worker {
    std::mutex mutex;
    std::deque<std::uint32_t> queue;
    PlayStats stats;
};

AsyncPlayer::AsyncPlayer(const Plan& plan, std::uint32_t channel_capacity)
    : plan_(plan),
      channels_(plan.channel_count,
                channel_capacity == 0 ? plan.async_depth : channel_capacity,
                plan.block_elems),
      deps_(plan.dep_count.size()) {
    HCUBE_ENSURE_MSG(channels_.capacity() >= plan.async_depth,
                     "channel ring shallower than the depth the plan's "
                     "capacity edges were emitted for");
    const std::uint64_t bytes =
        plan.total_slots * plan.block_elems * sizeof(double);
    HCUBE_ENSURE_MSG(bytes <= (std::uint64_t{1} << 34),
                     "runtime payload exceeds 16 GiB; shrink the schedule "
                     "or the block size");
    memory_.assign(static_cast<std::size_t>(plan.total_slots) *
                       plan.block_elems,
                   0.0);
    if (plan.mode == DataMode::move) {
        expected_checksum_.resize(plan.packet_count);
        for (packet_t p = 0; p < plan.packet_count; ++p) {
            expected_checksum_[p] = canonical_checksum(p, plan.block_elems);
        }
    }
}

std::span<const double> AsyncPlayer::block(node_t node,
                                           packet_t packet) const {
    const std::uint64_t slot = plan_.slot_of(node, packet);
    if (slot == Plan::kNoSlot) {
        return {};
    }
    return {memory_.data() +
                static_cast<std::size_t>(slot) * plan_.block_elems,
            plan_.block_elems};
}

void AsyncPlayer::execute(std::uint32_t action, PlayStats& stats) {
    const std::size_t blk = plan_.block_elems;
    if (plan_.is_send_action(action)) {
        const Action& a = plan_.flat_sends[action];
        const std::span<const double> block{
            memory_.data() + static_cast<std::size_t>(a.slot) * blk, blk};
        if (!channels_.try_push(a.channel, a.packet, block)) [[unlikely]] {
            ++stats.channel_faults; // impossible while capacity edges hold
        } else {
            ++stats.blocks_sent;
        }
        return;
    }
    const Action& a =
        plan_.flat_recvs[action -
                         static_cast<std::uint32_t>(plan_.flat_sends.size())];
    std::uint32_t packet = 0;
    std::uint32_t seq = 0;
    const std::span<const double> arrived =
        channels_.front(a.channel, packet, seq);
    if (arrived.empty() || packet != a.packet || seq != a.seq) [[unlikely]] {
        ++stats.channel_faults;
        return;
    }
    double* dst = memory_.data() + static_cast<std::size_t>(a.slot) * blk;
    if (plan_.mode == DataMode::move) {
        if (block_checksum(arrived) != expected_checksum_[a.packet])
            [[unlikely]] {
            ++stats.checksum_failures;
        }
        std::memcpy(dst, arrived.data(), blk * sizeof(double));
    } else {
        for (std::size_t e = 0; e < blk; ++e) {
            dst[e] += arrived[e];
        }
    }
    channels_.pop_front(a.channel);
    ++stats.blocks_delivered;
}

void AsyncPlayer::finish(std::uint32_t action, Worker* workers) {
    for (std::uint32_t e = plan_.succ_begin[action];
         e < plan_.succ_begin[action + 1]; ++e) {
        const std::uint32_t succ = plan_.succ[e];
        // acq_rel: the final decrement acquires every predecessor's writes
        // (block memory, ring slots) before the successor may run anywhere.
        if (deps_[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // A newly ready action always goes to its owner's queue, even
            // when a thief completed the enabling action — LIFO locality is
            // the owner's, stealing only rebalances.
            Worker& target = workers[plan_.owner_of(plan_.action(succ).node)];
            const std::lock_guard lock(target.mutex);
            target.queue.push_back(succ);
        }
    }
    completed_.fetch_add(1, std::memory_order_release);
}

void AsyncPlayer::run_worker(std::uint32_t worker, Worker* workers) {
    Worker& self = workers[worker];
    const std::uint32_t count = plan_.workers;
    const std::uint64_t total = plan_.action_count();
    std::uint32_t misses = 0;
    while (completed_.load(std::memory_order_acquire) < total) {
        std::uint32_t action = kNoAction;
        {
            const std::lock_guard lock(self.mutex);
            if (!self.queue.empty()) {
                action = self.queue.back();
                self.queue.pop_back();
            }
        }
        if (action == kNoAction) {
            for (std::uint32_t d = 1; d < count && action == kNoAction;
                 ++d) {
                Worker& victim = workers[(worker + d) % count];
                const std::lock_guard lock(victim.mutex);
                if (!victim.queue.empty()) {
                    action = victim.queue.front();
                    victim.queue.pop_front();
                    ++self.stats.steals;
                }
            }
        }
        if (action == kNoAction) {
            // Out of work but the run is not over: someone else holds the
            // frontier. Yield (oversubscribed hosts) and eventually nap.
            if (++misses < 1024) {
                std::this_thread::yield();
            } else {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
            continue;
        }
        misses = 0;
        execute(action, self.stats);
        finish(action, workers);
    }
}

PlayStats AsyncPlayer::play() {
    seed_plan_memory(plan_, memory_);
    channels_.reset();
    completed_.store(0, std::memory_order_relaxed);
    const std::uint32_t total = plan_.action_count();
    for (std::uint32_t a = 0; a < total; ++a) {
        deps_[a].store(plan_.dep_count[a], std::memory_order_relaxed);
    }

    std::vector<Worker> workers(plan_.workers);
    for (std::uint32_t a = 0; a < total; ++a) {
        if (plan_.dep_count[a] == 0) {
            workers[plan_.owner_of(plan_.action(a).node)].queue.push_back(a);
        }
    }

    const auto start = std::chrono::steady_clock::now();
    if (plan_.workers == 1) {
        // Serial fast path: (cycle, sends-before-recvs) is a topological
        // order of the dependency graph, so a single worker can walk the
        // actions in lowered order — same semantics and same per-slot
        // accumulation order, none of the queue/atomic bookkeeping. With
        // one worker the (cycle, worker) buckets are the per-cycle ranges
        // of the flat lowered arrays, so bucket index i is action id i.
        PlayStats& stats = workers[0].stats;
        for (std::uint32_t cycle = 0; cycle < plan_.cycles; ++cycle) {
            for (std::uint64_t i = plan_.send_begin[cycle];
                 i < plan_.send_begin[cycle + 1]; ++i) {
                execute(static_cast<std::uint32_t>(i), stats);
            }
            const auto sends =
                static_cast<std::uint32_t>(plan_.flat_sends.size());
            for (std::uint64_t i = plan_.recv_begin[cycle];
                 i < plan_.recv_begin[cycle + 1]; ++i) {
                execute(sends + static_cast<std::uint32_t>(i), stats);
            }
        }
    } else {
        std::vector<std::thread> pool;
        pool.reserve(plan_.workers);
        for (std::uint32_t w = 0; w < plan_.workers; ++w) {
            pool.emplace_back(
                [this, w, &workers] { run_worker(w, workers.data()); });
        }
        for (std::thread& t : pool) {
            t.join();
        }
    }
    const auto stop = std::chrono::steady_clock::now();

    PlayStats stats;
    stats.cycles = plan_.cycles; // logical schedule depth, never barriered
    stats.seconds = std::chrono::duration<double>(stop - start).count();
    for (const Worker& w : workers) {
        stats.blocks_sent += w.stats.blocks_sent;
        stats.blocks_delivered += w.stats.blocks_delivered;
        stats.checksum_failures += w.stats.checksum_failures;
        stats.channel_faults += w.stats.channel_faults;
        stats.steals += w.stats.steals;
    }
    stats.payload_bytes =
        stats.blocks_delivered * plan_.block_elems * sizeof(double);
    return stats;
}

} // namespace hcube::rt
