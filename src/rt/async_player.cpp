#include "rt/async_player.hpp"

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "rt/checksum.hpp"
#include "rt/delivery.hpp"
#include "rt/pool.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

namespace hcube::rt {

namespace {

constexpr std::uint32_t kNoAction = ~std::uint32_t{0};

/// Below this many actions per worker the queue/steal machinery costs more
/// than it buys; such plans take the serial fast path unconditionally.
constexpr std::uint32_t kSerialActionsPerWorker = 32;

void cpu_relax() noexcept {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
}

} // namespace

/// Per-worker run queue + stats, padded so two workers' queue heads never
/// false-share. The owner pops from the back (LIFO: depth-first along the
/// chain of actions it just enabled); thieves pop from the front (FIFO:
/// the oldest ready action is the most likely to unblock a long chain).
struct alignas(64) AsyncPlayer::Worker {
    std::mutex mutex;
    std::deque<std::uint32_t> queue;
    PlayStats stats;
};

AsyncPlayer::AsyncPlayer(const Plan& plan, std::uint32_t channel_capacity)
    : plan_(plan),
      channels_(plan.channel_count,
                channel_capacity == 0 ? plan.async_depth : channel_capacity,
                plan.block_elems, plan.mode == DataMode::combine),
      views_(static_cast<std::size_t>(plan.total_slots), nullptr),
      deps_(plan.dep_count.size()) {
    HCUBE_ENSURE_MSG(channels_.capacity() >= plan.async_depth,
                     "channel ring shallower than the depth the plan's "
                     "capacity edges were emitted for");
    const std::uint64_t bytes =
        plan.total_slots * plan.block_elems * sizeof(double);
    HCUBE_ENSURE_MSG(bytes <= (std::uint64_t{1} << 34),
                     "runtime payload exceeds 16 GiB; shrink the schedule "
                     "or the block size");
    if (plan.mode == DataMode::move) {
        expected_checksum_.resize(plan.packet_count);
        for (packet_t p = 0; p < plan.packet_count; ++p) {
            expected_checksum_[p] = canonical_checksum(p, plan.block_elems);
        }
    } else {
        memory_.assign(static_cast<std::size_t>(plan.total_slots) *
                           plan.block_elems,
                       0.0);
    }
}

void AsyncPlayer::prepare_views() {
    copy_through_ =
        plan_.mode == DataMode::combine || channels_.inline_active();
    const std::size_t blk = plan_.block_elems;
    if (copy_through_) {
        if (memory_.empty() && plan_.total_slots > 0) {
            memory_.assign(static_cast<std::size_t>(plan_.total_slots) * blk,
                           0.0);
        }
        seed_plan_memory(plan_, memory_);
        for (std::uint64_t s = 0; s < plan_.total_slots; ++s) {
            views_[static_cast<std::size_t>(s)] =
                memory_.data() + static_cast<std::size_t>(s) * blk;
        }
    } else {
        std::ranges::fill(views_, nullptr);
        for (const std::uint64_t slot : plan_.seeded_slots) {
            views_[static_cast<std::size_t>(slot)] =
                plan_.arena_block(plan_.slot_packet[slot]);
        }
    }
}

std::span<const double> AsyncPlayer::block(node_t node,
                                           packet_t packet) const {
    const std::uint64_t slot = plan_.slot_of(node, packet);
    if (slot == Plan::kNoSlot) {
        return {};
    }
    const double* view = views_[static_cast<std::size_t>(slot)];
    if (view == nullptr) {
        return {};
    }
    return {view, plan_.block_elems};
}

std::uint64_t AsyncPlayer::resident_bytes() const noexcept {
    return channels_.resident_bytes() +
           std::uint64_t{views_.capacity()} * sizeof(const double*) +
           std::uint64_t{memory_.capacity()} * sizeof(double) +
           std::uint64_t{expected_checksum_.capacity()} *
               sizeof(std::uint64_t) +
           std::uint64_t{deps_.size()} *
               sizeof(std::atomic<std::uint32_t>);
}

void AsyncPlayer::execute(const RunContext& ctx, std::uint32_t action,
                          std::uint32_t worker, PlayStats& stats) {
    // Hot fields come from the plan's SoA action streams — four sequential
    // u32 arrays indexed by the interleaved id, so the two halves of one
    // hop read adjacent memory. The schedule cycle is diagnostics-only
    // (fault reports, traces) and recovered lazily: the compact layout
    // keeps no per-hop cycle stamp.
    const ActionFields f = plan_.fields(action);
    const std::uint32_t cycle =
        ctx.detecting || ctx.trace != nullptr
            ? plan_.cycle_of_lowered(Plan::lowered_of(action))
            : 0;
    if (plan_.is_send_action(action)) {
        send_block(ctx, {f.channel, f.slot, f.packet, f.seq, cycle}, worker,
                   stats);
        return;
    }
    (void)deliver_block(ctx, {f.channel, f.slot, f.packet, f.seq, cycle},
                        /*check_seq=*/true, worker, stats);
}

void AsyncPlayer::finish(std::uint32_t action, Worker* workers) {
    for (std::uint32_t e = plan_.succ_begin[action];
         e < plan_.succ_begin[action + 1]; ++e) {
        const std::uint32_t succ = plan_.succ[e];
        // acq_rel: the final decrement acquires every predecessor's writes
        // (block memory, ring slots) before the successor may run anywhere.
        if (deps_[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // A newly ready action always goes to its owner's queue, even
            // when a thief completed the enabling action — LIFO locality is
            // the owner's, stealing only rebalances.
            Worker& target = workers[plan_.owner_of(plan_.action_node(succ))];
            const std::lock_guard lock(target.mutex);
            target.queue.push_back(succ);
        }
    }
    completed_.fetch_add(1, std::memory_order_release);
}

void AsyncPlayer::run_worker(std::uint32_t worker, Worker* workers) {
    Worker& self = workers[worker];
    const std::uint32_t count = plan_.workers;
    const std::uint64_t total = plan_.action_count();
    const RunContext ctx{plan_,          channels_,
                         views_.data(),  memory_.data(),
                         expected_checksum_.data(),
                         detect_,        arbiter_,
                         trace_,         detect_.enabled(),
                         copy_through_};
    std::uint32_t misses = 0;
    // On abort every worker simply exits its loop: unfinished actions stay
    // unfinished (their dep counters never reach zero), and play() rewinds
    // channels and counters before the next run.
    while (completed_.load(std::memory_order_acquire) < total &&
           !arbiter_.aborted()) {
        std::uint32_t action = kNoAction;
        {
            const std::lock_guard lock(self.mutex);
            if (!self.queue.empty()) {
                action = self.queue.back();
                self.queue.pop_back();
            }
        }
        if (action == kNoAction) {
            for (std::uint32_t d = 1; d < count && action == kNoAction;
                 ++d) {
                Worker& victim = workers[(worker + d) % count];
                const std::lock_guard lock(victim.mutex);
                if (!victim.queue.empty()) {
                    action = victim.queue.front();
                    victim.queue.pop_front();
                    ++self.stats.steals;
                }
            }
        }
        if (action == kNoAction) {
            // Out of work but the run is not over: someone else holds the
            // frontier. Back off in stages — spin briefly (the frontier
            // usually reappears within nanoseconds), then yield
            // (oversubscribed hosts), and eventually nap so a starved tail
            // doesn't hammer every victim lock.
            ++misses;
            if (misses < 64) {
                cpu_relax();
            } else if (misses < 1024) {
                std::this_thread::yield();
            } else {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
            continue;
        }
        misses = 0;
        execute(ctx, action, worker, self.stats);
        finish(action, workers);
    }
}

void AsyncPlayer::run_serial(PlayStats& stats) {
    // (cycle, sends-before-recvs, lowered index) is a topological order of
    // the dependency graph and exactly the barrier oracle's execution
    // order, so this walk is byte-identical to it — including combine-mode
    // accumulation order — with no queues, no atomics, no barriers.
    const RunContext ctx{plan_,          channels_,
                         views_.data(),  memory_.data(),
                         expected_checksum_.data(),
                         detect_,        arbiter_,
                         trace_,         detect_.enabled(),
                         copy_through_};
    // Zero-copy move traffic with no tracer and no detector needs no ring
    // at all when there is only one executing thread: the rings exist to
    // hand descriptors across threads, and here the hop *is* the view
    // assignment. The integrity check gets stronger, not weaker — instead
    // of comparing the descriptor's digest word (published from the same
    // table it is checked against), the forwarded view must be the
    // packet's canonical arena block, pointer-identical.
    if (!copy_through_ && trace_ == nullptr && !ctx.detecting) {
        for (std::uint32_t cycle = 0; cycle < plan_.cycles; ++cycle) {
            const std::uint32_t lo = plan_.flat_cycle_begin[cycle];
            const std::uint32_t hi = plan_.flat_cycle_begin[cycle + 1];
            for (std::uint32_t i = lo; i < hi; ++i) {
                // Store-and-forward (proven at compile) means no send in
                // this cycle reads a slot this cycle delivers, so the
                // send/recv halves of hop i can be retired together.
                const double* const view = views_[plan_.lowered_send(i).slot];
                const ActionFields r = plan_.lowered_recv(i);
                if (view != plan_.arena_block(r.packet)) [[unlikely]] {
                    ++stats.checksum_failures;
                }
                views_[r.slot] = view;
            }
            stats.blocks_sent += hi - lo;
            stats.blocks_delivered += hi - lo;
        }
        return;
    }
    // This walk is sequential in hop order, so the layout-agnostic lowered
    // accessors stream it contiguously in either encoding (interleaved SoA
    // entries 2l / 2l+1 on compact, the flat AoS mirrors on wide).
    for (std::uint32_t cycle = 0; cycle < plan_.cycles; ++cycle) {
        if (ctx.detecting && arbiter_.aborted()) {
            break;
        }
        const std::uint32_t lo = plan_.flat_cycle_begin[cycle];
        const std::uint32_t hi = plan_.flat_cycle_begin[cycle + 1];
        for (std::uint32_t i = lo; i < hi; ++i) {
            const ActionFields a = plan_.lowered_send(i);
            send_block(ctx, {a.channel, a.slot, a.packet, a.seq, cycle}, 0,
                       stats);
        }
        for (std::uint32_t i = lo; i < hi; ++i) {
            const ActionFields a = plan_.lowered_recv(i);
            const DeliverOutcome out =
                deliver_block(ctx, {a.channel, a.slot, a.packet, a.seq, cycle},
                              /*check_seq=*/true, 0, stats);
            if (out == DeliverOutcome::drained ||
                (out == DeliverOutcome::skipped && arbiter_.aborted())) {
                break;
            }
        }
    }
}

PlayStats AsyncPlayer::play(WorkerPool* pool) {
    prepare_views();
    channels_.reset();
    arbiter_.reset();
    if (trace_ != nullptr) {
        HCUBE_ENSURE_MSG(trace_->workers() >= plan_.workers,
                         "trace recorder has fewer lanes than plan workers");
    }

    const std::uint32_t total = plan_.action_count();
    // Mode selection: tiny plans always run serial; otherwise follow the
    // tuner (probe stealing first, fall back per measurement).
    const bool forced_serial =
        plan_.workers == 1 ||
        std::uint64_t{total} <
            std::uint64_t{kSerialActionsPerWorker} * plan_.workers;
    const bool serial =
        forced_serial ||
        tune_ == Tune::probe_serial || tune_ == Tune::locked_serial;

    std::vector<Worker> workers(serial ? 1 : plan_.workers);
    if (!serial) {
        completed_.store(0, std::memory_order_relaxed);
        for (std::uint32_t a = 0; a < total; ++a) {
            deps_[a].store(plan_.dep_count[a], std::memory_order_relaxed);
        }
        for (std::uint32_t a = 0; a < total; ++a) {
            if (plan_.dep_count[a] == 0) {
                workers[plan_.owner_of(plan_.action_node(a))]
                    .queue.push_back(a);
            }
        }
    }

    const auto start = std::chrono::steady_clock::now();
    if (serial) {
        run_serial(workers[0].stats);
    } else if (pool != nullptr) {
        HCUBE_ENSURE_MSG(pool->size() >= plan_.workers,
                         "worker pool narrower than the plan");
        pool->run(plan_.workers, [this, &workers](std::uint32_t w) {
            run_worker(w, workers.data());
        });
    } else {
        std::vector<std::thread> threads;
        threads.reserve(plan_.workers);
        for (std::uint32_t w = 0; w < plan_.workers; ++w) {
            threads.emplace_back(
                [this, w, &workers] { run_worker(w, workers.data()); });
        }
        for (std::thread& t : threads) {
            t.join();
        }
    }
    const auto stop = std::chrono::steady_clock::now();

    PlayStats stats;
    stats.cycles = plan_.cycles; // logical schedule depth, never barriered
    stats.mode = serial ? ExecMode::serial : ExecMode::stealing;
    stats.seconds = std::chrono::duration<double>(stop - start).count();
    for (const Worker& w : workers) {
        stats.blocks_sent += w.stats.blocks_sent;
        stats.blocks_delivered += w.stats.blocks_delivered;
        stats.bytes_copied += w.stats.bytes_copied;
        stats.checksum_failures += w.stats.checksum_failures;
        stats.channel_faults += w.stats.channel_faults;
        stats.timeouts += w.stats.timeouts;
        stats.steals += w.stats.steals;
    }
    stats.payload_bytes =
        stats.blocks_delivered * plan_.block_elems * sizeof(double);

    // Abort salvage: land the partial timeline before the caller unwinds.
    if (trace_ != nullptr && arbiter_.aborted()) {
        trace_->flush_abort();
    }

    static obs::Counter& m_plays_serial =
        obs::registry().counter("rt.plays_serial");
    static obs::Counter& m_plays_stealing =
        obs::registry().counter("rt.plays_stealing");
    static obs::Counter& m_cycles = obs::registry().counter("rt.cycles");
    static obs::Counter& m_steals = obs::registry().counter("rt.steals");
    static obs::Counter& m_copied =
        obs::registry().counter("rt.bytes_copied");
    static obs::Counter& m_checksum =
        obs::registry().counter("rt.checksum_bytes");
    static obs::Counter& m_fallbacks =
        obs::registry().counter("rt.exec_fallbacks");
    static obs::Histogram& m_play_ns =
        obs::registry().histogram("rt.play_ns");
    (serial ? m_plays_serial : m_plays_stealing).inc();
    m_cycles.inc(stats.cycles);
    m_steals.inc(stats.steals);
    m_copied.inc(stats.bytes_copied);
    m_checksum.inc(stats.payload_bytes);
    m_play_ns.record_seconds(stats.seconds);

    // Advance the tuner on clean, tuner-driven runs only (forced-serial
    // runs and faulted runs say nothing about the stealing/serial choice).
    if (!forced_serial && stats.clean() && !arbiter_.aborted()) {
        if (tune_ == Tune::probe_parallel) {
            if (stats.steals * 2 <= total) {
                tune_ = Tune::locked_parallel;
            } else {
                probe_parallel_seconds_ = stats.seconds;
                tune_ = Tune::probe_serial;
            }
        } else if (tune_ == Tune::probe_serial) {
            tune_ = stats.seconds <= probe_parallel_seconds_
                        ? Tune::locked_serial
                        : Tune::locked_parallel;
        }
        if (tune_ == Tune::locked_serial) {
            // The stealing probe lost: the engine just fell back to serial
            // execution for this plan shape.
            m_fallbacks.inc();
        }
    }
    return stats;
}

} // namespace hcube::rt
