// A reusable cycle barrier for the runtime's worker pool.
//
// The player separates every routing cycle into a send phase and a receive
// phase with a barrier after each, which is what turns the port-model
// arbitration that sim::execute_schedule *checks* into something the
// runtime *enforces*: no node can consume a block before the cycle in which
// it was scheduled to cross the link.
//
// Implemented with mutex + condition_variable rather than std::barrier:
// workers are frequently oversubscribed on the host (a 2^n-node cube on a
// handful of cores), where a blocking wait beats any spin, and the lock
// gives ThreadSanitizer an exact happens-before edge per phase.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace hcube::rt {

class CycleBarrier {
public:
    explicit CycleBarrier(std::uint32_t parties) noexcept
        : parties_(parties) {}

    /// Blocks until all `parties` threads have arrived; reusable across
    /// an arbitrary number of phases.
    void arrive_and_wait() {
        std::unique_lock lock(mutex_);
        const std::uint64_t generation = generation_;
        if (++arrived_ == parties_) {
            arrived_ = 0;
            ++generation_;
            lock.unlock();
            all_arrived_.notify_all();
            return;
        }
        all_arrived_.wait(lock,
                          [&] { return generation_ != generation; });
    }

private:
    std::mutex mutex_;
    std::condition_variable all_arrived_;
    std::uint32_t parties_;
    std::uint32_t arrived_ = 0;
    std::uint64_t generation_ = 0;
};

} // namespace hcube::rt
