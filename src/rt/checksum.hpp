// Canonical payload generation and block checksums for the threaded runtime.
//
// Every abstract packet id maps to one deterministic block of doubles, so a
// receiver can verify a delivered block against the id alone — no reference
// copy travels with the data. Element values are small exact integers:
// elementwise sums over as many as 2^26 contributions stay exactly
// representable in a double, which lets the combining (reduce) path be
// checked for bit-exact equality rather than within a tolerance.
//
// The digest itself is the lane-parallel xxHash64-class checksum in
// rt/simd.hpp (runtime-dispatched AVX2 with a bit-identical scalar
// fallback), hashing the doubles' bit patterns. All payloads the runtime
// generates are small non-negative integers, so every value has exactly one
// representation and bit-pattern hashing is as canonical as value hashing.
#pragma once

#include "rt/simd.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace hcube::rt {

namespace detail {

/// splitmix64 finalizer: cheap, well-mixed, and stateless.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace detail

/// Element `elem` of the canonical block for packet `packet`: an integer in
/// [0, 256).
[[nodiscard]] constexpr double canonical_element(std::uint32_t packet,
                                                 std::size_t elem) noexcept {
    const std::uint64_t h =
        detail::mix64((std::uint64_t{packet} << 32) ^ elem);
    return static_cast<double>(h & 0xffu);
}

/// Element `elem` of node `node`'s *contribution* to packet `packet` in a
/// combining reduction: an integer in [0, 256).
[[nodiscard]] constexpr double
contribution_element(std::uint32_t node, std::uint32_t packet,
                     std::size_t elem) noexcept {
    const std::uint64_t h = detail::mix64(
        (std::uint64_t{node} << 40) ^ (std::uint64_t{packet} << 20) ^ elem);
    return static_cast<double>(h & 0xffu);
}

inline void fill_canonical(std::span<double> block,
                           std::uint32_t packet) noexcept {
    for (std::size_t i = 0; i < block.size(); ++i) {
        block[i] = canonical_element(packet, i);
    }
}

inline void fill_contribution(std::span<double> block, std::uint32_t node,
                              std::uint32_t packet) noexcept {
    for (std::size_t i = 0; i < block.size(); ++i) {
        block[i] = contribution_element(node, packet, i);
    }
}

/// 64-bit digest of a block's contents (dispatched SIMD kernel).
[[nodiscard]] inline std::uint64_t
block_checksum(std::span<const double> block) noexcept {
    return simd::checksum(block.data(), block.size());
}

/// Checksum the canonical block for `packet` would have. Materializes the
/// block into thread-local scratch so the digest comes from the exact same
/// kernel as block_checksum — one algorithm definition, no drift.
[[nodiscard]] inline std::uint64_t
canonical_checksum(std::uint32_t packet, std::size_t block_elems) {
    thread_local std::vector<double> scratch;
    if (scratch.size() < block_elems) {
        scratch.resize(block_elems);
    }
    fill_canonical({scratch.data(), block_elems}, packet);
    return simd::checksum(scratch.data(), block_elems);
}

} // namespace hcube::rt
