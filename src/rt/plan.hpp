// Compiles a sim::Schedule into a flat execution plan for the threaded
// runtime.
//
// The cycle simulator works with abstract packet ids; the runtime moves real
// blocks of `block_elems` doubles. The compiler assigns every (node, packet)
// the node will ever hold a node-local block slot, numbers every directed
// link the schedule uses as an SPSC channel, and lowers each scheduled send
// into two actions — a producer-side push and a consumer-side pop — bucketed
// CSR-style by (cycle, worker) so each worker thread walks a contiguous
// range per phase with no allocation or locking on the hot path.
//
// For the dataflow AsyncPlayer the compiler additionally stamps every
// action with its channel sequence number (the k-th push/pop on a channel)
// and emits an explicit dependency graph over the 2·S actions of the
// lowered schedule: a send waits on the receive that produced its source
// slot (or nothing, if seeded), on the previous push of its channel (ring
// order), and on the pop that frees its ring slot (capacity); a receive
// waits on its channel's k-th push and on the previous pop of its channel;
// combine mode adds the slot-ordering edges that serialize elementwise
// accumulation in channel-sequence order and run every same-cycle send
// before the accumulations it must not observe. Every edge points forward in
// (cycle, send-before-receive, lowered index) order, so a plan that
// compiles is a DAG — executable without deadlock by any engine that runs
// ready actions eventually.
//
// Plan encoding (two layouts, selected at compile_plan time):
//
//   compact (default) — the residency layout the svc plan cache budgets:
//     four parallel u32 SoA streams (channel/slot/packet/seq) indexed by
//     action id, with send and receive of hop l interleaved as ids 2l and
//     2l+1 so the dependency CSR and its counters are laid out in execution
//     order; per-(cycle, worker) buckets store u32 lowered-hop indices into
//     those streams instead of action structs; channel endpoints pack to
//     one u32 (node·2^5 | dimension — the CubeRoute idiom: a directed cube
//     link is its origin plus a port number); per-hop cycle stamps are
//     dropped (the cycle CSR recovers them on the cold diagnostics paths).
//     Field widths are validated for n <= kCompactMaxDimension at
//     compile_plan time.
//
//   wide — the pre-compaction reference layout: the same SoA streams plus
//     AoS Action mirrors (flat and bucketed) and per-hop cycle stamps, with
//     the engines reading the AoS arrays exactly where they historically
//     did. Selected by PlanLayout::wide or the HCUBE_PLAN_COMPACT=0
//     environment escape hatch, so a field-width regression is diagnosable
//     without a rebuild.
//
// Two data modes:
//   move    — a block travels verbatim; a second delivery of the same packet
//             to the same node is rejected at compile time (the executor's
//             duplicate-delivery rule).
//   combine — duplicate arrivals accumulate elementwise into the slot, and
//             every node's slot is pre-seeded with its own contribution:
//             the reduction semantics of a reversed broadcast schedule.
#pragma once

#include "hc/types.hpp"
#include "sim/cycle.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace hcube::rt {

using hc::dim_t;
using hc::node_t;
using sim::packet_t;

enum class DataMode {
    move,
    combine,
};

/// Which of the two plan encodings compile_plan emits. `automatic` picks
/// compact unless the HCUBE_PLAN_COMPACT=0 escape hatch or a dimension
/// beyond the compact layout's validated envelope selects wide.
enum class PlanLayout : std::uint8_t {
    automatic,
    compact,
    wide,
};

/// Largest cube dimension the compact layout's 32-bit fields are validated
/// for (the bench envelope). Larger cubes compile to the wide layout under
/// PlanLayout::automatic and are rejected under an explicit
/// PlanLayout::compact.
inline constexpr dim_t kCompactMaxDimension = 20;

/// One lowered runtime action in the wide (reference) AoS encoding, also
/// the value type of the diagnostics accessor Plan::action(). For a send:
/// copy the node-local block at `slot` into `channel`. For a receive: drain
/// `channel` into `slot` (verifying or combining), expecting `packet` with
/// sequence stamp `seq`.
struct Action {
    std::uint32_t channel;
    node_t node;
    std::uint64_t slot; ///< absolute block-slot id (node-local memory)
    packet_t packet;
    std::uint32_t seq;  ///< the action is its channel's seq-th push / pop
};

/// The four hot fields of one lowered action — delivery's ActionRef minus
/// the diagnostics-only cycle — as the layout-agnostic accessors hand them
/// to the engines.
struct ActionFields {
    std::uint32_t channel;
    std::uint32_t slot;
    std::uint32_t packet;
    std::uint32_t seq;
};

/// Exact heap footprint of one compiled plan, itemized by concern. Every
/// count is in bytes and accounts vector capacity (compile_plan trims the
/// growth slack), so the total is what the plan actually pins resident —
/// the quantity the byte-budgeted svc plan cache charges per entry.
struct PlanFootprint {
    std::uint64_t actions = 0;   ///< SoA streams + wide flat AoS mirrors
    std::uint64_t dep_graph = 0; ///< dep counters + successor CSR
    std::uint64_t buckets = 0;   ///< bucket orders/mirrors + cycle CSR
    std::uint64_t slots = 0;     ///< slot tables, lookup keys, seed list
    std::uint64_t channels = 0;  ///< packed endpoints + port bitmaps
    std::uint64_t arena = 0;     ///< immutable canonical blocks

    [[nodiscard]] std::uint64_t total() const noexcept {
        return actions + dep_graph + buckets + slots + channels + arena;
    }
};

struct Plan {
    dim_t n = 0;
    std::uint32_t cycles = 0; ///< 1 + largest scheduled cycle, 0 if no sends
    packet_t packet_count = 0;
    std::size_t block_elems = 0;
    DataMode mode = DataMode::move;
    PlanLayout layout = PlanLayout::compact; ///< resolved, never automatic
    std::uint32_t workers = 1;

    [[nodiscard]] bool compact() const noexcept {
        return layout == PlanLayout::compact;
    }

    /// Per-node owning worker for plans compiled over a member subset
    /// (contiguous balanced ranges over the *live* nodes, so no worker is
    /// left idle by the holes). Empty for full-cube plans, where the
    /// arithmetic split below is exact.
    std::vector<std::uint32_t> node_owner;

    /// Worker that owns `node` (contiguous balanced ranges; member plans
    /// read the lookup table, full-cube plans stay arithmetic).
    [[nodiscard]] std::uint32_t owner_of(node_t node) const noexcept {
        return node_owner.empty()
                   ? static_cast<std::uint32_t>(
                         (std::uint64_t{node} * workers) >> n)
                   : node_owner[node];
    }

    // ---- node-local memory layout -------------------------------------
    std::uint64_t total_slots = 0;
    std::vector<packet_t> slot_packet; ///< per slot: the packet it holds
    std::vector<node_t> slot_node;     ///< per slot: the owning node
    /// Slots the player seeds before cycle 0: in move mode the initial
    /// holders' canonical blocks, in combine mode every slot (each node's
    /// own contribution).
    std::vector<std::uint32_t> seeded_slots;

    // ---- immutable block arena (move mode) ----------------------------
    /// One canonical block per packet, written once at compile time and
    /// immutable thereafter: the backing store every zero-copy descriptor
    /// in a move-mode run points into. Blocks are padded to `arena_stride`
    /// elements so consecutive blocks never share a cache line. Empty in
    /// combine mode (slots there are mutable accumulators, not views).
    std::vector<double> arena;
    std::size_t arena_stride = 0; ///< block_elems rounded up to 8 doubles

    /// 64-byte-aligned start of packet 0's block (the vector is over-
    /// allocated by up to 7 doubles of alignment slack).
    [[nodiscard]] const double* arena_base() const noexcept {
        const auto p = reinterpret_cast<std::uintptr_t>(arena.data());
        return reinterpret_cast<const double*>(p + ((0u - p) & 63u));
    }
    /// The canonical arena block for `packet` (move mode only).
    [[nodiscard]] const double* arena_block(packet_t packet) const noexcept {
        return arena_base() + std::size_t{packet} * arena_stride;
    }

    // ---- channels ------------------------------------------------------
    std::uint32_t channel_count = 0;
    /// Per channel: the directed cube link packed into one word,
    /// (from << kChannelDimBits) | dimension. The receiving endpoint is
    /// recovered by flipping the dimension bit — whole route tables in a
    /// few bytes per link instead of a pair of node ids.
    std::vector<std::uint32_t> channel_ep;
    static constexpr std::uint32_t kChannelDimBits = 5;
    [[nodiscard]] node_t channel_from(std::uint32_t c) const noexcept {
        return channel_ep[c] >> kChannelDimBits;
    }
    [[nodiscard]] dim_t channel_dim(std::uint32_t c) const noexcept {
        return static_cast<dim_t>(channel_ep[c] &
                                  ((1u << kChannelDimBits) - 1));
    }
    [[nodiscard]] node_t channel_to(std::uint32_t c) const noexcept {
        return channel_from(c) ^ (node_t{1} << channel_dim(c));
    }
    [[nodiscard]] std::pair<node_t, node_t>
    channel_endpoints(std::uint32_t c) const noexcept {
        return {channel_from(c), channel_to(c)};
    }

    /// Per node: the cube dimensions it sends across / receives on, one bit
    /// per dimension (n <= 26 fits any node's route set in one word — the
    /// raikv CubeRoute idiom). Built during lowering and used to cross-
    /// check the (cycle, worker) bucket partition at compile time; the
    /// footprint and fault reports read them too.
    std::vector<std::uint32_t> node_out_ports;
    std::vector<std::uint32_t> node_in_ports;

    // ---- per-(cycle, worker) action buckets ---------------------------
    /// CSR offsets of size cycles*workers + 1 into the bucketed orders
    /// (compact) or the bucketed AoS mirrors (wide); bucket index =
    /// cycle * workers + worker. Offsets fit u32: S < 2^31 by construction.
    std::vector<std::uint32_t> send_begin;
    std::vector<std::uint32_t> recv_begin;
    /// Compact layout: lowered hop indices bucketed by (cycle, owner of the
    /// sending / receiving node) — the engines chase them into the SoA
    /// streams. Empty in the wide layout.
    std::vector<std::uint32_t> send_order;
    std::vector<std::uint32_t> recv_order;
    /// Wide layout only: bucketed AoS mirrors (the reference encoding).
    std::vector<Action> sends; ///< keyed by owner of the sending node
    std::vector<Action> recvs; ///< keyed by owner of the receiving node

    // ---- lowered actions + dataflow dependency graph ------------------
    /// Action ids interleave the two halves of each lowered hop in
    /// execution order: the send of hop l is id 2l, its receive 2l+1 (hops
    /// are cycle-sorted). The SoA streams, the dependency counters, and
    /// the successor CSR are all indexed by this id, so the dataflow
    /// engine's dep walk touches adjacent memory for actions that retire
    /// together.
    std::vector<std::uint32_t> act_channel;
    std::vector<std::uint32_t> act_slot;
    std::vector<packet_t> act_packet;
    std::vector<std::uint32_t> act_seq;
    /// Wide layout only: AoS mirrors of the lowered hops in hop order
    /// (flat_sends[l] / flat_recvs[l] are the push and pop halves of hop
    /// l), plus the per-hop cycle stamp the compact layout drops.
    std::vector<Action> flat_sends;
    std::vector<Action> flat_recvs;
    std::vector<std::uint32_t> flat_cycle;
    /// CSR offsets of size cycles + 1 over the lowered hop indices: hops of
    /// cycle c are [flat_cycle_begin[c], flat_cycle_begin[c+1]). This is
    /// the serial fast path's entire schedule walk — no buckets, no
    /// barriers — and the compact layout's cycle recovery for diagnostics.
    std::vector<std::uint32_t> flat_cycle_begin;
    /// Ring slots per channel the capacity edges were emitted for; an
    /// asynchronous engine must run with at least this many (a producer may
    /// run up to async_depth logical cycles ahead of its consumer).
    std::uint32_t async_depth = 0;
    /// Per action id: number of incoming dependency edges (0 = initially
    /// ready), and the CSR successor lists the engine decrements on
    /// completion.
    std::vector<std::uint32_t> dep_count;
    std::vector<std::uint32_t> succ_begin; ///< size 2·S + 1
    std::vector<std::uint32_t> succ;

    [[nodiscard]] std::uint32_t action_count() const noexcept {
        return static_cast<std::uint32_t>(dep_count.size());
    }
    [[nodiscard]] std::uint32_t lowered_count() const noexcept {
        return action_count() / 2;
    }
    [[nodiscard]] bool is_send_action(std::uint32_t id) const noexcept {
        return (id & 1u) == 0;
    }
    /// Lowered hop behind an action id (both halves map to the same hop).
    [[nodiscard]] static std::uint32_t
    lowered_of(std::uint32_t id) noexcept {
        return id >> 1;
    }

    /// Hot fields of an action id, straight from the SoA streams (present
    /// in both layouts).
    [[nodiscard]] ActionFields fields(std::uint32_t id) const noexcept {
        return {act_channel[id], act_slot[id], act_packet[id], act_seq[id]};
    }
    /// Node an action runs on: the owner of its slot (a send reads the
    /// sender's slot, a receive writes the receiver's).
    [[nodiscard]] node_t action_node(std::uint32_t id) const noexcept {
        return slot_node[act_slot[id]];
    }
    /// The full Action behind an action id, for diagnostics and tests
    /// (layout-agnostic; materialized from the SoA streams).
    [[nodiscard]] Action action(std::uint32_t id) const noexcept {
        const ActionFields f = fields(id);
        return {f.channel, slot_node[f.slot], f.slot, f.packet, f.seq};
    }

    /// Bucketed accessors the (cycle, worker) engines walk: position `pos`
    /// is an offset from send_begin / recv_begin. The wide layout reads its
    /// AoS mirrors here (the reference execution path); compact chases the
    /// bucketed hop index into the SoA streams.
    [[nodiscard]] ActionFields bucket_send(std::size_t pos) const noexcept {
        if (compact()) {
            return fields(send_order[pos] << 1);
        }
        const Action& a = sends[pos];
        return {a.channel, static_cast<std::uint32_t>(a.slot), a.packet,
                a.seq};
    }
    [[nodiscard]] ActionFields bucket_recv(std::size_t pos) const noexcept {
        if (compact()) {
            return fields((recv_order[pos] << 1) | 1u);
        }
        const Action& a = recvs[pos];
        return {a.channel, static_cast<std::uint32_t>(a.slot), a.packet,
                a.seq};
    }

    /// Hop-ordered accessors for the serial fast path (hop l's send and
    /// receive halves). Wide reads the flat AoS mirrors, compact the
    /// adjacent SoA entries 2l and 2l+1.
    [[nodiscard]] ActionFields lowered_send(std::uint32_t l) const noexcept {
        if (compact()) {
            return fields(l << 1);
        }
        const Action& a = flat_sends[l];
        return {a.channel, static_cast<std::uint32_t>(a.slot), a.packet,
                a.seq};
    }
    [[nodiscard]] ActionFields lowered_recv(std::uint32_t l) const noexcept {
        if (compact()) {
            return fields((l << 1) | 1u);
        }
        const Action& a = flat_recvs[l];
        return {a.channel, static_cast<std::uint32_t>(a.slot), a.packet,
                a.seq};
    }

    /// Scheduled cycle of lowered hop `l` — diagnostics only (fault
    /// reports, trace export). The wide layout stores it per hop; compact
    /// recovers it from the cycle CSR with a binary search.
    [[nodiscard]] std::uint32_t
    cycle_of_lowered(std::uint32_t l) const noexcept {
        if (!flat_cycle.empty()) {
            return flat_cycle[l];
        }
        const auto it = std::ranges::upper_bound(flat_cycle_begin, l);
        return static_cast<std::uint32_t>(it - flat_cycle_begin.begin() - 1);
    }

    /// Slot of (node, packet), or kNoSlot if the node never holds it.
    /// Binary search over a sorted key array with a parallel u32 slot
    /// array — compact, cache friendly, read-only after compilation.
    static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};
    [[nodiscard]] std::uint64_t slot_of(node_t node, packet_t packet) const {
        const std::uint64_t key = (std::uint64_t{packet} << 32) | node;
        const auto it = std::ranges::lower_bound(slot_keys, key);
        return it == slot_keys.end() || *it != key
                   ? kNoSlot
                   : slot_vals[static_cast<std::size_t>(
                         it - slot_keys.begin())];
    }

    /// Sorted (packet<<32|node) keys and their slots; built once by the
    /// compiler.
    std::vector<std::uint64_t> slot_keys;
    std::vector<std::uint32_t> slot_vals;

    /// Exact heap bytes this plan keeps resident, itemized / in total.
    [[nodiscard]] PlanFootprint footprint() const noexcept;
    [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
        return footprint().total();
    }
};

/// Lowers `schedule` for `workers` threads. Performs the store-and-forward
/// availability and (in move mode) duplicate-delivery checks while
/// lowering, and rejects two packets on one directed link in one cycle —
/// so a plan that compiles is executable without deadlock by construction.
/// `async_depth` is the ring depth the dependency graph's capacity edges
/// assume (rounded up to a power of two). `layout` selects the encoding;
/// automatic resolves to compact inside the validated envelope (n <=
/// kCompactMaxDimension) unless HCUBE_PLAN_COMPACT=0 forces wide.
/// `members` (ascending live addresses) compiles the plan for an
/// incomplete cube: every schedule endpoint must be a member, and workers
/// are balanced over the live nodes via the node_owner table instead of
/// the arithmetic address split (empty or full member span = full-cube
/// behavior, bit-for-bit). Throws check_error on violation.
[[nodiscard]] Plan compile_plan(const sim::Schedule& schedule, DataMode mode,
                                std::size_t block_elems,
                                std::uint32_t workers,
                                std::uint32_t async_depth = 8,
                                PlanLayout layout = PlanLayout::automatic,
                                std::span<const node_t> members = {});

/// Seeds `memory` (total_slots x block_elems doubles) with the plan's
/// initial holdings: canonical packet blocks in move mode, every node's own
/// contribution in combine mode. Shared by both execution engines so their
/// initial states are bit-identical.
void seed_plan_memory(const Plan& plan, std::span<double> memory);

/// FNV-1a fingerprint over a schedule's full content (dimension, packet
/// count, initial holders, and every send) — the identity the Verify::first
/// oracle policy and the service layer key their per-schedule bookkeeping
/// on. Two schedules with equal fingerprints execute identically.
[[nodiscard]] std::uint64_t
schedule_fingerprint(const sim::Schedule& schedule) noexcept;

} // namespace hcube::rt
