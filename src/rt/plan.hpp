// Compiles a sim::Schedule into a flat execution plan for the threaded
// runtime.
//
// The cycle simulator works with abstract packet ids; the runtime moves real
// blocks of `block_elems` doubles. The compiler assigns every (node, packet)
// the node will ever hold a node-local block slot, numbers every directed
// link the schedule uses as an SPSC channel, and lowers each scheduled send
// into two actions — a producer-side push and a consumer-side pop — bucketed
// CSR-style by (cycle, worker) so each worker thread walks a contiguous
// range per phase with no allocation or locking on the hot path.
//
// Two data modes:
//   move    — a block travels verbatim; a second delivery of the same packet
//             to the same node is rejected at compile time (the executor's
//             duplicate-delivery rule).
//   combine — duplicate arrivals accumulate elementwise into the slot, and
//             every node's slot is pre-seeded with its own contribution:
//             the reduction semantics of a reversed broadcast schedule.
#pragma once

#include "hc/types.hpp"
#include "sim/cycle.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hcube::rt {

using hc::dim_t;
using hc::node_t;
using sim::packet_t;

enum class DataMode {
    move,
    combine,
};

/// One lowered runtime action. For a send: copy the node-local block at
/// `slot` into `channel`. For a receive: drain `channel` into `slot`
/// (verifying or combining), expecting `packet`.
struct Action {
    std::uint32_t channel;
    node_t node;
    std::uint64_t slot; ///< absolute block-slot id (node-local memory)
    packet_t packet;
};

struct Plan {
    dim_t n = 0;
    std::uint32_t cycles = 0; ///< 1 + largest scheduled cycle, 0 if no sends
    packet_t packet_count = 0;
    std::size_t block_elems = 0;
    DataMode mode = DataMode::move;
    std::uint32_t workers = 1;

    /// Worker that owns `node` (contiguous balanced ranges).
    [[nodiscard]] std::uint32_t owner_of(node_t node) const noexcept {
        return static_cast<std::uint32_t>(
            (std::uint64_t{node} * workers) >> n);
    }

    // ---- node-local memory layout -------------------------------------
    std::uint64_t total_slots = 0;
    std::vector<packet_t> slot_packet; ///< per slot: the packet it holds
    std::vector<node_t> slot_node;     ///< per slot: the owning node
    /// Slots the player seeds before cycle 0: in move mode the initial
    /// holders' canonical blocks, in combine mode every slot (each node's
    /// own contribution).
    std::vector<std::uint64_t> seeded_slots;

    // ---- channels ------------------------------------------------------
    std::uint32_t channel_count = 0;
    /// Per channel: (from, to) endpoints, for diagnostics.
    std::vector<std::pair<node_t, node_t>> channel_link;

    // ---- per-(cycle, worker) action buckets ---------------------------
    /// CSR offsets of size cycles*workers + 1 into `sends` / `recvs`;
    /// bucket index = cycle * workers + worker.
    std::vector<std::uint64_t> send_begin;
    std::vector<std::uint64_t> recv_begin;
    std::vector<Action> sends; ///< keyed by owner of the sending node
    std::vector<Action> recvs; ///< keyed by owner of the receiving node

    /// Slot of (node, packet), or kNoSlot if the node never holds it.
    static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};
    [[nodiscard]] std::uint64_t slot_of(node_t node, packet_t packet) const {
        const auto it =
            slot_index_.find((std::uint64_t{packet} << 32) | node);
        return it == slot_index_.end() ? kNoSlot : it->second;
    }

    /// Used by the compiler only.
    std::unordered_map<std::uint64_t, std::uint64_t> slot_index_;
};

/// Lowers `schedule` for `workers` threads. Performs the store-and-forward
/// availability and (in move mode) duplicate-delivery checks while
/// lowering, and rejects two packets on one directed link in one cycle —
/// so a plan that compiles is executable without deadlock by construction.
/// Throws check_error on violation.
[[nodiscard]] Plan compile_plan(const sim::Schedule& schedule, DataMode mode,
                                std::size_t block_elems,
                                std::uint32_t workers);

} // namespace hcube::rt
