// Compiles a sim::Schedule into a flat execution plan for the threaded
// runtime.
//
// The cycle simulator works with abstract packet ids; the runtime moves real
// blocks of `block_elems` doubles. The compiler assigns every (node, packet)
// the node will ever hold a node-local block slot, numbers every directed
// link the schedule uses as an SPSC channel, and lowers each scheduled send
// into two actions — a producer-side push and a consumer-side pop — bucketed
// CSR-style by (cycle, worker) so each worker thread walks a contiguous
// range per phase with no allocation or locking on the hot path.
//
// For the dataflow AsyncPlayer the compiler additionally stamps every
// action with its channel sequence number (the k-th push/pop on a channel)
// and emits an explicit dependency graph over the 2·S actions of the
// lowered schedule: a send waits on the receive that produced its source
// slot (or nothing, if seeded), on the previous push of its channel (ring
// order), and on the pop that frees its ring slot (capacity); a receive
// waits on its channel's k-th push and on the previous pop of its channel;
// combine mode adds the slot-ordering edges that serialize elementwise
// accumulation in channel-sequence order and run every same-cycle send
// before the accumulations it must not observe. Every edge points forward in
// (cycle, send-before-receive, lowered index) order, so a plan that
// compiles is a DAG — executable without deadlock by any engine that runs
// ready actions eventually.
//
// Two data modes:
//   move    — a block travels verbatim; a second delivery of the same packet
//             to the same node is rejected at compile time (the executor's
//             duplicate-delivery rule).
//   combine — duplicate arrivals accumulate elementwise into the slot, and
//             every node's slot is pre-seeded with its own contribution:
//             the reduction semantics of a reversed broadcast schedule.
#pragma once

#include "hc/types.hpp"
#include "sim/cycle.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace hcube::rt {

using hc::dim_t;
using hc::node_t;
using sim::packet_t;

enum class DataMode {
    move,
    combine,
};

/// One lowered runtime action. For a send: copy the node-local block at
/// `slot` into `channel`. For a receive: drain `channel` into `slot`
/// (verifying or combining), expecting `packet` with sequence stamp `seq`.
struct Action {
    std::uint32_t channel;
    node_t node;
    std::uint64_t slot; ///< absolute block-slot id (node-local memory)
    packet_t packet;
    std::uint32_t seq;  ///< the action is its channel's seq-th push / pop
};

struct Plan {
    dim_t n = 0;
    std::uint32_t cycles = 0; ///< 1 + largest scheduled cycle, 0 if no sends
    packet_t packet_count = 0;
    std::size_t block_elems = 0;
    DataMode mode = DataMode::move;
    std::uint32_t workers = 1;

    /// Worker that owns `node` (contiguous balanced ranges).
    [[nodiscard]] std::uint32_t owner_of(node_t node) const noexcept {
        return static_cast<std::uint32_t>(
            (std::uint64_t{node} * workers) >> n);
    }

    // ---- node-local memory layout -------------------------------------
    std::uint64_t total_slots = 0;
    std::vector<packet_t> slot_packet; ///< per slot: the packet it holds
    std::vector<node_t> slot_node;     ///< per slot: the owning node
    /// Slots the player seeds before cycle 0: in move mode the initial
    /// holders' canonical blocks, in combine mode every slot (each node's
    /// own contribution).
    std::vector<std::uint64_t> seeded_slots;

    // ---- immutable block arena (move mode) ----------------------------
    /// One canonical block per packet, written once at compile time and
    /// immutable thereafter: the backing store every zero-copy descriptor
    /// in a move-mode run points into. Blocks are padded to `arena_stride`
    /// elements so consecutive blocks never share a cache line. Empty in
    /// combine mode (slots there are mutable accumulators, not views).
    std::vector<double> arena;
    std::size_t arena_stride = 0; ///< block_elems rounded up to 8 doubles

    /// 64-byte-aligned start of packet 0's block (the vector is over-
    /// allocated by up to 7 doubles of alignment slack).
    [[nodiscard]] const double* arena_base() const noexcept {
        const auto p = reinterpret_cast<std::uintptr_t>(arena.data());
        return reinterpret_cast<const double*>(p + ((0u - p) & 63u));
    }
    /// The canonical arena block for `packet` (move mode only).
    [[nodiscard]] const double* arena_block(packet_t packet) const noexcept {
        return arena_base() + std::size_t{packet} * arena_stride;
    }

    // ---- channels ------------------------------------------------------
    std::uint32_t channel_count = 0;
    /// Per channel: (from, to) endpoints, for diagnostics.
    std::vector<std::pair<node_t, node_t>> channel_link;
    /// Per node: the cube dimensions it sends across / receives on, one bit
    /// per dimension (n <= 26 fits any node's route set in one word — the
    /// raikv CubeRoute idiom). Diagnostics and topology-aware partitioning.
    std::vector<std::uint32_t> node_out_ports;
    std::vector<std::uint32_t> node_in_ports;

    // ---- per-(cycle, worker) action buckets ---------------------------
    /// CSR offsets of size cycles*workers + 1 into `sends` / `recvs`;
    /// bucket index = cycle * workers + worker.
    std::vector<std::uint64_t> send_begin;
    std::vector<std::uint64_t> recv_begin;
    std::vector<Action> sends; ///< keyed by owner of the sending node
    std::vector<Action> recvs; ///< keyed by owner of the receiving node

    // ---- dataflow dependency graph (AsyncPlayer) ----------------------
    /// Lowered actions in schedule (cycle-sorted) order; flat_sends[i] and
    /// flat_recvs[i] are the push and pop halves of scheduled send i.
    /// Action ids: send i -> i, recv i -> flat_sends.size() + i.
    std::vector<Action> flat_sends;
    std::vector<Action> flat_recvs;
    /// Scheduled cycle of send/recv i (shared by both halves) — consulted
    /// off the hot path only (fault reports, trace export).
    std::vector<std::uint32_t> flat_cycle;
    /// CSR offsets of size cycles + 1 over the lowered indices: sends (and
    /// recvs) of cycle c are flat indices [flat_cycle_begin[c],
    /// flat_cycle_begin[c+1]). This is the serial fast path's entire
    /// schedule walk — no buckets, no barriers.
    std::vector<std::uint32_t> flat_cycle_begin;
    /// Hot-path SoA mirror of the lowered actions, indexed by action id
    /// (send i -> i, recv i -> S + i): four parallel u32 streams instead of
    /// one 24-byte struct stream, so the engines' inner loops touch the
    /// minimum number of cache lines. `node` stays AoS-only — it is read on
    /// cold paths (traces, fault reports, queue seeding) via action().
    std::vector<std::uint32_t> act_channel;
    std::vector<std::uint32_t> act_slot;
    std::vector<packet_t> act_packet;
    std::vector<std::uint32_t> act_seq;
    /// Ring slots per channel the capacity edges were emitted for; an
    /// asynchronous engine must run with at least this many (a producer may
    /// run up to async_depth logical cycles ahead of its consumer).
    std::uint32_t async_depth = 0;
    /// Per action id: number of incoming dependency edges (0 = initially
    /// ready), and the CSR successor lists the engine decrements on
    /// completion.
    std::vector<std::uint32_t> dep_count;
    std::vector<std::uint32_t> succ_begin; ///< size 2·S + 1
    std::vector<std::uint32_t> succ;

    [[nodiscard]] std::uint32_t action_count() const noexcept {
        return static_cast<std::uint32_t>(dep_count.size());
    }
    /// The Action behind an action id (sends first, then recvs).
    [[nodiscard]] const Action& action(std::uint32_t id) const noexcept {
        const auto s = static_cast<std::uint32_t>(flat_sends.size());
        return id < s ? flat_sends[id] : flat_recvs[id - s];
    }
    [[nodiscard]] bool is_send_action(std::uint32_t id) const noexcept {
        return id < flat_sends.size();
    }

    /// Slot of (node, packet), or kNoSlot if the node never holds it.
    /// Binary search over a sorted (key, slot) table — compact, cache
    /// friendly, and read-only after compilation.
    static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};
    [[nodiscard]] std::uint64_t slot_of(node_t node, packet_t packet) const {
        const std::uint64_t key = (std::uint64_t{packet} << 32) | node;
        const auto it = std::ranges::lower_bound(
            slot_lookup, key, {},
            &std::pair<std::uint64_t, std::uint64_t>::first);
        return it == slot_lookup.end() || it->first != key ? kNoSlot
                                                           : it->second;
    }

    /// Sorted (packet<<32|node, slot) pairs; built once by the compiler.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> slot_lookup;
};

/// Lowers `schedule` for `workers` threads. Performs the store-and-forward
/// availability and (in move mode) duplicate-delivery checks while
/// lowering, and rejects two packets on one directed link in one cycle —
/// so a plan that compiles is executable without deadlock by construction.
/// `async_depth` is the ring depth the dependency graph's capacity edges
/// assume (rounded up to a power of two). Throws check_error on violation.
[[nodiscard]] Plan compile_plan(const sim::Schedule& schedule, DataMode mode,
                                std::size_t block_elems,
                                std::uint32_t workers,
                                std::uint32_t async_depth = 8);

/// Seeds `memory` (total_slots x block_elems doubles) with the plan's
/// initial holdings: canonical packet blocks in move mode, every node's own
/// contribution in combine mode. Shared by both execution engines so their
/// initial states are bit-identical.
void seed_plan_memory(const Plan& plan, std::span<double> memory);

/// FNV-1a fingerprint over a schedule's full content (dimension, packet
/// count, initial holders, and every send) — the identity the Verify::first
/// oracle policy and the service layer key their per-schedule bookkeeping
/// on. Two schedules with equal fingerprints execute identically.
[[nodiscard]] std::uint64_t
schedule_fingerprint(const sim::Schedule& schedule) noexcept;

} // namespace hcube::rt
