#include "rt/pool.hpp"

#include "common/check.hpp"

#include <cstdlib>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace hcube::rt {

namespace {

/// Pins the calling thread to the `index`-th core of the process's allowed
/// CPU set (round-robin, skewed by pid so concurrent test processes spread
/// instead of piling onto core 0). Keeping a resident worker on one core
/// preserves its cache-hot plan metadata and arena lines across plays.
/// Best-effort: failure is ignored, and HCUBE_NO_PIN=1 disables it (shared
/// CI boxes, oversubscribed hosts).
void pin_to_core([[maybe_unused]] std::uint32_t index) {
#if defined(__linux__)
    if (std::getenv("HCUBE_NO_PIN") != nullptr) {
        return;
    }
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
        return;
    }
    const int avail = CPU_COUNT(&allowed);
    if (avail <= 1) {
        return;
    }
    const std::uint32_t pick =
        (index + static_cast<std::uint32_t>(getpid())) %
        static_cast<std::uint32_t>(avail);
    std::uint32_t seen = 0;
    for (unsigned cpu = 0; cpu < static_cast<unsigned>(CPU_SETSIZE); ++cpu) {
        if (!CPU_ISSET(cpu, &allowed)) {
            continue;
        }
        if (seen++ == pick) {
            cpu_set_t one;
            CPU_ZERO(&one);
            CPU_SET(cpu, &one);
            (void)pthread_setaffinity_np(pthread_self(), sizeof(one), &one);
            return;
        }
    }
#endif
}

} // namespace

WorkerPool::WorkerPool(std::uint32_t threads, bool pin) {
    HCUBE_ENSURE(threads >= 1);
    threads_.reserve(threads);
    for (std::uint32_t i = 0; i < threads; ++i) {
        threads_.emplace_back([this, i, pin] {
            if (pin) {
                pin_to_core(i);
            }
            thread_main(i);
        });
    }
}

WorkerPool::~WorkerPool() {
    {
        const std::lock_guard lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) {
        t.join();
    }
}

std::uint64_t WorkerPool::jobs_run() const {
    const std::lock_guard lock(mutex_);
    return jobs_;
}

void WorkerPool::run(std::uint32_t workers, const Job& job) {
    HCUBE_ENSURE(workers >= 1 && workers <= size());
    const std::lock_guard admit(admission_);
    {
        const std::lock_guard lock(mutex_);
        job_ = &job;
        active_workers_ = workers;
        remaining_ = workers;
        ++generation_;
        ++jobs_;
    }
    work_cv_.notify_all();
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
}

void WorkerPool::thread_main(std::uint32_t index) {
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock lock(mutex_);
        work_cv_.wait(lock,
                      [this, seen] { return stop_ || generation_ != seen; });
        if (stop_) {
            return;
        }
        seen = generation_;
        if (index >= active_workers_) {
            continue; // narrower job than the pool; sit this one out
        }
        const Job* job = job_;
        lock.unlock();
        (*job)(index);
        lock.lock();
        if (--remaining_ == 0) {
            lock.unlock();
            done_cv_.notify_all();
        }
    }
}

} // namespace hcube::rt
