#include "rt/pool.hpp"

#include "common/check.hpp"

namespace hcube::rt {

WorkerPool::WorkerPool(std::uint32_t threads) {
    HCUBE_ENSURE(threads >= 1);
    threads_.reserve(threads);
    for (std::uint32_t i = 0; i < threads; ++i) {
        threads_.emplace_back([this, i] { thread_main(i); });
    }
}

WorkerPool::~WorkerPool() {
    {
        const std::lock_guard lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) {
        t.join();
    }
}

std::uint64_t WorkerPool::jobs_run() const {
    const std::lock_guard lock(mutex_);
    return jobs_;
}

void WorkerPool::run(std::uint32_t workers, const Job& job) {
    HCUBE_ENSURE(workers >= 1 && workers <= size());
    const std::lock_guard admit(admission_);
    {
        const std::lock_guard lock(mutex_);
        job_ = &job;
        active_workers_ = workers;
        remaining_ = workers;
        ++generation_;
        ++jobs_;
    }
    work_cv_.notify_all();
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
}

void WorkerPool::thread_main(std::uint32_t index) {
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock lock(mutex_);
        work_cv_.wait(lock,
                      [this, seen] { return stop_ || generation_ != seen; });
        if (stop_) {
            return;
        }
        seen = generation_;
        if (index >= active_workers_) {
            continue; // narrower job than the pool; sit this one out
        }
        const Job* job = job_;
        lock.unlock();
        (*job)(index);
        lock.lock();
        if (--remaining_ == 0) {
            lock.unlock();
            done_cv_.notify_all();
        }
    }
}

} // namespace hcube::rt
