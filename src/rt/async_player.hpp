// Dataflow execution engine: runs a compiled Plan's dependency graph with
// per-worker run queues and work-stealing — no global barriers anywhere on
// the hot path.
//
// Where the barrier Player advances the whole machine in lockstep (two
// barrier crossings per routing cycle), the AsyncPlayer synchronizes on the
// schedule's *data dependencies* only: every action starts with an atomic
// counter of unmet dependencies (emitted by compile_plan), a completed
// action decrements its successors' counters, and an action whose counter
// hits zero is enqueued on the run queue of the worker that owns its node.
// A worker drains its own queue LIFO (depth-first along the dependency
// chains it just enabled, which keeps the hot block in cache) and steals
// FIFO from other workers when empty. Sequence-stamped multi-slot channel
// rings let a producer run up to Plan::async_depth logical cycles ahead of
// a slow consumer; capacity edges in the graph make ring overflow
// impossible rather than merely unlikely.
//
// Progress argument (docs/RUNTIME.md § The dataflow engine): the graph is a
// DAG (every edge points forward in schedule order), workers only retire
// once all actions completed, and a counter reaches zero exactly once — so
// every action is enqueued exactly once and some queue is always non-empty
// while work remains. Violations on worker threads are counted in the
// stats, never thrown, mirroring the barrier Player.
//
// Not every plan is worth stealing for. (cycle, sends-before-recvs,
// lowered index) is a topological order of the dependency graph, so a
// single thread walking the flat arrays in that order executes the plan
// with zero queue/atomic bookkeeping — the *serial fast path*. Plans too
// small to amortize parallelism take it unconditionally; for the rest an
// adaptive probe (see Tune below) locks in whichever of stealing/serial
// measured faster on this player's plan. PlayStats::mode reports the
// choice per run.
#pragma once

#include "ft/fault_model.hpp"
#include "rt/channel.hpp"
#include "rt/detect.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp" // PlayStats
#include "rt/tracing.hpp"

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace hcube::rt {

class WorkerPool;
template <class Bank> struct RunContextT; // rt/delivery.hpp
using RunContext = RunContextT<ChannelBank>;

class AsyncPlayer {
public:
    /// Allocates node-local block memory and a channel bank of
    /// `channel_capacity` ring slots per link (0 picks the plan's
    /// async_depth; anything smaller than async_depth is rejected, since
    /// the plan's capacity edges only guard that depth). The plan must
    /// outlive the player.
    explicit AsyncPlayer(const Plan& plan,
                         std::uint32_t channel_capacity = 0);

    /// Enables bounded-wait fault detection (and, per config, the
    /// abort-and-drain path). Only valid between runs.
    void set_detection(const ft::DetectConfig& detect) noexcept {
        detect_ = detect;
    }
    /// Installs a fault-injection hook on the channel bank (nullptr
    /// clears). Only valid between runs.
    void set_fault_hook(ft::ChannelFaultHook* hook) noexcept {
        channels_.set_fault_hook(hook);
    }
    /// Attaches a per-worker trace recorder sized for >= plan.workers
    /// lanes (nullptr detaches). Only valid between runs.
    void set_trace(TraceRecorder* trace) noexcept { trace_ = trace; }

    /// Seeds initial blocks, runs the dependency graph to completion on
    /// plan.workers threads, and returns the aggregated stats (cycles is
    /// the logical schedule depth; no barrier ever synchronizes on it).
    /// Reusable: every call starts from freshly seeded memory and
    /// rewound channels. With a non-null `pool` (of at least plan.workers
    /// threads) the run is dispatched onto the resident pool threads
    /// instead of creating and joining a thread per worker.
    [[nodiscard]] PlayStats play() { return play(nullptr); }
    [[nodiscard]] PlayStats play(WorkerPool* pool);

    /// The first fault the last play() detected (cls == none on a clean
    /// run, or while detection is disabled).
    [[nodiscard]] const ft::FaultReport& fault_report() const noexcept {
        return arbiter_.report();
    }

    /// Post-run view of the block held by (node, packet); empty span if
    /// the node has no slot for the packet.
    [[nodiscard]] std::span<const double> block(node_t node,
                                                packet_t packet) const;

    /// Exact heap bytes this engine keeps resident between runs (channel
    /// rings, slot views, copy-through storage, checksum table, live dep
    /// counters) — what a byte-budgeted cache charges for keeping the
    /// player warm. The plan itself is accounted by Plan::resident_bytes().
    [[nodiscard]] std::uint64_t resident_bytes() const noexcept;

private:
    struct Worker;

    /// Adaptive engine-mode tuner. Work-stealing pays off only when a plan
    /// has enough parallel slack; on steal-thrashed shapes (MSBT broadcast:
    /// long per-channel chains, tiny frontier) the serial fast path wins
    /// outright. The first eligible run probes stealing; if steals dominate
    /// the action count, the next run probes serial and the faster of the
    /// two is locked in for the player's lifetime.
    enum class Tune {
        probe_parallel,
        probe_serial,
        locked_parallel,
        locked_serial,
    };

    void prepare_views();
    void run_serial(PlayStats& stats);
    void run_worker(std::uint32_t worker, Worker* workers);
    void execute(const RunContext& ctx, std::uint32_t action,
                 std::uint32_t worker, PlayStats& stats);
    void finish(std::uint32_t action, Worker* workers);

    const Plan& plan_;
    ChannelBank channels_;
    /// Per slot: the block the (node, packet) currently holds — arena
    /// views on the zero-copy path, memory_ under copy-through.
    std::vector<const double*> views_;
    /// Copy-through slot storage; eager for combine plans, lazy for move
    /// plans (first fault-hooked run), never touched on pure zero-copy.
    std::vector<double> memory_;
    std::vector<std::uint64_t> expected_checksum_; ///< per packet, move mode
    std::vector<std::atomic<std::uint32_t>> deps_; ///< live dep counters
    std::atomic<std::uint64_t> completed_{0};
    bool copy_through_ = false; ///< decided per run in prepare_views()
    Tune tune_ = Tune::probe_parallel;
    double probe_parallel_seconds_ = 0; ///< the stealing probe's wall clock
    ft::DetectConfig detect_{};
    FaultArbiter arbiter_;
    TraceRecorder* trace_ = nullptr;
};

} // namespace hcube::rt
