// Executes a compiled Plan as real data movement on a worker-thread pool.
//
// Each worker owns a contiguous range of cube nodes. Execution is
// cycle-synchronous: during cycle c every worker first pushes its nodes'
// scheduled blocks into the outgoing link channels (send phase), the pool
// barriers, then drains its nodes' incoming channels (receive phase) —
// verifying each delivered block's checksum in move mode or accumulating it
// elementwise in combine mode — and barriers again. The two barriers per
// cycle realize the paper's synchronized routing steps: a block pushed in
// cycle c is consumed in cycle c and forwardable from cycle c+1, exactly
// the store-and-forward rule the cycle simulator validates. Consequently
// the number of cycles the player executes equals the CycleExecutor
// makespan of the same schedule.
//
// Violations on worker threads (channel under/overflow, packet mismatch,
// checksum mismatch) cannot throw across the pool; they are counted in the
// stats and surfaced by the caller. With detection enabled
// (ft::DetectConfig, see rt/detect.hpp) the first violation is additionally
// promoted into a structured ft::FaultReport — which directed link, which
// logical cycle, which fault class — and the in-flight plan aborts and
// drains: workers skip the remaining payload work but keep crossing every
// barrier, so the pool retires without deadlock in a bounded number of
// barrier hops.
#pragma once

#include "ft/fault_model.hpp"
#include "rt/channel.hpp"
#include "rt/detect.hpp"
#include "rt/plan.hpp"
#include "rt/tracing.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace hcube::rt {

class CycleBarrier;
class WorkerPool;

/// How a play() actually executed: the barrier engine's lockstep phases,
/// the dataflow engine's single-thread serial walk, or its work-stealing
/// multi-worker mode (the AsyncPlayer picks between the latter two
/// adaptively; see async_player.hpp).
enum class ExecMode {
    barrier,
    serial,
    stealing,
};

[[nodiscard]] constexpr const char* to_string(ExecMode mode) noexcept {
    switch (mode) {
    case ExecMode::barrier: return "barrier";
    case ExecMode::serial: return "serial";
    case ExecMode::stealing: return "stealing";
    }
    return "?";
}

struct PlayStats {
    std::uint32_t cycles = 0;          ///< barrier-synchronized cycles run
    std::uint64_t blocks_sent = 0;     ///< blocks pushed into channels
    std::uint64_t blocks_delivered = 0;///< blocks drained, verified/combined
    std::uint64_t payload_bytes = 0;   ///< blocks_delivered x block bytes
    std::uint64_t bytes_copied = 0;    ///< payload bytes actually memcpy'd
                                       ///< (0 on the zero-copy path)
    std::uint64_t checksum_failures = 0;
    std::uint64_t channel_faults = 0;  ///< full-on-push / empty-on-pop /
                                       ///< wrong packet or sequence at head
    std::uint64_t timeouts = 0;        ///< bounded arrival waits that expired
                                       ///< (detection enabled only)
    std::uint64_t steals = 0;          ///< actions run off another worker's
                                       ///< queue (AsyncPlayer only)
    double seconds = 0;                ///< wall clock of the threaded region
    ExecMode mode = ExecMode::barrier; ///< how this run executed
    /// Medium the blocks moved over: the in-process ring bank, or the net
    /// backend's Unix-domain / TCP sockets (set by the net runtime).
    ft::TransportClass transport = ft::TransportClass::ring;

    [[nodiscard]] bool clean() const noexcept {
        return checksum_failures == 0 && channel_faults == 0 &&
               timeouts == 0;
    }
};

class Player {
public:
    /// Allocates node-local block memory and the channel bank for `plan`.
    /// The plan must outlive the player.
    explicit Player(const Plan& plan, std::uint32_t channel_capacity = 2);

    /// Enables bounded-wait fault detection (and, per config, the
    /// abort-and-drain path). Only valid between runs.
    void set_detection(const ft::DetectConfig& detect) noexcept {
        detect_ = detect;
    }
    /// Installs a fault-injection hook on the channel bank (nullptr
    /// clears). Only valid between runs.
    void set_fault_hook(ft::ChannelFaultHook* hook) noexcept {
        channels_.set_fault_hook(hook);
    }
    /// Attaches a per-worker trace recorder sized for >= plan.workers
    /// lanes (nullptr detaches). Only valid between runs.
    void set_trace(TraceRecorder* trace) noexcept { trace_ = trace; }

    /// Seeds initial blocks, runs the full schedule on plan.workers
    /// threads, and returns the aggregated stats. Reusable: every call
    /// starts from freshly seeded memory and rewound channels.
    /// With a non-null `pool` (of at least plan.workers threads) the run is
    /// dispatched onto the resident pool threads instead of creating and
    /// joining a thread per worker — the re-entrant steady-state entry
    /// point the service layer uses.
    [[nodiscard]] PlayStats play() { return play(nullptr); }
    [[nodiscard]] PlayStats play(WorkerPool* pool);

    /// The first fault the last play() detected (cls == none on a clean
    /// run, or while detection is disabled).
    [[nodiscard]] const ft::FaultReport& fault_report() const noexcept {
        return arbiter_.report();
    }

    /// Post-run view of the block held by (node, packet); empty span if the
    /// node has no slot for the packet.
    [[nodiscard]] std::span<const double> block(node_t node,
                                               packet_t packet) const;

    /// Exact heap bytes this engine keeps resident between runs (channel
    /// rings, slot views, copy-through storage, checksum table) — what a
    /// byte-budgeted cache charges for keeping the player warm. The plan
    /// itself is accounted separately by Plan::resident_bytes().
    [[nodiscard]] std::uint64_t resident_bytes() const noexcept;

private:
    void run_worker(std::uint32_t worker, PlayStats& stats);
    void prepare_views();

    const Plan& plan_;
    CycleBarrier* barrier_ = nullptr; ///< non-null only inside play()
    ChannelBank channels_;
    /// Per slot: the block the (node, packet) currently holds. On the
    /// zero-copy path these point into the plan's immutable arena; under
    /// copy-through they point into memory_.
    std::vector<const double*> views_;
    /// Copy-through slot storage (total_slots x block_elems doubles).
    /// Allocated eagerly for combine plans, lazily for move plans on the
    /// first copy-through run (fault hook installed) — a pure zero-copy
    /// player never materializes it.
    std::vector<double> memory_;
    std::vector<std::uint64_t> expected_checksum_; ///< per packet, move mode
    bool copy_through_ = false; ///< decided per run in prepare_views()
    ft::DetectConfig detect_{};
    FaultArbiter arbiter_;
    TraceRecorder* trace_ = nullptr;
};

} // namespace hcube::rt
