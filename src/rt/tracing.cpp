#include "rt/tracing.hpp"

namespace hcube::rt {

TraceRecorder::TraceRecorder(std::uint32_t workers)
    : epoch_(clock::now()), lanes_(workers) {}

void TraceRecorder::reset() {
    for (Lane& lane : lanes_) {
        lane.events.clear();
    }
    epoch_ = clock::now();
}

std::size_t TraceRecorder::event_count() const {
    std::size_t count = 0;
    for (const Lane& lane : lanes_) {
        count += lane.events.size();
    }
    return count;
}

void TraceRecorder::append_chrome_events(JsonArrayWriter& json,
                                         std::uint32_t pid,
                                         const std::string& category) const {
    for (std::uint32_t w = 0; w < lanes_.size(); ++w) {
        for (const TraceEvent& e : lanes_[w].events) {
            json.begin_row();
            json.field("name",
                       std::string(e.kind == TraceKind::send ? "send"
                                                             : "recv") +
                           " c" + std::to_string(e.channel) + " p" +
                           std::to_string(e.packet) + " @" +
                           std::to_string(e.cycle));
            json.field("cat", category);
            json.field("ph", "X");
            json.field("ts", static_cast<double>(e.t0_ns) * 1e-3);
            json.field("dur",
                       static_cast<double>(e.t1_ns - e.t0_ns) * 1e-3);
            json.field("pid", pid);
            json.field("tid", w);
            json.end_row();
        }
    }
}

bool TraceRecorder::write_chrome_trace(const std::string& path,
                                       std::uint32_t pid,
                                       const std::string& category) const {
    JsonArrayWriter json(path);
    append_chrome_events(json, pid, category);
    return json.close();
}

bool TraceRecorder::flush_abort() const {
    if (abort_path_.empty()) {
        return false;
    }
    return write_chrome_trace(abort_path_, /*pid=*/0, "aborted");
}

} // namespace hcube::rt
