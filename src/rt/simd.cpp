#include "rt/simd.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace hcube::rt::simd {
namespace {

// xxHash64 over the block's bytes with seed 0, specialized to inputs that
// are whole 64-bit words (a block of doubles always is). Four independent
// accumulator lanes per 32-byte stripe is what makes the AVX2 path a
// transliteration rather than a different algorithm: the vector register
// *is* the four lanes, so both paths compute the identical digest.
constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kP3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kP4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kP5 = 0x27D4EB2F165667C5ULL;

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
}

constexpr std::uint64_t round64(std::uint64_t acc,
                                std::uint64_t lane) noexcept {
    return rotl64(acc + lane * kP2, 31) * kP1;
}

std::uint64_t lane_word(const double* data, std::size_t i) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, data + i, sizeof(bits));
    return bits;
}

/// Merge + tail + avalanche shared by both paths: everything after the
/// stripe loop is cheap and runs scalar even on the AVX2 path.
std::uint64_t finish(std::uint64_t h, const double* data, std::size_t i,
                     std::size_t n) noexcept {
    h += static_cast<std::uint64_t>(n) * sizeof(double);
    for (; i < n; ++i) {
        h ^= round64(0, lane_word(data, i));
        h = rotl64(h, 27) * kP1 + kP4;
    }
    h ^= h >> 33;
    h *= kP2;
    h ^= h >> 29;
    h *= kP3;
    h ^= h >> 32;
    return h;
}

std::uint64_t merge_accumulators(const std::uint64_t acc[4]) noexcept {
    std::uint64_t h = rotl64(acc[0], 1) + rotl64(acc[1], 7) +
                      rotl64(acc[2], 12) + rotl64(acc[3], 18);
    for (int k = 0; k < 4; ++k) {
        h = (h ^ round64(0, acc[k])) * kP1 + kP4;
    }
    return h;
}

#if defined(__x86_64__) && !defined(HCUBE_FORCE_SCALAR_CHECKSUM)
#define HCUBE_HAVE_AVX2_KERNELS 1

/// Full 64x64→low-64 multiply from 32-bit partial products:
/// lo(a*b) = lo(a_lo*b_lo) + ((a_lo*b_hi + a_hi*b_lo) << 32).
__attribute__((target("avx2"))) inline __m256i
mul64_avx2(__m256i a, __m256i b) noexcept {
    const __m256i lo = _mm256_mul_epu32(a, b);
    const __m256i cross = _mm256_add_epi64(
        _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
        _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i
rotl64_avx2(__m256i x, int r) noexcept {
    return _mm256_or_si256(_mm256_slli_epi64(x, r),
                           _mm256_srli_epi64(x, 64 - r));
}

__attribute__((target("avx2"))) std::uint64_t
checksum_avx2(const double* data, std::size_t n) noexcept {
    std::size_t i = 0;
    std::uint64_t h;
    if (n >= 4) {
        const __m256i p1 = _mm256_set1_epi64x(static_cast<long long>(kP1));
        const __m256i p2 = _mm256_set1_epi64x(static_cast<long long>(kP2));
        __m256i acc = _mm256_setr_epi64x(
            static_cast<long long>(kP1 + kP2),
            static_cast<long long>(kP2), 0,
            static_cast<long long>(0 - kP1));
        for (; i + 4 <= n; i += 4) {
            const __m256i lanes = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(data + i));
            acc = mul64_avx2(
                rotl64_avx2(_mm256_add_epi64(acc, mul64_avx2(lanes, p2)),
                            31),
                p1);
        }
        alignas(32) std::uint64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
        h = merge_accumulators(lanes);
    } else {
        h = kP5;
    }
    return finish(h, data, i, n);
}

__attribute__((target("avx2"))) void
accumulate_avx2(double* dst, const double* src, std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256d a0 = _mm256_loadu_pd(dst + i);
        const __m256d a1 = _mm256_loadu_pd(dst + i + 4);
        const __m256d b0 = _mm256_loadu_pd(src + i);
        const __m256d b1 = _mm256_loadu_pd(src + i + 4);
        _mm256_storeu_pd(dst + i, _mm256_add_pd(a0, b0));
        _mm256_storeu_pd(dst + i + 4, _mm256_add_pd(a1, b1));
    }
    for (; i < n; ++i) {
        dst[i] += src[i];
    }
}
#endif // x86_64 && !HCUBE_FORCE_SCALAR_CHECKSUM

struct Dispatch {
    std::uint64_t (*checksum)(const double*, std::size_t) noexcept;
    void (*accumulate)(double*, const double*, std::size_t) noexcept;
    const char* name;
};

#if defined(HCUBE_HAVE_AVX2_KERNELS)
/// One-shot micro-probe: is the AVX2 hash actually faster than scalar on
/// this machine? xxHash64's per-lane dependency chain is two full 64-bit
/// multiplies deep, and AVX2 has no 64x64 multiply — the three-partial
/// emulation in mul64_avx2 often *loses* to the hardware scalar multiplier
/// pipelined across the four independent lanes. Picking per machine keeps
/// the dispatch honest; the digest is bit-identical either way, so speed
/// is the only stake.
bool avx2_hash_wins() noexcept {
    constexpr std::size_t kProbeWords = 2048;
    static double block[kProbeWords]; // zero-init; content is irrelevant
    const auto time_of =
        [](std::uint64_t (*fn)(const double*, std::size_t) noexcept) {
            // A volatile pointer keeps the call opaque: both candidates are
            // timed as real indirect calls, none constant-folded away.
            std::uint64_t (*volatile vfn)(const double*,
                                          std::size_t) noexcept = fn;
            std::uint64_t sink = 0;
            sink ^= vfn(block, kProbeWords); // warm icache + dispatch
            const auto t0 = std::chrono::steady_clock::now();
            for (int rep = 0; rep < 16; ++rep) {
                sink ^= vfn(block, kProbeWords);
            }
            const auto t1 = std::chrono::steady_clock::now();
            // Fold the digest into the duration's low bit so the calls
            // cannot be optimized away; the bit is noise either way.
            return (t1 - t0).count() | static_cast<long>(sink & 1);
        };
    return time_of(&checksum_avx2) < time_of(&checksum_scalar);
}
#endif

const Dispatch& dispatch() noexcept {
    static const Dispatch d = [] {
#if defined(HCUBE_HAVE_AVX2_KERNELS)
        const char* env = std::getenv("HCUBE_CHECKSUM");
        const bool force_scalar =
            env != nullptr && std::strcmp(env, "scalar") == 0;
        const bool force_avx2 =
            env != nullptr && std::strcmp(env, "avx2") == 0;
        if (!force_scalar && __builtin_cpu_supports("avx2")) {
            // The vector accumulate (pure adds, no multiply emulation) is
            // a clear win; the vector hash must earn its slot.
            if (force_avx2 || avx2_hash_wins()) {
                return Dispatch{&checksum_avx2, &accumulate_avx2, "avx2"};
            }
            return Dispatch{&checksum_scalar, &accumulate_avx2,
                            "avx2-reduce"};
        }
#endif
        return Dispatch{&checksum_scalar, &accumulate_scalar, "scalar"};
    }();
    return d;
}

} // namespace

std::uint64_t checksum_scalar(const double* data, std::size_t n) noexcept {
    std::size_t i = 0;
    std::uint64_t h;
    if (n >= 4) {
        std::uint64_t acc[4] = {kP1 + kP2, kP2, 0, 0 - kP1};
        for (; i + 4 <= n; i += 4) {
            acc[0] = round64(acc[0], lane_word(data, i));
            acc[1] = round64(acc[1], lane_word(data, i + 1));
            acc[2] = round64(acc[2], lane_word(data, i + 2));
            acc[3] = round64(acc[3], lane_word(data, i + 3));
        }
        h = merge_accumulators(acc);
    } else {
        h = kP5;
    }
    return finish(h, data, i, n);
}

std::uint64_t checksum(const double* data, std::size_t n) noexcept {
    return dispatch().checksum(data, n);
}

void accumulate_scalar(double* dst, const double* src,
                       std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] += src[i];
    }
}

void accumulate(double* dst, const double* src, std::size_t n) noexcept {
    dispatch().accumulate(dst, src, n);
}

const char* dispatch_name() noexcept { return dispatch().name; }

} // namespace hcube::rt::simd
