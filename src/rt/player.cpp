#include "rt/player.hpp"

#include "common/check.hpp"
#include "rt/barrier.hpp"
#include "rt/checksum.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace hcube::rt {

namespace {

/// Worker-local stats padded to a cache line so concurrent increments never
/// false-share.
struct alignas(64) WorkerStats {
    PlayStats stats;
};

} // namespace

Player::Player(const Plan& plan, std::uint32_t channel_capacity)
    : plan_(plan),
      channels_(plan.channel_count, channel_capacity, plan.block_elems) {
    const std::uint64_t bytes =
        plan.total_slots * plan.block_elems * sizeof(double);
    HCUBE_ENSURE_MSG(bytes <= (std::uint64_t{1} << 34),
                     "runtime payload exceeds 16 GiB; shrink the schedule "
                     "or the block size");
    memory_.assign(static_cast<std::size_t>(plan.total_slots) *
                       plan.block_elems,
                   0.0);
    if (plan.mode == DataMode::move) {
        expected_checksum_.resize(plan.packet_count);
        for (packet_t p = 0; p < plan.packet_count; ++p) {
            expected_checksum_[p] = canonical_checksum(p, plan.block_elems);
        }
    }
}

void Player::seed_memory() { seed_plan_memory(plan_, memory_); }

std::span<const double> Player::block(node_t node, packet_t packet) const {
    const std::uint64_t slot = plan_.slot_of(node, packet);
    if (slot == Plan::kNoSlot) {
        return {};
    }
    return {memory_.data() + static_cast<std::size_t>(slot) *
                                 plan_.block_elems,
            plan_.block_elems};
}

void Player::run_worker(std::uint32_t worker, PlayStats& stats) {
    const std::size_t blk = plan_.block_elems;
    const std::uint32_t workers = plan_.workers;
    for (std::uint32_t cycle = 0; cycle < plan_.cycles; ++cycle) {
        const std::size_t bucket = std::size_t{cycle} * workers + worker;

        for (std::uint64_t i = plan_.send_begin[bucket];
             i < plan_.send_begin[bucket + 1]; ++i) {
            const Action& a = plan_.sends[i];
            const std::span<const double> block{
                memory_.data() + static_cast<std::size_t>(a.slot) * blk,
                blk};
            if (!channels_.try_push(a.channel, a.packet, block))
                [[unlikely]] {
                ++stats.channel_faults;
            } else {
                ++stats.blocks_sent;
            }
        }
        // All of this cycle's blocks are on their links.
        barrier_->arrive_and_wait();

        for (std::uint64_t i = plan_.recv_begin[bucket];
             i < plan_.recv_begin[bucket + 1]; ++i) {
            const Action& a = plan_.recvs[i];
            std::uint32_t packet = 0;
            const std::span<const double> arrived =
                channels_.front(a.channel, packet);
            if (arrived.empty() || packet != a.packet) [[unlikely]] {
                ++stats.channel_faults;
                continue;
            }
            double* dst =
                memory_.data() + static_cast<std::size_t>(a.slot) * blk;
            if (plan_.mode == DataMode::move) {
                if (block_checksum(arrived) !=
                    expected_checksum_[a.packet]) [[unlikely]] {
                    ++stats.checksum_failures;
                }
                std::memcpy(dst, arrived.data(), blk * sizeof(double));
            } else {
                for (std::size_t e = 0; e < blk; ++e) {
                    dst[e] += arrived[e];
                }
            }
            channels_.pop_front(a.channel);
            ++stats.blocks_delivered;
        }
        // All of this cycle's deliveries have landed; cycle c+1 may forward
        // them.
        barrier_->arrive_and_wait();
    }
}

PlayStats Player::play() {
    seed_memory();

    CycleBarrier barrier(plan_.workers);
    barrier_ = &barrier;
    std::vector<WorkerStats> per_worker(plan_.workers);

    const auto start = std::chrono::steady_clock::now();
    if (plan_.workers == 1) {
        run_worker(0, per_worker[0].stats);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(plan_.workers);
        for (std::uint32_t w = 0; w < plan_.workers; ++w) {
            pool.emplace_back(
                [this, w, &per_worker] { run_worker(w, per_worker[w].stats); });
        }
        for (std::thread& t : pool) {
            t.join();
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    barrier_ = nullptr;

    PlayStats total;
    total.cycles = plan_.cycles;
    total.seconds = std::chrono::duration<double>(stop - start).count();
    for (const WorkerStats& w : per_worker) {
        total.blocks_sent += w.stats.blocks_sent;
        total.blocks_delivered += w.stats.blocks_delivered;
        total.checksum_failures += w.stats.checksum_failures;
        total.channel_faults += w.stats.channel_faults;
    }
    total.payload_bytes =
        total.blocks_delivered * plan_.block_elems * sizeof(double);
    return total;
}

} // namespace hcube::rt
