#include "rt/player.hpp"

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "rt/barrier.hpp"
#include "rt/checksum.hpp"
#include "rt/delivery.hpp"
#include "rt/pool.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace hcube::rt {

namespace {

/// Worker-local stats padded to a cache line so concurrent increments never
/// false-share.
struct alignas(64) WorkerStats {
    PlayStats stats;
};

} // namespace

Player::Player(const Plan& plan, std::uint32_t channel_capacity)
    : plan_(plan),
      channels_(plan.channel_count, channel_capacity, plan.block_elems,
                plan.mode == DataMode::combine),
      views_(static_cast<std::size_t>(plan.total_slots), nullptr) {
    const std::uint64_t bytes =
        plan.total_slots * plan.block_elems * sizeof(double);
    HCUBE_ENSURE_MSG(bytes <= (std::uint64_t{1} << 34),
                     "runtime payload exceeds 16 GiB; shrink the schedule "
                     "or the block size");
    if (plan.mode == DataMode::move) {
        expected_checksum_.resize(plan.packet_count);
        for (packet_t p = 0; p < plan.packet_count; ++p) {
            expected_checksum_[p] = canonical_checksum(p, plan.block_elems);
        }
    } else {
        memory_.assign(static_cast<std::size_t>(plan.total_slots) *
                           plan.block_elems,
                       0.0);
    }
}

void Player::prepare_views() {
    copy_through_ =
        plan_.mode == DataMode::combine || channels_.inline_active();
    const std::size_t blk = plan_.block_elems;
    if (copy_through_) {
        if (memory_.empty() && plan_.total_slots > 0) {
            memory_.assign(static_cast<std::size_t>(plan_.total_slots) * blk,
                           0.0);
        }
        seed_plan_memory(plan_, memory_);
        for (std::uint64_t s = 0; s < plan_.total_slots; ++s) {
            views_[static_cast<std::size_t>(s)] =
                memory_.data() + static_cast<std::size_t>(s) * blk;
        }
    } else {
        // Zero-copy: undelivered slots hold nothing; seeds view their
        // packet's immutable arena block, and deliveries adopt in-flight
        // views as they land.
        std::ranges::fill(views_, nullptr);
        for (const std::uint64_t slot : plan_.seeded_slots) {
            views_[static_cast<std::size_t>(slot)] =
                plan_.arena_block(plan_.slot_packet[slot]);
        }
    }
}

std::span<const double> Player::block(node_t node, packet_t packet) const {
    const std::uint64_t slot = plan_.slot_of(node, packet);
    if (slot == Plan::kNoSlot) {
        return {};
    }
    const double* view = views_[static_cast<std::size_t>(slot)];
    if (view == nullptr) {
        return {};
    }
    return {view, plan_.block_elems};
}

std::uint64_t Player::resident_bytes() const noexcept {
    return channels_.resident_bytes() +
           std::uint64_t{views_.capacity()} * sizeof(const double*) +
           std::uint64_t{memory_.capacity()} * sizeof(double) +
           std::uint64_t{expected_checksum_.capacity()} *
               sizeof(std::uint64_t);
}

void Player::run_worker(std::uint32_t worker, PlayStats& stats) {
    const std::uint32_t workers = plan_.workers;
    const bool detecting = detect_.enabled();
    const RunContext ctx{plan_,    channels_, views_.data(),
                         memory_.data(),      expected_checksum_.data(),
                         detect_,  arbiter_,  trace_,
                         detecting, copy_through_};
    for (std::uint32_t cycle = 0; cycle < plan_.cycles; ++cycle) {
        const std::size_t bucket = std::size_t{cycle} * workers + worker;

        // Aborted workers skip the payload work of every remaining cycle
        // but still cross both barriers, so the pool drains in lockstep
        // without a peer blocking on a phase nobody else entered.
        if (!detecting || !arbiter_.aborted()) {
            for (std::size_t i = plan_.send_begin[bucket];
                 i < plan_.send_begin[bucket + 1]; ++i) {
                const ActionFields a = plan_.bucket_send(i);
                send_block(ctx, {a.channel, a.slot, a.packet, a.seq, cycle},
                           worker, stats);
            }
        }
        // All of this cycle's blocks are on their links.
        barrier_->arrive_and_wait();

        if (!detecting || !arbiter_.aborted()) {
            for (std::size_t i = plan_.recv_begin[bucket];
                 i < plan_.recv_begin[bucket + 1]; ++i) {
                const ActionFields a = plan_.bucket_recv(i);
                const DeliverOutcome out = deliver_block(
                    ctx, {a.channel, a.slot, a.packet, a.seq, cycle},
                    /*check_seq=*/false, worker, stats);
                if (out == DeliverOutcome::drained ||
                    (out == DeliverOutcome::skipped && arbiter_.aborted())) {
                    break;
                }
            }
        }
        // All of this cycle's deliveries have landed; cycle c+1 may forward
        // them.
        barrier_->arrive_and_wait();
    }
}

PlayStats Player::play(WorkerPool* pool) {
    prepare_views();
    channels_.reset(); // rewind sequence stamps from any aborted prior run
    arbiter_.reset();
    if (trace_ != nullptr) {
        HCUBE_ENSURE_MSG(trace_->workers() >= plan_.workers,
                         "trace recorder has fewer lanes than plan workers");
    }

    CycleBarrier barrier(plan_.workers);
    barrier_ = &barrier;
    std::vector<WorkerStats> per_worker(plan_.workers);

    const auto start = std::chrono::steady_clock::now();
    if (plan_.workers == 1) {
        run_worker(0, per_worker[0].stats);
    } else if (pool != nullptr) {
        HCUBE_ENSURE_MSG(pool->size() >= plan_.workers,
                         "worker pool narrower than the plan");
        pool->run(plan_.workers, [this, &per_worker](std::uint32_t w) {
            run_worker(w, per_worker[w].stats);
        });
    } else {
        std::vector<std::thread> threads;
        threads.reserve(plan_.workers);
        for (std::uint32_t w = 0; w < plan_.workers; ++w) {
            threads.emplace_back(
                [this, w, &per_worker] { run_worker(w, per_worker[w].stats); });
        }
        for (std::thread& t : threads) {
            t.join();
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    barrier_ = nullptr;

    PlayStats total;
    total.cycles = plan_.cycles;
    total.mode = ExecMode::barrier;
    total.seconds = std::chrono::duration<double>(stop - start).count();
    for (const WorkerStats& w : per_worker) {
        total.blocks_sent += w.stats.blocks_sent;
        total.blocks_delivered += w.stats.blocks_delivered;
        total.bytes_copied += w.stats.bytes_copied;
        total.checksum_failures += w.stats.checksum_failures;
        total.channel_faults += w.stats.channel_faults;
        total.timeouts += w.stats.timeouts;
    }
    total.payload_bytes =
        total.blocks_delivered * plan_.block_elems * sizeof(double);

    // Abort salvage: if a detector tripped mid-run and the recorder is
    // armed, land the partial timeline before the caller unwinds.
    if (trace_ != nullptr && arbiter_.aborted()) {
        trace_->flush_abort();
    }

    // One-time aggregate adds after the run — the per-block hot path stays
    // untouched (docs/OBSERVABILITY.md § Overhead).
    static obs::Counter& m_plays = obs::registry().counter("rt.plays_barrier");
    static obs::Counter& m_cycles = obs::registry().counter("rt.cycles");
    static obs::Counter& m_copied =
        obs::registry().counter("rt.bytes_copied");
    static obs::Counter& m_checksum =
        obs::registry().counter("rt.checksum_bytes");
    static obs::Histogram& m_play_ns =
        obs::registry().histogram("rt.play_ns");
    m_plays.inc();
    m_cycles.inc(total.cycles);
    m_copied.inc(total.bytes_copied);
    m_checksum.inc(total.payload_bytes);
    m_play_ns.record_seconds(total.seconds);
    return total;
}

} // namespace hcube::rt
