#include "rt/player.hpp"

#include "common/check.hpp"
#include "rt/barrier.hpp"
#include "rt/checksum.hpp"
#include "rt/pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace hcube::rt {

namespace {

/// Worker-local stats padded to a cache line so concurrent increments never
/// false-share.
struct alignas(64) WorkerStats {
    PlayStats stats;
};

} // namespace

Player::Player(const Plan& plan, std::uint32_t channel_capacity)
    : plan_(plan),
      channels_(plan.channel_count, channel_capacity, plan.block_elems) {
    const std::uint64_t bytes =
        plan.total_slots * plan.block_elems * sizeof(double);
    HCUBE_ENSURE_MSG(bytes <= (std::uint64_t{1} << 34),
                     "runtime payload exceeds 16 GiB; shrink the schedule "
                     "or the block size");
    memory_.assign(static_cast<std::size_t>(plan.total_slots) *
                       plan.block_elems,
                   0.0);
    if (plan.mode == DataMode::move) {
        expected_checksum_.resize(plan.packet_count);
        for (packet_t p = 0; p < plan.packet_count; ++p) {
            expected_checksum_[p] = canonical_checksum(p, plan.block_elems);
        }
    }
}

void Player::seed_memory() { seed_plan_memory(plan_, memory_); }

std::span<const double> Player::block(node_t node, packet_t packet) const {
    const std::uint64_t slot = plan_.slot_of(node, packet);
    if (slot == Plan::kNoSlot) {
        return {};
    }
    return {memory_.data() + static_cast<std::size_t>(slot) *
                                 plan_.block_elems,
            plan_.block_elems};
}

void Player::run_worker(std::uint32_t worker, PlayStats& stats) {
    const std::size_t blk = plan_.block_elems;
    const std::uint32_t workers = plan_.workers;
    const bool detecting = detect_.enabled();
    TraceRecorder* const trace = trace_;
    for (std::uint32_t cycle = 0; cycle < plan_.cycles; ++cycle) {
        const std::size_t bucket = std::size_t{cycle} * workers + worker;

        // Aborted workers skip the payload work of every remaining cycle
        // but still cross both barriers, so the pool drains in lockstep
        // without a peer blocking on a phase nobody else entered.
        if (!detecting || !arbiter_.aborted()) {
            for (std::uint64_t i = plan_.send_begin[bucket];
                 i < plan_.send_begin[bucket + 1]; ++i) {
                const Action& a = plan_.sends[i];
                const std::span<const double> block{
                    memory_.data() + static_cast<std::size_t>(a.slot) * blk,
                    blk};
                const TraceRecorder::clock::time_point t0 =
                    trace != nullptr ? TraceRecorder::clock::now()
                                     : TraceRecorder::clock::time_point{};
                if (!channels_.try_push(a.channel, a.packet, block))
                    [[unlikely]] {
                    ++stats.channel_faults;
                    if (detecting) {
                        arbiter_.raise(
                            make_fault_report(plan_, ft::DetectClass::stream_mismatch,
                                        a.channel, cycle, a.packet),
                            detect_.abort_on_fault);
                    }
                } else {
                    ++stats.blocks_sent;
                }
                if (trace != nullptr) {
                    trace->record(worker, TraceKind::send, t0,
                                  TraceRecorder::clock::now(), a.channel,
                                  a.packet, cycle);
                }
            }
        }
        // All of this cycle's blocks are on their links.
        barrier_->arrive_and_wait();

        if (!detecting || !arbiter_.aborted()) {
            for (std::uint64_t i = plan_.recv_begin[bucket];
                 i < plan_.recv_begin[bucket + 1]; ++i) {
                const Action& a = plan_.recvs[i];
                const TraceRecorder::clock::time_point t0 =
                    trace != nullptr ? TraceRecorder::clock::now()
                                     : TraceRecorder::clock::time_point{};
                std::uint32_t packet = 0;
                std::uint32_t seq = 0;
                const std::span<const double> arrived =
                    detecting ? await_front(channels_, a.channel, packet,
                                            seq, detect_.arrival_timeout_us,
                                            arbiter_)
                              : channels_.front(a.channel, packet, seq);
                if (arrived.empty()) [[unlikely]] {
                    if (detecting && arbiter_.aborted()) {
                        break; // another worker's fault; just drain
                    }
                    ++stats.channel_faults;
                    if (detecting) {
                        ++stats.timeouts;
                        arbiter_.raise(
                            make_fault_report(plan_,
                                        ft::DetectClass::arrival_timeout,
                                        a.channel, cycle, a.packet),
                            detect_.abort_on_fault);
                        if (detect_.abort_on_fault) {
                            break;
                        }
                    }
                    continue;
                }
                if (packet != a.packet) [[unlikely]] {
                    ++stats.channel_faults;
                    if (detecting) {
                        arbiter_.raise(
                            make_fault_report(plan_,
                                        ft::DetectClass::stream_mismatch,
                                        a.channel, cycle, a.packet),
                            detect_.abort_on_fault);
                        if (detect_.abort_on_fault) {
                            break;
                        }
                    }
                    continue;
                }
                double* dst =
                    memory_.data() + static_cast<std::size_t>(a.slot) * blk;
                if (plan_.mode == DataMode::move) {
                    if (block_checksum(arrived) !=
                        expected_checksum_[a.packet]) [[unlikely]] {
                        ++stats.checksum_failures;
                        if (detecting) {
                            arbiter_.raise(
                                make_fault_report(
                                    plan_, ft::DetectClass::checksum_mismatch,
                                    a.channel, cycle, a.packet),
                                detect_.abort_on_fault);
                        }
                    }
                    std::memcpy(dst, arrived.data(), blk * sizeof(double));
                } else {
                    for (std::size_t e = 0; e < blk; ++e) {
                        dst[e] += arrived[e];
                    }
                }
                channels_.pop_front(a.channel);
                ++stats.blocks_delivered;
                if (trace != nullptr) {
                    trace->record(worker, TraceKind::recv, t0,
                                  TraceRecorder::clock::now(), a.channel,
                                  a.packet, cycle);
                }
            }
        }
        // All of this cycle's deliveries have landed; cycle c+1 may forward
        // them.
        barrier_->arrive_and_wait();
    }
}

PlayStats Player::play(WorkerPool* pool) {
    seed_memory();
    channels_.reset(); // rewind sequence stamps from any aborted prior run
    arbiter_.reset();
    if (trace_ != nullptr) {
        HCUBE_ENSURE_MSG(trace_->workers() >= plan_.workers,
                         "trace recorder has fewer lanes than plan workers");
    }

    CycleBarrier barrier(plan_.workers);
    barrier_ = &barrier;
    std::vector<WorkerStats> per_worker(plan_.workers);

    const auto start = std::chrono::steady_clock::now();
    if (plan_.workers == 1) {
        run_worker(0, per_worker[0].stats);
    } else if (pool != nullptr) {
        HCUBE_ENSURE_MSG(pool->size() >= plan_.workers,
                         "worker pool narrower than the plan");
        pool->run(plan_.workers, [this, &per_worker](std::uint32_t w) {
            run_worker(w, per_worker[w].stats);
        });
    } else {
        std::vector<std::thread> threads;
        threads.reserve(plan_.workers);
        for (std::uint32_t w = 0; w < plan_.workers; ++w) {
            threads.emplace_back(
                [this, w, &per_worker] { run_worker(w, per_worker[w].stats); });
        }
        for (std::thread& t : threads) {
            t.join();
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    barrier_ = nullptr;

    PlayStats total;
    total.cycles = plan_.cycles;
    total.seconds = std::chrono::duration<double>(stop - start).count();
    for (const WorkerStats& w : per_worker) {
        total.blocks_sent += w.stats.blocks_sent;
        total.blocks_delivered += w.stats.blocks_delivered;
        total.checksum_failures += w.stats.checksum_failures;
        total.channel_faults += w.stats.channel_faults;
        total.timeouts += w.stats.timeouts;
    }
    total.payload_bytes =
        total.blocks_delivered * plan_.block_elems * sizeof(double);
    return total;
}

} // namespace hcube::rt
