// Fixed-capacity sequence-stamped descriptor rings, one per directed cube
// link.
//
// Under the barrier Player a channel's producer is the worker thread that
// owns the sending node and its consumer the worker that owns the receiving
// node — node ownership is a partition, so single-producer / single-consumer
// holds by construction. The dataflow AsyncPlayer relaxes who runs an
// action (work-stealing) but serializes same-channel pushes and pops with
// dependency edges, so at most one producer and one consumer are active at
// any instant and the same acquire/release protocol carries over.
// Indices are monotonically increasing uint32 counters masked into a
// power-of-two ring (the classic Lamport queue): the producer publishes a
// slot with a release store of `tail`, the consumer acquires it by loading
// `tail` and retires it with a release store of `head`.
//
// Slots carry `{view pointer, packet, seq, checksum}` *descriptors*, not
// payload: in the default zero-copy mode a push publishes a borrowed view
// of the producer's block and a forward re-publishes the same view, so a
// block crossing k links moves zero payload bytes through the bank. The
// producer guarantees the viewed bytes stay immutable until the consumer
// pops (the plan's immutable block arena provides this for move-mode
// traffic). Two situations *require* the classic copy-through instead,
// because the producer's block is mutable after the push: combining
// reductions (the producer's slot keeps accumulating) and fault injection
// (the hook corrupts the staged bytes, which must not alias the canonical
// arena). For those the bank stages the payload into channel-owned inline
// storage and the descriptor points at the staged copy — exactly the old
// two-copies-per-hop protocol, preserved bit for bit.
//
// Every slot is stamped with its push sequence number (the k-th push on a
// channel is sequence k), which lets an asynchronous consumer assert it is
// draining exactly the block its dependency graph promised even when the
// producer has run several logical cycles ahead into a deep ring.
//
// All channels live in one bank: contiguous descriptor storage, and
// head/tail counters each padded to a cache line so two threads hammering
// opposite ends of one link never false-share.
#pragma once

#include "common/check.hpp"
#include "ft/fault_model.hpp"
#include "rt/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace hcube::rt {

class ChannelBank {
public:
    /// One in-flight block, as the consumer sees it: a borrowed view of the
    /// payload plus the metadata the producer stamped on it.
    struct Desc {
        const double* data = nullptr;
        std::uint32_t packet = 0;
        std::uint32_t seq = 0;       ///< k-th push on this channel
        std::uint64_t checksum = 0;  ///< producer-stamped payload digest
    };

    /// `capacity` slots per channel (rounded up to a power of two), each
    /// slot holding one block descriptor. With `inline_payload` the bank
    /// also owns one staged block of `block_elems` doubles per slot and
    /// every push copies through it (combine-mode snapshot semantics).
    ChannelBank(std::uint32_t channels, std::uint32_t capacity,
                std::size_t block_elems, bool inline_payload = false)
        : channels_(channels), capacity_(std::bit_ceil(
                                   std::max<std::uint32_t>(capacity, 1))),
          block_elems_(block_elems), inline_always_(inline_payload),
          heads_(channels), tails_(channels),
          views_(std::size_t{channels} * capacity_, nullptr),
          packet_ids_(std::size_t{channels} * capacity_, 0),
          seqs_(std::size_t{channels} * capacity_, 0),
          checksums_(std::size_t{channels} * capacity_, 0) {
        HCUBE_ENSURE(block_elems >= 1);
        if (inline_always_) {
            ensure_inline_storage();
        }
    }

    [[nodiscard]] std::uint32_t channel_count() const noexcept {
        return channels_;
    }
    [[nodiscard]] std::uint32_t capacity() const noexcept {
        return capacity_;
    }
    [[nodiscard]] std::size_t block_elems() const noexcept {
        return block_elems_;
    }

    /// True when pushes copy payload into channel-owned staging (combine
    /// banks, or any bank with a fault hook installed). When false, pushes
    /// are zero-copy and the producer must keep the viewed bytes immutable
    /// until the consumer pops.
    [[nodiscard]] bool inline_active() const noexcept {
        return inline_always_ || hook_ != nullptr;
    }

    /// Producer side: publishes a descriptor for `block`. False only when
    /// the channel is full (a runtime invariant violation for
    /// schedule-driven traffic, where every cycle's sends are drained the
    /// same cycle). With a fault hook installed the block is staged into
    /// inline storage and offered to the hook before publication; a dropped
    /// block still reports success — the *link* ate it, which is exactly
    /// what the producer would observe on real failing hardware.
    [[nodiscard]] bool try_push(std::uint32_t channel, std::uint32_t packet,
                                std::span<const double> block,
                                std::uint64_t checksum) noexcept {
        return push_impl(channel, packet, block, checksum,
                         /*force_stage=*/false);
    }

    /// Producer side, self-contained variant: always stages a copy (the
    /// caller keeps ownership of `block` and may reuse it immediately) and
    /// stamps the descriptor with the block's computed digest.
    [[nodiscard]] bool try_push(std::uint32_t channel, std::uint32_t packet,
                                std::span<const double> block) noexcept {
        ensure_inline_storage();
        return push_impl(channel, packet, block,
                         simd::checksum(block.data(), block.size()),
                         /*force_stage=*/true);
    }

    /// Producer side, wire-ingress variant: always stages a copy (the
    /// caller's buffer is transient — e.g. a decoded network frame) and
    /// stamps the descriptor with the *carried* checksum rather than a
    /// recomputed one, preserving the end-to-end digest a remote producer
    /// attached. Used by the net transport's I/O thread, which is the
    /// single producer for every wire-ingress channel.
    [[nodiscard]] bool push_received(std::uint32_t channel,
                                     std::uint32_t packet,
                                     std::span<const double> block,
                                     std::uint64_t checksum) noexcept {
        ensure_inline_storage();
        return push_impl(channel, packet, block, checksum,
                         /*force_stage=*/true);
    }

    /// Consumer side: fills `d` with the oldest undelivered descriptor.
    /// False if the channel is empty. The view stays valid until pop_front
    /// (and, in zero-copy mode, as long as the producer's backing block —
    /// for arena traffic, the lifetime of the plan).
    [[nodiscard]] bool front(std::uint32_t channel, Desc& d) const noexcept {
        const std::uint32_t head =
            heads_[channel].v.load(std::memory_order_relaxed);
        const std::uint32_t tail =
            tails_[channel].v.load(std::memory_order_acquire);
        if (head == tail) {
            return false;
        }
        const std::size_t slot = slot_index(channel, head);
        d.data = views_[slot];
        d.packet = packet_ids_[slot];
        d.seq = seqs_[slot];
        d.checksum = checksums_[slot];
        return true;
    }

    /// Consumer side: a view of the oldest undelivered block, or an empty
    /// span if the channel is empty.
    [[nodiscard]] std::span<const double>
    front(std::uint32_t channel, std::uint32_t& packet) const noexcept {
        std::uint32_t seq = 0;
        return front(channel, packet, seq);
    }

    /// Consumer side, sequence-checked variant: additionally reports the
    /// block's push sequence number so a dataflow consumer can assert it is
    /// draining the k-th push its dependency edge waited for.
    [[nodiscard]] std::span<const double>
    front(std::uint32_t channel, std::uint32_t& packet,
          std::uint32_t& seq) const noexcept {
        Desc d;
        if (!front(channel, d)) {
            return {};
        }
        packet = d.packet;
        seq = d.seq;
        return {d.data, block_elems_};
    }

    /// Consumer side: retires the block returned by front().
    void pop_front(std::uint32_t channel) noexcept {
        const std::uint32_t head =
            heads_[channel].v.load(std::memory_order_relaxed);
        heads_[channel].v.store(head + 1, std::memory_order_release);
    }

    /// Blocks currently in flight (either endpoint may call; approximate
    /// while threads are running, exact when quiescent).
    [[nodiscard]] std::uint32_t in_flight(std::uint32_t channel) const {
        return tails_[channel].v.load(std::memory_order_acquire) -
               heads_[channel].v.load(std::memory_order_acquire);
    }

    /// Installs (or clears, with nullptr) the fault-injection hook. Only
    /// valid while no worker thread is active; the plain pointer is read on
    /// every push, so the caller's thread creation provides the publication.
    /// Installing a hook switches the bank to copy-through pushes (the hook
    /// needs mutable staged bytes that must not alias producer memory).
    void set_fault_hook(ft::ChannelFaultHook* hook) {
        hook_ = hook;
        if (hook_ != nullptr) {
            ensure_inline_storage();
        }
    }

    /// Exact heap bytes the bank keeps allocated: counters, descriptor
    /// arrays, and (when materialized) the staged-payload backing.
    [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
        return std::uint64_t{heads_.capacity() + tails_.capacity()} *
                   sizeof(PaddedCounter) +
               std::uint64_t{views_.capacity()} * sizeof(const double*) +
               std::uint64_t{packet_ids_.capacity()} * sizeof(std::uint32_t) +
               std::uint64_t{seqs_.capacity()} * sizeof(std::uint32_t) +
               std::uint64_t{checksums_.capacity()} * sizeof(std::uint64_t) +
               std::uint64_t{payload_.capacity()} * sizeof(double);
    }

    /// Rewinds every channel's counters to zero so sequence stamps restart
    /// at 0 on the next run. Only valid while no worker thread is active
    /// (the caller's thread creation/join provides the happens-before).
    void reset() noexcept {
        for (std::uint32_t c = 0; c < channels_; ++c) {
            heads_[c].v.store(0, std::memory_order_relaxed);
            tails_[c].v.store(0, std::memory_order_relaxed);
        }
    }

private:
    struct alignas(64) PaddedCounter {
        std::atomic<std::uint32_t> v{0};
    };

    [[nodiscard]] std::size_t slot_index(std::uint32_t channel,
                                         std::uint32_t pos) const noexcept {
        return std::size_t{channel} * capacity_ + (pos & (capacity_ - 1));
    }

    /// Allocates the staged-payload backing on first need. Callers run
    /// before worker threads exist (ctor, hook install, or a test's first
    /// push), so the one-time resize is not racy; once sized it is never
    /// reallocated and consumers only ever reach it through slot views.
    void ensure_inline_storage() {
        if (payload_.empty()) {
            payload_.resize(std::size_t{channels_} * capacity_ *
                            block_elems_);
        }
    }

    [[nodiscard]] bool push_impl(std::uint32_t channel, std::uint32_t packet,
                                 std::span<const double> block,
                                 std::uint64_t checksum,
                                 bool force_stage) noexcept {
        const std::uint32_t tail =
            tails_[channel].v.load(std::memory_order_relaxed);
        const std::uint32_t head =
            heads_[channel].v.load(std::memory_order_acquire);
        if (tail - head >= capacity_) {
            return false;
        }
        const std::size_t slot = slot_index(channel, tail);
        const double* view = block.data();
        if (force_stage || inline_active()) [[unlikely]] {
            double* staged = payload_.data() + slot * block_elems_;
            std::memcpy(staged, block.data(),
                        block_elems_ * sizeof(double));
            view = staged;
            if (hook_ != nullptr) {
                const ft::PushVerdict verdict =
                    hook_->on_push(channel, tail, {staged, block_elems_});
                if (verdict == ft::PushVerdict::drop) {
                    return true; // swallowed by the link; slot is reused
                }
            }
        }
        views_[slot] = view;
        packet_ids_[slot] = packet;
        seqs_[slot] = tail; // the k-th push carries sequence stamp k
        checksums_[slot] = checksum;
        tails_[channel].v.store(tail + 1, std::memory_order_release);
        return true;
    }

    std::uint32_t channels_;
    std::uint32_t capacity_; ///< per channel, power of two
    std::size_t block_elems_;
    bool inline_always_; ///< combine-mode banks always copy through
    std::vector<PaddedCounter> heads_; ///< consumer counters
    std::vector<PaddedCounter> tails_; ///< producer counters
    std::vector<const double*> views_; ///< per slot: published payload view
    std::vector<std::uint32_t> packet_ids_;
    std::vector<std::uint32_t> seqs_; ///< per slot: its push sequence stamp
    std::vector<std::uint64_t> checksums_;
    std::vector<double> payload_; ///< staged blocks; empty in zero-copy mode
    ft::ChannelFaultHook* hook_ = nullptr; ///< fault injection, usually off
};

} // namespace hcube::rt
