// Fixed-capacity sequence-stamped ring-buffer channels, one per directed
// cube link.
//
// Under the barrier Player a channel's producer is the worker thread that
// owns the sending node and its consumer the worker that owns the receiving
// node — node ownership is a partition, so single-producer / single-consumer
// holds by construction. The dataflow AsyncPlayer relaxes who runs an
// action (work-stealing) but serializes same-channel pushes and pops with
// dependency edges, so at most one producer and one consumer are active at
// any instant and the same acquire/release protocol carries over.
// Indices are monotonically increasing uint32 counters masked into a
// power-of-two ring (the classic Lamport queue): the producer publishes a
// slot with a release store of `tail`, the consumer acquires it by loading
// `tail` and retires it with a release store of `head`. Payload blocks are
// copied into channel-owned storage, so the runtime really moves every byte
// twice per hop (into the link, out of the link) — the memory-traffic
// analogue of a packet crossing a physical channel.
//
// Every slot is stamped with its push sequence number (the k-th push on a
// channel is sequence k), which lets an asynchronous consumer assert it is
// draining exactly the block its dependency graph promised even when the
// producer has run several logical cycles ahead into a deep ring.
//
// All channels live in one bank: contiguous slot storage, and head/tail
// counters each padded to a cache line so two threads hammering opposite
// ends of one link never false-share.
#pragma once

#include "common/check.hpp"
#include "ft/fault_model.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace hcube::rt {

class ChannelBank {
public:
    /// `capacity` slots per channel (rounded up to a power of two), each
    /// slot holding one block of `block_elems` doubles plus its packet id.
    ChannelBank(std::uint32_t channels, std::uint32_t capacity,
                std::size_t block_elems)
        : channels_(channels), capacity_(std::bit_ceil(
                                   std::max<std::uint32_t>(capacity, 1))),
          block_elems_(block_elems), heads_(channels), tails_(channels),
          packet_ids_(std::size_t{channels} * capacity_, 0),
          seqs_(std::size_t{channels} * capacity_, 0),
          slots_(std::size_t{channels} * capacity_ * block_elems, 0.0) {
        HCUBE_ENSURE(block_elems >= 1);
    }

    [[nodiscard]] std::uint32_t channel_count() const noexcept {
        return channels_;
    }
    [[nodiscard]] std::uint32_t capacity() const noexcept {
        return capacity_;
    }

    /// Producer side: copies `block` into the ring. False only when the
    /// channel is full (a runtime invariant violation for schedule-driven
    /// traffic, where every cycle's sends are drained the same cycle).
    /// With a fault hook installed the staged block is offered to the hook
    /// before publication; a dropped block still reports success — the
    /// *link* ate it, which is exactly what the producer would observe on
    /// real failing hardware.
    [[nodiscard]] bool try_push(std::uint32_t channel, std::uint32_t packet,
                                std::span<const double> block) noexcept {
        const std::uint32_t tail =
            tails_[channel].v.load(std::memory_order_relaxed);
        const std::uint32_t head =
            heads_[channel].v.load(std::memory_order_acquire);
        if (tail - head >= capacity_) {
            return false;
        }
        const std::size_t slot = slot_index(channel, tail);
        std::memcpy(slots_.data() + slot * block_elems_, block.data(),
                    block_elems_ * sizeof(double));
        packet_ids_[slot] = packet;
        seqs_[slot] = tail; // the k-th push carries sequence stamp k
        if (hook_ != nullptr) [[unlikely]] {
            const ft::PushVerdict verdict = hook_->on_push(
                channel, tail,
                {slots_.data() + slot * block_elems_, block_elems_});
            if (verdict == ft::PushVerdict::drop) {
                return true; // swallowed by the link; slot is reused
            }
        }
        tails_[channel].v.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side: a view of the oldest undelivered block, or an empty
    /// span if the channel is empty. The view stays valid until pop_front.
    [[nodiscard]] std::span<const double>
    front(std::uint32_t channel, std::uint32_t& packet) const noexcept {
        std::uint32_t seq = 0;
        return front(channel, packet, seq);
    }

    /// Consumer side, sequence-checked variant: additionally reports the
    /// block's push sequence number so a dataflow consumer can assert it is
    /// draining the k-th push its dependency edge waited for.
    [[nodiscard]] std::span<const double>
    front(std::uint32_t channel, std::uint32_t& packet,
          std::uint32_t& seq) const noexcept {
        const std::uint32_t head =
            heads_[channel].v.load(std::memory_order_relaxed);
        const std::uint32_t tail =
            tails_[channel].v.load(std::memory_order_acquire);
        if (head == tail) {
            return {};
        }
        const std::size_t slot = slot_index(channel, head);
        packet = packet_ids_[slot];
        seq = seqs_[slot];
        return {slots_.data() + slot * block_elems_, block_elems_};
    }

    /// Consumer side: retires the block returned by front().
    void pop_front(std::uint32_t channel) noexcept {
        const std::uint32_t head =
            heads_[channel].v.load(std::memory_order_relaxed);
        heads_[channel].v.store(head + 1, std::memory_order_release);
    }

    /// Blocks currently in flight (either endpoint may call; approximate
    /// while threads are running, exact when quiescent).
    [[nodiscard]] std::uint32_t in_flight(std::uint32_t channel) const {
        return tails_[channel].v.load(std::memory_order_acquire) -
               heads_[channel].v.load(std::memory_order_acquire);
    }

    /// Installs (or clears, with nullptr) the fault-injection hook. Only
    /// valid while no worker thread is active; the plain pointer is read on
    /// every push, so the caller's thread creation provides the publication.
    void set_fault_hook(ft::ChannelFaultHook* hook) noexcept {
        hook_ = hook;
    }

    /// Rewinds every channel's counters to zero so sequence stamps restart
    /// at 0 on the next run. Only valid while no worker thread is active
    /// (the caller's thread creation/join provides the happens-before).
    void reset() noexcept {
        for (std::uint32_t c = 0; c < channels_; ++c) {
            heads_[c].v.store(0, std::memory_order_relaxed);
            tails_[c].v.store(0, std::memory_order_relaxed);
        }
    }

private:
    struct alignas(64) PaddedCounter {
        std::atomic<std::uint32_t> v{0};
    };

    [[nodiscard]] std::size_t slot_index(std::uint32_t channel,
                                         std::uint32_t pos) const noexcept {
        return std::size_t{channel} * capacity_ + (pos & (capacity_ - 1));
    }

    std::uint32_t channels_;
    std::uint32_t capacity_; ///< per channel, power of two
    std::size_t block_elems_;
    std::vector<PaddedCounter> heads_; ///< consumer counters
    std::vector<PaddedCounter> tails_; ///< producer counters
    std::vector<std::uint32_t> packet_ids_;
    std::vector<std::uint32_t> seqs_; ///< per slot: its push sequence stamp
    std::vector<double> slots_;
    ft::ChannelFaultHook* hook_ = nullptr; ///< fault injection, usually off

};

} // namespace hcube::rt
