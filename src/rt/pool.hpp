// A persistent worker pool the execution engines can replay plans on.
//
// Player and AsyncPlayer historically created and joined plan.workers
// std::threads inside every play() call — measurable at tens of
// microseconds per operation, which dominates small collectives and is pure
// waste for a service executing thousands of cached plans. A WorkerPool
// keeps the threads alive across operations: play(pool) dispatches the
// per-worker body onto the resident threads and blocks until the job
// retires, so steady-state operations pay two condition-variable rounds
// instead of thread creation.
//
// Synchronization contract: run() publishes everything the caller wrote
// before the call (plan memory seeds, channel rewinds, detection config) to
// every participating thread via the job mutex, and the completion wait
// publishes everything the workers wrote back to the caller — the same
// happens-before edges thread creation/join used to provide, which is what
// keeps the channel bank's "caller's thread creation provides the
// publication" comments true under pooling. Concurrent run() calls
// serialize on an admission mutex: the pool is one machine, and the service
// layer above it queues requests rather than timeslicing them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hcube::rt {

class WorkerPool {
public:
    /// Body of one job: called once per participating worker with the
    /// worker index in [0, workers).
    using Job = std::function<void(std::uint32_t)>;

    /// Starts `threads` resident worker threads (at least 1). With `pin`
    /// (the default) each thread is pinned round-robin onto the process's
    /// allowed CPU set so a resident worker keeps its cache-hot state on
    /// one core across plays; best-effort, Linux-only, and disabled by the
    /// HCUBE_NO_PIN=1 environment variable.
    explicit WorkerPool(std::uint32_t threads, bool pin = true);
    ~WorkerPool();
    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    [[nodiscard]] std::uint32_t size() const noexcept {
        return static_cast<std::uint32_t>(threads_.size());
    }

    /// Jobs dispatched so far (each play() on the pool is one job).
    [[nodiscard]] std::uint64_t jobs_run() const;

    /// Runs `job(w)` for every w in [0, workers) on the resident threads
    /// and blocks until all of them returned. `workers` must not exceed
    /// size(). Concurrent callers serialize (one job at a time).
    void run(std::uint32_t workers, const Job& job);

private:
    void thread_main(std::uint32_t index);

    std::vector<std::thread> threads_;
    std::mutex admission_; ///< serializes concurrent run() callers

    mutable std::mutex mutex_;
    std::condition_variable work_cv_; ///< workers wait for a generation bump
    std::condition_variable done_cv_; ///< the caller waits for remaining_ = 0
    const Job* job_ = nullptr;
    std::uint32_t active_workers_ = 0;
    std::uint32_t remaining_ = 0;
    std::uint64_t generation_ = 0;
    std::uint64_t jobs_ = 0;
    bool stop_ = false;
};

} // namespace hcube::rt
