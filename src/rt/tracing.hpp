// Per-worker execution tracing for the threaded runtime, exported as
// chrome://tracing JSON.
//
// When a TraceRecorder is attached to an engine, every executed action
// (push into a channel, drain out of it) is stamped with begin/end times on
// the worker thread that ran it. Lanes are strictly per-worker — worker w
// writes only lanes_[w], and the caller reads after join — so recording
// needs no synchronization and costs two clock reads per action, paid only
// while a recorder is attached (the hot path tests one pointer otherwise).
//
// Export reuses common/json.hpp: each event becomes one flat "Complete"
// ("ph":"X") event object with ts/dur in microseconds, tid = worker and a
// caller-chosen pid, which is exactly the subset of the Trace Event Format
// that chrome://tracing and Perfetto render as a per-worker timeline.
// Multiple runs (e.g. the barrier and async engines back to back, or the
// attempts of a fault-recovery sequence) can share one recorder epoch and
// land in one timeline.
#pragma once

#include "common/json.hpp"

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace hcube::rt {

enum class TraceKind : std::uint8_t {
    send, ///< push into a link channel
    recv, ///< drain / verify / combine out of a link channel
};

struct TraceEvent {
    std::uint64_t t0_ns = 0; ///< begin, relative to the recorder epoch
    std::uint64_t t1_ns = 0; ///< end
    std::uint32_t channel = 0;
    std::uint32_t packet = 0;
    std::uint32_t cycle = 0; ///< logical schedule cycle of the action
    TraceKind kind = TraceKind::send;
};

class TraceRecorder {
public:
    using clock = std::chrono::steady_clock;

    explicit TraceRecorder(std::uint32_t workers);

    /// Drops all events and restarts the epoch at "now". Only valid while
    /// no worker thread is recording.
    void reset();

    [[nodiscard]] std::uint32_t workers() const noexcept {
        return static_cast<std::uint32_t>(lanes_.size());
    }

    /// Records one executed action on `worker`'s lane. Called from worker
    /// threads; each worker must only ever pass its own index.
    void record(std::uint32_t worker, TraceKind kind, clock::time_point t0,
                clock::time_point t1, std::uint32_t channel,
                std::uint32_t packet, std::uint32_t cycle) {
        lanes_[worker].events.push_back(
            {to_ns(t0), to_ns(t1), channel, packet, cycle, kind});
    }

    [[nodiscard]] std::size_t event_count() const;
    [[nodiscard]] const std::vector<TraceEvent>&
    lane(std::uint32_t worker) const {
        return lanes_[worker].events;
    }

    /// Appends every recorded event to `json` as chrome-trace "X" events:
    /// tid = worker, pid = `pid` (use distinct pids to separate engines or
    /// recovery attempts in one file), cat = `category`. The caller owns
    /// the surrounding array (begin/close), so several recorders can merge
    /// into one trace.
    void append_chrome_events(JsonArrayWriter& json, std::uint32_t pid,
                              const std::string& category) const;

    /// Writes a complete standalone chrome trace (own array, own file) of
    /// everything recorded so far. Returns false if the file could not be
    /// written. Safe to call after workers have joined, even mid-run when
    /// an abort left the schedule unfinished.
    bool write_chrome_trace(const std::string& path, std::uint32_t pid,
                            const std::string& category) const;

    /// Arms abort salvage: when an engine's run ends with the arbiter in
    /// the aborted state, it calls flush_abort() and whatever was recorded
    /// up to the fault lands at `path` as a valid chrome trace instead of
    /// dying with the run. Empty path disarms.
    void set_abort_path(std::string path) { abort_path_ = std::move(path); }
    [[nodiscard]] const std::string& abort_path() const noexcept {
        return abort_path_;
    }

    /// Engine hook: no-op unless an abort path is armed. Returns true if a
    /// partial trace was written.
    bool flush_abort() const;

private:
    [[nodiscard]] std::uint64_t to_ns(clock::time_point t) const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
                .count());
    }

    /// One worker's event list, padded so two workers appending
    /// concurrently never false-share the vector headers.
    struct alignas(64) Lane {
        std::vector<TraceEvent> events;
    };

    clock::time_point epoch_;
    std::vector<Lane> lanes_;
    std::string abort_path_;
};

} // namespace hcube::rt
