// The one arrival/verify/deliver implementation shared by both execution
// engines.
//
// Before this helper existed the barrier Player and the dataflow
// AsyncPlayer each carried a near-identical copy of the send-side push and
// the receive-side drain/verify/deliver block; the zero-copy protocol now
// lives here exactly once and the engines differ only in *when* they call
// it (barrier phases vs dependency-graph readiness).
//
// Delivery protocol (docs/PERFORMANCE.md § The per-block hot path):
//
//   zero-copy (move mode, no fault hook) — every published descriptor
//     views an immutable canonical block in the plan's arena, so a
//     delivery is pointer motion: record the view in the receiving slot's
//     entry of `views` and compare the descriptor's checksum word against
//     the expected digest. A forward re-publishes the same view. No
//     payload byte is touched.
//
//   copy-through (combine mode, or any run with a fault hook installed) —
//     the legacy protocol, preserved bit for bit: the bank stages payload
//     into channel-owned storage on push (where the hook may corrupt it),
//     the receiver hashes the arrived bytes against the expected digest,
//     and delivery memcpys (move) or accumulates (combine) into the
//     player's slot memory, which `views` points into. Every copied byte
//     is counted in PlayStats::bytes_copied.
#pragma once

#include "rt/channel.hpp"
#include "rt/detect.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp" // PlayStats
#include "rt/simd.hpp"
#include "rt/tracing.hpp"
#include "rt/transport.hpp"

#include <cstring>

namespace hcube::rt {

/// Everything about the run in flight that both halves of a hop need.
/// Built once per play(); aggregates only references and raw pointers.
/// Generic over the channel backend (rt/transport.hpp): the in-process
/// engines instantiate it with ChannelBank, the net runtime with
/// net::SocketChannelBank — same delivery protocol, different wires.
template <class Bank> // constrained at the use sites (send/deliver below)
struct RunContextT {
    const Plan& plan;
    Bank& channels;
    const double** views; ///< per slot: current block view (size total_slots)
    double* memory;       ///< copy-through slot storage; null in zero-copy
    const std::uint64_t* expected_checksum; ///< per packet; move mode only
    const ft::DetectConfig& detect;
    FaultArbiter& arbiter;
    TraceRecorder* trace;
    bool detecting;
    bool copy_through;
};

/// The in-process engines' context (the original, pre-extraction name).
using RunContext = RunContextT<ChannelBank>;

/// The hot fields of one lowered action, engine-agnostic: the barrier
/// Player builds it from its (cycle, worker) buckets, the AsyncPlayer from
/// the plan's SoA action arrays.
struct ActionRef {
    std::uint32_t channel;
    std::uint32_t slot;
    std::uint32_t packet;
    std::uint32_t seq;
    std::uint32_t cycle; ///< for fault reports and traces only
};

enum class DeliverOutcome {
    delivered, ///< block landed (even if its checksum was flagged)
    skipped,   ///< fault counted; caller checks arbiter.aborted() to drain
    drained,   ///< another worker's abort won; nothing counted
};

// Both helpers are force-inlined: each engine's action loop is the whole
// hot path, and a TU with two call sites (the async engine executes
// actions from both the dataflow walk and the serial walk) otherwise gets
// an out-of-line clone — a measurable per-block call penalty at small
// block sizes.
#if defined(__GNUC__)
#define HCUBE_DELIVERY_INLINE inline __attribute__((always_inline))
#else
#define HCUBE_DELIVERY_INLINE inline
#endif

/// Send side: publish the slot's current view. In copy-through the bank
/// stages the payload (and offers it to the fault hook); in zero-copy the
/// descriptor borrows the view directly — for move-mode traffic that view
/// is an immutable arena block, so it outlives any in-flight window.
template <Transport Bank>
HCUBE_DELIVERY_INLINE void send_block(const RunContextT<Bank>& ctx,
                                      const ActionRef& a,
                                      std::uint32_t worker,
                                      PlayStats& stats) {
    const std::size_t blk = ctx.plan.block_elems;
    const double* const view = ctx.views[a.slot];
    // Combine-mode descriptors carry no digest (the payload is a mutable
    // partial sum with no precomputable expectation); receivers there
    // verify by exact-sum comparison after the run instead.
    const std::uint64_t checksum = ctx.plan.mode == DataMode::move
                                       ? ctx.expected_checksum[a.packet]
                                       : 0;
    const TraceRecorder::clock::time_point t0 =
        ctx.trace != nullptr ? TraceRecorder::clock::now()
                             : TraceRecorder::clock::time_point{};
    if (!ctx.channels.try_push(a.channel, a.packet, {view, blk}, checksum))
        [[unlikely]] {
        ++stats.channel_faults;
        if (ctx.detecting) {
            ctx.arbiter.raise(
                make_fault_report(ctx.plan, ft::DetectClass::stream_mismatch,
                                  a.channel, a.cycle, a.packet),
                ctx.detect.abort_on_fault);
        }
    } else {
        ++stats.blocks_sent;
        if (ctx.copy_through) {
            stats.bytes_copied += blk * sizeof(double);
        }
    }
    if (ctx.trace != nullptr) {
        ctx.trace->record(worker, TraceKind::send, t0,
                          TraceRecorder::clock::now(), a.channel, a.packet,
                          a.cycle);
    }
}

/// Receive side: drain the channel head, verify it is the promised block,
/// and deliver it (view adoption, or copy/accumulate under copy-through).
/// `check_seq` is the dataflow engines' stricter assertion that the head
/// is exactly the k-th push their dependency edge waited for; the barrier
/// engine passes false (its phases make the weaker packet check exact).
template <Transport Bank>
HCUBE_DELIVERY_INLINE DeliverOutcome
deliver_block(const RunContextT<Bank>& ctx, const ActionRef& a,
              bool check_seq, std::uint32_t worker, PlayStats& stats) {
    const std::size_t blk = ctx.plan.block_elems;
    const TraceRecorder::clock::time_point t0 =
        ctx.trace != nullptr ? TraceRecorder::clock::now()
                             : TraceRecorder::clock::time_point{};
    ChannelBank::Desc d;
    const bool present =
        ctx.detecting ? await_front(ctx.channels, a.channel, d,
                                    ctx.detect.arrival_timeout_us,
                                    ctx.arbiter)
                      : ctx.channels.front(a.channel, d);
    if (!present) [[unlikely]] {
        if (ctx.detecting && ctx.arbiter.aborted()) {
            return DeliverOutcome::drained;
        }
        ++stats.channel_faults;
        if (ctx.detecting) {
            ++stats.timeouts;
            ctx.arbiter.raise(
                make_fault_report(ctx.plan, ft::DetectClass::arrival_timeout,
                                  a.channel, a.cycle, a.packet),
                ctx.detect.abort_on_fault);
        }
        return DeliverOutcome::skipped;
    }
    if (d.packet != a.packet || (check_seq && d.seq != a.seq)) [[unlikely]] {
        ++stats.channel_faults;
        if (ctx.detecting) {
            ctx.arbiter.raise(
                make_fault_report(ctx.plan, ft::DetectClass::stream_mismatch,
                                  a.channel, a.cycle, a.packet),
                ctx.detect.abort_on_fault);
        }
        return DeliverOutcome::skipped;
    }
    if (ctx.plan.mode == DataMode::move) {
        // Copy-through hashes the arrived bytes (the hook may have
        // corrupted the staged copy); zero-copy compares the descriptor's
        // digest word — O(1), no payload touched.
        const std::uint64_t digest =
            ctx.copy_through ? simd::checksum(d.data, blk) : d.checksum;
        if (digest != ctx.expected_checksum[a.packet]) [[unlikely]] {
            ++stats.checksum_failures;
            if (ctx.detecting) {
                ctx.arbiter.raise(
                    make_fault_report(ctx.plan,
                                      ft::DetectClass::checksum_mismatch,
                                      a.channel, a.cycle, a.packet),
                    ctx.detect.abort_on_fault);
            }
        }
        // Delivery proceeds even when flagged (mirrors real hardware: the
        // corrupt block lands, the fault layer decides what to do).
        if (ctx.copy_through) {
            std::memcpy(ctx.memory + std::size_t{a.slot} * blk, d.data,
                        blk * sizeof(double));
            stats.bytes_copied += blk * sizeof(double);
        } else {
            ctx.views[a.slot] = d.data;
        }
    } else {
        simd::accumulate(ctx.memory + std::size_t{a.slot} * blk, d.data,
                         blk);
    }
    ctx.channels.pop_front(a.channel);
    ++stats.blocks_delivered;
    if (ctx.trace != nullptr) {
        ctx.trace->record(worker, TraceKind::recv, t0,
                          TraceRecorder::clock::now(), a.channel, a.packet,
                          a.cycle);
    }
    return DeliverOutcome::delivered;
}

#undef HCUBE_DELIVERY_INLINE

} // namespace hcube::rt
