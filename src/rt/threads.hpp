// Shared worker-count policy for the threaded runtime.
//
// One documented clamp, used by rt::Communicator and bench_rt (which used
// to duplicate it inline): a request of 0 means auto, and auto resolves to
// max(2, hardware_concurrency()) — `hardware_concurrency()` is allowed to
// return 0 when the host cannot be probed, and a silent single-threaded
// default would hide every cross-thread bug the runtime exists to catch —
// then any request is clamped to the 2^n cube nodes, since a worker owns a
// contiguous non-empty node range.
#pragma once

#include "hc/types.hpp"

#include <algorithm>
#include <cstdint>
#include <thread>

namespace hcube::rt {

/// Deterministic core: `hardware` stands in for
/// std::thread::hardware_concurrency() so the 0-cores and many-cores paths
/// are unit-testable.
[[nodiscard]] constexpr std::uint32_t
pick_worker_threads(hc::dim_t n, std::uint32_t requested,
                    std::uint32_t hardware) noexcept {
    const std::uint32_t nodes = std::uint32_t{1} << n;
    if (requested == 0) {
        requested = std::max(2u, hardware);
    }
    return std::min(requested, nodes);
}

/// The production overload: probes the host.
[[nodiscard]] inline std::uint32_t
pick_worker_threads(hc::dim_t n, std::uint32_t requested) {
    return pick_worker_threads(n, requested,
                               std::thread::hardware_concurrency());
}

} // namespace hcube::rt
