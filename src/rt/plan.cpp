#include "rt/plan.hpp"

#include "common/check.hpp"

#include <algorithm>
#include <bit>
#include <string>

namespace hcube::rt {

namespace {

[[noreturn]] [[gnu::cold]] [[gnu::noinline]] void
fail_send(const char* what, const sim::ScheduledSend& send) {
    throw check_error(std::string("plan violation: ") + what + " (cycle " +
                      std::to_string(send.cycle) + ", " +
                      std::to_string(send.from) + " -> " +
                      std::to_string(send.to) + ", packet " +
                      std::to_string(send.packet) + ")");
}

} // namespace

Plan compile_plan(const sim::Schedule& schedule, DataMode mode,
                  std::size_t block_elems, std::uint32_t workers) {
    HCUBE_ENSURE(schedule.n >= 1 && schedule.n <= hc::kMaxDimension);
    HCUBE_ENSURE(block_elems >= 1);
    const node_t count = node_t{1} << schedule.n;
    HCUBE_ENSURE(workers >= 1 && workers <= count);
    HCUBE_ENSURE(schedule.initial_holder.size() == schedule.packet_count);

    Plan plan;
    plan.n = schedule.n;
    plan.packet_count = schedule.packet_count;
    plan.block_elems = block_elems;
    plan.mode = mode;
    plan.workers = workers;

    std::vector<sim::ScheduledSend> sends = schedule.sends;
    std::ranges::stable_sort(sends, {}, &sim::ScheduledSend::cycle);
    if (!sends.empty()) {
        const std::uint32_t last = sends.back().cycle;
        if (last + 1 == 0) [[unlikely]] {
            fail_send("cycle index too large", sends.back());
        }
        plan.cycles = last + 1;
    }

    // ---- slot assignment with availability / duplicate checks ---------
    /// Cycle from which each slot's block may be forwarded (0 = initially
    /// held). Only consulted in move mode; combine slots are all available
    /// from the start (they hold the node's own contribution).
    std::vector<std::uint32_t> slot_acquire;
    const auto create_slot = [&](node_t node, packet_t packet,
                                 std::uint32_t acquire) {
        const std::uint64_t id = plan.total_slots++;
        plan.slot_index_.emplace((std::uint64_t{packet} << 32) | node, id);
        plan.slot_packet.push_back(packet);
        plan.slot_node.push_back(node);
        slot_acquire.push_back(acquire);
        return id;
    };

    if (mode == DataMode::move) {
        for (packet_t p = 0; p < schedule.packet_count; ++p) {
            const node_t holder = schedule.initial_holder[p];
            HCUBE_ENSURE(holder < count);
            plan.seeded_slots.push_back(create_slot(holder, p, 0));
        }
    }

    // ---- channel numbering + lowering ---------------------------------
    std::unordered_map<std::uint64_t, std::uint32_t> channel_of;
    /// Last cycle each channel carried a block (one packet per directed
    /// link per cycle, the link-capacity rule).
    std::vector<std::uint64_t> channel_last_cycle;
    static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

    struct Lowered {
        std::uint32_t cycle;
        Action action;
    };
    std::vector<Lowered> low_sends;
    std::vector<Lowered> low_recvs;
    low_sends.reserve(sends.size());
    low_recvs.reserve(sends.size());

    for (const sim::ScheduledSend& send : sends) {
        if (send.from >= count || send.to >= count) [[unlikely]] {
            fail_send("node out of range", send);
        }
        if (!std::has_single_bit(send.from ^ send.to)) [[unlikely]] {
            fail_send("send between non-neighbors", send);
        }
        if (send.packet >= schedule.packet_count) [[unlikely]] {
            fail_send("unknown packet", send);
        }

        const std::uint64_t link_key =
            (std::uint64_t{send.from} << 32) | send.to;
        const auto [it, inserted] = channel_of.emplace(
            link_key, static_cast<std::uint32_t>(channel_of.size()));
        const std::uint32_t channel = it->second;
        if (inserted) {
            channel_last_cycle.push_back(kIdle);
            plan.channel_link.emplace_back(send.from, send.to);
        }
        if (channel_last_cycle[channel] == send.cycle) [[unlikely]] {
            fail_send("two packets on one directed link in one cycle", send);
        }
        channel_last_cycle[channel] = send.cycle;

        std::uint64_t src_slot = plan.slot_of(send.from, send.packet);
        if (src_slot == Plan::kNoSlot) {
            if (mode == DataMode::move) [[unlikely]] {
                fail_send("sender never holds the packet", send);
            }
            src_slot = create_slot(send.from, send.packet, 0);
        } else if (mode == DataMode::move &&
                   slot_acquire[src_slot] > send.cycle) [[unlikely]] {
            fail_send("sender does not hold the packet yet", send);
        }

        std::uint64_t dst_slot = plan.slot_of(send.to, send.packet);
        if (dst_slot == Plan::kNoSlot) {
            dst_slot = create_slot(send.to, send.packet, send.cycle + 1);
        } else if (mode == DataMode::move) [[unlikely]] {
            fail_send("receiver already holds the packet", send);
        }

        low_sends.push_back(
            {send.cycle, {channel, send.from, src_slot, send.packet}});
        low_recvs.push_back(
            {send.cycle, {channel, send.to, dst_slot, send.packet}});
    }
    plan.channel_count = static_cast<std::uint32_t>(channel_of.size());

    if (mode == DataMode::combine) {
        plan.seeded_slots.resize(plan.total_slots);
        for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
            plan.seeded_slots[s] = s;
        }
    }

    // ---- CSR bucketing by (cycle, worker) -----------------------------
    const std::size_t buckets = std::size_t{plan.cycles} * workers;
    const auto bucket_sort = [&](const std::vector<Lowered>& lowered,
                                 std::vector<std::uint64_t>& begin,
                                 std::vector<Action>& out) {
        begin.assign(buckets + 1, 0);
        for (const Lowered& l : lowered) {
            const std::size_t b =
                std::size_t{l.cycle} * workers + plan.owner_of(l.action.node);
            ++begin[b + 1];
        }
        for (std::size_t b = 1; b <= buckets; ++b) {
            begin[b] += begin[b - 1];
        }
        out.resize(lowered.size());
        std::vector<std::uint64_t> cursor(begin.begin(), begin.end() - 1);
        for (const Lowered& l : lowered) {
            const std::size_t b =
                std::size_t{l.cycle} * workers + plan.owner_of(l.action.node);
            out[cursor[b]++] = l.action;
        }
    };
    bucket_sort(low_sends, plan.send_begin, plan.sends);
    bucket_sort(low_recvs, plan.recv_begin, plan.recvs);
    return plan;
}

} // namespace hcube::rt
