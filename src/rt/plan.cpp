#include "rt/plan.hpp"

#include "common/check.hpp"
#include "rt/checksum.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>

namespace hcube::rt {

namespace {

[[noreturn]] [[gnu::cold]] [[gnu::noinline]] void
fail_send(const char* what, const sim::ScheduledSend& send) {
    throw check_error(std::string("plan violation: ") + what + " (cycle " +
                      std::to_string(send.cycle) + ", " +
                      std::to_string(send.from) + " -> " +
                      std::to_string(send.to) + ", packet " +
                      std::to_string(send.packet) + ")");
}

/// Resolves the requested layout against the compact envelope. The 32-bit
/// action fields are validated for n <= kCompactMaxDimension (slot and
/// lowered-index counts stay well inside u32 there); an explicit compact
/// request outside that envelope is a compile_plan-time error, automatic
/// falls back to wide. HCUBE_PLAN_COMPACT=0 is the no-rebuild escape hatch
/// (consulted per compile so a test can flip it).
PlanLayout resolve_layout(PlanLayout requested, dim_t n) {
    if (requested == PlanLayout::compact) {
        HCUBE_ENSURE_MSG(n <= kCompactMaxDimension,
                         "compact plan layout requires n <= 20");
        return requested;
    }
    if (requested == PlanLayout::wide) {
        return requested;
    }
    const char* env = std::getenv("HCUBE_PLAN_COMPACT");
    if (env != nullptr && env[0] == '0' && env[1] == '\0') {
        return PlanLayout::wide;
    }
    return n <= kCompactMaxDimension ? PlanLayout::compact
                                     : PlanLayout::wide;
}

template <typename T>
std::uint64_t vec_bytes(const std::vector<T>& v) noexcept {
    return std::uint64_t{v.capacity()} * sizeof(T);
}

} // namespace

PlanFootprint Plan::footprint() const noexcept {
    PlanFootprint f;
    f.actions = vec_bytes(act_channel) + vec_bytes(act_slot) +
                vec_bytes(act_packet) + vec_bytes(act_seq) +
                vec_bytes(flat_sends) + vec_bytes(flat_recvs) +
                vec_bytes(flat_cycle);
    f.dep_graph =
        vec_bytes(dep_count) + vec_bytes(succ_begin) + vec_bytes(succ);
    f.buckets = vec_bytes(send_begin) + vec_bytes(recv_begin) +
                vec_bytes(send_order) + vec_bytes(recv_order) +
                vec_bytes(sends) + vec_bytes(recvs) +
                vec_bytes(flat_cycle_begin);
    f.slots = vec_bytes(slot_packet) + vec_bytes(slot_node) +
              vec_bytes(seeded_slots) + vec_bytes(slot_keys) +
              vec_bytes(slot_vals);
    f.channels = vec_bytes(channel_ep) + vec_bytes(node_out_ports) +
                 vec_bytes(node_in_ports) + vec_bytes(node_owner);
    f.arena = vec_bytes(arena);
    return f;
}

Plan compile_plan(const sim::Schedule& schedule, DataMode mode,
                  std::size_t block_elems, std::uint32_t workers,
                  std::uint32_t async_depth, PlanLayout layout,
                  std::span<const node_t> members) {
    HCUBE_ENSURE(schedule.n >= 1 && schedule.n <= hc::kMaxDimension);
    HCUBE_ENSURE(block_elems >= 1);
    HCUBE_ENSURE(async_depth >= 1);
    const node_t count = node_t{1} << schedule.n;
    HCUBE_ENSURE(workers >= 1 && workers <= count);
    HCUBE_ENSURE(schedule.initial_holder.size() == schedule.packet_count);
    HCUBE_ENSURE(schedule.sends.size() < (std::size_t{1} << 31));

    Plan plan;
    plan.n = schedule.n;
    plan.packet_count = schedule.packet_count;
    plan.block_elems = block_elems;
    plan.mode = mode;
    plan.layout = resolve_layout(layout, schedule.n);
    plan.workers = workers;
    plan.async_depth = std::bit_ceil(async_depth);
    const bool wide = !plan.compact();

    // ---- member partition (incomplete cubes) --------------------------
    // A full member span compiles exactly like no span at all: node_owner
    // stays empty and owner_of keeps its arithmetic split, so full-view
    // member plans are bit-for-bit the plans of the static world.
    std::vector<char> live;
    if (!members.empty() && members.size() < count) {
        HCUBE_ENSURE_MSG(workers <= members.size(),
                         "more workers than live members");
        live.assign(count, 0);
        plan.node_owner.assign(count, 0);
        std::uint32_t owner = 0;
        for (std::size_t r = 0; r < members.size(); ++r) {
            const node_t v = members[r];
            HCUBE_ENSURE_MSG(v < count, "member address outside the cube");
            HCUBE_ENSURE_MSG(r == 0 || members[r - 1] < v,
                             "member span must be ascending and unique");
            live[v] = 1;
            // Live rank r belongs to worker (r * workers) / N_live —
            // contiguous balanced ranges over the members; the absent
            // addresses in between inherit the current worker so the
            // table is total (they own no actions either way).
            owner = static_cast<std::uint32_t>(
                r * std::uint64_t{workers} / members.size());
            plan.node_owner[v] = owner;
        }
        owner = 0;
        for (node_t v = 0; v < count; ++v) {
            if (live[v] != 0) {
                owner = plan.node_owner[v];
            } else {
                plan.node_owner[v] = owner;
            }
        }
    }

    std::vector<sim::ScheduledSend> sends = schedule.sends;
    std::ranges::stable_sort(sends, {}, &sim::ScheduledSend::cycle);
    if (!sends.empty()) {
        const std::uint32_t last = sends.back().cycle;
        if (last + 1 == 0) [[unlikely]] {
            fail_send("cycle index too large", sends.back());
        }
        plan.cycles = last + 1;
    }

    // ---- slot assignment with availability / duplicate checks ---------
    /// Cycle from which each slot's block may be forwarded (0 = initially
    /// held). Only consulted in move mode; combine slots are all available
    /// from the start (they hold the node's own contribution).
    std::vector<std::uint32_t> slot_acquire;
    /// Lowered index of the receive that writes each slot, kNoProducer for
    /// seeds (move mode — a slot has at most one writer there).
    static constexpr std::uint32_t kNoProducer = ~std::uint32_t{0};
    std::vector<std::uint32_t> slot_producer;
    /// Combine mode: receives into / sends from each slot lowered so far,
    /// in cycle order (slots are written repeatedly there).
    std::vector<std::vector<std::uint32_t>> slot_recvs;
    std::vector<std::vector<std::uint32_t>> slot_sends;
    /// Compile-time slot index; flattened into the plan's sorted
    /// slot_keys / slot_vals tables once the slot set is final.
    std::unordered_map<std::uint64_t, std::uint64_t> slot_index;
    const auto find_slot = [&](node_t node, packet_t packet) {
        const auto it =
            slot_index.find((std::uint64_t{packet} << 32) | node);
        return it == slot_index.end() ? Plan::kNoSlot : it->second;
    };
    const auto create_slot = [&](node_t node, packet_t packet,
                                 std::uint32_t acquire) {
        const std::uint64_t id = plan.total_slots++;
        slot_index.emplace((std::uint64_t{packet} << 32) | node, id);
        plan.slot_packet.push_back(packet);
        plan.slot_node.push_back(node);
        slot_acquire.push_back(acquire);
        slot_producer.push_back(kNoProducer);
        if (mode == DataMode::combine) {
            slot_recvs.emplace_back();
            slot_sends.emplace_back();
        }
        return id;
    };

    if (mode == DataMode::move) {
        for (packet_t p = 0; p < schedule.packet_count; ++p) {
            const node_t holder = schedule.initial_holder[p];
            HCUBE_ENSURE(holder < count);
            HCUBE_ENSURE_MSG(live.empty() || live[holder] != 0,
                             "initial holder is not a live member");
            plan.seeded_slots.push_back(
                static_cast<std::uint32_t>(create_slot(holder, p, 0)));
        }
    }

    // ---- channel numbering + lowering ---------------------------------
    // Channels are numbered in first-use order. For cubes up to n = 16 a
    // dense (node, dimension) table replaces the hash map — the validated
    // sends below guarantee from ^ to is a single bit, so a directed link
    // is exactly (from, countr_zero(from ^ to)): the packed channel_ep
    // word the plan keeps.
    const auto dims = static_cast<std::size_t>(schedule.n);
    const bool dense_links = schedule.n <= 16;
    std::vector<std::uint32_t> link_table; ///< channel + 1; 0 = unseen
    if (dense_links) {
        link_table.assign(std::size_t{count} * dims, 0);
    }
    std::unordered_map<std::uint64_t, std::uint32_t> link_map;
    /// Last cycle each channel carried a block (one packet per directed
    /// link per cycle, the link-capacity rule).
    std::vector<std::uint64_t> channel_last_cycle;
    static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
    /// Per channel: lowered send indices in sequence order (send l and
    /// recv l share the index, so this doubles as the pop order).
    std::vector<std::vector<std::uint32_t>> chan_sends;

    // Port bitmaps are built as links are numbered — they are primary
    // lowering data (cross-checked against the channel table below), not a
    // diagnostics afterthought.
    plan.node_out_ports.assign(count, 0);
    plan.node_in_ports.assign(count, 0);

    struct Lowered {
        std::uint32_t cycle;
        Action action;
    };
    std::vector<Lowered> low_sends;
    std::vector<Lowered> low_recvs;
    low_sends.reserve(sends.size());
    low_recvs.reserve(sends.size());

    // Dependency edges over lowered indices; recv endpoints are tagged
    // with kRecvBit and decoded to interleaved action ids at CSR build.
    static constexpr std::uint32_t kRecvBit = std::uint32_t{1} << 31;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(sends.size() * 3);

    for (const sim::ScheduledSend& send : sends) {
        if (send.from >= count || send.to >= count) [[unlikely]] {
            fail_send("node out of range", send);
        }
        if (!std::has_single_bit(send.from ^ send.to)) [[unlikely]] {
            fail_send("send between non-neighbors", send);
        }
        if (!live.empty() &&
            (live[send.from] == 0 || live[send.to] == 0)) [[unlikely]] {
            fail_send("send endpoint is not a live member", send);
        }
        if (send.packet >= schedule.packet_count) [[unlikely]] {
            fail_send("unknown packet", send);
        }
        const auto dim = static_cast<std::uint32_t>(
            std::countr_zero(send.from ^ send.to));

        std::uint32_t channel;
        bool inserted;
        if (dense_links) {
            std::uint32_t& entry =
                link_table[std::size_t{send.from} * dims + dim];
            inserted = entry == 0;
            if (inserted) {
                entry =
                    static_cast<std::uint32_t>(plan.channel_ep.size()) + 1;
            }
            channel = entry - 1;
        } else {
            const std::uint64_t link_key =
                (std::uint64_t{send.from} << 32) | send.to;
            const auto [it, fresh] = link_map.emplace(
                link_key,
                static_cast<std::uint32_t>(plan.channel_ep.size()));
            inserted = fresh;
            channel = it->second;
        }
        if (inserted) {
            channel_last_cycle.push_back(kIdle);
            plan.channel_ep.push_back(
                (send.from << Plan::kChannelDimBits) | dim);
            plan.node_out_ports[send.from] |= std::uint32_t{1} << dim;
            plan.node_in_ports[send.to] |= std::uint32_t{1} << dim;
            chan_sends.emplace_back();
        }
        if (channel_last_cycle[channel] == send.cycle) [[unlikely]] {
            fail_send("two packets on one directed link in one cycle", send);
        }
        channel_last_cycle[channel] = send.cycle;

        std::uint64_t src_slot = find_slot(send.from, send.packet);
        if (src_slot == Plan::kNoSlot) {
            if (mode == DataMode::move) [[unlikely]] {
                fail_send("sender never holds the packet", send);
            }
            src_slot = create_slot(send.from, send.packet, 0);
        } else if (mode == DataMode::move &&
                   slot_acquire[src_slot] > send.cycle) [[unlikely]] {
            fail_send("sender does not hold the packet yet", send);
        }

        std::uint64_t dst_slot = find_slot(send.to, send.packet);
        if (dst_slot == Plan::kNoSlot) {
            dst_slot = create_slot(send.to, send.packet, send.cycle + 1);
        } else if (mode == DataMode::move) [[unlikely]] {
            fail_send("receiver already holds the packet", send);
        }

        // ---- dependency edges for hop l (send 2l / recv 2l+1) ---------
        const auto l = static_cast<std::uint32_t>(low_sends.size());
        const auto seq =
            static_cast<std::uint32_t>(chan_sends[channel].size());
        if (seq > 0) {
            // Ring order: pushes and pops on one channel stay serialized
            // (the SPSC protocol's one-producer / one-consumer guarantee,
            // recovered by edges once work-stealing removes ownership).
            const std::uint32_t prev = chan_sends[channel].back();
            edges.emplace_back(prev, l);
            edges.emplace_back(prev | kRecvBit, l | kRecvBit);
        }
        if (seq >= plan.async_depth) {
            // Capacity: the seq-th push needs the (seq-depth)-th pop to
            // have freed its ring slot.
            edges.emplace_back(
                chan_sends[channel][seq - plan.async_depth] | kRecvBit, l);
        }
        if (mode == DataMode::move) {
            // Availability: forwarding waits on the receive that produced
            // the source slot; seeds have no producer.
            if (slot_producer[src_slot] != kNoProducer) {
                edges.emplace_back(slot_producer[src_slot] | kRecvBit, l);
            }
        } else {
            // A combining send transmits the partial sum of its own seed
            // plus every strictly-earlier arrival (the barrier engine's
            // send-phase-before-receive-phase rule for equal cycles).
            // Receives into one slot are chained in lowered order (below),
            // so a single edge from the latest strictly-earlier receive
            // orders every older arrival transitively. Same-cycle receives
            // already lowered must instead wait for this send — it reads
            // the slot's pre-accumulation value — and one edge to the
            // earliest of them orders the rest through the same chain.
            const std::vector<std::uint32_t>& arrivals =
                slot_recvs[src_slot];
            std::size_t a = arrivals.size();
            while (a > 0 && low_recvs[arrivals[a - 1]].cycle == send.cycle) {
                --a;
            }
            if (a < arrivals.size()) {
                edges.emplace_back(l, arrivals[a] | kRecvBit);
            }
            if (a > 0) {
                edges.emplace_back(arrivals[a - 1] | kRecvBit, l);
            }
        }
        // Data: the receive drains exactly its channel's seq-th push.
        edges.emplace_back(l, l | kRecvBit);
        if (mode == DataMode::combine) {
            // Accumulation into one slot happens in channel-sequence
            // (lowered) order, and only after every send that reads the
            // slot's pre-accumulation value has gone out. Sends lowered
            // before the previous receive are ordered through it, so only
            // those since then need direct edges — drained here, which
            // keeps total edge emission linear in the schedule size.
            if (!slot_recvs[dst_slot].empty()) {
                edges.emplace_back(slot_recvs[dst_slot].back() | kRecvBit,
                                   l | kRecvBit);
            }
            for (const std::uint32_t s2 : slot_sends[dst_slot]) {
                edges.emplace_back(s2, l | kRecvBit);
            }
            slot_sends[dst_slot].clear();
            slot_recvs[dst_slot].push_back(l);
            slot_sends[src_slot].push_back(l);
        } else {
            slot_producer[dst_slot] = l;
        }

        low_sends.push_back(
            {send.cycle, {channel, send.from, src_slot, send.packet, seq}});
        low_recvs.push_back(
            {send.cycle, {channel, send.to, dst_slot, send.packet, seq}});
        chan_sends[channel].push_back(l);
    }
    plan.channel_count = static_cast<std::uint32_t>(plan.channel_ep.size());
    HCUBE_ENSURE(plan.total_slots <= ~std::uint32_t{0});

    // Partition cross-check: every channel is a distinct (origin, port)
    // pair, so the port bitmaps must account for each channel exactly once
    // at both endpoints — this is what certifies the packed channel_ep
    // words (and the owner_of bucketing keyed off them) lost nothing.
    std::uint64_t out_links = 0;
    std::uint64_t in_links = 0;
    for (node_t v = 0; v < count; ++v) {
        out_links += static_cast<std::uint32_t>(
            std::popcount(plan.node_out_ports[v]));
        in_links += static_cast<std::uint32_t>(
            std::popcount(plan.node_in_ports[v]));
    }
    HCUBE_ENSURE(out_links == plan.channel_count);
    HCUBE_ENSURE(in_links == plan.channel_count);

    if (mode == DataMode::combine) {
        plan.seeded_slots.resize(plan.total_slots);
        for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
            plan.seeded_slots[s] = static_cast<std::uint32_t>(s);
        }
    }

    // ---- read-only lookup tables --------------------------------------
    std::vector<std::pair<std::uint64_t, std::uint64_t>> lookup(
        slot_index.begin(), slot_index.end());
    std::ranges::sort(lookup, {},
                      &std::pair<std::uint64_t, std::uint64_t>::first);
    plan.slot_keys.reserve(lookup.size());
    plan.slot_vals.reserve(lookup.size());
    for (const auto& [key, slot] : lookup) {
        plan.slot_keys.push_back(key);
        plan.slot_vals.push_back(static_cast<std::uint32_t>(slot));
    }

    // ---- immutable block arena (move mode) ----------------------------
    if (mode == DataMode::move) {
        plan.arena_stride = (block_elems + 7) & ~std::size_t{7};
        plan.arena.resize(
            std::size_t{schedule.packet_count} * plan.arena_stride + 7);
        const auto raw = reinterpret_cast<std::uintptr_t>(plan.arena.data());
        double* base =
            reinterpret_cast<double*>(raw + ((0u - raw) & 63u));
        for (packet_t p = 0; p < schedule.packet_count; ++p) {
            fill_canonical(
                {base + std::size_t{p} * plan.arena_stride, block_elems},
                p);
        }
    }

    // ---- lowered actions: SoA streams + dependency CSR ----------------
    const auto S = static_cast<std::uint32_t>(low_sends.size());

    // Cycle CSR over lowered indices (lowered order is cycle-sorted).
    plan.flat_cycle_begin.assign(std::size_t{plan.cycles} + 1, 0);
    for (const Lowered& l : low_sends) {
        ++plan.flat_cycle_begin[std::size_t{l.cycle} + 1];
    }
    for (std::size_t c = 1; c <= plan.cycles; ++c) {
        plan.flat_cycle_begin[c] += plan.flat_cycle_begin[c - 1];
    }

    // SoA streams indexed by interleaved action id: hop l's send is id 2l,
    // its receive 2l+1, so the dependency counters and successor lists
    // below are laid out in execution order.
    plan.act_channel.resize(std::size_t{2} * S);
    plan.act_slot.resize(std::size_t{2} * S);
    plan.act_packet.resize(std::size_t{2} * S);
    plan.act_seq.resize(std::size_t{2} * S);
    for (std::uint32_t l = 0; l < S; ++l) {
        const Action& snd = low_sends[l].action;
        const Action& rcv = low_recvs[l].action;
        const std::size_t sid = std::size_t{2} * l;
        plan.act_channel[sid] = snd.channel;
        plan.act_slot[sid] = static_cast<std::uint32_t>(snd.slot);
        plan.act_packet[sid] = snd.packet;
        plan.act_seq[sid] = snd.seq;
        plan.act_channel[sid + 1] = rcv.channel;
        plan.act_slot[sid + 1] = static_cast<std::uint32_t>(rcv.slot);
        plan.act_packet[sid + 1] = rcv.packet;
        plan.act_seq[sid + 1] = rcv.seq;
    }

    if (wide) {
        // Reference layout keeps the AoS mirrors and per-hop cycle stamps.
        plan.flat_sends.reserve(S);
        plan.flat_recvs.reserve(S);
        plan.flat_cycle.reserve(S);
        for (const Lowered& l : low_sends) {
            plan.flat_sends.push_back(l.action);
            plan.flat_cycle.push_back(l.cycle);
        }
        for (const Lowered& l : low_recvs) {
            plan.flat_recvs.push_back(l.action);
        }
    }

    HCUBE_ENSURE(edges.size() < ~std::uint32_t{0});
    const auto decode = [](std::uint32_t id) {
        return (id & kRecvBit) != 0 ? ((id & ~kRecvBit) << 1) | 1u
                                    : id << 1;
    };
    plan.dep_count.assign(std::size_t{2} * S, 0);
    plan.succ_begin.assign(std::size_t{2} * S + 1, 0);
    for (const auto& [from, to] : edges) {
        ++plan.dep_count[decode(to)];
        ++plan.succ_begin[decode(from) + 1];
    }
    for (std::size_t a = 1; a <= std::size_t{2} * S; ++a) {
        plan.succ_begin[a] += plan.succ_begin[a - 1];
    }
    plan.succ.resize(edges.size());
    std::vector<std::uint32_t> cursor(plan.succ_begin.begin(),
                                      plan.succ_begin.end() - 1);
    for (const auto& [from, to] : edges) {
        plan.succ[cursor[decode(from)]++] = decode(to);
    }

    // ---- CSR bucketing by (cycle, worker) -----------------------------
    const std::size_t buckets = std::size_t{plan.cycles} * workers;
    const auto bucket_of = [&](const Lowered& l) {
        return std::size_t{l.cycle} * workers + plan.owner_of(l.action.node);
    };
    const auto bucket_fill = [&](const std::vector<Lowered>& lowered,
                                 std::vector<std::uint32_t>& begin,
                                 auto&& emit) {
        begin.assign(buckets + 1, 0);
        for (const Lowered& l : lowered) {
            ++begin[bucket_of(l) + 1];
        }
        for (std::size_t b = 1; b <= buckets; ++b) {
            begin[b] += begin[b - 1];
        }
        std::vector<std::uint32_t> cursor2(begin.begin(), begin.end() - 1);
        for (std::uint32_t idx = 0; idx < S; ++idx) {
            emit(cursor2[bucket_of(lowered[idx])]++, idx,
                 lowered[idx].action);
        }
    };
    if (wide) {
        plan.sends.resize(S);
        plan.recvs.resize(S);
        bucket_fill(low_sends, plan.send_begin,
                    [&](std::uint32_t pos, std::uint32_t, const Action& a) {
                        plan.sends[pos] = a;
                    });
        bucket_fill(low_recvs, plan.recv_begin,
                    [&](std::uint32_t pos, std::uint32_t, const Action& a) {
                        plan.recvs[pos] = a;
                    });
    } else {
        plan.send_order.resize(S);
        plan.recv_order.resize(S);
        bucket_fill(low_sends, plan.send_begin,
                    [&](std::uint32_t pos, std::uint32_t idx, const Action&) {
                        plan.send_order[pos] = idx;
                    });
        bucket_fill(low_recvs, plan.recv_begin,
                    [&](std::uint32_t pos, std::uint32_t idx, const Action&) {
                        plan.recv_order[pos] = idx;
                    });
    }

    // Trim push_back growth slack so footprint() reports what the plan
    // actually needs, not what the growth policy left behind.
    plan.slot_packet.shrink_to_fit();
    plan.slot_node.shrink_to_fit();
    plan.seeded_slots.shrink_to_fit();
    plan.channel_ep.shrink_to_fit();
    return plan;
}

void seed_plan_memory(const Plan& plan, std::span<double> memory) {
    HCUBE_ENSURE(memory.size() ==
                 static_cast<std::size_t>(plan.total_slots) *
                     plan.block_elems);
    std::fill(memory.begin(), memory.end(), 0.0);
    for (const std::uint64_t slot : plan.seeded_slots) {
        const std::span<double> block =
            memory.subspan(static_cast<std::size_t>(slot) * plan.block_elems,
                           plan.block_elems);
        if (plan.mode == DataMode::move) {
            fill_canonical(block, plan.slot_packet[slot]);
        } else {
            fill_contribution(block, plan.slot_node[slot],
                              plan.slot_packet[slot]);
        }
    }
}

std::uint64_t schedule_fingerprint(const sim::Schedule& schedule) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(schedule.n));
    mix(schedule.packet_count);
    for (const node_t holder : schedule.initial_holder) {
        mix(holder);
    }
    for (const sim::ScheduledSend& s : schedule.sends) {
        mix((std::uint64_t{s.cycle} << 32) | s.packet);
        mix((std::uint64_t{s.from} << 32) | s.to);
    }
    return h;
}

} // namespace hcube::rt
