#include "rt/communicator.hpp"

#include "common/check.hpp"
#include "rt/async_player.hpp"
#include "rt/checksum.hpp"
#include "rt/player.hpp"
#include "rt/pool.hpp"
#include "rt/threads.hpp"
#include "sim/cycle.hpp"

#include <cstring>
#include <optional>

namespace hcube::rt {

namespace {

using sim::packet_t;
using sim::Schedule;

/// Byte-identical final-state comparison across the two engines, slot by
/// slot — the cross-check that makes the barrier Player the async engine's
/// oracle.
bool identical_memory(const Plan& plan, const Player& ref,
                      const AsyncPlayer& dut) {
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const std::span<const double> a =
            ref.block(plan.slot_node[s], plan.slot_packet[s]);
        const std::span<const double> b =
            dut.block(plan.slot_node[s], plan.slot_packet[s]);
        if (a.size() != b.size() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) !=
                0) {
            return false;
        }
    }
    return true;
}

/// The per-run numbers every operation reports identically, including the
/// fault counters the ft layer (and bench JSON) watches.
void copy_play_stats(Result& result, const PlayStats& stats) {
    result.rt_cycles = stats.cycles;
    result.blocks_delivered = stats.blocks_delivered;
    result.payload_bytes = stats.payload_bytes;
    result.bytes_copied = stats.bytes_copied;
    result.seconds = stats.seconds;
    result.steals = stats.steals;
    result.exec_mode = stats.mode;
    result.transport = stats.transport;
    result.checksum_failures = stats.checksum_failures;
    result.channel_faults = stats.channel_faults;
    result.timeouts = stats.timeouts;
}

} // namespace

Communicator::Communicator(hc::dim_t n, Params params)
    : n_(n), params_(params),
      threads_(pick_worker_threads(n, params.threads)),
      pool_(threads_ > 1 ? std::make_unique<WorkerPool>(threads_)
                         : nullptr) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(params_.block_elems >= 1);
}

Communicator::~Communicator() = default;

bool Communicator::oracle_due(const Schedule& schedule) {
    switch (params_.verify) {
    case Verify::always: return true;
    case Verify::never: return false;
    case Verify::first:
        return oracle_seen_.insert(schedule_fingerprint(schedule)).second;
    }
    return true;
}

Result Communicator::run_move(const Schedule& schedule) {
    // The cycle executor proves the schedule feasible under the port model
    // and provides the makespan + delivery matrix the runtime must match.
    const sim::CycleStats sim_stats =
        sim::execute_schedule(schedule, params_.model);

    const Plan plan = compile_plan(schedule, DataMode::move,
                                   params_.block_elems, threads_);

    // Every (node, packet) the simulator says is held must end up holding
    // the canonical block, and nothing else may appear.
    const auto holdings_match = [&](const auto& player) {
        const node_t count = node_t{1} << n_;
        for (node_t i = 0; i < count; ++i) {
            for (packet_t p = 0; p < schedule.packet_count; ++p) {
                const bool held = sim_stats.holds(i, p);
                const std::span<const double> block = player.block(i, p);
                if (!held) {
                    if (!block.empty()) {
                        return false;
                    }
                    continue;
                }
                if (block.empty() ||
                    block_checksum(block) !=
                        canonical_checksum(p, params_.block_elems)) {
                    return false;
                }
            }
        }
        return true;
    };

    Result result;
    result.engine = params_.engine;
    result.threads = threads_;
    result.pool_reused = pool_ != nullptr || threads_ == 1;
    result.sim_makespan = sim_stats.makespan;

    // The barrier player runs when it is the measured engine or when the
    // Verify policy asks for the oracle cross-check of the async engine.
    const bool with_oracle =
        params_.engine == Engine::barrier || oracle_due(schedule);
    result.oracle_checked = with_oracle;

    std::optional<Player> ref;
    PlayStats ref_stats;
    bool ok = true;
    if (with_oracle) {
        ref.emplace(plan, params_.channel_capacity);
        ref_stats = ref->play(pool_.get());
        // The oracle itself must be clean: every in-flight checksum passed,
        // every channel behaved, exactly one delivery per scheduled send,
        // and its barriered cycle count matches the cycle model.
        ok = ref_stats.clean() &&
             ref_stats.blocks_delivered == schedule.sends.size() &&
             ref_stats.cycles == sim_stats.makespan;
    }

    if (params_.engine == Engine::barrier) {
        ok = ok && holdings_match(*ref);
        copy_play_stats(result, ref_stats);
    } else {
        AsyncPlayer dut(plan);
        const PlayStats stats = dut.play(pool_.get());
        ok = ok && stats.clean() &&
             stats.blocks_delivered == schedule.sends.size() &&
             holdings_match(dut);
        if (with_oracle) {
            ok = ok && identical_memory(plan, *ref, dut);
            result.ref_seconds = ref_stats.seconds;
        }
        copy_play_stats(result, stats);
    }
    result.verified = ok;
    // A failed oracle pass must not inoculate the fingerprint.
    if (!ok && params_.verify == Verify::first && with_oracle) {
        oracle_seen_.erase(schedule_fingerprint(schedule));
    }
    return result;
}

Result Communicator::broadcast(const trees::SpanningTree& tree,
                               routing::BroadcastDiscipline discipline,
                               packet_t packets) {
    HCUBE_ENSURE(tree.n == n_);
    return run_move(routing::make_tree_broadcast(tree, discipline, packets,
                                                 params_.model));
}

Result Communicator::broadcast_msbt(hc::node_t root, packet_t packets) {
    return run_move(
        routing::make_msbt_broadcast(n_, root, packets, params_.model));
}

Result Communicator::scatter(const trees::SpanningTree& tree,
                             routing::ScatterPolicy policy,
                             packet_t packets_per_dest) {
    HCUBE_ENSURE(tree.n == n_);
    return run_move(routing::make_tree_scatter(tree, policy,
                                               packets_per_dest,
                                               params_.model));
}

Result Communicator::gather(const trees::SpanningTree& tree,
                            routing::ScatterPolicy policy,
                            packet_t packets_per_dest) {
    HCUBE_ENSURE(tree.n == n_);
    return run_move(routing::make_tree_gather(tree, policy, packets_per_dest,
                                              params_.model));
}

Result Communicator::allgather() {
    return run_move(routing::make_allgather_schedule(n_));
}

Result Communicator::alltoall(packet_t packets_per_pair) {
    return run_move(routing::make_alltoall_schedule(n_, packets_per_pair));
}

Result Communicator::reduce(const trees::SpanningTree& tree,
                            packet_t packets) {
    HCUBE_ENSURE(tree.n == n_);
    // The forward broadcast provides the feasibility proof and the
    // makespan; time reversal preserves both (every constraint the
    // executor checks is symmetric under reversal).
    const Schedule forward = routing::make_tree_broadcast(
        tree, routing::BroadcastDiscipline::port_oriented, packets,
        params_.model);
    const sim::CycleStats sim_stats =
        sim::execute_schedule(forward, params_.model);
    const Schedule reduction =
        routing::reverse_broadcast_for_reduce(forward, tree.root);

    const Plan plan = compile_plan(reduction, DataMode::combine,
                                   params_.block_elems, threads_);

    // The root's block for every packet must equal the exact elementwise
    // integer sum of all N contributions.
    const auto sums_match = [&](const auto& player) {
        const node_t count = node_t{1} << n_;
        for (packet_t p = 0; p < packets; ++p) {
            const std::span<const double> block = player.block(tree.root, p);
            if (block.size() != params_.block_elems) {
                return false;
            }
            for (std::size_t e = 0; e < params_.block_elems; ++e) {
                double expected = 0.0;
                for (node_t i = 0; i < count; ++i) {
                    expected += contribution_element(i, p, e);
                }
                if (block[e] != expected) {
                    return false;
                }
            }
        }
        return true;
    };

    Result result;
    result.engine = params_.engine;
    result.threads = threads_;
    result.pool_reused = pool_ != nullptr || threads_ == 1;
    result.sim_makespan = sim_stats.makespan;

    const bool with_oracle =
        params_.engine == Engine::barrier || oracle_due(reduction);
    result.oracle_checked = with_oracle;

    std::optional<Player> ref;
    PlayStats ref_stats;
    bool ok = true;
    if (with_oracle) {
        ref.emplace(plan, params_.channel_capacity);
        ref_stats = ref->play(pool_.get());
        ok = ref_stats.clean() &&
             ref_stats.blocks_delivered == reduction.sends.size() &&
             ref_stats.cycles == sim_stats.makespan;
    }

    if (params_.engine == Engine::barrier) {
        ok = ok && sums_match(*ref);
        copy_play_stats(result, ref_stats);
    } else {
        AsyncPlayer dut(plan);
        const PlayStats stats = dut.play(pool_.get());
        // The combining accumulation order is fixed by the plan's
        // slot-ordering edges, so even the floating-point intermediate
        // states must agree bit for bit with the barrier oracle; the exact
        // integer sums check stays meaningful with the oracle skipped.
        ok = ok && stats.clean() &&
             stats.blocks_delivered == reduction.sends.size() &&
             sums_match(dut);
        if (with_oracle) {
            ok = ok && identical_memory(plan, *ref, dut);
            result.ref_seconds = ref_stats.seconds;
        }
        copy_play_stats(result, stats);
    }
    result.verified = ok;
    if (!ok && params_.verify == Verify::first && with_oracle) {
        oracle_seen_.erase(schedule_fingerprint(reduction));
    }
    return result;
}

} // namespace hcube::rt
