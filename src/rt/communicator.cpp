#include "rt/communicator.hpp"

#include "common/check.hpp"
#include "rt/checksum.hpp"
#include "rt/player.hpp"
#include "sim/cycle.hpp"

#include <algorithm>
#include <thread>

namespace hcube::rt {

namespace {

using sim::packet_t;
using sim::Schedule;

std::uint32_t pick_threads(hc::dim_t n, std::uint32_t requested) {
    const std::uint32_t nodes = std::uint32_t{1} << n;
    if (requested == 0) {
        requested = std::max(2u, std::thread::hardware_concurrency());
    }
    return std::min(requested, nodes);
}

} // namespace

Communicator::Communicator(hc::dim_t n, Params params)
    : n_(n), params_(params), threads_(pick_threads(n, params.threads)) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(params_.block_elems >= 1);
}

Result Communicator::run_move(const Schedule& schedule) {
    // The cycle executor proves the schedule feasible under the port model
    // and provides the makespan + delivery matrix the runtime must match.
    const sim::CycleStats sim_stats =
        sim::execute_schedule(schedule, params_.model);

    const Plan plan = compile_plan(schedule, DataMode::move,
                                   params_.block_elems, threads_);
    Player player(plan, params_.channel_capacity);
    const PlayStats stats = player.play();

    Result result;
    result.rt_cycles = stats.cycles;
    result.sim_makespan = sim_stats.makespan;
    result.blocks_delivered = stats.blocks_delivered;
    result.payload_bytes = stats.payload_bytes;
    result.seconds = stats.seconds;
    result.threads = threads_;

    // Verified = every in-flight checksum passed, every channel behaved,
    // exactly one delivery per scheduled send, the runtime's cycle count
    // matches the cycle model, and every (node, packet) the simulator says
    // is held ends up holding the canonical block.
    bool ok = stats.clean() &&
              stats.blocks_delivered == schedule.sends.size() &&
              stats.cycles == sim_stats.makespan;
    const node_t count = node_t{1} << n_;
    for (node_t i = 0; ok && i < count; ++i) {
        for (packet_t p = 0; p < schedule.packet_count; ++p) {
            const bool held = sim_stats.holds(i, p);
            const std::span<const double> block = player.block(i, p);
            if (!held) {
                ok = block.empty();
                continue;
            }
            if (block.empty() ||
                block_checksum(block) !=
                    canonical_checksum(p, params_.block_elems)) {
                ok = false;
                break;
            }
        }
    }
    result.verified = ok;
    return result;
}

Result Communicator::broadcast(const trees::SpanningTree& tree,
                               routing::BroadcastDiscipline discipline,
                               packet_t packets) {
    HCUBE_ENSURE(tree.n == n_);
    return run_move(routing::make_tree_broadcast(tree, discipline, packets,
                                                 params_.model));
}

Result Communicator::broadcast_msbt(hc::node_t root, packet_t packets) {
    return run_move(
        routing::make_msbt_broadcast(n_, root, packets, params_.model));
}

Result Communicator::scatter(const trees::SpanningTree& tree,
                             routing::ScatterPolicy policy,
                             packet_t packets_per_dest) {
    HCUBE_ENSURE(tree.n == n_);
    return run_move(routing::make_tree_scatter(tree, policy,
                                               packets_per_dest,
                                               params_.model));
}

Result Communicator::gather(const trees::SpanningTree& tree,
                            routing::ScatterPolicy policy,
                            packet_t packets_per_dest) {
    HCUBE_ENSURE(tree.n == n_);
    return run_move(routing::make_tree_gather(tree, policy, packets_per_dest,
                                              params_.model));
}

Result Communicator::allgather() {
    return run_move(routing::make_allgather_schedule(n_));
}

Result Communicator::alltoall(packet_t packets_per_pair) {
    return run_move(routing::make_alltoall_schedule(n_, packets_per_pair));
}

Result Communicator::reduce(const trees::SpanningTree& tree,
                            packet_t packets) {
    HCUBE_ENSURE(tree.n == n_);
    // The forward broadcast provides the feasibility proof and the
    // makespan; time reversal preserves both (every constraint the
    // executor checks is symmetric under reversal).
    const Schedule forward = routing::make_tree_broadcast(
        tree, routing::BroadcastDiscipline::port_oriented, packets,
        params_.model);
    const sim::CycleStats sim_stats =
        sim::execute_schedule(forward, params_.model);
    const Schedule reduction =
        routing::reverse_broadcast_for_reduce(forward, tree.root);

    const Plan plan = compile_plan(reduction, DataMode::combine,
                                   params_.block_elems, threads_);
    Player player(plan, params_.channel_capacity);
    const PlayStats stats = player.play();

    Result result;
    result.rt_cycles = stats.cycles;
    result.sim_makespan = sim_stats.makespan;
    result.blocks_delivered = stats.blocks_delivered;
    result.payload_bytes = stats.payload_bytes;
    result.seconds = stats.seconds;
    result.threads = threads_;

    // The root's block for every packet must equal the exact elementwise
    // integer sum of all N contributions.
    bool ok = stats.clean() &&
              stats.blocks_delivered == reduction.sends.size() &&
              stats.cycles == sim_stats.makespan;
    const node_t count = node_t{1} << n_;
    for (packet_t p = 0; ok && p < packets; ++p) {
        const std::span<const double> block = player.block(tree.root, p);
        if (block.size() != params_.block_elems) {
            ok = false;
            break;
        }
        for (std::size_t e = 0; ok && e < params_.block_elems; ++e) {
            double expected = 0.0;
            for (node_t i = 0; i < count; ++i) {
                expected += contribution_element(i, p, e);
            }
            ok = block[e] == expected;
        }
    }
    result.verified = ok;
    return result;
}

} // namespace hcube::rt
