// Closed-form broadcast complexity (paper Tables 1-4).
//
// Cost model (§2): one packet of up to B elements crosses one link in one
// routing step of duration τ + B·t_c. `M` elements reach every node.
// All table rows are reproduced verbatim; where measured cycle counts differ
// by a small constant (the HP full-duplex off-by-one noted in DESIGN.md)
// the benches print both.
#pragma once

#include "hc/types.hpp"
#include "sim/port_model.hpp"

#include <string_view>

namespace hcube::model {

using hc::dim_t;
using sim::PortModel;

/// Broadcast/scatter algorithm families compared in the paper.
enum class Algorithm { hp, sbt, tcbt, msbt, bst };

[[nodiscard]] constexpr std::string_view to_string(Algorithm a) noexcept {
    switch (a) {
    case Algorithm::hp: return "HP";
    case Algorithm::sbt: return "SBT";
    case Algorithm::tcbt: return "TCBT";
    case Algorithm::msbt: return "MSBT";
    case Algorithm::bst: return "BST";
    }
    return "?";
}

/// Machine communication constants.
struct CommParams {
    double tau; ///< start-up time per packet [s]
    double tc;  ///< per-element transfer time [s]
};

/// Our approximation of the Intel iPSC's constants (see DESIGN.md).
[[nodiscard]] constexpr CommParams ipsc_params() noexcept {
    return {1.7e-3, 2.86e-6};
}

/// Fits (τ, t_c) from two measured single-link transfer times — the
/// calibration a user runs against a real machine before comparing it to
/// the tables. time = τ + size · t_c for two (size, time) pairs with
/// distinct sizes. Throws check_error on degenerate input or a negative
/// fit.
[[nodiscard]] CommParams fit_params(double size1, double time1, double size2,
                                    double time2);

/// Table 1: routing steps until the first packet reaches the farthest node.
[[nodiscard]] std::int64_t propagation_delay(Algorithm algorithm,
                                             PortModel model, dim_t n);

/// Table 2: steady-state routing steps per distinct packet (MSBT all-port
/// returns 1/log N).
[[nodiscard]] double cycles_per_packet(Algorithm algorithm, PortModel model,
                                       dim_t n);

/// Table 3, column T (as a routing-step count; multiply by τ + B t_c for
/// time): steps to broadcast M elements with maximum packet size B.
[[nodiscard]] double broadcast_steps(Algorithm algorithm, PortModel model,
                                     double M, double B, dim_t n);

/// Table 3, column T as wall-clock time.
[[nodiscard]] double broadcast_time(Algorithm algorithm, PortModel model,
                                    double M, double B, dim_t n,
                                    const CommParams& params);

/// Table 3, column B_opt: the packet size minimizing broadcast_time.
[[nodiscard]] double broadcast_bopt(Algorithm algorithm, PortModel model,
                                    double M, dim_t n,
                                    const CommParams& params);

/// Table 3, column T_min: broadcast_time at B_opt, in the paper's closed
/// forms.
[[nodiscard]] double broadcast_tmin(Algorithm algorithm, PortModel model,
                                    double M, dim_t n,
                                    const CommParams& params);

/// Table 4: complexity of `algorithm` relative to the MSBT under the same
/// port model, in the paper's four regimes.
enum class Regime {
    one_packet,          ///< M <= B: a single packet
    many_packets,        ///< M/B >> log N at fixed B
    bopt_startup_bound,  ///< B = B_opt and τ log N >> M t_c
    bopt_transfer_bound, ///< B = B_opt and τ log N << M t_c
};

/// The ratio T(algorithm) / T(MSBT); computed by evaluating the Table 3
/// formulas in the asymptotic regime rather than by quoting the paper's
/// simplified entries (the bench prints both side by side).
[[nodiscard]] double complexity_ratio_vs_msbt(Algorithm algorithm,
                                              PortModel model, Regime regime,
                                              dim_t n);

} // namespace hcube::model
