// Closed-form personalized-communication complexity (paper §4.2, Table 6).
//
// Every node is to receive its own M elements from a single source; Table 6
// lists the completion time at the optimal (large) packet size for each
// tree × port capability. The SBT/BST one-port rows coincide for B <= M;
// the BST wins by ~ (1/2) log N with all-port communication.
#pragma once

#include "model/broadcast_model.hpp"

namespace hcube::model {

/// Table 6: T_min of single-source personalized communication.
/// `algorithm` must be sbt, tcbt or bst; `all_ports` selects between the
/// "1 port" and "log N ports" rows. The TCBT and BST one-port rows are the
/// paper's upper bounds.
[[nodiscard]] double personalized_tmin(Algorithm algorithm, bool all_ports,
                                       double M, dim_t n,
                                       const CommParams& params);

/// §4.2 small-packet regime (B <= M): routing steps of duration τ + B t_c.
///  * one port (SBT or BST — identical):      N·M/B - 1
///  * all ports on the BST:                   (N-1)/log N · M/B
///  * all ports on the SBT:                   N/2 · M/B  (subtree 0 bound)
[[nodiscard]] double personalized_steps_small_packets(Algorithm algorithm,
                                                      bool all_ports,
                                                      double M, double B,
                                                      dim_t n);

} // namespace hcube::model
