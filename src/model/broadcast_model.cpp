#include "model/broadcast_model.hpp"

#include "common/check.hpp"

#include <cmath>

namespace hcube::model {

namespace {

double ceil_div(double a, double b) { return std::ceil(a / b); }

[[noreturn]] void unknown_row() {
    HCUBE_ENSURE_MSG(false, "no such row in the paper's tables");
    __builtin_unreachable();
}

} // namespace

CommParams fit_params(double size1, double time1, double size2,
                      double time2) {
    HCUBE_ENSURE_MSG(size1 != size2, "need two distinct message sizes");
    const double tc = (time2 - time1) / (size2 - size1);
    const double tau = time1 - size1 * tc;
    HCUBE_ENSURE_MSG(tc > 0 && tau >= 0,
                     "measurements imply non-physical parameters");
    return {tau, tc};
}

std::int64_t propagation_delay(Algorithm algorithm, PortModel model, dim_t n) {
    const std::int64_t N = std::int64_t{1} << n;
    switch (algorithm) {
    case Algorithm::hp:
        return N - 1;
    case Algorithm::sbt:
        return n;
    case Algorithm::tcbt:
        return (model == PortModel::all_port) ? n : 2 * n - 2;
    case Algorithm::msbt:
        switch (model) {
        case PortModel::one_port_half_duplex: return 3 * n - 1;
        case PortModel::one_port_full_duplex: return 2 * n;
        case PortModel::all_port: return n + 1;
        }
        unknown_row();
    case Algorithm::bst:
        break;
    }
    unknown_row();
}

double cycles_per_packet(Algorithm algorithm, PortModel model, dim_t n) {
    switch (algorithm) {
    case Algorithm::hp:
        return (model == PortModel::one_port_half_duplex) ? 2.0 : 1.0;
    case Algorithm::sbt:
        return (model == PortModel::all_port) ? 1.0 : static_cast<double>(n);
    case Algorithm::tcbt:
        switch (model) {
        case PortModel::one_port_half_duplex: return 3.0;
        case PortModel::one_port_full_duplex: return 2.0;
        case PortModel::all_port: return 1.0;
        }
        unknown_row();
    case Algorithm::msbt:
        switch (model) {
        case PortModel::one_port_half_duplex: return 2.0;
        case PortModel::one_port_full_duplex: return 1.0;
        case PortModel::all_port: return 1.0 / n;
        }
        unknown_row();
    case Algorithm::bst:
        break;
    }
    unknown_row();
}

double broadcast_steps(Algorithm algorithm, PortModel model, double M,
                       double B, dim_t n) {
    const double N = std::ldexp(1.0, n);
    const double P = ceil_div(M, B);
    switch (algorithm) {
    case Algorithm::hp:
        return (model == PortModel::one_port_half_duplex)
                   ? 2 * P + N - 3
                   : P + N - 3;
    case Algorithm::sbt:
        return (model == PortModel::all_port) ? P + n - 1 : P * n;
    case Algorithm::tcbt:
        switch (model) {
        case PortModel::one_port_half_duplex: return 3 * P + 2 * n - 5;
        case PortModel::one_port_full_duplex: return 2 * (P + n - 2);
        case PortModel::all_port: return P + n - 1;
        }
        unknown_row();
    case Algorithm::msbt:
        switch (model) {
        case PortModel::one_port_half_duplex: return 2 * P + n - 1;
        case PortModel::one_port_full_duplex: return P + n;
        case PortModel::all_port: return ceil_div(M, B * n) + n;
        }
        unknown_row();
    case Algorithm::bst:
        break;
    }
    unknown_row();
}

double broadcast_time(Algorithm algorithm, PortModel model, double M, double B,
                      dim_t n, const CommParams& params) {
    return broadcast_steps(algorithm, model, M, B, n) *
           (params.tau + B * params.tc);
}

double broadcast_bopt(Algorithm algorithm, PortModel model, double M, dim_t n,
                      const CommParams& params) {
    const double N = std::ldexp(1.0, n);
    const double tau = params.tau;
    const double tc = params.tc;
    switch (algorithm) {
    case Algorithm::hp:
        return (model == PortModel::one_port_half_duplex)
                   ? std::sqrt(2 * M * tau / ((N - 3) * tc))
                   : std::sqrt(M * tau / ((N - 3) * tc));
    case Algorithm::sbt:
        return (model == PortModel::all_port)
                   ? std::sqrt(M * tau / ((n - 1) * tc))
                   : M;
    case Algorithm::tcbt:
        switch (model) {
        case PortModel::one_port_half_duplex:
            return std::sqrt(3 * M * tau / ((2 * n - 5) * tc));
        case PortModel::one_port_full_duplex:
            return std::sqrt(M * tau / ((n - 2) * tc));
        case PortModel::all_port:
            return std::sqrt(M * tau / ((n - 1) * tc));
        }
        unknown_row();
    case Algorithm::msbt:
        switch (model) {
        case PortModel::one_port_half_duplex:
            return std::sqrt(2 * M * tau / ((n - 1) * tc));
        case PortModel::one_port_full_duplex:
            return std::sqrt(M * tau / (n * tc));
        case PortModel::all_port:
            return std::sqrt(M * tau / tc) / n;
        }
        unknown_row();
    case Algorithm::bst:
        break;
    }
    unknown_row();
}

double broadcast_tmin(Algorithm algorithm, PortModel model, double M, dim_t n,
                      const CommParams& params) {
    const double N = std::ldexp(1.0, n);
    const double tau = params.tau;
    const double tc = params.tc;
    const auto sq = [](double x) { return x * x; };
    switch (algorithm) {
    case Algorithm::hp:
        return (model == PortModel::one_port_half_duplex)
                   ? sq(std::sqrt(2 * M * tc) + std::sqrt((N - 3) * tau))
                   : sq(std::sqrt(M * tc) + std::sqrt((N - 3) * tau));
    case Algorithm::sbt:
        return (model == PortModel::all_port)
                   ? sq(std::sqrt(M * tc) + std::sqrt(tau * (n - 1)))
                   : n * (M * tc + tau);
    case Algorithm::tcbt:
        switch (model) {
        case PortModel::one_port_half_duplex:
            return sq(std::sqrt(3 * M * tc) + std::sqrt(tau * (2 * n - 5)));
        case PortModel::one_port_full_duplex:
            return 2 * sq(std::sqrt(M * tc) + std::sqrt(tau * (n - 2)));
        case PortModel::all_port:
            return sq(std::sqrt(M * tc) + std::sqrt(tau * (n - 1)));
        }
        unknown_row();
    case Algorithm::msbt:
        switch (model) {
        case PortModel::one_port_half_duplex:
            return sq(std::sqrt(2 * M * tc) + std::sqrt(tau * (n - 1)));
        case PortModel::one_port_full_duplex:
            return sq(std::sqrt(M * tc) + std::sqrt(tau * n));
        case PortModel::all_port:
            return sq(std::sqrt(M * tc / n) + std::sqrt(tau * n));
        }
        unknown_row();
    case Algorithm::bst:
        break;
    }
    unknown_row();
}

double complexity_ratio_vs_msbt(Algorithm algorithm, PortModel model,
                                Regime regime, dim_t n) {
    switch (regime) {
    case Regime::one_packet: {
        // M == B: a single packet; T is the propagation delay in steps.
        const double a = broadcast_steps(algorithm, model, 1, 1, n);
        const double b = broadcast_steps(Algorithm::msbt, model, 1, 1, n);
        return a / b;
    }
    case Regime::many_packets: {
        // M/B -> infinity at fixed B: leading coefficients dominate.
        const double big = 1e12;
        const double a = broadcast_steps(algorithm, model, big, 1, n);
        const double b = broadcast_steps(Algorithm::msbt, model, big, 1, n);
        return a / b;
    }
    case Regime::bopt_startup_bound: {
        // τ log N >> M t_c.
        const CommParams params{1.0, 1e-18};
        const double a = broadcast_tmin(algorithm, model, 1, n, params);
        const double b =
            broadcast_tmin(Algorithm::msbt, model, 1, n, params);
        return a / b;
    }
    case Regime::bopt_transfer_bound: {
        // τ log²N << M t_c (the footnote's stronger condition covers the
        // all-port row too).
        const CommParams params{1e-18, 1.0};
        const double a = broadcast_tmin(algorithm, model, 1, n, params);
        const double b =
            broadcast_tmin(Algorithm::msbt, model, 1, n, params);
        return a / b;
    }
    }
    unknown_row();
}

} // namespace hcube::model
