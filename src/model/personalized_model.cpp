#include "model/personalized_model.hpp"

#include "common/check.hpp"

#include <cmath>

namespace hcube::model {

double personalized_tmin(Algorithm algorithm, bool all_ports, double M,
                         dim_t n, const CommParams& params) {
    const double N = std::ldexp(1.0, n);
    const double tau = params.tau;
    const double tc = params.tc;
    switch (algorithm) {
    case Algorithm::sbt:
        return all_ports ? (N / 2) * M * tc + n * tau
                         : (N - 1) * M * tc + n * tau;
    case Algorithm::tcbt:
        return all_ports ? (0.75 * N - 1) * M * tc + n * tau
                         : (2 * N - 2 * n - 1) * M * tc + (2 * n - 2) * tau;
    case Algorithm::bst:
        return all_ports
                   ? (N - 1) / n * M * tc + n * tau
                   : N * (1 + 2 * std::log2(static_cast<double>(n)) / n) *
                             M * tc +
                         (2 * n - 2) * tau;
    case Algorithm::hp:
    case Algorithm::msbt:
        break;
    }
    HCUBE_ENSURE_MSG(false, "no such row in Table 6");
    __builtin_unreachable();
}

double personalized_steps_small_packets(Algorithm algorithm, bool all_ports,
                                        double M, double B, dim_t n) {
    HCUBE_ENSURE_MSG(B <= M, "small-packet regime requires B <= M");
    const double N = std::ldexp(1.0, n);
    if (!all_ports) {
        // SBT and BST coincide: the root must push N·M/B packets.
        return N * M / B - 1;
    }
    switch (algorithm) {
    case Algorithm::bst:
        return (N - 1) / n * (M / B);
    case Algorithm::sbt:
        return (N / 2) * (M / B);
    default:
        break;
    }
    HCUBE_ENSURE_MSG(false, "no such row in §4.2");
    __builtin_unreachable();
}

} // namespace hcube::model
