#include "mbr/tree.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

#include <algorithm>
#include <deque>

namespace hcube::mbr {

trees::SpanningTree build_member_tree(const View& view, node_t root,
                                      std::span<const trees::Link> avoid) {
    const dim_t n = view.dimension();
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE_MSG(view.contains(root), "member tree root is not live");

    const node_t count = node_t{1} << n;
    const auto avoided = [&avoid](node_t a, node_t b) {
        const trees::Link link = trees::make_link(a, b);
        return std::ranges::find(avoid, link) != avoid.end();
    };

    // One BFS sweep computes every node's children before materialization:
    // probing dimensions in ascending order makes the discovery wavefront
    // deterministic, and on a full view reproduces the SBT exactly (a node's
    // first live discoverer is the neighbor missing the highest set bit of
    // its relative address, which is the SBT parent function).
    std::vector<std::vector<node_t>> kids(count);
    std::vector<char> seen(count, 0);
    seen[root] = 1;
    node_t reached = 1;
    std::deque<node_t> queue{root};
    while (!queue.empty()) {
        const node_t i = queue.front();
        queue.pop_front();
        for (dim_t d = 0; d < n; ++d) {
            const node_t c = hc::flip_bit(i, d);
            if (seen[c] || !view.contains(c) || avoided(i, c)) {
                continue;
            }
            seen[c] = 1;
            ++reached;
            kids[i].push_back(c);
            queue.push_back(c);
        }
    }
    HCUBE_ENSURE_MSG(reached == view.count(),
                     avoid.empty()
                         ? "member set is disconnected — some live member "
                           "has no path to the root through live members"
                         : "member set is disconnected once the avoided "
                           "links are removed");

    return trees::materialize_partial_tree(
        n, root, view.count(),
        [&kids](node_t i) { return kids[i]; });
}

void validate_member_tree(const View& view, const trees::SpanningTree& tree) {
    HCUBE_ENSURE(tree.n == view.dimension());
    const node_t count = tree.node_count();
    HCUBE_ENSURE(tree.parent.size() == count);
    HCUBE_ENSURE(tree.children.size() == count);
    HCUBE_ENSURE_MSG(view.contains(tree.root), "tree root is not live");
    HCUBE_ENSURE(tree.parent[tree.root] == trees::SpanningTree::kNoParent);
    HCUBE_ENSURE(tree.level[tree.root] == 0);

    node_t with_parent = 0;
    for (node_t i = 0; i < count; ++i) {
        if (!view.contains(i)) {
            HCUBE_ENSURE_MSG(tree.parent[i] ==
                                     trees::SpanningTree::kNoParent &&
                                 tree.children[i].empty() &&
                                 tree.level[i] == -1,
                             "absent address participates in the tree");
            continue;
        }
        if (i == tree.root) {
            continue;
        }
        const node_t p = tree.parent[i];
        HCUBE_ENSURE_MSG(p < count, "live member without a parent");
        HCUBE_ENSURE_MSG(view.contains(p), "tree edge through a dead node");
        HCUBE_ENSURE_MSG(hc::hamming(p, i) == 1, "tree edge not a cube edge");
        HCUBE_ENSURE_MSG(std::ranges::count(tree.children[p], i) == 1,
                         "parent does not list member exactly once as child");
        HCUBE_ENSURE_MSG(tree.level[i] == tree.level[p] + 1,
                         "level not parent level + 1");
        ++with_parent;
    }
    HCUBE_ENSURE_MSG(with_parent == view.count() - 1,
                     "tree does not span exactly the member set");

    std::size_t total_children = 0;
    for (node_t i = 0; i < count; ++i) {
        for (const node_t c : tree.children[i]) {
            HCUBE_ENSURE_MSG(tree.parent[c] == i,
                             "child does not point back to parent");
        }
        total_children += tree.children[i].size();
    }
    HCUBE_ENSURE(total_children == view.count() - 1);
}

} // namespace hcube::mbr
