#include "mbr/view.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

#include <algorithm>
#include <bit>

namespace hcube::mbr {

namespace {

constexpr std::size_t word_of(node_t v) noexcept { return v >> 6; }
constexpr std::uint64_t bit_of(node_t v) noexcept {
    return std::uint64_t{1} << (v & 63u);
}

/// Number of 64-bit words backing a 2^n-bit member set.
constexpr std::size_t word_count(dim_t n) noexcept {
    return (std::size_t{1} << n) < 64 ? 1 : (std::size_t{1} << n) / 64;
}

} // namespace

View::View(dim_t n) : n_(n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    const node_t count = node_t{1} << n;
    words_.assign(word_count(n), ~std::uint64_t{0});
    if (count < 64) {
        words_[0] = (std::uint64_t{1} << count) - 1;
    }
    count_ = count;
    subcube_epoch_.assign(static_cast<std::size_t>(n) + 1, 0);
}

View View::of(dim_t n, std::span<const node_t> members) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    View view;
    view.n_ = n;
    view.words_.assign(word_count(n), 0);
    view.subcube_epoch_.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const node_t v : members) {
        HCUBE_ENSURE_MSG(v < (node_t{1} << n),
                         "member address outside the cube");
        HCUBE_ENSURE_MSG((view.words_[word_of(v)] & bit_of(v)) == 0,
                         "duplicate member address");
        view.words_[word_of(v)] |= bit_of(v);
        ++view.count_;
    }
    return view;
}

std::uint64_t View::epoch_of_subcube(dim_t m) const {
    HCUBE_ENSURE(m >= 0 && m <= n_);
    return subcube_epoch_[static_cast<std::size_t>(m)];
}

bool View::contains(node_t v) const noexcept {
    if (n_ == 0 || v >= (node_t{1} << n_)) {
        return false;
    }
    return (words_[word_of(v)] & bit_of(v)) != 0;
}

node_t View::subcube_count(dim_t m) const {
    HCUBE_ENSURE(m >= 0 && m <= n_);
    const node_t limit = node_t{1} << m;
    if (limit >= 64) {
        node_t total = 0;
        for (std::size_t w = 0; w < word_of(limit); ++w) {
            total += static_cast<node_t>(std::popcount(words_[w]));
        }
        return total;
    }
    return static_cast<node_t>(
        std::popcount(words_[0] & ((std::uint64_t{1} << limit) - 1)));
}

std::vector<node_t> View::members() const {
    std::vector<node_t> out;
    out.reserve(count_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
        std::uint64_t bits = words_[w];
        while (bits != 0) {
            const auto b = static_cast<std::size_t>(std::countr_zero(bits));
            out.push_back(static_cast<node_t>(w * 64 + b));
            bits &= bits - 1;
        }
    }
    return out;
}

node_t View::member_rank(node_t v) const {
    HCUBE_ENSURE_MSG(contains(v), "rank of a non-member");
    node_t rank = 0;
    for (std::size_t w = 0; w < word_of(v); ++w) {
        rank += static_cast<node_t>(std::popcount(words_[w]));
    }
    rank += static_cast<node_t>(
        std::popcount(words_[word_of(v)] & (bit_of(v) - 1)));
    return rank;
}

void View::bump(node_t touched) {
    ++epoch_;
    // Sub-cube [0, 2^m) saw this transition iff it contains the address:
    // every m with 2^m > touched.
    for (dim_t m = 0; m <= n_; ++m) {
        if ((node_t{1} << m) > touched) {
            subcube_epoch_[static_cast<std::size_t>(m)] = epoch_;
        }
    }
}

void View::join(node_t v) {
    HCUBE_ENSURE(n_ >= 1);
    HCUBE_ENSURE_MSG(v < (node_t{1} << n_), "join outside the cube");
    HCUBE_ENSURE_MSG(!contains(v), "join of an already-live member");
    words_[word_of(v)] |= bit_of(v);
    ++count_;
    bump(v);
}

void View::leave(node_t v) {
    HCUBE_ENSURE(n_ >= 1);
    HCUBE_ENSURE_MSG(contains(v), "leave of a non-member");
    HCUBE_ENSURE_MSG(count_ > 1, "leave would empty the view");
    words_[word_of(v)] &= ~bit_of(v);
    --count_;
    bump(v);
}

void View::apply(const Delta& delta) {
    HCUBE_ENSURE(n_ >= 1);
    // Validate the whole batch against the pre-transition set before
    // touching anything, so a rejected delta leaves the view unchanged.
    for (const node_t v : delta.joins) {
        HCUBE_ENSURE_MSG(v < (node_t{1} << n_), "join outside the cube");
        HCUBE_ENSURE_MSG(!contains(v), "join of an already-live member");
        HCUBE_ENSURE_MSG(std::ranges::count(delta.joins, v) == 1,
                         "duplicate join in delta");
    }
    for (const node_t v : delta.leaves) {
        HCUBE_ENSURE_MSG(contains(v), "leave of a non-member");
        HCUBE_ENSURE_MSG(std::ranges::count(delta.leaves, v) == 1,
                         "duplicate leave in delta");
    }
    HCUBE_ENSURE_MSG(count_ + delta.joins.size() > delta.leaves.size(),
                     "delta would empty the view");
    if (delta.joins.empty() && delta.leaves.empty()) {
        return; // an empty delta is not a transition
    }
    node_t lowest = ~node_t{0};
    for (const node_t v : delta.joins) {
        words_[word_of(v)] |= bit_of(v);
        ++count_;
        lowest = std::min(lowest, v);
    }
    for (const node_t v : delta.leaves) {
        words_[word_of(v)] &= ~bit_of(v);
        --count_;
        lowest = std::min(lowest, v);
    }
    bump(lowest);
}

View View::restricted(dim_t m) const {
    HCUBE_ENSURE(m >= 1 && m <= n_);
    View out;
    out.n_ = m;
    out.words_.assign(word_count(m), 0);
    const node_t limit = node_t{1} << m;
    if (limit < 64) {
        out.words_[0] = words_[0] & ((std::uint64_t{1} << limit) - 1);
    } else {
        std::copy(words_.begin(),
                  words_.begin() + static_cast<std::ptrdiff_t>(word_of(limit)),
                  out.words_.begin());
    }
    out.count_ = subcube_count(m);
    out.subcube_epoch_.assign(subcube_epoch_.begin(),
                              subcube_epoch_.begin() + m + 1);
    out.epoch_ = out.subcube_epoch_.back();
    return out;
}

std::uint64_t View::fingerprint() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t x) {
        h ^= x;
        h *= 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(n_));
    for (const std::uint64_t w : words_) {
        mix(w);
    }
    return h;
}

NeighborTable NeighborTable::build(const View& view, node_t home,
                                   std::size_t k) {
    HCUBE_ENSURE(home < (node_t{1} << view.dimension()));
    NeighborTable table;
    table.home = home;
    table.buckets.assign(static_cast<std::size_t>(view.dimension()), {});
    for (const node_t v : view.members()) {
        if (v == home) {
            continue;
        }
        const dim_t j = hc::highest_one_bit(v ^ home);
        table.buckets[static_cast<std::size_t>(j)].push_back(v);
    }
    for (auto& bucket : table.buckets) {
        std::ranges::sort(bucket, [home](node_t a, node_t b) {
            return (a ^ home) < (b ^ home);
        });
        if (k != 0 && bucket.size() > k) {
            bucket.resize(k);
        }
    }
    return table;
}

std::optional<node_t> NeighborTable::contact(dim_t j) const {
    HCUBE_ENSURE(j >= 0 &&
                 static_cast<std::size_t>(j) < buckets.size());
    const auto& bucket = buckets[static_cast<std::size_t>(j)];
    if (bucket.empty()) {
        return std::nullopt;
    }
    return bucket.front();
}

std::vector<node_t> NeighborTable::closest(std::size_t k) const {
    // Buckets are internally XOR-sorted, and every member of bucket i is
    // closer than every member of bucket j > i (the XOR metric's top bit
    // dominates) — concatenation in bucket order is globally sorted.
    std::vector<node_t> out;
    for (const auto& bucket : buckets) {
        for (const node_t v : bucket) {
            if (out.size() == k) {
                return out;
            }
            out.push_back(v);
        }
    }
    return out;
}

std::vector<node_t> closest_members(const View& view, node_t target,
                                    std::size_t k) {
    std::vector<node_t> out;
    if (k == 0) {
        return out;
    }
    if (view.contains(target)) {
        out.push_back(target);
        --k;
    }
    const std::vector<node_t> rest =
        NeighborTable::build(view, target).closest(k);
    out.insert(out.end(), rest.begin(), rest.end());
    return out;
}

node_t nearest_member(const View& view, node_t target) {
    HCUBE_ENSURE_MSG(view.count() >= 1, "nearest member of an empty view");
    const std::vector<node_t> found = closest_members(view, target, 1);
    return found.front();
}

} // namespace hcube::mbr
