// Incomplete-cube spanning trees: the SBT/BFS builders generalized to span
// only the live members of a View.
//
// The construction is breadth-first from the root over the live-member
// induced subgraph, probing dimensions in ascending order. On a *full* view
// this reproduces the spanning binomial tree of §3.1 exactly — children
// order included: the first live parent a node is discovered from is the
// one missing the highest set bit of its relative address, which is the
// SBT's parent function, and a node attaches its children in ascending
// dimension of the new bit, which is the SBT's send order. On a partial
// view the same sweep routes around the holes: dead/absent addresses are
// skipped, live members relay for each other, and the builder throws if
// some member cannot be reached through live members at all (the member
// graph is disconnected — no tree routes that).
#pragma once

#include "mbr/view.hpp"
#include "trees/fault.hpp" // trees::Link
#include "trees/spanning_tree.hpp"

#include <span>

namespace hcube::mbr {

/// Tree spanning exactly the live members of `view`, rooted at live member
/// `root`, never routing through an absent address or across a link in
/// `avoid`. Absent addresses stay isolated in the returned structure
/// (parent kNoParent, level -1, no children). Throws check_error when root
/// is not live or some member is unreachable over live members minus the
/// avoided links.
[[nodiscard]] trees::SpanningTree
build_member_tree(const View& view, node_t root,
                  std::span<const trees::Link> avoid = {});

/// Structural soundness of a member tree against its view: the tree spans
/// exactly the live members, every edge is a cube edge between two live
/// members, absent addresses are isolated, and levels are consistent.
/// Throws check_error on the first violation.
void validate_member_tree(const View& view, const trees::SpanningTree& tree);

} // namespace hcube::mbr
