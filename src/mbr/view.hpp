// mbr::View — versioned membership of an n-cube: which of the 2^n node
// addresses currently host a live rank.
//
// Every tree family in the repo was built for a full, static cube. The view
// opens the elasticity half of the story: any member count N <= 2^n, and
// join/leave at runtime as *deterministic epoch-stamped transitions*. The
// member set is one bitset (a word per 64 addresses); each transition bumps
// a monotone epoch so downstream consumers (the svc plan cache, the ft
// replanner) can name "the member set as of this operation" with a single
// integer instead of hashing the set.
//
// Epochs are tracked *per sub-cube prefix*: epoch_of_subcube(m) is the
// epoch of the last transition that touched an address below 2^m. A service
// session serves mixed-dimension signatures out of one cache; keying each
// signature on its own sub-cube's epoch means a join at address 9 leaves
// every n=3 plan resident (addresses 0..7 unchanged) while invalidating
// exactly the n>=4 ones — the eviction surgical, not a cache flush.
//
// The per-dimension neighbor structure (NeighborTable) is the k-bucket
// routing-table idiom from DHT practice: bucket j of a home node holds the
// live members whose relative address first differs at bit j — precisely
// the membership of the SBT subtree through port j, which is what the
// incomplete-cube tree builders consume.
#pragma once

#include "hc/types.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace hcube::mbr {

using hc::dim_t;
using hc::node_t;

/// A batch membership transition, applied atomically under one epoch bump.
struct Delta {
    std::vector<node_t> joins;  ///< addresses that come alive
    std::vector<node_t> leaves; ///< addresses that go away
};

class View {
public:
    /// An empty (member-less) view — useful only as a target for apply().
    View() = default;

    /// The full n-cube: every address live, epoch 0 (the static world every
    /// pre-membership consumer assumes).
    explicit View(dim_t n);

    /// A view with exactly `members` live (each address < 2^n, duplicates
    /// rejected), epoch 0.
    [[nodiscard]] static View of(dim_t n, std::span<const node_t> members);

    [[nodiscard]] dim_t dimension() const noexcept { return n_; }

    /// Epoch of the last transition (0 = never transitioned).
    [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

    /// Epoch of the last transition that touched an address below 2^m
    /// (0 <= m <= n). The cache key for an m-dimensional signature.
    [[nodiscard]] std::uint64_t epoch_of_subcube(dim_t m) const;

    [[nodiscard]] bool contains(node_t v) const noexcept;
    [[nodiscard]] node_t count() const noexcept { return count_; }
    [[nodiscard]] node_t subcube_count(dim_t m) const;
    [[nodiscard]] bool full() const noexcept {
        return count_ == (node_t{1} << n_);
    }
    [[nodiscard]] bool subcube_full(dim_t m) const {
        return subcube_count(m) == (node_t{1} << m);
    }

    /// Live addresses, ascending.
    [[nodiscard]] std::vector<node_t> members() const;

    /// Rank of live address `v` among the live set in ascending address
    /// order (0-based). Precondition: contains(v). This is the dense index
    /// the incomplete-cube scatter numbers its packets by.
    [[nodiscard]] node_t member_rank(node_t v) const;

    /// Join / leave one address. Transitions are strict: joining a live
    /// address or leaving a dead one throws check_error (a membership
    /// protocol that silently no-ops cannot be replayed deterministically).
    /// Each successful transition bumps the epoch by one.
    void join(node_t v);
    void leave(node_t v);

    /// Applies `delta` atomically: validates every join and leave first
    /// (throwing without any mutation on violation), then applies all of
    /// them under a single epoch bump.
    void apply(const Delta& delta);

    /// The view of the sub-cube [0, 2^m): members below 2^m, with the
    /// sub-cube epoch prefix preserved — restricted(m).epoch() equals
    /// epoch_of_subcube(m), so restriction commutes with epoch keying.
    [[nodiscard]] View restricted(dim_t m) const;

    /// FNV-1a over the dimension and the member words — a set identity
    /// independent of the transition history that produced it.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;

    friend bool operator==(const View&, const View&) = default;

private:
    void bump(node_t touched);

    dim_t n_ = 0;
    node_t count_ = 0;
    std::uint64_t epoch_ = 0;
    std::vector<std::uint64_t> words_; ///< member bitset, bit v of word v/64
    /// subcube_epoch_[m] = epoch of the last transition below 2^m.
    std::vector<std::uint64_t> subcube_epoch_;
};

/// Per-dimension live-contact buckets from the vantage of `home` — the
/// k-bucket routing table of DHT practice projected onto the cube: bucket j
/// holds the live members whose relative address to home has its highest
/// set bit at j (the far half of the cube across dimension j, halved again
/// per lower bucket). Bucket j is exactly the member population of the SBT
/// subtree through port j when home is the root.
struct NeighborTable {
    node_t home = 0;
    /// buckets[j], ascending XOR distance from home within each bucket.
    /// Bucket sizes are capped at `k` when built with k != 0.
    std::vector<std::vector<node_t>> buckets;

    /// Builds the table from `view` (home need not be live). k == 0 keeps
    /// every live contact; k > 0 keeps the k XOR-closest per bucket.
    [[nodiscard]] static NeighborTable build(const View& view, node_t home,
                                             std::size_t k = 0);

    /// The XOR-closest live contact across dimension j (the first entry of
    /// bucket j), if the bucket is non-empty.
    [[nodiscard]] std::optional<node_t> contact(dim_t j) const;

    /// Live contacts in ascending XOR distance from home, nearest first.
    [[nodiscard]] std::vector<node_t> closest(std::size_t k) const;
};

/// The `k` live members XOR-closest to `target`, nearest first (fewer if
/// the view holds fewer members). The DHT find-node primitive over the
/// member set.
[[nodiscard]] std::vector<node_t>
closest_members(const View& view, node_t target, std::size_t k);

/// The live member XOR-closest to `target` (`target` itself when live).
/// Throws check_error on an empty view.
[[nodiscard]] node_t nearest_member(const View& view, node_t target);

} // namespace hcube::mbr
