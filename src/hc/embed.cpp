#include "hc/embed.hpp"

#include "common/check.hpp"
#include "hc/gray.hpp"

namespace hcube::hc {

std::vector<node_t> embed_ring(dim_t n) {
    // The BRGC path is a Hamiltonian cycle: codewords 0 and 2^n - 1 differ
    // in exactly one bit, closing the ring.
    return gray_path(n, 0);
}

node_t TorusEmbedding::node_at(node_t r, node_t c) const {
    HCUBE_ENSURE(r < rows() && c < cols());
    return (gray_encode(r) << col_dims) | gray_encode(c);
}

std::pair<node_t, node_t> TorusEmbedding::coord_of(node_t node) const {
    const node_t col_mask = (node_t{1} << col_dims) - 1;
    return {gray_decode(node >> col_dims), gray_decode(node & col_mask)};
}

TorusEmbedding embed_torus(dim_t row_dims, dim_t col_dims) {
    HCUBE_ENSURE(row_dims >= 1 && col_dims >= 1);
    HCUBE_ENSURE(row_dims + col_dims <= kMaxDimension);
    return {row_dims, col_dims};
}

} // namespace hcube::hc
