// Dilation-1 embeddings of rings and tori into the Boolean cube via
// binary-reflected Gray codes.
//
// The paper's Hamiltonian-path machinery (§3.4) is the open form of the
// classic result that a 2^n-node ring embeds in Q_n with dilation 1; the
// product construction extends it to 2^a x 2^b tori (each coordinate gets
// its own Gray-coded dimension group). These embeddings are what make the
// cube emulate the grid-structured algorithms (matrix multiply, tridiagonal
// solvers) the paper's introduction motivates.
#pragma once

#include "hc/types.hpp"

#include <vector>

namespace hcube::hc {

/// Ring positions 0..2^n-1 mapped to cube nodes; consecutive positions (and
/// the wrap-around pair) are cube neighbors.
[[nodiscard]] std::vector<node_t> embed_ring(dim_t n);

/// A 2^row_dims x 2^col_dims torus embedded in the (row_dims + col_dims)-
/// cube with dilation 1 in all four directions including wrap-arounds.
struct TorusEmbedding {
    dim_t row_dims = 0;
    dim_t col_dims = 0;

    /// Cube node hosting torus coordinate (r, c).
    [[nodiscard]] node_t node_at(node_t r, node_t c) const;

    /// Inverse: torus coordinate of a cube node.
    [[nodiscard]] std::pair<node_t, node_t> coord_of(node_t node) const;

    [[nodiscard]] node_t rows() const noexcept {
        return node_t{1} << row_dims;
    }
    [[nodiscard]] node_t cols() const noexcept {
        return node_t{1} << col_dims;
    }
};

/// Builds the torus embedding (validates the dimension split).
[[nodiscard]] TorusEmbedding embed_torus(dim_t row_dims, dim_t col_dims);

} // namespace hcube::hc
