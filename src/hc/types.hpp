// Core scalar types for Boolean n-cube addressing.
//
// Node addresses are n-bit binary numbers (paper §2): bit j of the address is
// "bit j", ports are numbered 0..n-1, and flipping bit j of a node's address
// yields the neighbor reached through port j.
#pragma once

#include <cstdint>

namespace hcube::hc {

/// A node address in a Boolean n-cube. Only the low `n` bits are meaningful.
using node_t = std::uint32_t;

/// A dimension / port / bit index, 0-based. -1 is used by the paper's
/// conventions as the "no bit" sentinel (k = -1 when the relative address is
/// zero), so the type is signed.
using dim_t = int;

/// Maximum supported cube dimension. 26 keeps N = 2^n and per-node tables
/// comfortably in memory for exhaustive structural checks.
inline constexpr dim_t kMaxDimension = 26;

} // namespace hcube::hc
