// Bit-level helpers on n-bit node addresses (paper §2 notation).
//
// |i| is the number of one bits; |i ⊕ j| the Hamming distance. "Leading
// zeroes" of a relative address c are the zero bits above the highest-order
// one bit of c — complementing them yields the SBT children.
#pragma once

#include "hc/types.hpp"

#include <bit>
#include <cassert>

namespace hcube::hc {

/// Number of one bits in `x` — the paper's |x|.
[[nodiscard]] constexpr int weight(node_t x) noexcept {
    return std::popcount(x);
}

/// Hamming distance between node addresses `a` and `b`.
[[nodiscard]] constexpr int hamming(node_t a, node_t b) noexcept {
    return std::popcount(a ^ b);
}

/// True if bit `j` of `x` is one.
[[nodiscard]] constexpr bool test_bit(node_t x, dim_t j) noexcept {
    return ((x >> j) & node_t{1}) != 0;
}

/// `x` with bit `j` complemented — the neighbor of `x` across port `j`.
[[nodiscard]] constexpr node_t flip_bit(node_t x, dim_t j) noexcept {
    return x ^ (node_t{1} << j);
}

/// Index of the highest-order one bit of `x`, or -1 if `x == 0`.
/// This is the paper's `k` for the SBT (c_k = 1, c_m = 0 for all m > k).
[[nodiscard]] constexpr dim_t highest_one_bit(node_t x) noexcept {
    return x == 0 ? -1 : static_cast<dim_t>(std::bit_width(x)) - 1;
}

/// Index of the lowest-order one bit of `x`, or -1 if `x == 0`.
[[nodiscard]] constexpr dim_t lowest_one_bit(node_t x) noexcept {
    return x == 0 ? -1 : std::countr_zero(x);
}

/// Mask of the low `n` bits. Precondition: 0 <= n <= kMaxDimension.
[[nodiscard]] constexpr node_t low_mask(dim_t n) noexcept {
    return (node_t{1} << n) - node_t{1};
}

/// First one bit of `x` encountered scanning cyclically *rightwards*
/// (towards lower indices, wrapping n-1 after 0) starting at position
/// `j - 1`. Returns `j` itself when bit `j` is the only candidate left
/// (i.e. the scan wraps all the way around), and -1 when `x == 0`.
///
/// This is the paper's `k` for the MSBT / BST: "the first bit to the right
/// of bit j, cyclically, which is equal to one".
[[nodiscard]] constexpr dim_t first_one_right_cyclic(node_t x, dim_t j,
                                                     dim_t n) noexcept {
    if (x == 0) {
        return -1;
    }
    for (dim_t step = 1; step <= n; ++step) {
        const dim_t pos = static_cast<dim_t>((j - step + 2 * n) % n);
        if (test_bit(x, pos)) {
            return pos;
        }
    }
    return -1; // unreachable for x != 0
}

} // namespace hcube::hc
