#include "hc/necklace.hpp"

#include "common/check.hpp"
#include "hc/rotate.hpp"

namespace hcube::hc {

namespace {

/// Euler's totient of d (d is at most kMaxDimension, trial division is fine).
std::uint64_t totient(std::uint64_t d) {
    std::uint64_t result = d;
    for (std::uint64_t p = 2; p * p <= d; ++p) {
        if (d % p == 0) {
            while (d % p == 0) {
                d /= p;
            }
            result -= result / p;
        }
    }
    if (d > 1) {
        result -= result / d;
    }
    return result;
}

/// Möbius function of d.
int moebius(std::uint64_t d) {
    int factors = 0;
    for (std::uint64_t p = 2; p * p <= d; ++p) {
        if (d % p == 0) {
            d /= p;
            if (d % p == 0) {
                return 0; // squared prime factor
            }
            ++factors;
        }
    }
    if (d > 1) {
        ++factors;
    }
    return (factors % 2 == 0) ? 1 : -1;
}

/// Number of aperiodic necklaces (Lyndon words) of length n over {0,1}:
///   (1/n) * sum over d | n of mu(d) * 2^(n/d).
std::uint64_t lyndon_count(dim_t n) {
    std::int64_t sum = 0;
    for (dim_t d = 1; d <= n; ++d) {
        if (n % d != 0) {
            continue;
        }
        sum += moebius(static_cast<std::uint64_t>(d)) *
               static_cast<std::int64_t>(std::uint64_t{1} << (n / d));
    }
    HCUBE_ENSURE(sum >= 0 && sum % n == 0);
    return static_cast<std::uint64_t>(sum) / static_cast<std::uint64_t>(n);
}

} // namespace

node_t necklace_canonical(node_t x, dim_t n) noexcept {
    node_t best = x;
    node_t cur = x;
    for (dim_t j = 1; j < n; ++j) {
        cur = rotate_right(cur, n);
        if (cur < best) {
            best = cur;
        }
    }
    return best;
}

dim_t base(node_t x, dim_t n) noexcept {
    node_t best = x;
    dim_t best_j = 0;
    node_t cur = x;
    for (dim_t j = 1; j < n; ++j) {
        cur = rotate_right(cur, n);
        if (cur < best) {
            best = cur;
            best_j = j;
        }
    }
    return best_j;
}

std::vector<dim_t> base_set(node_t x, dim_t n) {
    const node_t canon = necklace_canonical(x, n);
    std::vector<dim_t> set;
    node_t cur = x;
    for (dim_t j = 0; j < n; ++j) {
        if (cur == canon) {
            set.push_back(j);
        }
        cur = rotate_right(cur, n);
    }
    return set;
}

std::uint64_t necklace_count(dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= kMaxDimension);
    std::uint64_t sum = 0;
    for (dim_t d = 1; d <= n; ++d) {
        if (n % d != 0) {
            continue;
        }
        sum += totient(static_cast<std::uint64_t>(d)) *
               (std::uint64_t{1} << (n / d));
    }
    return sum / static_cast<std::uint64_t>(n);
}

std::uint64_t cyclic_string_count(dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= kMaxDimension);
    const std::uint64_t total = std::uint64_t{1} << n;
    const std::uint64_t aperiodic =
        static_cast<std::uint64_t>(n) * lyndon_count(n);
    return total - aperiodic;
}

std::uint64_t cyclic_necklace_count(dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= kMaxDimension);
    return necklace_count(n) - lyndon_count(n);
}

std::vector<std::uint64_t> base_census(dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= kMaxDimension);
    std::vector<std::uint64_t> census(static_cast<std::size_t>(n), 0);
    const node_t count = node_t{1} << n;
    for (node_t x = 1; x < count; ++x) {
        ++census[static_cast<std::size_t>(base(x, n))];
    }
    return census;
}

} // namespace hcube::hc
