#include "hc/rotate.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

namespace hcube::hc {

node_t rotate_right(node_t x, dim_t n) noexcept {
    const node_t low = x & node_t{1};
    return (x >> 1) | (low << (n - 1));
}

node_t rotate_right(node_t x, dim_t j, dim_t n) noexcept {
    j %= n;
    if (j == 0) {
        return x;
    }
    const node_t mask = low_mask(n);
    return ((x >> j) | (x << (n - j))) & mask;
}

node_t rotate_left(node_t x, dim_t j, dim_t n) noexcept {
    j %= n;
    return rotate_right(x, n - j, n);
}

dim_t period(node_t x, dim_t n) noexcept {
    // The period divides n, so only divisors need checking, in increasing
    // order; the first match is the least period.
    for (dim_t p = 1; p <= n; ++p) {
        if (n % p != 0) {
            continue;
        }
        if (rotate_right(x, p, n) == x) {
            return p;
        }
    }
    return n; // unreachable: p == n always matches
}

bool is_cyclic(node_t x, dim_t n) noexcept {
    return period(x, n) < n;
}

} // namespace hcube::hc
