// Necklaces (generator sets) and the BST base function (paper §2, §4.1).
//
// Two n-bit numbers are in the same *generator set* (necklace) if one is a
// rotation of the other. The *base* of i is the minimum number of right
// rotations that takes i to the minimum value among all its rotations; the
// BST assigns node i (relative address) to subtree base(i).
//
// Note on the paper's examples: base((110110)) = 1 matches this definition;
// the paper's other example base((011010)) = 3 does not (the definition
// gives 1) and is treated as a typo — this definition is the one that makes
// parent_BST base-preserving and reproduces the paper's Table 5 exactly
// (verified for n = 2..20 in tests and bench_table5_bst).
#pragma once

#include "hc/types.hpp"

#include <cstdint>
#include <vector>

namespace hcube::hc {

/// The minimum value among all n-bit rotations of `x` — the canonical
/// representative of x's necklace.
[[nodiscard]] node_t necklace_canonical(node_t x, dim_t n) noexcept;

/// The paper's base(x): least j >= 0 with R^j(x) == necklace_canonical(x).
[[nodiscard]] dim_t base(node_t x, dim_t n) noexcept;

/// The paper's J_x: all rotation counts j in [0, n) achieving the canonical
/// value, in increasing order. |J_x| = n / period(x).
[[nodiscard]] std::vector<dim_t> base_set(node_t x, dim_t n);

/// Number of distinct necklaces of n-bit strings (Burnside):
///   (1/n) * sum over d | n of phi(d) * 2^(n/d).
[[nodiscard]] std::uint64_t necklace_count(dim_t n);

/// Number of *cyclic* n-bit strings (period < n) — the paper's census
/// quantity A in Lemma 4.1. Computed as 2^n minus n times the number of
/// aperiodic necklaces.
[[nodiscard]] std::uint64_t cyclic_string_count(dim_t n);

/// Number of necklaces consisting of cyclic strings (degenerate necklaces) —
/// the paper's B in Lemma 4.1, shown there to be O(sqrt N).
[[nodiscard]] std::uint64_t cyclic_necklace_count(dim_t n);

/// Size census of the BST subtree assignment: element j is the number of
/// nonzero n-bit addresses with base == j. The sum over j is 2^n - 1.
[[nodiscard]] std::vector<std::uint64_t> base_census(dim_t n);

} // namespace hcube::hc
