#include "hc/gray.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

namespace hcube::hc {

node_t gray_decode(node_t g) noexcept {
    node_t value = 0;
    while (g != 0) {
        value ^= g;
        g >>= 1;
    }
    return value;
}

dim_t gray_transition(node_t i) noexcept {
    return std::countr_zero(i + 1);
}

std::vector<node_t> gray_path(dim_t n, node_t start) {
    HCUBE_ENSURE(n >= 1 && n <= kMaxDimension);
    const node_t count = node_t{1} << n;
    HCUBE_ENSURE(start < count);
    std::vector<node_t> path(count);
    for (node_t i = 0; i < count; ++i) {
        path[i] = start ^ gray_encode(i);
    }
    return path;
}

} // namespace hcube::hc
