// The log N node-disjoint parallel paths between any pair of cube nodes
// (paper §1, citing Saad & Schultz): with Hamming distance d = |a ⊕ b|,
// there are d disjoint paths of length d (correct the differing bits in the
// d cyclic orders) and n - d disjoint paths of length d + 2 (detour through
// one non-differing dimension each).
#pragma once

#include "hc/types.hpp"

#include <vector>

namespace hcube::hc {

/// One path as the sequence of nodes visited, from `a` to `b` inclusive.
using Path = std::vector<node_t>;

/// All n node-disjoint paths from `a` to `b` in an n-cube (a != b).
/// The first |a ^ b| paths have length equal to the Hamming distance; the
/// rest have length Hamming distance + 2. Paths share only the endpoints.
[[nodiscard]] std::vector<Path> disjoint_paths(node_t a, node_t b, dim_t n);

} // namespace hcube::hc
