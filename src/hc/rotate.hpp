// Rotation of n-bit addresses and the period machinery of paper §2.
//
// R is the right-rotation function: R(a_{n-1} ... a_1 a_0) =
// (a_0 a_{n-1} ... a_1), i.e. the low bit wraps to the high position.
// The period P_i of i is the least j > 0 with R^j(i) = i; a number is
// *cyclic* if its period is less than its length n.
#pragma once

#include "hc/types.hpp"

namespace hcube::hc {

/// Right rotation by one step within `n` bits (paper's R).
[[nodiscard]] node_t rotate_right(node_t x, dim_t n) noexcept;

/// Right rotation by `j` steps within `n` bits (paper's R^j). `j` may be any
/// non-negative value; it is reduced modulo n.
[[nodiscard]] node_t rotate_right(node_t x, dim_t j, dim_t n) noexcept;

/// Left rotation by `j` steps within `n` bits — the inverse of R^j.
[[nodiscard]] node_t rotate_left(node_t x, dim_t j, dim_t n) noexcept;

/// The period P_x of `x` as an n-bit string: least j > 0 with R^j(x) = x.
/// Always divides n. period(0, n) == 1.
[[nodiscard]] dim_t period(node_t x, dim_t n) noexcept;

/// True if `x` is cyclic as an n-bit string, i.e. period(x, n) < n.
[[nodiscard]] bool is_cyclic(node_t x, dim_t n) noexcept;

} // namespace hcube::hc
