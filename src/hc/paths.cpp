#include "hc/paths.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

namespace hcube::hc {

std::vector<Path> disjoint_paths(node_t a, node_t b, dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= kMaxDimension);
    HCUBE_ENSURE(a < (node_t{1} << n) && b < (node_t{1} << n));
    HCUBE_ENSURE_MSG(a != b, "disjoint_paths requires distinct endpoints");

    const node_t diff = a ^ b;
    std::vector<dim_t> differing;
    std::vector<dim_t> same;
    for (dim_t j = 0; j < n; ++j) {
        (test_bit(diff, j) ? differing : same).push_back(j);
    }
    const std::size_t d = differing.size();

    std::vector<Path> paths;
    paths.reserve(static_cast<std::size_t>(n));

    // d paths of length d: correct the differing bits in each of the d
    // cyclic shifts of their order. Intermediate nodes of two such paths
    // can never coincide: after t corrections, the corrected subset is a
    // cyclic window of length t, and distinct starting offsets give distinct
    // windows for 0 < t < d.
    for (std::size_t start = 0; start < d; ++start) {
        Path path{a};
        node_t cur = a;
        for (std::size_t t = 0; t < d; ++t) {
            cur = flip_bit(cur, differing[(start + t) % d]);
            path.push_back(cur);
        }
        paths.push_back(std::move(path));
    }

    // n - d paths of length d + 2: leave through an unused dimension f,
    // correct all differing bits in ascending order, and re-flip f at the
    // end. Intermediate nodes carry the f-detour bit, so they are disjoint
    // from the length-d paths and from each other (distinct f).
    for (const dim_t f : same) {
        Path path{a};
        node_t cur = flip_bit(a, f);
        path.push_back(cur);
        for (const dim_t j : differing) {
            cur = flip_bit(cur, j);
            path.push_back(cur);
        }
        cur = flip_bit(cur, f);
        path.push_back(cur);
        paths.push_back(std::move(path));
    }

    return paths;
}

} // namespace hcube::hc
