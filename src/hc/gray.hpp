// Binary-reflected Gray code (BRGC) utilities.
//
// The paper uses the BRGC twice: a Hamiltonian path in the cube is the BRGC
// sequence (the HP broadcast baseline of Tables 1-3), and the SBT scatter's
// descending-address transmission order uses ports "in an order corresponding
// to the transition sequence in a binary-reflected Gray code" (§5.2).
#pragma once

#include "hc/types.hpp"

#include <vector>

namespace hcube::hc {

/// The i-th BRGC codeword: i ^ (i >> 1).
[[nodiscard]] constexpr node_t gray_encode(node_t i) noexcept {
    return i ^ (i >> 1);
}

/// Inverse of gray_encode.
[[nodiscard]] node_t gray_decode(node_t g) noexcept;

/// The BRGC transition sequence entry for step i (0-based): the bit position
/// in which codewords i and i+1 differ. Equals the ruler function
/// (number of trailing ones of i... equivalently countr_zero(i + 1)).
[[nodiscard]] dim_t gray_transition(node_t i) noexcept;

/// The full Hamiltonian path of an n-cube as BRGC codewords, starting at
/// `start`: path[i] = start ^ gray_encode(i). Length 2^n; consecutive
/// entries are cube neighbors.
[[nodiscard]] std::vector<node_t> gray_path(dim_t n, node_t start = 0);

} // namespace hcube::hc
