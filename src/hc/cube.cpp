#include "hc/cube.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

namespace hcube::hc {

Cube::Cube(dim_t n) : n_(n) {
    HCUBE_ENSURE_MSG(n >= 1 && n <= kMaxDimension,
                     "cube dimension out of supported range");
}

node_t Cube::neighbor(node_t i, dim_t j) const {
    HCUBE_ENSURE(contains(i));
    HCUBE_ENSURE(j >= 0 && j < n_);
    return flip_bit(i, j);
}

bool Cube::adjacent(node_t a, node_t b) const noexcept {
    return hamming(a, b) == 1;
}

std::vector<DirectedEdge> Cube::directed_edges() const {
    std::vector<DirectedEdge> edges;
    edges.reserve(static_cast<std::size_t>(node_count()) *
                  static_cast<std::size_t>(n_));
    for (node_t i = 0; i < node_count(); ++i) {
        for (dim_t j = 0; j < n_; ++j) {
            edges.push_back({i, flip_bit(i, j), j});
        }
    }
    return edges;
}

std::uint64_t Cube::nodes_at_distance(dim_t d) const {
    return binomial(n_, d);
}

std::uint64_t binomial(dim_t n, dim_t k) {
    HCUBE_ENSURE(n >= 0);
    if (k < 0 || k > n) {
        return 0;
    }
    if (k > n - k) {
        k = n - k;
    }
    std::uint64_t result = 1;
    for (dim_t i = 1; i <= k; ++i) {
        result = result * static_cast<std::uint64_t>(n - k + i) /
                 static_cast<std::uint64_t>(i);
    }
    return result;
}

} // namespace hcube::hc
