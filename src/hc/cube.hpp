// The Boolean n-cube itself (paper §1-2): N = 2^n nodes, addresses are n-bit
// numbers, adjacent nodes differ in exactly one bit, port j of node i leads
// to i with bit j complemented.
#pragma once

#include "hc/types.hpp"

#include <cstdint>
#include <vector>

namespace hcube::hc {

/// A directed communication edge: `from` sends to `to` through port `dim`
/// (the bit in which the two addresses differ).
struct DirectedEdge {
    node_t from;
    node_t to;
    dim_t dim;

    friend bool operator==(const DirectedEdge&, const DirectedEdge&) = default;
};

/// Immutable description of a Boolean n-cube. Cheap to copy (holds only n).
class Cube {
public:
    /// Constructs an n-cube. Throws check_error unless 1 <= n <= kMaxDimension.
    explicit Cube(dim_t n);

    /// Cube dimension n = log2 N.
    [[nodiscard]] dim_t dimension() const noexcept { return n_; }

    /// Number of nodes N = 2^n.
    [[nodiscard]] node_t node_count() const noexcept { return node_t{1} << n_; }

    /// True if `i` is a valid node address for this cube.
    [[nodiscard]] bool contains(node_t i) const noexcept {
        return i < node_count();
    }

    /// The neighbor of `i` through port `j`.
    [[nodiscard]] node_t neighbor(node_t i, dim_t j) const;

    /// True if `a` and `b` are adjacent (Hamming distance 1).
    [[nodiscard]] bool adjacent(node_t a, node_t b) const noexcept;

    /// All N * n directed edges of the cube.
    [[nodiscard]] std::vector<DirectedEdge> directed_edges() const;

    /// Number of nodes at Hamming distance d from any fixed node: C(n, d).
    [[nodiscard]] std::uint64_t nodes_at_distance(dim_t d) const;

private:
    dim_t n_;
};

/// Binomial coefficient C(n, k) in exact 64-bit arithmetic
/// (valid throughout the supported n <= kMaxDimension range).
[[nodiscard]] std::uint64_t binomial(dim_t n, dim_t k);

} // namespace hcube::hc
