#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

namespace hcube::obs {

namespace {

/// Process-wide thread slot: each recording thread gets a stable small
/// index on first use, so every histogram stripes the same thread onto
/// the same shard without per-histogram bookkeeping.
std::size_t thread_slot() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

void atomic_max(std::atomic<std::uint64_t>& m, std::uint64_t v) noexcept {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (cur < v &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

} // namespace

// ---- Histogram --------------------------------------------------------

void Histogram::record(std::uint64_t v) noexcept {
    Shard& s = shards_[thread_slot() & (kShards - 1)];
    s.counts[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    atomic_max(s.max, v);
}

HistogramSnapshot Histogram::snapshot() const {
    HistogramSnapshot out;
    out.counts.assign(kBuckets, 0);
    for (std::size_t sh = 0; sh < kShards; ++sh) {
        const Shard& s = shards_[sh];
        for (std::size_t b = 0; b < kBuckets; ++b) {
            const std::uint64_t c =
                s.counts[b].load(std::memory_order_relaxed);
            out.counts[b] += c;
            out.count += c;
        }
        out.sum += s.sum.load(std::memory_order_relaxed);
        out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    }
    if (out.count == 0) {
        out.counts.clear();
    }
    return out;
}

void Histogram::reset() noexcept {
    for (std::size_t sh = 0; sh < kShards; ++sh) {
        Shard& s = shards_[sh];
        for (std::size_t b = 0; b < kBuckets; ++b) {
            s.counts[b].store(0, std::memory_order_relaxed);
        }
        s.sum.store(0, std::memory_order_relaxed);
        s.max.store(0, std::memory_order_relaxed);
    }
}

void HistogramSnapshot::merge(const HistogramSnapshot& o) {
    if (o.counts.size() > counts.size()) {
        counts.resize(o.counts.size(), 0);
    }
    for (std::size_t b = 0; b < o.counts.size(); ++b) {
        counts[b] += o.counts[b];
    }
    count += o.count;
    sum += o.sum;
    max = std::max(max, o.max);
}

void HistogramSnapshot::subtract(const HistogramSnapshot& base) {
    for (std::size_t b = 0;
         b < counts.size() && b < base.counts.size(); ++b) {
        counts[b] -= std::min(counts[b], base.counts[b]);
    }
    count -= std::min(count, base.count);
    sum -= std::min(sum, base.sum);
    if (count == 0) {
        counts.clear();
        max = 0;
    }
}

std::uint64_t HistogramSnapshot::percentile(double p) const noexcept {
    if (count == 0 || counts.empty()) {
        return 0;
    }
    p = std::clamp(p, 0.0, 1.0);
    // Nearest-rank: the smallest value with at least ceil(p * count)
    // records at or below it.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(count))));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        cum += counts[b];
        if (cum >= rank) {
            return std::min(Histogram::bucket_upper(b), max);
        }
    }
    return max;
}

// ---- RegistrySnapshot -------------------------------------------------

namespace {

void merge_into(MetricSnapshot& dst, const MetricSnapshot& src) {
    switch (dst.kind) {
    case Kind::counter: dst.counter_value += src.counter_value; break;
    case Kind::gauge: dst.gauge_value += src.gauge_value; break;
    case Kind::histogram: dst.hist.merge(src.hist); break;
    }
}

} // namespace

void RegistrySnapshot::merge(const RegistrySnapshot& o) {
    // Sorted two-pointer union; same name + kind merges in place.
    std::vector<MetricSnapshot> out;
    out.reserve(metrics.size() + o.metrics.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < metrics.size() || j < o.metrics.size()) {
        if (j >= o.metrics.size() ||
            (i < metrics.size() &&
             metrics[i].name < o.metrics[j].name)) {
            out.push_back(std::move(metrics[i++]));
        } else if (i >= metrics.size() ||
                   o.metrics[j].name < metrics[i].name) {
            out.push_back(o.metrics[j++]);
        } else {
            MetricSnapshot m = std::move(metrics[i++]);
            if (m.kind == o.metrics[j].kind) {
                merge_into(m, o.metrics[j]);
            }
            ++j;
            out.push_back(std::move(m));
        }
    }
    metrics = std::move(out);
}

void RegistrySnapshot::subtract(const RegistrySnapshot& base) {
    for (MetricSnapshot& m : metrics) {
        const MetricSnapshot* b = base.find(m.name);
        if (b == nullptr || b->kind != m.kind) {
            continue;
        }
        switch (m.kind) {
        case Kind::counter:
            m.counter_value -=
                std::min(m.counter_value, b->counter_value);
            break;
        case Kind::gauge: m.gauge_value -= b->gauge_value; break;
        case Kind::histogram: m.hist.subtract(b->hist); break;
        }
    }
}

const MetricSnapshot*
RegistrySnapshot::find(std::string_view name) const {
    const auto it = std::lower_bound(
        metrics.begin(), metrics.end(), name,
        [](const MetricSnapshot& m, std::string_view n) {
            return m.name < n;
        });
    return it != metrics.end() && it->name == name ? &*it : nullptr;
}

std::uint64_t RegistrySnapshot::counter(std::string_view name) const {
    const MetricSnapshot* m = find(name);
    return m != nullptr && m->kind == Kind::counter ? m->counter_value
                                                    : 0;
}

std::int64_t RegistrySnapshot::gauge(std::string_view name) const {
    const MetricSnapshot* m = find(name);
    return m != nullptr && m->kind == Kind::gauge ? m->gauge_value : 0;
}

// ---- Registry ---------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
    {
        const std::shared_lock<std::shared_mutex> lock(m_);
        const auto it = counters_.find(name);
        if (it != counters_.end()) {
            return *it->second;
        }
    }
    const std::unique_lock<std::shared_mutex> lock(m_);
    auto& slot = counters_[std::string(name)];
    if (slot == nullptr) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
    {
        const std::shared_lock<std::shared_mutex> lock(m_);
        const auto it = gauges_.find(name);
        if (it != gauges_.end()) {
            return *it->second;
        }
    }
    const std::unique_lock<std::shared_mutex> lock(m_);
    auto& slot = gauges_[std::string(name)];
    if (slot == nullptr) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram& Registry::histogram(std::string_view name) {
    {
        const std::shared_lock<std::shared_mutex> lock(m_);
        const auto it = histograms_.find(name);
        if (it != histograms_.end()) {
            return *it->second;
        }
    }
    const std::unique_lock<std::shared_mutex> lock(m_);
    auto& slot = histograms_[std::string(name)];
    if (slot == nullptr) {
        slot = std::make_unique<Histogram>();
    }
    return *slot;
}

RegistrySnapshot Registry::snapshot() const {
    const std::shared_lock<std::shared_mutex> lock(m_);
    RegistrySnapshot out;
    out.metrics.reserve(counters_.size() + gauges_.size() +
                        histograms_.size());
    // The three maps are each name-sorted; a three-way sorted append
    // keeps the snapshot globally name-sorted for find()/merge().
    auto ci = counters_.begin();
    auto gi = gauges_.begin();
    auto hi = histograms_.begin();
    const auto next_name = [&]() -> const std::string* {
        const std::string* best = nullptr;
        if (ci != counters_.end()) {
            best = &ci->first;
        }
        if (gi != gauges_.end() &&
            (best == nullptr || gi->first < *best)) {
            best = &gi->first;
        }
        if (hi != histograms_.end() &&
            (best == nullptr || hi->first < *best)) {
            best = &hi->first;
        }
        return best;
    };
    for (const std::string* name = next_name(); name != nullptr;
         name = next_name()) {
        MetricSnapshot m;
        m.name = *name;
        if (ci != counters_.end() && ci->first == *name) {
            m.kind = Kind::counter;
            m.counter_value = ci->second->value();
            ++ci;
        } else if (gi != gauges_.end() && gi->first == *name) {
            m.kind = Kind::gauge;
            m.gauge_value = gi->second->value();
            ++gi;
        } else {
            m.kind = Kind::histogram;
            m.hist = hi->second->snapshot();
            ++hi;
        }
        out.metrics.push_back(std::move(m));
    }
    return out;
}

void Registry::reset() {
    const std::unique_lock<std::shared_mutex> lock(m_);
    for (auto& [name, c] : counters_) {
        c->reset();
    }
    for (auto& [name, g] : gauges_) {
        g->reset();
    }
    for (auto& [name, h] : histograms_) {
        h->reset();
    }
}

Registry& registry() {
    // Leaked on purpose: instrumented worker threads and engine teardown
    // paths may record after static destruction begins.
    static Registry* r = new Registry();
    return *r;
}

} // namespace hcube::obs
