// Snapshot serialization of the metrics plane (docs/OBSERVABILITY.md
// § Export): flat JSON rows through the shared common/json.hpp writer,
// and chrome-trace counter events ("ph":"C") that drop a registry
// snapshot into the same timeline the rt::TraceRecorder emits — one file
// shows per-worker execution spans with the live counters above them.
#pragma once

#include "common/json.hpp"
#include "obs/metrics.hpp"

#include <cstdint>

namespace hcube::obs {

/// Appends one flat row per metric: counters/gauges as
/// {metric, kind, value}, histograms as {metric, kind, count, mean_ms,
/// p50_ms, p95_ms, p99_ms, max_ms} (latency histograms record ns; the
/// row reports milliseconds). The caller owns the surrounding array.
void append_snapshot_json(JsonArrayWriter& json,
                          const RegistrySnapshot& snap);

/// Appends every counter/gauge (and each histogram's count) as a
/// chrome-trace counter event at timestamp `ts_us`, pid `pid` — the
/// Trace Event Format's "ph":"C" rows, rendered by chrome://tracing and
/// Perfetto as stacked counter tracks.
void append_chrome_counter_events(JsonArrayWriter& json,
                                  const RegistrySnapshot& snap,
                                  std::uint32_t pid, double ts_us);

} // namespace hcube::obs
