#include "obs/export.hpp"

#include <cstdio>
#include <string>

namespace hcube::obs {

namespace {

double ms(std::uint64_t ns) { return static_cast<double>(ns) * 1e-6; }

} // namespace

void append_snapshot_json(JsonArrayWriter& json,
                          const RegistrySnapshot& snap) {
    for (const MetricSnapshot& m : snap.metrics) {
        json.begin_row();
        json.field("metric", m.name);
        json.field("kind", to_string(m.kind));
        switch (m.kind) {
        case Kind::counter: json.field("value", m.counter_value); break;
        case Kind::gauge:
            json.field("value", std::int64_t{m.gauge_value});
            break;
        case Kind::histogram:
            json.field("count", m.hist.count);
            json.field("mean_ms", m.hist.mean() * 1e-6);
            json.field("p50_ms", ms(m.hist.percentile(0.50)));
            json.field("p95_ms", ms(m.hist.percentile(0.95)));
            json.field("p99_ms", ms(m.hist.percentile(0.99)));
            json.field("max_ms", ms(m.hist.max));
            break;
        }
        json.end_row();
    }
}

void append_chrome_counter_events(JsonArrayWriter& json,
                                  const RegistrySnapshot& snap,
                                  std::uint32_t pid, double ts_us) {
    char args[64];
    for (const MetricSnapshot& m : snap.metrics) {
        switch (m.kind) {
        case Kind::counter:
            std::snprintf(args, sizeof args, "{\"value\": %llu}",
                          static_cast<unsigned long long>(
                              m.counter_value));
            break;
        case Kind::gauge:
            std::snprintf(args, sizeof args, "{\"value\": %lld}",
                          static_cast<long long>(m.gauge_value));
            break;
        case Kind::histogram:
            std::snprintf(args, sizeof args, "{\"count\": %llu}",
                          static_cast<unsigned long long>(m.hist.count));
            break;
        }
        json.begin_row();
        json.field("name", m.name);
        json.field("ph", "C");
        json.field("ts", ts_us);
        json.field("pid", pid);
        json.raw_field("args", args);
        json.end_row();
    }
}

} // namespace hcube::obs
