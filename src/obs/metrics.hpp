// hcube::obs — the live metrics plane of the runtime: lock-free Counter /
// Gauge cells and log-bucketed latency Histograms behind one process-wide
// Registry (docs/OBSERVABILITY.md).
//
// Design constraints, in priority order:
//   * Recording must be cheap enough for the service hot path: a Counter
//     inc is one relaxed fetch_add on a cache-line-padded cell, a
//     Histogram record is two relaxed fetch_adds plus a relaxed max loop
//     on a per-thread shard — no locks, no allocation, ever.
//   * Reads never perturb writers: snapshot() merges the shards with
//     relaxed loads; a concurrent recorder at worst lands in the next
//     snapshot. Counts are monotonic, so merged totals are exact once the
//     writers quiesce (the only state a metrics plane promises).
//   * Snapshots must be mergeable — across shards, across Sessions, and
//     across rank processes (net::run_job sums per-rank snapshots into one
//     job-level report), which is why the histogram is a plain bucket
//     vector and not a sketch.
//
// Bucket scheme (HDR-histogram style): values below kSubBuckets (32) get
// exact unit buckets; above that, each power-of-two octave is split into
// 32 linear sub-buckets, so every bucket's width is at most 1/32 of its
// lower bound. percentile() returns the upper bound of the bucket holding
// the requested rank (clamped to the exactly-tracked max), which bounds
// the relative recovery error at 1/32 (~3.2%) — tight enough to gate a
// p99 regression on. Values are dimensionless uint64s; every latency
// metric in the repo records nanoseconds.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hcube::obs {

/// Monotonic event count. Padded to a cache line so unrelated counters
/// never false-share.
class Counter {
  public:
    void inc(std::uint64_t delta = 1) noexcept {
        v_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }
    /// Only valid while no recorder is active (tests).
    void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

  private:
    alignas(64) std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins level (queue depth, resident bytes). add() makes it a
/// bidirectional counter for enter/leave pairs.
class Gauge {
  public:
    void set(std::int64_t v) noexcept {
        v_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t delta) noexcept {
        v_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

  private:
    alignas(64) std::atomic<std::int64_t> v_{0};
};

/// Mergeable point-in-time view of one histogram: the bucket counts plus
/// the exactly-tracked count / sum / max. Percentiles are recovered from
/// the bucket bounds (see Histogram), so a snapshot merged across shards
/// or ranks answers p50/p95/p99 exactly as a single recorder would.
struct HistogramSnapshot {
    std::vector<std::uint64_t> counts; ///< empty == all zero
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;

    /// Element-wise sum; max of maxes. Associative and commutative.
    void merge(const HistogramSnapshot& o);
    /// Subtracts a monotonic baseline (counts, count, sum; max is a
    /// lifetime max and stays). The per-rank delta net::run_job ships.
    void subtract(const HistogramSnapshot& base);

    /// Value at quantile p in (0, 1]: the upper bound of the bucket that
    /// holds the ceil(p * count)-th smallest recorded value, clamped to
    /// the exact max. 0 when empty. Relative error <= 1/32 above the
    /// recovered value's bucket floor.
    [[nodiscard]] std::uint64_t percentile(double p) const noexcept;
    [[nodiscard]] double mean() const noexcept {
        return count > 0
                   ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
};

/// Log-bucketed latency histogram, striped over per-thread shards.
/// record() is wait-free; snapshot() merges the shards on read.
class Histogram {
  public:
    /// 32 linear sub-buckets per power-of-two octave.
    static constexpr unsigned kSubBits = 5;
    static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;
    /// Largest distinguishable value (~73 min in ns); larger records
    /// clamp into the top bucket (max still tracks them exactly).
    static constexpr unsigned kMaxOctave = 42;
    static constexpr std::uint64_t kMaxValue = (1ull << kMaxOctave) - 1;
    static constexpr std::size_t kBuckets =
        kSubBuckets + (kMaxOctave - kSubBits) * kSubBuckets;
    /// Recording threads stripe over this many shards (power of two).
    static constexpr std::size_t kShards = 8;

    /// Bucket index of `v`: identity below kSubBuckets, then
    /// (octave, top-5-bits) above — each bucket spans at most 1/32 of its
    /// lower bound.
    [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
        if (v > kMaxValue) {
            v = kMaxValue;
        }
        if (v < kSubBuckets) {
            return static_cast<std::size_t>(v);
        }
        const unsigned msb =
            63u - static_cast<unsigned>(std::countl_zero(v));
        const unsigned shift = msb - kSubBits;
        const std::uint64_t sub = (v >> shift) & (kSubBuckets - 1);
        return static_cast<std::size_t>(
            ((msb - kSubBits) << kSubBits) + kSubBuckets + sub);
    }

    /// Largest value that lands in bucket `i` (inclusive).
    [[nodiscard]] static std::uint64_t
    bucket_upper(std::size_t i) noexcept {
        if (i < kSubBuckets) {
            return i;
        }
        const std::size_t rel = i - kSubBuckets;
        const unsigned shift = static_cast<unsigned>(rel >> kSubBits);
        const std::uint64_t sub = rel & (kSubBuckets - 1);
        return ((kSubBuckets + sub) << shift) + ((1ull << shift) - 1);
    }

    /// Wait-free: stripes onto the calling thread's shard.
    void record(std::uint64_t v) noexcept;
    void record_seconds(double seconds) noexcept {
        record(seconds > 0 ? static_cast<std::uint64_t>(seconds * 1e9)
                           : 0);
    }

    /// Merged view of every shard (relaxed reads; exact once writers
    /// quiesce).
    [[nodiscard]] HistogramSnapshot snapshot() const;

    /// Only valid while no recorder is active (tests).
    void reset() noexcept;

  private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> counts[kBuckets];
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> max{0};
    };
    /// Shards are heap-held so an unused histogram costs one allocation,
    /// and the array never moves (record() keeps raw references).
    std::unique_ptr<Shard[]> shards_ =
        std::make_unique<Shard[]>(kShards);
};

/// RAII latency probe: records the enclosed scope's wall time (ns) into
/// `h` on destruction. A null histogram makes it a no-op, so call sites
/// can keep one unconditional ScopedTimer and pay a pointer test when
/// metrics are detached.
class ScopedTimer {
  public:
    using clock = std::chrono::steady_clock;

    explicit ScopedTimer(Histogram* h) noexcept
        : h_(h), t0_(h != nullptr ? clock::now() : clock::time_point{}) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() {
        if (h_ != nullptr) {
            h_->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock::now() - t0_)
                    .count()));
        }
    }

  private:
    Histogram* h_;
    clock::time_point t0_;
};

enum class Kind : std::uint8_t {
    counter = 0,
    gauge = 1,
    histogram = 2,
};

[[nodiscard]] constexpr const char* to_string(Kind k) noexcept {
    switch (k) {
    case Kind::counter: return "counter";
    case Kind::gauge: return "gauge";
    case Kind::histogram: return "histogram";
    }
    return "?";
}

/// One metric's point-in-time value (the wire / JSON unit).
struct MetricSnapshot {
    std::string name;
    Kind kind = Kind::counter;
    std::uint64_t counter_value = 0;
    std::int64_t gauge_value = 0;
    HistogramSnapshot hist; ///< kind == histogram only
};

/// Name-sorted snapshot of a Registry. merge() sums same-named metrics
/// (counters and gauges add, histograms bucket-merge) — the job-level
/// report net::run_job assembles from its ranks.
struct RegistrySnapshot {
    std::vector<MetricSnapshot> metrics; ///< sorted by name

    void merge(const RegistrySnapshot& o);
    /// Per-metric monotonic delta against `base` (a snapshot taken
    /// earlier in the same process). Metrics absent from base pass
    /// through whole.
    void subtract(const RegistrySnapshot& base);

    [[nodiscard]] const MetricSnapshot* find(std::string_view name) const;
    /// Counter total by name; 0 when absent.
    [[nodiscard]] std::uint64_t counter(std::string_view name) const;
    [[nodiscard]] std::int64_t gauge(std::string_view name) const;
};

/// Named metric registry. counter()/gauge()/histogram() return stable
/// references (node-based storage; the registry only ever grows), so call
/// sites resolve once at setup and record lock-free afterwards. Lookup
/// itself takes a shared lock — fine at per-request granularity, not for
/// per-block hot paths.
class Registry {
  public:
    [[nodiscard]] Counter& counter(std::string_view name);
    [[nodiscard]] Gauge& gauge(std::string_view name);
    [[nodiscard]] Histogram& histogram(std::string_view name);

    [[nodiscard]] RegistrySnapshot snapshot() const;

    /// Zeroes every registered cell (names stay registered). Test-only:
    /// callers must ensure no recorder is active.
    void reset();

  private:
    mutable std::shared_mutex m_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
};

/// The process-wide registry every layer's instrumentation lands in.
/// Intentionally leaked so worker threads and static destructors can
/// record during teardown without lifetime ordering hazards.
[[nodiscard]] Registry& registry();

} // namespace hcube::obs
