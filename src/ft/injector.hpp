// Maps a FaultPlan onto a compiled rt::Plan's channels and applies it from
// inside ChannelBank's push hook.
//
// The injector counts *logical* pushes per channel itself (the k-th block
// the schedule ever offers to the link, whether or not an earlier one was
// dropped): the bank's own sequence counter stamps publications only, so it
// falls behind the logical count as soon as a block is swallowed — which is
// precisely the desynchronization the detection layer later observes as an
// arrival timeout or a stream mismatch. The per-channel counters are plain
// (non-atomic) uint32: pushes on one channel are serialized by node
// ownership under the barrier Player and by ring-order dependency edges
// under the AsyncPlayer, and the hook runs on the pushing thread.
#pragma once

#include "ft/fault_model.hpp"
#include "rt/plan.hpp"

#include <atomic>
#include <cstdint>
#include <vector>

namespace hcube::ft {

/// The ChannelFaultHook implementation behind every injected scenario.
/// Lifecycle: construct from a FaultPlan, arm() against each compiled
/// rt::Plan it will run under, install via the engine's set_fault_hook,
/// rewind() between runs of the same plan.
class FaultInjector final : public ChannelFaultHook {
public:
    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

    /// Resolves the fault plan's directed links against `plan`'s channel
    /// table and rewinds the logical push counters. Faults on links the
    /// schedule never uses stay unmatched (inert); unmatched() reports how
    /// many, so a test can assert its fault actually landed.
    void arm(const rt::Plan& plan);

    /// Rewinds the logical push counters for a re-run of the armed plan.
    /// Only valid while no worker thread is active.
    void rewind() noexcept;

    [[nodiscard]] PushVerdict on_push(std::uint32_t channel,
                                      std::uint32_t seq,
                                      std::span<double> payload)
        noexcept override;

    [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
    [[nodiscard]] std::size_t unmatched() const noexcept {
        return unmatched_;
    }
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t corrupted() const noexcept {
        return corrupted_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t delayed() const noexcept {
        return delayed_.load(std::memory_order_relaxed);
    }

private:
    FaultPlan plan_;
    /// Per channel: the specs armed on it (almost always 0 or 1 entries).
    std::vector<std::vector<FaultSpec>> armed_;
    /// Per channel: logical pushes seen so far this run.
    std::vector<std::uint32_t> pushes_;
    std::size_t unmatched_ = 0;
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> corrupted_{0};
    std::atomic<std::uint64_t> delayed_{0};
};

} // namespace hcube::ft
