#include "ft/fault_model.hpp"

#include "common/check.hpp"
#include "common/prng.hpp"

#include <algorithm>

namespace hcube::ft {

FaultPlan& FaultPlan::kill_link(node_t from, node_t to,
                                std::uint32_t at_push) {
    specs_.push_back({{from, to}, InjectClass::kill_link, at_push,
                      ~std::uint32_t{0}, 0});
    return *this;
}

FaultPlan& FaultPlan::drop(node_t from, node_t to, std::uint32_t at_push,
                           std::uint32_t pushes) {
    specs_.push_back(
        {{from, to}, InjectClass::transient_drop, at_push, pushes, 0});
    return *this;
}

FaultPlan& FaultPlan::corrupt(node_t from, node_t to, std::uint32_t at_push,
                              std::uint32_t pushes, std::uint32_t salt) {
    specs_.push_back(
        {{from, to}, InjectClass::corrupt_payload, at_push, pushes, salt});
    return *this;
}

FaultPlan& FaultPlan::delay(node_t from, node_t to, std::uint32_t at_push,
                            std::uint32_t microseconds,
                            std::uint32_t pushes) {
    specs_.push_back({{from, to}, InjectClass::delay_delivery, at_push,
                      pushes, microseconds});
    return *this;
}

FaultPlan FaultPlan::random(dim_t n, std::uint64_t seed,
                            std::uint32_t count) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    const auto dims = static_cast<std::uint64_t>(n);
    const std::uint64_t links = (std::uint64_t{1} << n) * dims;
    HCUBE_ENSURE_MSG(count <= links,
                     "more faults requested than directed links exist");
    SplitMix64 rng(seed);
    FaultPlan plan;
    std::vector<std::uint64_t> chosen;
    while (plan.specs_.size() < count) {
        // Directed link id: node * n + dimension.
        const std::uint64_t id = rng.next_below(links);
        if (std::find(chosen.begin(), chosen.end(), id) != chosen.end()) {
            continue;
        }
        chosen.push_back(id);
        const auto from = static_cast<node_t>(id / dims);
        const auto to =
            static_cast<node_t>(from ^ (node_t{1} << (id % dims)));
        const std::uint32_t at_push =
            static_cast<std::uint32_t>(rng.next_below(4));
        switch (plan.specs_.size() % 4) {
        case 0: plan.kill_link(from, to, at_push); break;
        case 1: plan.drop(from, to, at_push); break;
        case 2:
            plan.corrupt(from, to, at_push, 1,
                         static_cast<std::uint32_t>(rng.next_below(255)) +
                             1);
            break;
        default:
            plan.delay(from, to, at_push,
                       static_cast<std::uint32_t>(rng.next_below(50)) + 1);
            break;
        }
    }
    return plan;
}

} // namespace hcube::ft
