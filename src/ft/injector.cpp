#include "ft/injector.hpp"

#include <chrono>
#include <thread>

namespace hcube::ft {

void FaultInjector::arm(const rt::Plan& plan) {
    armed_.assign(plan.channel_count, {});
    pushes_.assign(plan.channel_count, 0);
    unmatched_ = 0;
    dropped_.store(0, std::memory_order_relaxed);
    corrupted_.store(0, std::memory_order_relaxed);
    delayed_.store(0, std::memory_order_relaxed);
    for (const FaultSpec& spec : plan_.specs()) {
        bool matched = false;
        for (std::uint32_t c = 0; c < plan.channel_count; ++c) {
            if (plan.channel_from(c) == spec.link.from &&
                plan.channel_to(c) == spec.link.to) {
                armed_[c].push_back(spec);
                matched = true;
                break; // channel ids are unique per directed link
            }
        }
        if (!matched) {
            ++unmatched_;
        }
    }
}

void FaultInjector::rewind() noexcept {
    for (std::uint32_t& count : pushes_) {
        count = 0;
    }
}

PushVerdict FaultInjector::on_push(std::uint32_t channel,
                                   std::uint32_t /*seq*/,
                                   std::span<double> payload) noexcept {
    const std::uint32_t k = pushes_[channel]++;
    for (const FaultSpec& spec : armed_[channel]) {
        if (k < spec.at_push || k - spec.at_push >= spec.pushes) {
            continue;
        }
        switch (spec.cls) {
        case InjectClass::kill_link:
        case InjectClass::transient_drop:
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return PushVerdict::drop;
        case InjectClass::corrupt_payload:
            // The canonical payload holds exact small integers; a
            // half-integer perturbation is guaranteed to change the
            // receiver's checksum of the block.
            payload[k % payload.size()] +=
                0.5 + static_cast<double>(spec.param);
            corrupted_.fetch_add(1, std::memory_order_relaxed);
            break;
        case InjectClass::delay_delivery:
            // Stalls the producer *before* publication: the consumer's
            // bounded arrival wait is what absorbs (or times out on) the
            // extra latency.
            std::this_thread::sleep_for(
                std::chrono::microseconds(spec.param));
            delayed_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
    }
    return PushVerdict::deliver;
}

} // namespace hcube::ft
