#include "ft/recovery.hpp"

#include "common/check.hpp"
#include "trees/msbt.hpp"

#include <algorithm>
#include <bit>
#include <vector>

namespace hcube::ft {

dim_t ersbt_using_link(dim_t n, node_t source, DirectedLink dead) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    const node_t count = node_t{1} << n;
    HCUBE_ENSURE(dead.from < count && dead.to < count);
    HCUBE_ENSURE_MSG(std::popcount(dead.from ^ dead.to) == 1,
                     "not a cube link");
    HCUBE_ENSURE_MSG(dead.to != source,
                     "links into the source are unused by every ERSBT");
    for (dim_t j = 0; j < n; ++j) {
        if (trees::msbt_parent(dead.to, j, source, n) == dead.from) {
            return j;
        }
    }
    // Unreachable: every directed link not into the source is a tree edge
    // of exactly one ERSBT (directed-edge disjointness, paper §3.2).
    detail::check_failed("directed link not covered by any ERSBT", {},
                         std::source_location::current());
}

bool schedule_uses_link(const sim::Schedule& schedule, DirectedLink link) {
    for (const sim::ScheduledSend& send : schedule.sends) {
        if (send.from == link.from && send.to == link.to) {
            return true;
        }
    }
    return false;
}

SurvivorMsbt make_msbt_survivor_broadcast(dim_t n, node_t source,
                                          packet_t packets_per_subtree,
                                          std::span<const DirectedLink> dead) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(packets_per_subtree >= 1);
    const node_t count = node_t{1} << n;
    HCUBE_ENSURE(source < count);

    SurvivorMsbt result;
    for (const DirectedLink& link : dead) {
        const dim_t tree = ersbt_using_link(n, source, link);
        if (std::find(result.dropped_trees.begin(),
                      result.dropped_trees.end(),
                      tree) == result.dropped_trees.end()) {
            result.dropped_trees.push_back(tree);
        }
    }
    std::sort(result.dropped_trees.begin(), result.dropped_trees.end());
    const auto dropped = static_cast<dim_t>(result.dropped_trees.size());
    HCUBE_ENSURE_MSG(dropped < n, "no ERSBT survives the dead links");
    const auto is_dropped = [&](dim_t j) {
        return std::binary_search(result.dropped_trees.begin(),
                                  result.dropped_trees.end(), j);
    };

    sim::Schedule& schedule = result.schedule;
    schedule.n = n;
    schedule.packet_count =
        static_cast<packet_t>(n) * packets_per_subtree;
    schedule.initial_holder.assign(schedule.packet_count, source);

    // Survivor streams: each survivor keeps its own packets, then the dead
    // trees' packets are dealt round-robin across the survivors. Packet ids
    // stay the fault-free ids j·pps + p, so the delivery contract is
    // unchanged.
    const packet_t pps = packets_per_subtree;
    std::vector<std::vector<packet_t>> streams(
        static_cast<std::size_t>(n));
    std::vector<dim_t> survivors;
    for (dim_t j = 0; j < n; ++j) {
        if (is_dropped(j)) {
            continue;
        }
        survivors.push_back(j);
        for (packet_t p = 0; p < pps; ++p) {
            streams[static_cast<std::size_t>(j)].push_back(
                static_cast<packet_t>(j) * pps + p);
        }
    }
    std::size_t deal = 0;
    for (const dim_t d : result.dropped_trees) {
        for (packet_t p = 0; p < pps; ++p) {
            const dim_t j = survivors[deal % survivors.size()];
            streams[static_cast<std::size_t>(j)].push_back(
                static_cast<packet_t>(d) * pps + p);
            ++deal;
        }
    }

    // Labelling-f timing, per tree: the edge into node i carries its
    // stream's q-th packet at cycle f(i,j) + q·n. A sub-schedule of the
    // uniform labelling run with stream length max|stream|, hence
    // conflict-free and one-port feasible like the fault-free original.
    for (const dim_t j : survivors) {
        const std::vector<packet_t>& stream =
            streams[static_cast<std::size_t>(j)];
        for (node_t i = 0; i < count; ++i) {
            if (i == source) {
                continue;
            }
            const node_t parent = trees::msbt_parent(i, j, source, n);
            const auto label = static_cast<std::uint32_t>(
                trees::msbt_edge_label(i, j, source, n));
            for (std::size_t q = 0; q < stream.size(); ++q) {
                schedule.sends.push_back(
                    {label + static_cast<std::uint32_t>(q) *
                                 static_cast<std::uint32_t>(n),
                     parent, i, stream[q]});
            }
        }
    }
    return result;
}

SurvivorMsbt make_msbt_survivor_broadcast(dim_t n, node_t source,
                                          packet_t packets_per_subtree,
                                          DirectedLink dead) {
    return make_msbt_survivor_broadcast(n, source, packets_per_subtree,
                                        std::span<const DirectedLink>{&dead,
                                                                      1});
}

} // namespace hcube::ft
