// Replanning collectives around dead directed links (the recover leg of
// inject → detect → recover).
//
// Two routes, matching the paper's two broadcast families:
//
//   SBT   — the whole spanning-tree family is fault-aware already:
//           trees::build_broadcast_tree_avoiding picks a permuted SBT (or
//           BFS fallback) that avoids the links, and any schedule generator
//           runs down the replacement tree unchanged.
//
//   MSBT  — the n ERSBTs are *directed-edge*-disjoint: the union of their
//           edges covers every directed link of the cube except the n links
//           INTO the source (n·(2^n − 1) tree edges vs n·2^n directed
//           links). A dead directed link (to ≠ source) therefore kills
//           exactly ONE ERSBT; the others are untouched. Degraded mode
//           drops every dead tree and round-robins their packet streams
//           onto the survivors, keeping the labelling-f timing (the edge
//           into node i of tree j carries its stream's q-th packet at cycle
//           f(i,j) + q·n). The survivor schedule is a sub-schedule of the
//           same labelling run with longer streams, so it inherits
//           conflict-freedom and the one-port discipline; it just pipelines
//           deeper — the throughput cost of losing edge-disjoint trees.
#pragma once

#include "ft/fault_model.hpp"
#include "sim/cycle.hpp"

#include <span>
#include <vector>

namespace hcube::ft {

using sim::packet_t;

/// The index of the one ERSBT (of the MSBT rooted at `source`) whose tree
/// edges include the directed link `dead`. Throws check_error if `dead` is
/// not a cube link or points into the source (those n links are the only
/// directed links no ERSBT uses).
[[nodiscard]] dim_t ersbt_using_link(dim_t n, node_t source,
                                     DirectedLink dead);

/// True if any scheduled send crosses the directed link.
[[nodiscard]] bool schedule_uses_link(const sim::Schedule& schedule,
                                      DirectedLink link);

/// A degraded MSBT broadcast schedule plus the identity of the trees it had
/// to give up.
struct SurvivorMsbt {
    sim::Schedule schedule;
    std::vector<dim_t> dropped_trees; ///< ascending ERSBT indices
};

/// One-port full-duplex MSBT broadcast of n·packets_per_subtree packets
/// from `source` that provably never crosses any link in `dead`: each dead
/// link's ERSBT is dropped and the dead trees' packets are reassigned
/// round-robin to the survivors (packet ids are unchanged, so the delivery
/// contract is the fault-free one). Throws check_error if a dead link
/// points into the source (the fault-free MSBT never uses those links — no
/// recovery is needed) or if no ERSBT survives.
[[nodiscard]] SurvivorMsbt
make_msbt_survivor_broadcast(dim_t n, node_t source,
                             packet_t packets_per_subtree,
                             std::span<const DirectedLink> dead);

/// Single-fault convenience overload.
[[nodiscard]] SurvivorMsbt
make_msbt_survivor_broadcast(dim_t n, node_t source,
                             packet_t packets_per_subtree,
                             DirectedLink dead);

} // namespace hcube::ft
