#include "ft/resilient.hpp"

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "routing/schedule_export.hpp"
#include "rt/async_player.hpp"
#include "rt/checksum.hpp"
#include "rt/threads.hpp"
#include "sim/cycle.hpp"
#include "trees/fault.hpp"
#include "trees/sbt.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <utility>

namespace hcube::ft {

namespace {

using sim::Schedule;

/// The fault-free ground truth: a barrier-engine run of the original
/// schedule plus the cycle model's delivery matrix. Heap members keep the
/// Plan's address stable under the Player's reference.
struct Oracle {
    std::unique_ptr<rt::Plan> plan;
    std::unique_ptr<rt::Player> player;
    std::vector<std::pair<node_t, packet_t>> contract;
    double seconds = 0;
};

Oracle build_oracle(const Schedule& schedule,
                    std::vector<std::pair<node_t, packet_t>> contract,
                    const ResilientParams& params, std::uint32_t threads,
                    std::span<const node_t> members = {}) {
    // The cycle executor proves the schedule feasible before it ever runs
    // on real threads.
    (void)sim::execute_schedule(schedule,
                                sim::PortModel::one_port_full_duplex);

    Oracle oracle;
    oracle.plan = std::make_unique<rt::Plan>(
        compile_plan(schedule, rt::DataMode::move, params.block_elems,
                     threads, 8, rt::PlanLayout::automatic, members));
    oracle.player =
        std::make_unique<rt::Player>(*oracle.plan, params.channel_capacity);
    const rt::PlayStats stats = oracle.player->play();
    HCUBE_ENSURE_MSG(stats.clean() &&
                         stats.blocks_delivered == schedule.sends.size(),
                     "fault-free oracle run was not clean");

    // The op's semantic contract must be a subset of what the fault-free
    // run actually holds — otherwise the comparison could never pass.
    for (const auto& [node, packet] : contract) {
        HCUBE_ENSURE_MSG(!oracle.player->block(node, packet).empty(),
                         "contract pair missing from the oracle run");
    }
    oracle.contract = std::move(contract);
    oracle.seconds = stats.seconds;
    return oracle;
}

/// Member broadcast contract: every *live* member ends up holding every
/// packet — the contract contracts with the view.
std::vector<std::pair<node_t, packet_t>>
member_broadcast_contract(const mbr::View& view, packet_t packets) {
    std::vector<std::pair<node_t, packet_t>> contract;
    contract.reserve(static_cast<std::size_t>(view.count()) *
                     static_cast<std::size_t>(packets));
    for (const node_t v : view.members()) {
        for (packet_t p = 0; p < packets; ++p) {
            contract.emplace_back(v, p);
        }
    }
    return contract;
}

/// Broadcast contract: every node ends up holding every packet.
std::vector<std::pair<node_t, packet_t>>
broadcast_contract(dim_t n, packet_t packets) {
    std::vector<std::pair<node_t, packet_t>> contract;
    contract.reserve((std::size_t{1} << n) *
                     static_cast<std::size_t>(packets));
    for (node_t i = 0; i < (node_t{1} << n); ++i) {
        for (packet_t p = 0; p < packets; ++p) {
            contract.emplace_back(i, p);
        }
    }
    return contract;
}

/// Scatter contract: each packet's terminal destination (the target of its
/// last scheduled hop — a scatter routes every packet down one path) plus
/// the source's seeded copy. Relay transits are route artifacts and are
/// deliberately excluded: any replacement tree delivers the same contract.
std::vector<std::pair<node_t, packet_t>>
scatter_contract(const Schedule& schedule) {
    std::vector<std::uint32_t> last_cycle(schedule.packet_count, 0);
    std::vector<node_t> dest(schedule.packet_count);
    for (packet_t p = 0; p < schedule.packet_count; ++p) {
        dest[p] = schedule.initial_holder[p];
    }
    for (const sim::ScheduledSend& send : schedule.sends) {
        if (send.cycle >= last_cycle[send.packet]) {
            last_cycle[send.packet] = send.cycle + 1;
            dest[send.packet] = send.to;
        }
    }
    std::vector<std::pair<node_t, packet_t>> contract;
    contract.reserve(2 * schedule.packet_count);
    for (packet_t p = 0; p < schedule.packet_count; ++p) {
        contract.emplace_back(schedule.initial_holder[p], p);
        if (dest[p] != schedule.initial_holder[p]) {
            contract.emplace_back(dest[p], p);
        }
    }
    return contract;
}

/// Byte-for-byte comparison of every contract pair against the oracle's
/// final memory (the recovered plan may hold extra relay copies; only the
/// contract is demanded).
template <typename PlayerT>
[[nodiscard]] bool matches_oracle(const Oracle& oracle,
                                  const PlayerT& player) {
    for (const auto& [node, packet] : oracle.contract) {
        const std::span<const double> want =
            oracle.player->block(node, packet);
        const std::span<const double> got = player.block(node, packet);
        if (want.empty() || got.size() != want.size() ||
            std::memcmp(got.data(), want.data(),
                        want.size() * sizeof(double)) != 0) {
            return false;
        }
    }
    return true;
}

} // namespace

/// Fault-free ground truths keyed by operation signature; a sweep of fault
/// positions over one collective pays for its oracle once.
struct ResilientComm::OracleStore {
    std::map<std::string, Oracle> by_key;
};

ResilientComm::ResilientComm(dim_t n, ResilientParams params)
    : n_(n), params_(params),
      threads_(rt::pick_worker_threads(n, params.threads)),
      oracles_(std::make_unique<OracleStore>()), view_(n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(params_.block_elems >= 1);
    HCUBE_ENSURE_MSG(params_.detect.enabled(),
                     "resilient execution requires a nonzero arrival "
                     "timeout — detection is the trigger for recovery");
    HCUBE_ENSURE(params_.max_attempts >= 1);
}

ResilientComm::~ResilientComm() = default;

RecoveryResult ResilientComm::run_resilient(const std::string& oracle_key,
                                            const Schedule& initial,
                                            Contract contract,
                                            const FaultPlan& faults,
                                            const Replanner& replan) {
    using clock = std::chrono::steady_clock;
    RecoveryResult out;

    auto cached = oracles_->by_key.find(oracle_key);
    if (cached == oracles_->by_key.end()) {
        cached = oracles_->by_key
                     .emplace(oracle_key,
                              build_oracle(initial, std::move(contract),
                                           params_, threads_))
                     .first;
    }
    const Oracle& oracle = cached->second;
    out.oracle_seconds = oracle.seconds;

    FaultInjector injector(faults);
    Schedule schedule = initial;

    for (std::uint32_t attempt = 0; attempt < params_.max_attempts;
         ++attempt) {
        const clock::time_point attempt_start = clock::now();
        const rt::Plan plan = compile_plan(
            schedule, rt::DataMode::move, params_.block_elems, threads_);
        injector.arm(plan);

        // One attempt on either engine; returns true when the run was
        // clean AND reproduced the oracle.
        const auto execute = [&](auto& player) {
            player.set_detection(params_.detect);
            player.set_fault_hook(&injector);
            if (trace_ != nullptr) {
                player.set_trace(trace_);
            }
            const rt::PlayStats stats = player.play();
            ++out.attempts;
            if (!stats.clean() ||
                stats.blocks_delivered != schedule.sends.size()) {
                out.reports.push_back(player.fault_report());
                // Detection latency: attempt start to the failed run's
                // join — how long the fault took to surface and drain.
                static obs::Histogram& m_detect =
                    obs::registry().histogram("ft.detect_ns");
                m_detect.record(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clock::now() - attempt_start)
                        .count()));
                return false;
            }
            out.delivered = matches_oracle(oracle, player);
            out.stats = stats;
            out.final_seconds = stats.seconds;
            return true;
        };

        bool finished = false;
        if (params_.engine == rt::Engine::barrier) {
            rt::Player player(plan, params_.channel_capacity);
            finished = execute(player);
        } else {
            rt::AsyncPlayer player(plan);
            finished = execute(player);
        }
        if (finished) {
            out.final_schedule = std::move(schedule);
            return out;
        }

        // Heal: declare the reported link dead and replan around the whole
        // dead set. A timeout/mismatch with no claimed report (cannot
        // happen with abort_on_fault, but cheap to guard) aborts recovery.
        const FaultReport& report = out.reports.back();
        HCUBE_ENSURE_MSG(report.faulted(),
                         "attempt failed without a fault report");
        out.dead_links.push_back({report.from, report.to});
        out.recovered = true;
        schedule = replan(out.dead_links, out);
        out.recovery_seconds +=
            std::chrono::duration<double>(clock::now() - attempt_start)
                .count();
    }
    // Attempt budget exhausted without a clean run.
    out.final_schedule = std::move(schedule);
    return out;
}

RecoveryResult ResilientComm::broadcast_sbt(node_t root, packet_t packets,
                                            const FaultPlan& faults) {
    const Schedule initial = routing::make_tree_broadcast(
        trees::build_sbt(n_, root), routing::BroadcastDiscipline::paced,
        packets, sim::PortModel::one_port_full_duplex);
    const Replanner replan = [this, root, packets](
                                 std::span<const DirectedLink> dead,
                                 RecoveryResult&) {
        std::vector<trees::Link> failed;
        failed.reserve(dead.size());
        for (const DirectedLink& link : dead) {
            failed.push_back(trees::make_link(link.from, link.to));
        }
        return routing::make_tree_broadcast(
            trees::build_broadcast_tree_avoiding(n_, root, failed,
                                                 params_.replan_seed),
            routing::BroadcastDiscipline::paced, packets,
            sim::PortModel::one_port_full_duplex);
    };
    return run_resilient("bcast_sbt/" + std::to_string(root) + "/" +
                             std::to_string(packets),
                         initial, broadcast_contract(n_, packets), faults,
                         replan);
}

RecoveryResult ResilientComm::broadcast_msbt(node_t root, packet_t packets,
                                             const FaultPlan& faults) {
    HCUBE_ENSURE_MSG(packets % static_cast<packet_t>(n_) == 0,
                     "MSBT broadcast needs packets divisible by n");
    const packet_t pps = packets / static_cast<packet_t>(n_);
    const Schedule initial = routing::make_msbt_broadcast(
        n_, root, packets, sim::PortModel::one_port_full_duplex);
    const Replanner replan = [this, root,
                              pps](std::span<const DirectedLink> dead,
                                   RecoveryResult& out) {
        SurvivorMsbt survivor =
            make_msbt_survivor_broadcast(n_, root, pps, dead);
        out.dropped_trees = std::move(survivor.dropped_trees);
        return std::move(survivor.schedule);
    };
    return run_resilient("bcast_msbt/" + std::to_string(root) + "/" +
                             std::to_string(packets),
                         initial, broadcast_contract(n_, packets), faults,
                         replan);
}

RecoveryResult ResilientComm::run_member_resilient(
    const std::string& op_key, node_t root, const FaultPlan& faults,
    const MemberScheduler& make, const MemberContract& contract_of) {
    using clock = std::chrono::steady_clock;
    RecoveryResult out;
    FaultInjector injector(faults);

    for (std::uint32_t attempt = 0; attempt < params_.max_attempts;
         ++attempt) {
        const clock::time_point attempt_start = clock::now();
        HCUBE_ENSURE_MSG(view_.contains(root),
                         "collective root is not a live member");

        // The schedule, oracle and contract are all functions of the
        // *current* member set: a death between attempts shrinks all
        // three. The oracle cache keys on the view fingerprint, so a
        // sweep of fault positions over one survivor set still pays for
        // its oracle once.
        const Schedule schedule = make(view_);
        const std::vector<node_t> members = view_.members();
        const std::uint32_t workers = std::min(
            threads_, static_cast<std::uint32_t>(members.size()));
        const std::string key =
            op_key + "/" + std::to_string(view_.fingerprint());
        auto cached = oracles_->by_key.find(key);
        if (cached == oracles_->by_key.end()) {
            cached = oracles_->by_key
                         .emplace(key, build_oracle(schedule,
                                                    contract_of(schedule,
                                                                view_),
                                                    params_, workers,
                                                    members))
                         .first;
            out.oracle_seconds += cached->second.seconds;
        }
        const Oracle& oracle = cached->second;

        const rt::Plan plan =
            compile_plan(schedule, rt::DataMode::move, params_.block_elems,
                         workers, 8, rt::PlanLayout::automatic, members);
        injector.arm(plan);

        const auto execute = [&](auto& player) {
            player.set_detection(params_.detect);
            player.set_fault_hook(&injector);
            if (trace_ != nullptr) {
                player.set_trace(trace_);
            }
            const rt::PlayStats stats = player.play();
            ++out.attempts;
            if (!stats.clean() ||
                stats.blocks_delivered != schedule.sends.size()) {
                out.reports.push_back(player.fault_report());
                // Detection latency: attempt start to the failed run's
                // join — how long the fault took to surface and drain.
                static obs::Histogram& m_detect =
                    obs::registry().histogram("ft.detect_ns");
                m_detect.record(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clock::now() - attempt_start)
                        .count()));
                return false;
            }
            out.delivered = matches_oracle(oracle, player);
            out.stats = stats;
            out.final_seconds = stats.seconds;
            return true;
        };

        bool finished = false;
        if (params_.engine == rt::Engine::barrier) {
            rt::Player player(plan, params_.channel_capacity);
            finished = execute(player);
        } else {
            rt::AsyncPlayer player(plan);
            finished = execute(player);
        }
        if (finished) {
            out.final_schedule = schedule;
            out.view_epoch = view_.epoch();
            return out;
        }

        // Heal: the fault is a node death, not a wire break. The non-root
        // endpoint of the reported link leaves the view; the next attempt
        // rebuilds tree, contract and oracle over the survivors. The
        // root's own death is unrecoverable (no one else holds the data).
        const FaultReport& report = out.reports.back();
        HCUBE_ENSURE_MSG(report.faulted(),
                         "attempt failed without a fault report");
        const node_t victim = report.to == root ? report.from : report.to;
        HCUBE_ENSURE_MSG(victim != root,
                         "the collective root died — unrecoverable");
        out.dead_links.push_back({report.from, report.to});
        out.dead_nodes.push_back(victim);
        view_.leave(victim);
        out.recovered = true;
        out.recovery_seconds +=
            std::chrono::duration<double>(clock::now() - attempt_start)
                .count();
    }
    // Attempt budget exhausted without a clean run.
    out.final_schedule = make(view_);
    out.view_epoch = view_.epoch();
    return out;
}

RecoveryResult ResilientComm::broadcast_members(node_t root,
                                                packet_t packets,
                                                const FaultPlan& faults) {
    return run_member_resilient(
        "bcast_members/" + std::to_string(root) + "/" +
            std::to_string(packets),
        root, faults,
        [root, packets](const mbr::View& view) {
            return routing::make_member_broadcast(
                view, root, routing::BroadcastDiscipline::paced, packets,
                sim::PortModel::one_port_full_duplex);
        },
        [packets](const Schedule&, const mbr::View& view) {
            return member_broadcast_contract(view, packets);
        });
}

RecoveryResult ResilientComm::scatter_members(node_t root,
                                              packet_t packets_per_dest,
                                              const FaultPlan& faults) {
    return run_member_resilient(
        "scatter_members/" + std::to_string(root) + "/" +
            std::to_string(packets_per_dest),
        root, faults,
        [root, packets_per_dest](const mbr::View& view) {
            return routing::make_member_scatter(view, root,
                                                packets_per_dest);
        },
        [](const Schedule& schedule, const mbr::View&) {
            // The generic terminal-destination walk already speaks member
            // scatter: packet ids are dense over live destinations.
            return scatter_contract(schedule);
        });
}

RecoveryResult ResilientComm::scatter_sbt(node_t root,
                                          packet_t packets_per_dest,
                                          const FaultPlan& faults) {
    const Schedule initial = routing::make_tree_scatter(
        trees::build_sbt(n_, root), routing::ScatterPolicy::descending,
        packets_per_dest, sim::PortModel::one_port_full_duplex);
    const Replanner replan = [this, root, packets_per_dest](
                                 std::span<const DirectedLink> dead,
                                 RecoveryResult&) {
        std::vector<trees::Link> failed;
        failed.reserve(dead.size());
        for (const DirectedLink& link : dead) {
            failed.push_back(trees::make_link(link.from, link.to));
        }
        // scatter_one_port's packet ids depend only on dest ^ root, so any
        // replacement spanning tree delivers the identical contract.
        return routing::make_tree_scatter(
            trees::build_broadcast_tree_avoiding(n_, root, failed,
                                                 params_.replan_seed),
            routing::ScatterPolicy::descending, packets_per_dest,
            sim::PortModel::one_port_full_duplex);
    };
    return run_resilient("scatter_sbt/" + std::to_string(root) + "/" +
                             std::to_string(packets_per_dest),
                         initial, scatter_contract(initial), faults,
                         replan);
}

} // namespace hcube::ft
