// ft::ResilientComm — self-healing collectives over the threaded runtime:
// the closed inject → detect → recover loop.
//
// Every operation follows one protocol:
//
//   1. Oracle: the fault-free schedule is compiled and executed once on the
//      barrier engine with no faults. Its final memory is the ground truth
//      the recovered run must reproduce byte for byte, and the cycle
//      model's delivery matrix defines the contract pairs to compare.
//      Oracles are cached per operation signature, so a sweep of fault
//      positions over one collective pays for its oracle once.
//   2. Attempt: the current schedule is compiled, the fault scenario is
//      armed on its channels, and the configured engine executes it with
//      bounded-wait detection. A clean run that delivers every scheduled
//      block proceeds to verification; a faulted run yields a structured
//      FaultReport naming the directed link that failed.
//   3. Heal: the reported link is added to the dead set and the operation
//      is replanned around every dead link — SBT-family collectives pick a
//      permuted SBT (or BFS fallback) avoiding the links; the MSBT drops
//      the ERSBTs crossing them and reassigns their packet streams to the
//      surviving trees. Re-execution is idempotent: each attempt starts
//      from freshly seeded memory and rewound channels, and injected
//      transient faults re-fire on retry — any link that faults twice is
//      simply declared dead like a persistent failure.
//   4. Verify: the survivor run's block for every contract (node, packet)
//      pair is compared byte for byte against the oracle's memory.
//
// The loop terminates: every failed attempt permanently grows the dead-link
// set, and max_attempts bounds the total work even under adversarial fault
// plans (an unrecoverable topology — e.g. all n links of a node dead —
// surfaces as trees::build_broadcast_tree_avoiding's check_error).
#pragma once

#include "ft/fault_model.hpp"
#include "ft/injector.hpp"
#include "ft/recovery.hpp"
#include "mbr/view.hpp"
#include "rt/communicator.hpp" // rt::Engine
#include "rt/player.hpp"       // rt::PlayStats
#include "rt/tracing.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hcube::ft {

struct ResilientParams {
    /// Worker threads; 0 picks min(2^n, max(2, hardware_concurrency)).
    std::uint32_t threads = 0;
    /// Elements (doubles) per packet block.
    std::size_t block_elems = 64;
    /// Ring slots per link channel (barrier engine).
    std::uint32_t channel_capacity = 2;
    /// Engine that executes the attempts (the oracle always runs on the
    /// barrier engine, fault-free).
    rt::Engine engine = rt::Engine::async;
    /// Detection policy for the attempts. The timeout must be longer than
    /// any injected delay that should be absorbed rather than healed; the
    /// default is the thread-transport bound (the attempts run on the
    /// in-process ring bank).
    DetectConfig detect = DetectConfig::for_transport(TransportClass::ring);
    /// Attempt budget: 1 initial execution + (max_attempts - 1) replans.
    std::uint32_t max_attempts = 4;
    /// Seed for the permuted-SBT search when replanning tree collectives.
    std::uint64_t replan_seed = 42;
};

/// Everything a caller (or bench harness) wants to know about one
/// self-healed operation.
struct RecoveryResult {
    /// The final run was clean and byte-identical to the fault-free oracle.
    bool delivered = false;
    /// At least one replan happened (false == the first attempt was clean;
    /// an armed fault plan may still have been inert or absorbed).
    bool recovered = false;
    std::uint32_t attempts = 0; ///< executions, including the clean one
    /// Fault history, one report per failed attempt, in order.
    std::vector<FaultReport> reports;
    /// Links declared dead, in detection order (drives the replanning).
    std::vector<DirectedLink> dead_links;
    /// Member ops only: nodes declared dead, in detection order (each is a
    /// membership transition — the non-root endpoint of a failed link).
    std::vector<node_t> dead_nodes;
    /// Member ops only: the comm's view epoch after the final attempt.
    std::uint64_t view_epoch = 0;
    /// MSBT only: ERSBTs the degraded schedule dropped (ascending).
    std::vector<dim_t> dropped_trees;
    /// The schedule the final attempt executed (the fault-free original if
    /// no replan happened) — lets callers assert dead links are avoided.
    sim::Schedule final_schedule;
    rt::PlayStats stats;          ///< stats of the final (clean) run
    double oracle_seconds = 0;    ///< fault-free oracle wall clock
    double recovery_seconds = 0;  ///< failed attempts + replanning
    double final_seconds = 0;     ///< wall clock of the final clean run
};

class ResilientComm {
public:
    explicit ResilientComm(dim_t n, ResilientParams params = {});
    ~ResilientComm();
    ResilientComm(const ResilientComm&) = delete;
    ResilientComm& operator=(const ResilientComm&) = delete;

    [[nodiscard]] dim_t dimension() const noexcept { return n_; }
    [[nodiscard]] std::uint32_t threads() const noexcept { return threads_; }

    /// Attaches a trace recorder (>= threads() lanes) so every attempt's
    /// actions land in one timeline; nullptr detaches.
    void set_trace(rt::TraceRecorder* trace) noexcept { trace_ = trace; }

    /// Pipelined (paced) broadcast of `packets` blocks from `root` down the
    /// SBT, healing via permuted-SBT / BFS replacement trees.
    [[nodiscard]] RecoveryResult broadcast_sbt(node_t root,
                                               packet_t packets,
                                               const FaultPlan& faults);

    /// MSBT broadcast of `packets` blocks (divisible by n) from `root`,
    /// healing via the survivor-subset degraded schedule.
    [[nodiscard]] RecoveryResult broadcast_msbt(node_t root,
                                                packet_t packets,
                                                const FaultPlan& faults);

    /// Scatter of `packets_per_dest` blocks from `root` down the SBT
    /// (descending order), healing via replacement trees (the scatter
    /// packet contract is tree-independent).
    [[nodiscard]] RecoveryResult scatter_sbt(node_t root,
                                             packet_t packets_per_dest,
                                             const FaultPlan& faults);

    // ---- membership-aware collectives ----------------------------------
    //
    // Where the link-healing ops above route *around* a dead wire on the
    // same full node set, the member ops treat a fault as a node death:
    // the non-root endpoint of the failed link leaves the view, the tree
    // is rebuilt over the survivors, and a *fresh* oracle is built for the
    // shrunk member set (keyed by the view fingerprint) — the contract
    // itself contracts to the survivors. The root's death is unrecoverable
    // and surfaces as check_error.

    /// The comm's membership view (full cube until the first death or
    /// mark_dead/readmit call).
    [[nodiscard]] const mbr::View& view() const noexcept { return view_; }

    /// Proactive membership transitions between operations: declare a node
    /// dead (it leaves the view without an execution having failed) or
    /// readmit a previously dead address. Strictness follows mbr::View.
    void mark_dead(node_t v) { view_.leave(v); }
    void readmit(node_t v) { view_.join(v); }

    /// Paced broadcast of `packets` blocks from `root` over the member
    /// tree spanning the current view, healing node deaths by view
    /// transition + rebuild. On a full view the initial schedule is
    /// byte-identical to broadcast_sbt's.
    [[nodiscard]] RecoveryResult broadcast_members(node_t root,
                                                   packet_t packets,
                                                   const FaultPlan& faults);

    /// Scatter of `packets_per_dest` blocks from `root` to every live
    /// member (descending member order), healing node deaths by view
    /// transition + rebuild. A dead destination's blocks leave the
    /// contract with it.
    [[nodiscard]] RecoveryResult scatter_members(node_t root,
                                                 packet_t packets_per_dest,
                                                 const FaultPlan& faults);

private:
    using Replanner =
        std::function<sim::Schedule(std::span<const DirectedLink> dead,
                                    RecoveryResult& out)>;
    /// The (node, packet) pairs the op semantically delivers — the pairs
    /// the byte-for-byte oracle comparison runs over. Deliberately *not*
    /// derived from the oracle schedule's full holdings: a replacement
    /// tree routes through different relays, and relay copies are an
    /// artifact of the route, not part of the collective's contract.
    using Contract = std::vector<std::pair<node_t, sim::packet_t>>;
    struct OracleStore; ///< fault-free ground truths, cached per operation

    [[nodiscard]] RecoveryResult
    run_resilient(const std::string& oracle_key, const sim::Schedule& initial,
                  Contract contract, const FaultPlan& faults,
                  const Replanner& replan);

    /// Builds the op's schedule over a given member set (called once per
    /// attempt — the view shrinks between attempts).
    using MemberScheduler = std::function<sim::Schedule(const mbr::View&)>;
    /// Derives the op's semantic contract from the attempt's schedule and
    /// member set.
    using MemberContract =
        std::function<Contract(const sim::Schedule&, const mbr::View&)>;

    [[nodiscard]] RecoveryResult
    run_member_resilient(const std::string& op_key, node_t root,
                         const FaultPlan& faults, const MemberScheduler& make,
                         const MemberContract& contract_of);

    dim_t n_;
    ResilientParams params_;
    std::uint32_t threads_;
    rt::TraceRecorder* trace_ = nullptr;
    std::unique_ptr<OracleStore> oracles_;
    mbr::View view_;
};

} // namespace hcube::ft
