// The runtime fault model (hcube::ft): what can go wrong on a link, how a
// failure is described once detected, and the narrow hook through which
// faults are injected into the channel layer.
//
// The paper's reliability dividend — the MSBT is log N *edge-disjoint*
// ERSBTs — only pays off if the runtime can experience a link failure,
// notice it, and route around it. This header defines the shared vocabulary
// of that loop:
//
//   inject   FaultPlan + ChannelFaultHook — a deterministic, PRNG-seedable
//            list of per-directed-link faults applied inside ChannelBank at
//            the instant a block is pushed, so the barrier Player and the
//            dataflow AsyncPlayer feel byte-identical failures;
//   detect   DetectConfig + FaultReport — a bounded arrival wait on pops
//            plus the existing per-block checksum, promoted from a counter
//            into a structured report (which directed link, which logical
//            cycle, which fault class) that aborts an in-flight plan;
//   recover  ft::ResilientComm (resilient.hpp) — replans around the dead
//            link and re-executes idempotently.
//
// This header is deliberately free of rt/ includes: rt/channel.hpp includes
// it for the hook interface, while the ft library's .cpps link against
// hypercoll_rt — dependency edges point one way at each level.
#pragma once

#include "hc/types.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace hcube::ft {

using hc::dim_t;
using hc::node_t;

// ---------------------------------------------------------------------------
// Injection side
// ---------------------------------------------------------------------------

/// A directed cube link, the unit at which faults are injected and links
/// are declared dead (a channel is directed; the reverse direction is a
/// different channel and may be healthy).
struct DirectedLink {
    node_t from = 0;
    node_t to = 0;

    friend bool operator==(const DirectedLink&,
                           const DirectedLink&) = default;
};

/// What a fault does to a block crossing the link.
enum class InjectClass : std::uint8_t {
    kill_link,       ///< every push from `at_push` onwards is swallowed
    transient_drop,  ///< `pushes` consecutive pushes are swallowed
    corrupt_payload, ///< the block's payload is perturbed before delivery
    delay_delivery,  ///< delivery is delayed by `param` microseconds
};

[[nodiscard]] constexpr const char* to_string(InjectClass c) noexcept {
    switch (c) {
    case InjectClass::kill_link: return "kill-link";
    case InjectClass::transient_drop: return "transient-drop";
    case InjectClass::corrupt_payload: return "corrupt-payload";
    case InjectClass::delay_delivery: return "delay-delivery";
    }
    return "?";
}

/// One injected fault: on the directed link `link`, affect the logical
/// pushes numbered [at_push, at_push + pushes) (the k-th block the schedule
/// ever sends across that link, whether or not earlier ones were dropped).
struct FaultSpec {
    DirectedLink link;
    InjectClass cls = InjectClass::kill_link;
    std::uint32_t at_push = 0;
    std::uint32_t pushes = ~std::uint32_t{0};
    /// corrupt_payload: perturbation salt; delay_delivery: microseconds.
    std::uint32_t param = 0;
};

/// A deterministic fault scenario: a list of FaultSpecs, built either by
/// the fluent helpers or PRNG-seeded via `random`. The plan is pure data —
/// it is mapped onto a compiled rt::Plan's channels by ft::FaultInjector.
class FaultPlan {
public:
    FaultPlan() = default;

    /// The link dies permanently before its `at_push`-th block crosses.
    FaultPlan& kill_link(node_t from, node_t to, std::uint32_t at_push = 0);

    /// `pushes` consecutive blocks from `at_push` vanish; later ones pass.
    FaultPlan& drop(node_t from, node_t to, std::uint32_t at_push,
                    std::uint32_t pushes = 1);

    /// The payload of `pushes` blocks from `at_push` is perturbed (the
    /// receiver's checksum catches it); `salt` varies the perturbation.
    FaultPlan& corrupt(node_t from, node_t to, std::uint32_t at_push,
                       std::uint32_t pushes = 1, std::uint32_t salt = 1);

    /// `pushes` blocks from `at_push` arrive `microseconds` late (absorbed
    /// by the bounded arrival wait when shorter than the timeout).
    FaultPlan& delay(node_t from, node_t to, std::uint32_t at_push,
                     std::uint32_t microseconds, std::uint32_t pushes = 1);

    [[nodiscard]] const std::vector<FaultSpec>& specs() const noexcept {
        return specs_;
    }
    [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }

    /// PRNG-seeded scenario: `count` faults on distinct random directed
    /// links of the n-cube, classes cycled through kill / drop / corrupt /
    /// delay. Deterministic for a given seed.
    [[nodiscard]] static FaultPlan random(dim_t n, std::uint64_t seed,
                                          std::uint32_t count);

private:
    std::vector<FaultSpec> specs_;
};

/// Verdict of the injection hook for one push.
enum class PushVerdict : std::uint8_t {
    deliver, ///< publish the block (possibly after mutation / delay)
    drop,    ///< swallow it: the producer sees success, nothing arrives
};

/// The narrow hook ChannelBank consults on every push while a hook is
/// installed. Called on the producer's thread with the payload already
/// copied into the ring slot but before publication, so the hook may
/// mutate the payload in place (corruption), sleep (delay), or veto the
/// publication (drop). `seq` is the channel's publication counter; an
/// injector that must count *logical* pushes across drops keeps its own
/// per-channel counter (pushes on one channel are serialized by the
/// engines' ordering guarantees).
class ChannelFaultHook {
public:
    virtual ~ChannelFaultHook() = default;
    virtual PushVerdict on_push(std::uint32_t channel, std::uint32_t seq,
                                std::span<double> payload) noexcept = 0;
};

// ---------------------------------------------------------------------------
// Detection side
// ---------------------------------------------------------------------------

/// How a failure manifested at the receiver.
enum class DetectClass : std::uint8_t {
    none,             ///< no fault detected
    arrival_timeout,  ///< the expected block never arrived in bound
    checksum_mismatch,///< the block arrived with a corrupted payload
    stream_mismatch,  ///< wrong packet or sequence stamp at the ring head
};

[[nodiscard]] constexpr const char* to_string(DetectClass c) noexcept {
    switch (c) {
    case DetectClass::none: return "none";
    case DetectClass::arrival_timeout: return "arrival-timeout";
    case DetectClass::checksum_mismatch: return "checksum-mismatch";
    case DetectClass::stream_mismatch: return "stream-mismatch";
    }
    return "?";
}

/// Structured failure description raised by an execution engine: which
/// directed link failed, during which logical schedule cycle, and how the
/// failure manifested. The first fault of a run wins; the engine then
/// aborts and drains the in-flight plan.
struct FaultReport {
    DetectClass cls = DetectClass::none;
    node_t from = 0;           ///< sending endpoint of the failed link
    node_t to = 0;             ///< receiving endpoint
    std::uint32_t channel = 0; ///< compiled channel id (diagnostics)
    std::uint32_t cycle = 0;   ///< logical schedule cycle of the receive
    std::uint32_t packet = 0;  ///< packet the receive expected

    [[nodiscard]] bool faulted() const noexcept {
        return cls != DetectClass::none;
    }
};

/// The physical medium a plan's blocks travel over. `ring` is the
/// in-process SPSC descriptor ring bank (nodes are threads); `uds` and
/// `tcp` are the hcube::net socket transports (nodes are processes on one
/// host / across hosts). Detection bounds, retry pacing, and the bench
/// JSON's `transport` column are all keyed on this.
enum class TransportClass : std::uint8_t {
    ring,
    uds,
    tcp,
};

[[nodiscard]] constexpr const char* to_string(TransportClass t) noexcept {
    switch (t) {
    case TransportClass::ring: return "ring";
    case TransportClass::uds: return "uds";
    case TransportClass::tcp: return "tcp";
    }
    return "?";
}

/// Detection policy for an execution engine. Disabled by default (timeout
/// 0): pops keep the legacy behavior of counting a channel fault and
/// moving on, so existing fault-free workloads are untouched.
struct DetectConfig {
    /// Bound on how long a pop waits for its block before declaring the
    /// link dead. 0 disables detection (and the abort path) entirely.
    /// A published block is always visible by the time its pop runs (the
    /// barrier or the dependency edge provides the happens-before), so the
    /// wait only ever expires on a genuinely missing block — the bound can
    /// be tight without risking false positives.
    std::uint32_t arrival_timeout_us = 0;
    /// Abort and drain the plan on the first detected fault (the recovery
    /// path); false keeps counting faults to the end of the run.
    bool abort_on_fault = true;

    [[nodiscard]] bool enabled() const noexcept {
        return arrival_timeout_us > 0;
    }

    /// Default arrival bound per transport. The ring value is the
    /// thread-tuned bound ft::ResilientComm always used; socket transports
    /// wait orders of magnitude longer because an expected block's arrival
    /// is asynchronous (an I/O thread publishes it after a wire crossing,
    /// possibly after ack-timeout retransmits) — the happens-before
    /// invariant that let the ring bound be tight does not hold there.
    [[nodiscard]] static constexpr std::uint32_t
    default_arrival_timeout_us(TransportClass t) noexcept {
        switch (t) {
        case TransportClass::ring: return 2'000;
        case TransportClass::uds: return 500'000;
        case TransportClass::tcp: return 2'000'000;
        }
        return 2'000;
    }

    /// A detection policy scaled for `t`, with abort-and-drain on.
    [[nodiscard]] static constexpr DetectConfig
    for_transport(TransportClass t) noexcept {
        return {.arrival_timeout_us = default_arrival_timeout_us(t),
                .abort_on_fault = true};
    }
};

} // namespace hcube::ft
