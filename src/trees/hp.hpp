// Hamiltonian-path broadcast trees (paper §3.4 baselines).
//
// A Hamiltonian path is a (degenerate) spanning tree; the paper compares
// broadcasting through it against the SBT/TCBT/MSBT and mentions two
// variations: the source at one end of the path, and the source at the
// center (two arms of roughly N/2 nodes). Both are binary-reflected Gray
// code paths.
#pragma once

#include "trees/spanning_tree.hpp"

namespace hcube::trees {

/// Where the source sits on the Hamiltonian path.
enum class HpVariant {
    source_at_end,    ///< one arm of N-1 edges
    source_at_center, ///< two arms of ~N/2 edges each (the "factor of two"
                      ///< variation of §3.4)
};

/// Builds a Hamiltonian path of the n-cube as a spanning tree rooted at `s`.
/// With source_at_end the root has one child; with source_at_center, two.
[[nodiscard]] SpanningTree build_hamiltonian_path(dim_t n, node_t s,
                                                  HpVariant variant);

} // namespace hcube::trees
