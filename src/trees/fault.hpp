// Fault-aware spanning trees: dimension-permuted SBTs and link-avoiding
// construction.
//
// The SBT of §3.1 privileges the natural bit order; relabelling the cube's
// dimensions by any permutation yields an equally valid binomial tree using
// a different set of links (a cube automorphism image). That freedom routes
// a broadcast around failed links: a link not incident to the source is
// avoided by a suitable permutation (putting its dimension first confines
// that dimension's tree edges to the source's own port). A link *at* the
// source can never be avoided within the SBT family — the neighbor across
// it has a single-bit relative address, and every permuted SBT parents it
// directly to the source — so a BFS spanning tree of the surviving graph
// serves as the general fallback (the cube minus fewer than n links stays
// connected).
#pragma once

#include "trees/spanning_tree.hpp"

#include <span>
#include <utility>
#include <vector>

namespace hcube::trees {

/// An undirected cube link, stored with the smaller endpoint first.
using Link = std::pair<node_t, node_t>;

/// Normalizes an undirected link (endpoint order independent).
[[nodiscard]] Link make_link(node_t a, node_t b);

/// Children of `i` in the SBT rooted at `s` built over the dimension
/// ranking `order` (a permutation of 0..n-1; order.back() plays the role
/// bit n-1 plays in the standard SBT). order == identity reproduces
/// sbt_children.
[[nodiscard]] std::vector<node_t>
sbt_children_permuted(node_t i, node_t s, dim_t n,
                      std::span<const dim_t> order);

/// Parent counterpart (complements the highest-*ranked* set bit of i ^ s).
[[nodiscard]] node_t sbt_parent_permuted(node_t i, node_t s, dim_t n,
                                         std::span<const dim_t> order);

/// Materializes the permuted SBT.
[[nodiscard]] SpanningTree build_sbt_permuted(dim_t n, node_t s,
                                              std::span<const dim_t> order);

/// True if `tree` uses none of `failed` (as undirected links).
[[nodiscard]] bool tree_avoids(const SpanningTree& tree,
                               std::span<const Link> failed);

/// Builds a broadcast tree rooted at `s` avoiding every failed link:
/// first tries the n cyclic dimension rotations and a few random
/// permutations of the SBT (preserving binomial structure and height n);
/// if no SBT works (e.g. a fault at the source), falls back to a BFS
/// spanning tree of the surviving graph. Throws check_error if the
/// surviving graph is disconnected.
[[nodiscard]] SpanningTree
build_broadcast_tree_avoiding(dim_t n, node_t s, std::span<const Link> failed,
                              std::uint64_t seed = 42);

} // namespace hcube::trees
