#include "trees/hp.hpp"

#include "common/check.hpp"
#include "hc/gray.hpp"

#include <map>

namespace hcube::trees {

SpanningTree build_hamiltonian_path(dim_t n, node_t s, HpVariant variant) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    const node_t count = node_t{1} << n;
    HCUBE_ENSURE(s < count);

    // Choose the path start so the source lands at the desired position.
    const node_t source_pos =
        (variant == HpVariant::source_at_end) ? 0 : count / 2;
    const node_t start = s ^ hc::gray_encode(source_pos);
    const std::vector<node_t> path = hc::gray_path(n, start);
    HCUBE_ENSURE(path[source_pos] == s);

    // Successor map: from the source position, walk outwards along the path
    // in both directions (the "end" variant has an empty left arm).
    std::map<node_t, std::vector<node_t>> kids;
    for (node_t p = source_pos; p + 1 < count; ++p) {
        kids[path[p]].push_back(path[p + 1]);
    }
    for (node_t p = source_pos; p > 0; --p) {
        kids[path[p]].push_back(path[p - 1]);
    }

    return materialize_tree(n, s, [&kids](node_t i) {
        auto it = kids.find(i);
        return it == kids.end() ? std::vector<node_t>{} : it->second;
    });
}

} // namespace hcube::trees
