// Spanning Binomial Tree (paper §3.1).
//
// Rooted at source s, the SBT connects node i to the neighbors obtained by
// complementing any bit among the leading zeroes of the relative address
// c = i ⊕ s. The parent of i ≠ s complements the highest-order one bit of c.
//
// Structural facts used by the routing layer (paper §1):
//  * level ℓ holds C(n, ℓ) nodes — exactly the nodes at Hamming distance ℓ;
//  * subtree through port m (relative address with lowest set bit m) has
//    2^(n-1-m) nodes, so subtree 0 holds half the cube.
#pragma once

#include "trees/spanning_tree.hpp"

#include <vector>

namespace hcube::trees {

/// Children of node `i` in the SBT rooted at `s`
/// (complement each leading zero of i ⊕ s).
[[nodiscard]] std::vector<node_t> sbt_children(node_t i, node_t s, dim_t n);

/// Parent of node `i` in the SBT rooted at `s`
/// (complement the highest one bit of i ⊕ s). Returns kNoParent for i == s.
[[nodiscard]] node_t sbt_parent(node_t i, node_t s, dim_t n);

/// Materializes the SBT rooted at `s` in an n-cube.
[[nodiscard]] SpanningTree build_sbt(dim_t n, node_t s);

} // namespace hcube::trees
