#include "trees/fault.hpp"

#include "common/check.hpp"
#include "common/prng.hpp"
#include "hc/bits.hpp"

#include <algorithm>
#include <deque>
#include <vector>

namespace hcube::trees {

Link make_link(node_t a, node_t b) {
    HCUBE_ENSURE_MSG(hc::hamming(a, b) == 1, "not a cube link");
    return {std::min(a, b), std::max(a, b)};
}

namespace {

/// Failed-link membership as one sorted vector with binary-search lookups —
/// a single contiguous allocation per query instead of a node-per-link
/// std::set rebuild.
class LinkSet {
public:
    explicit LinkSet(std::span<const Link> links)
        : links_(links.begin(), links.end()) {
        std::ranges::sort(links_);
    }

    [[nodiscard]] bool contains(const Link& link) const {
        return std::ranges::binary_search(links_, link);
    }

private:
    std::vector<Link> links_;
};

} // namespace

std::vector<node_t> sbt_children_permuted(node_t i, node_t s, dim_t n,
                                          std::span<const dim_t> order) {
    HCUBE_ENSURE(order.size() == static_cast<std::size_t>(n));
    const node_t c = i ^ s;
    // Highest *rank* t with bit order[t] set.
    dim_t top_rank = -1;
    for (dim_t t = n - 1; t >= 0; --t) {
        if (hc::test_bit(c, order[static_cast<std::size_t>(t)])) {
            top_rank = t;
            break;
        }
    }
    std::vector<node_t> kids;
    for (dim_t t = top_rank + 1; t < n; ++t) {
        kids.push_back(hc::flip_bit(i, order[static_cast<std::size_t>(t)]));
    }
    return kids;
}

node_t sbt_parent_permuted(node_t i, node_t s, dim_t n,
                           std::span<const dim_t> order) {
    HCUBE_ENSURE(order.size() == static_cast<std::size_t>(n));
    const node_t c = i ^ s;
    if (c == 0) {
        return SpanningTree::kNoParent;
    }
    for (dim_t t = n - 1; t >= 0; --t) {
        if (hc::test_bit(c, order[static_cast<std::size_t>(t)])) {
            return hc::flip_bit(i, order[static_cast<std::size_t>(t)]);
        }
    }
    return SpanningTree::kNoParent; // unreachable
}

SpanningTree build_sbt_permuted(dim_t n, node_t s,
                                std::span<const dim_t> order) {
    return materialize_tree(n, s, [=](node_t i) {
        return sbt_children_permuted(i, s, n, order);
    });
}

bool tree_avoids(const SpanningTree& tree, std::span<const Link> failed) {
    const LinkSet bad(failed);
    for (node_t i = 0; i < tree.node_count(); ++i) {
        if (i != tree.root && bad.contains(make_link(i, tree.parent[i]))) {
            return false;
        }
    }
    return true;
}

namespace {

/// BFS spanning tree of the cube minus `failed`, rooted at s. Children are
/// attached in discovery (dimension) order.
SpanningTree build_bfs_tree_avoiding(dim_t n, node_t s,
                                     std::span<const Link> failed) {
    const node_t count = node_t{1} << n;
    const LinkSet bad(failed);

    std::vector<std::vector<node_t>> kids(count);
    std::vector<char> seen(count, 0);
    seen[s] = 1;
    std::deque<node_t> queue{s};
    node_t reached = 1;
    while (!queue.empty()) {
        const node_t u = queue.front();
        queue.pop_front();
        for (dim_t d = 0; d < n; ++d) {
            const node_t v = hc::flip_bit(u, d);
            if (seen[v] || bad.contains(make_link(u, v))) {
                continue;
            }
            seen[v] = 1;
            kids[u].push_back(v);
            queue.push_back(v);
            ++reached;
        }
    }
    HCUBE_ENSURE_MSG(reached == count,
                     "failed links disconnect the cube from the source");
    return materialize_tree(n, s, [&kids](node_t i) { return kids[i]; });
}

} // namespace

SpanningTree build_broadcast_tree_avoiding(dim_t n, node_t s,
                                           std::span<const Link> failed,
                                           std::uint64_t seed) {
    std::vector<dim_t> order(static_cast<std::size_t>(n));
    // Cyclic rotations of the identity ranking first (deterministic, covers
    // every "which dimension goes first" choice)...
    for (dim_t shift = 0; shift < n; ++shift) {
        for (dim_t t = 0; t < n; ++t) {
            order[static_cast<std::size_t>(t)] = (t + shift) % n;
        }
        SpanningTree tree = build_sbt_permuted(n, s, order);
        if (tree_avoids(tree, failed)) {
            return tree;
        }
    }
    // ...then a few random permutations.
    SplitMix64 rng(seed);
    for (int attempt = 0; attempt < 32; ++attempt) {
        rng.shuffle(order);
        SpanningTree tree = build_sbt_permuted(n, s, order);
        if (tree_avoids(tree, failed)) {
            return tree;
        }
    }
    // SBT family exhausted (e.g. a fault on one of the source's own links):
    // generic BFS tree of the surviving graph.
    SpanningTree tree = build_bfs_tree_avoiding(n, s, failed);
    HCUBE_ENSURE(tree_avoids(tree, failed));
    return tree;
}

} // namespace hcube::trees
