// Multiple Spanning Binomial Trees (paper §3.2) and the cycle labelling of
// §3.3.2.
//
// The MSBT graph is the union of log N edge-disjoint *edge-reversed* spanning
// binomial trees (ERSBTs): the j-th ERSBT is an SBT rooted at the source's
// neighbor across port j, rotated so the source sits in its smallest subtree,
// with the edge between that root and the source reversed. We materialize the
// j-th ERSBT as a spanning tree rooted at the source s whose single child is
// s ⊕ 2^j (the paper's parent function already encodes this reversal).
//
// The defining index k for node i in tree j: with c = i ⊕ s, k is the first
// one bit of c strictly to the right of bit j, scanning cyclically
// (k = j when c = 2^j; k = -1 when c = 0).
//
// The labelling f(i, j) assigns each tree edge a cycle in 0..2n-1 such that
// one packet per subtree can be broadcast in 2 log N cycles with one send and
// one receive per node per cycle, and pipelining continues every log N
// cycles (the three conditions of §3.3.2, all verified in tests).
#pragma once

#include "trees/spanning_tree.hpp"

#include <vector>

namespace hcube::trees {

/// Children of node `i` in the j-th ERSBT of the MSBT graph with source `s`.
[[nodiscard]] std::vector<node_t> msbt_children(node_t i, dim_t j, node_t s,
                                                dim_t n);

/// Parent of node `i` in the j-th ERSBT (kNoParent for i == s).
[[nodiscard]] node_t msbt_parent(node_t i, dim_t j, node_t s, dim_t n);

/// The paper's labelling f(i, j): the cycle (0-based, in 0..2n-1) in which
/// node i receives the first packet of subtree j on its input edge.
/// Precondition: i != s.
[[nodiscard]] dim_t msbt_edge_label(node_t i, dim_t j, node_t s, dim_t n);

/// Materializes the j-th ERSBT as a spanning tree rooted at `s`.
[[nodiscard]] SpanningTree build_ersbt(dim_t n, dim_t j, node_t s);

/// The whole MSBT graph: the n ERSBTs of source `s`.
struct MsbtGraph {
    dim_t n = 0;
    node_t source = 0;
    std::vector<SpanningTree> trees; ///< trees[j] = j-th ERSBT, all rooted at source

    [[nodiscard]] node_t node_count() const noexcept { return node_t{1} << n; }
};

/// Builds all n ERSBTs. The edge-disjointness of the union is a theorem of
/// the paper (§3.2) and is verified by tests, not re-checked here.
[[nodiscard]] MsbtGraph build_msbt(dim_t n, node_t s);

} // namespace hcube::trees
