#include "trees/tcbt.hpp"

#include "common/check.hpp"
#include "common/lru_cache.hpp"
#include "common/prng.hpp"
#include "hc/bits.hpp"

#include <algorithm>
#include <optional>
#include <tuple>
#include <vector>

namespace hcube::trees {

namespace {

/// Abstract DRCB shape: node 0 is the primary root R, node 1 the secondary
/// root R'; each root carries a complete binary subtree with 2^(n-1) - 1
/// nodes. Nodes are created so that every parent index precedes its
/// children.
struct Shape {
    std::vector<int> parent;
    std::vector<std::vector<int>> children;
    std::vector<dim_t> depth;
    std::vector<std::vector<int>> by_level;

    void add_node(int par) {
        const int node = static_cast<int>(parent.size());
        parent.push_back(par);
        children.emplace_back();
        depth.push_back(par < 0 ? 0
                                : depth[static_cast<std::size_t>(par)] + 1);
        if (par >= 0) {
            children[static_cast<std::size_t>(par)].push_back(node);
        }
        if (static_cast<std::size_t>(depth.back()) >= by_level.size()) {
            by_level.resize(static_cast<std::size_t>(depth.back()) + 1);
        }
        by_level[static_cast<std::size_t>(depth.back())].push_back(node);
    }
};

void add_cbt(Shape& shape, int parent, dim_t levels) {
    if (levels == 0) {
        return;
    }
    const int node = static_cast<int>(shape.parent.size());
    shape.add_node(parent);
    add_cbt(shape, node, levels - 1);
    add_cbt(shape, node, levels - 1);
}

Shape make_drcb_shape(dim_t n) {
    Shape shape;
    shape.add_node(-1); // R
    shape.add_node(0);  // R'
    add_cbt(shape, 0, n - 1);
    add_cbt(shape, 1, n - 1);
    HCUBE_ENSURE(shape.parent.size() == (std::size_t{1} << n));
    return shape;
}

/// One randomized level-by-level attempt: the images of all tree nodes above
/// the current level are fixed; within a level every tree node must be
/// matched to a distinct unused cube neighbour of its parent's image — a
/// bipartite matching solved exactly with Kuhn's algorithm. If any level has
/// no perfect matching the attempt fails and the caller restarts with a new
/// randomization.
class LevelMatcher {
public:
    LevelMatcher(const Shape& shape, dim_t n, node_t s, SplitMix64& rng)
        : shape_(shape), n_(n), count_(node_t{1} << n), rng_(rng),
          img_(shape.parent.size(), SpanningTree::kNoParent),
          used_(count_, 0) {
        img_[0] = s;
        used_[s] = 1;
    }

    std::optional<std::vector<node_t>> run() {
        // Level-by-level with bounded backtracking: a level that admits no
        // perfect matching sends the search back to re-randomize the level
        // above it (whose placement caused the infeasibility), rather than
        // restarting from scratch.
        constexpr int kTriesPerLevel = 30;
        constexpr std::uint64_t kStepCap = 20000;
        const std::size_t levels = shape_.by_level.size();
        std::vector<int> tries(levels, 0);
        std::size_t level = 1;
        std::uint64_t steps = 0;
        while (level < levels) {
            if (++steps > kStepCap) {
                return std::nullopt;
            }
            if (match_level(shape_.by_level[level])) {
                ++level;
                if (level < levels) {
                    tries[level] = 0;
                }
                continue;
            }
            for (;;) {
                if (level == 1) {
                    return std::nullopt;
                }
                --level;
                unassign_level(shape_.by_level[level]);
                if (++tries[level] <= kTriesPerLevel) {
                    break;
                }
                tries[level] = 0;
            }
        }
        return img_;
    }

private:
    [[nodiscard]] std::size_t free_degree(node_t c) const {
        std::size_t free_count = 0;
        for (dim_t e = 0; e < n_; ++e) {
            free_count += static_cast<std::size_t>(!used_[hc::flip_bit(c, e)]);
        }
        return free_count;
    }

    /// Candidate cube nodes for tree node v, heuristically ordered: nodes
    /// that must host children prefer well-connected spots, leaves prefer
    /// dead ends (preserving connectivity for later levels).
    [[nodiscard]] std::vector<node_t> candidates(int v) {
        const node_t p =
            img_[static_cast<std::size_t>(shape_.parent[static_cast<std::size_t>(v)])];
        std::vector<dim_t> dims(static_cast<std::size_t>(n_));
        for (dim_t d = 0; d < n_; ++d) {
            dims[static_cast<std::size_t>(d)] = d;
        }
        rng_.shuffle(dims);
        std::vector<node_t> result;
        for (const dim_t d : dims) {
            const node_t c = hc::flip_bit(p, d);
            if (!used_[c]) {
                result.push_back(c);
            }
        }
        const bool is_leaf =
            shape_.children[static_cast<std::size_t>(v)].empty();
        std::ranges::stable_sort(result, [&](node_t a, node_t b) {
            return is_leaf ? free_degree(a) < free_degree(b)
                           : free_degree(a) > free_degree(b);
        });
        return result;
    }

    void unassign_level(const std::vector<int>& level_nodes) {
        for (const int v : level_nodes) {
            node_t& image = img_[static_cast<std::size_t>(v)];
            used_[image] = 0;
            image = SpanningTree::kNoParent;
        }
    }

    bool match_level(const std::vector<int>& level_nodes) {
        // match_cube_[c]: index into level_nodes currently holding c.
        std::vector<std::size_t> match_cube(count_, kUnmatched);
        std::vector<std::vector<node_t>> cand(level_nodes.size());
        std::vector<node_t> assigned(level_nodes.size(),
                                     SpanningTree::kNoParent);
        for (std::size_t i = 0; i < level_nodes.size(); ++i) {
            cand[i] = candidates(level_nodes[i]);
        }
        for (std::size_t i = 0; i < level_nodes.size(); ++i) {
            std::vector<char> visited(count_, 0);
            if (!augment(i, cand, match_cube, assigned, visited)) {
                return false;
            }
        }
        for (std::size_t i = 0; i < level_nodes.size(); ++i) {
            img_[static_cast<std::size_t>(level_nodes[i])] = assigned[i];
            used_[assigned[i]] = 1;
        }
        return true;
    }

    bool augment(std::size_t i, const std::vector<std::vector<node_t>>& cand,
                 std::vector<std::size_t>& match_cube,
                 std::vector<node_t>& assigned, std::vector<char>& visited) {
        for (const node_t c : cand[i]) {
            if (visited[c]) {
                continue;
            }
            visited[c] = 1;
            if (match_cube[c] == kUnmatched ||
                augment(match_cube[c], cand, match_cube, assigned, visited)) {
                match_cube[c] = i;
                assigned[i] = c;
                return true;
            }
        }
        return false;
    }

    static constexpr std::size_t kUnmatched = ~std::size_t{0};

    const Shape& shape_;
    dim_t n_;
    node_t count_;
    SplitMix64& rng_;
    std::vector<node_t> img_;
    std::vector<char> used_;
};

} // namespace

TcbtShapeInfo tcbt_shape(dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    return {n, std::uint64_t{1} << n};
}

SpanningTree build_tcbt(dim_t n, node_t s, std::uint64_t seed) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(s < (node_t{1} << n));

    // The search is deterministic but takes seconds at n = 8; memoize.
    // LruCache provides the reader/writer idiom (shared-lock lookups,
    // factory outside any lock, copy-out under the lock); capacity 0 keeps
    // this a pure memo, and determinism of the search makes a raced
    // duplicate build harmless — both copies are identical.
    using Key = std::tuple<dim_t, node_t, std::uint64_t>;
    static LruCache<Key, SpanningTree> cache(0);
    return cache.get_or_create(Key{n, s, seed}, [n, s, seed] {
        const Shape shape = make_drcb_shape(n);
        constexpr int kMaxRestarts = 200;

        for (int restart = 0; restart < kMaxRestarts; ++restart) {
            SplitMix64 rng(seed + static_cast<std::uint64_t>(restart) *
                                      std::uint64_t{0x9e3779b97f4a7c15});
            LevelMatcher matcher(shape, n, s, rng);
            const auto img = matcher.run();
            if (!img) {
                continue;
            }
            std::vector<std::vector<node_t>> kids(node_t{1} << n);
            for (std::size_t v = 0; v < shape.parent.size(); ++v) {
                for (const int c : shape.children[v]) {
                    kids[(*img)[v]].push_back(
                        (*img)[static_cast<std::size_t>(c)]);
                }
            }
            return materialize_tree(n, s,
                                    [&kids](node_t i) { return kids[i]; });
        }
        HCUBE_ENSURE_MSG(false, "TCBT embedding search budget exhausted");
        __builtin_unreachable();
    });
}

} // namespace hcube::trees
