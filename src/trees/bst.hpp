// Balanced Spanning Tree (paper §4.1).
//
// The BST prunes the MSBT graph into a single spanning tree whose log N
// subtrees each hold ≈ N / log N nodes: node i (relative address c = i ⊕ s)
// belongs to subtree base(c) — the minimum number of right rotations taking
// c to the minimal value among its rotations (hc::base). The parent of i
// complements bit k, the first one bit of c cyclically right of bit base(c);
// children complement a bit of the zero run below base(c) *provided the
// result keeps the same base*.
//
// Properties proved in the paper and verified in tests:
//  1. one subtree has height log N, all others log N - 1;
//  2. max fanout at level i is ceil((log N - i) / 2) for i >= 1 (the
//     paper prints a floor; measurement shows the ceiling is the tight
//     bound — see DESIGN.md errata);
//  3. a node has at least as many subtree descendants at distance d as any
//     of its children;
//  4. excluding the all-ones node, subtrees are isomorphic when n is prime;
//  5. subtrees P..log N - 1 contain no cyclic node of period P;
//  6. every cyclic node is a leaf.
#pragma once

#include "trees/spanning_tree.hpp"

#include <vector>

namespace hcube::trees {

/// Subtree index of node `i` in the BST rooted at `s`: base(i ⊕ s).
/// Precondition: i != s.
[[nodiscard]] dim_t bst_subtree_of(node_t i, node_t s, dim_t n);

/// Children of node `i` in the BST rooted at `s`.
[[nodiscard]] std::vector<node_t> bst_children(node_t i, node_t s, dim_t n);

/// Parent of node `i` in the BST rooted at `s` (kNoParent for i == s).
[[nodiscard]] node_t bst_parent(node_t i, node_t s, dim_t n);

/// Materializes the BST rooted at `s` in an n-cube.
[[nodiscard]] SpanningTree build_bst(dim_t n, node_t s);

} // namespace hcube::trees
