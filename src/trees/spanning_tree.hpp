// Materialized spanning trees of a Boolean n-cube.
//
// The SBT / MSBT / BST / TCBT / HP constructions are all defined by
// parent / children functions on node addresses (paper §3-4). For routing,
// validation and traversal we materialize them into one flat structure with
// per-node parent, children, level and root-subtree labels.
#pragma once

#include "hc/cube.hpp"
#include "hc/types.hpp"

#include <functional>
#include <limits>
#include <vector>

namespace hcube::trees {

using hc::dim_t;
using hc::node_t;

/// A rooted spanning tree of an n-cube, stored as flat per-node arrays.
///
/// Every edge connects cube neighbors (dilation 1); validate() checks this
/// along with parent/children consistency and spanning-ness.
struct SpanningTree {
    /// Sentinel parent value for the root.
    static constexpr node_t kNoParent = std::numeric_limits<node_t>::max();
    /// Sentinel subtree label for the root itself.
    static constexpr dim_t kRootSubtree = -1;

    dim_t n = 0;        ///< cube dimension
    node_t root = 0;    ///< root node address
    std::vector<node_t> parent;                ///< parent[i]; kNoParent at root
    std::vector<std::vector<node_t>> children; ///< children[i] in send order
    std::vector<dim_t> level;                  ///< tree distance from root
    /// Root-subtree label of each node: the cube dimension of the edge on
    /// which the path from the root leaves the root (paper labels subtrees
    /// 0..n-1 by that port). kRootSubtree at the root.
    std::vector<dim_t> subtree;
    dim_t height = 0; ///< maximum level

    /// Number of nodes N = 2^n.
    [[nodiscard]] node_t node_count() const noexcept { return node_t{1} << n; }

    /// Nodes per root-subtree label, indexed by cube dimension of the first
    /// hop. Labels with no child of the root have size 0.
    [[nodiscard]] std::vector<std::uint64_t> subtree_sizes() const;

    /// Height of the subtree hanging off the root through port `j`
    /// (counted in edges from the root; 0 if the subtree is empty).
    [[nodiscard]] dim_t subtree_height(dim_t j) const;

    /// Nodes in breadth-first order starting at the root.
    [[nodiscard]] std::vector<node_t> bfs_order() const;

    /// Nodes of subtree `j` in depth-first (preorder) order, excluding the
    /// root. Children are visited in their stored order.
    [[nodiscard]] std::vector<node_t> subtree_preorder(dim_t j) const;
};

/// Produces the children of `i` for a tree rooted at `s` in an n-cube.
using ChildrenFn = std::function<std::vector<node_t>(node_t i)>;

/// Materializes a spanning tree from its children function by BFS from
/// `root`. Throws check_error if the function does not generate a spanning
/// tree (duplicate or out-of-range children, unreachable nodes) or uses a
/// non-cube edge.
[[nodiscard]] SpanningTree materialize_tree(dim_t n, node_t root,
                                            const ChildrenFn& children_of);

/// Materializes a tree spanning a *subset* of the cube: exactly
/// `expected_nodes` nodes (including the root) must be generated; every
/// address the children function never reaches stays isolated (parent
/// kNoParent, no children, level -1). The structural checks of
/// materialize_tree (cube edges, no duplicates) still apply. This is the
/// builder the membership layer (hcube::mbr) grows incomplete-cube trees
/// through; note that subtree_sizes() and subtree_preorder() assume a full
/// spanning tree and must not be called on a partial one.
[[nodiscard]] SpanningTree
materialize_partial_tree(dim_t n, node_t root, node_t expected_nodes,
                         const ChildrenFn& children_of);

/// Structural soundness: parent/children mutually consistent, every edge a
/// cube edge, exactly one root, all N nodes reachable, levels correct.
/// Throws check_error with a description on the first violation.
void validate_tree(const SpanningTree& tree);

/// True if trees `a` and `b` are isomorphic as rooted trees
/// (used for BST property 4: subtree isomorphism when n is prime).
[[nodiscard]] bool rooted_isomorphic(const SpanningTree& tree, node_t root_a,
                                     node_t root_b);

} // namespace hcube::trees
