#include "trees/msbt.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

namespace hcube::trees {

namespace {

/// The paper's defining index k for node i in tree j (c = i ⊕ s):
/// first one bit of c cyclically to the right of bit j; j itself if c = 2^j;
/// -1 if c = 0.
dim_t msbt_k(node_t c, dim_t j, dim_t n) {
    return hc::first_one_right_cyclic(c, j, n);
}

/// The paper's M_MSBT(c, j): bit positions strictly between k and j walking
/// cyclically upward from k+1 to j-1 (the zero run of c below bit j).
/// Empty when k + 1 ≡ j; all positions except j when k == j.
std::vector<dim_t> msbt_zero_run(dim_t k, dim_t j, dim_t n) {
    std::vector<dim_t> run;
    for (dim_t m = (k + 1) % n; m != j; m = (m + 1) % n) {
        run.push_back(m);
    }
    return run;
}

} // namespace

std::vector<node_t> msbt_children(node_t i, dim_t j, node_t s, dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(j >= 0 && j < n);
    const node_t c = i ^ s;
    if (c == 0) {
        // The source's only edge in tree j goes to the tree's root s ⊕ 2^j.
        return {hc::flip_bit(i, j)};
    }
    if (!hc::test_bit(c, j)) {
        return {}; // leaf of the j-th ERSBT
    }
    const dim_t k = msbt_k(c, j, n);
    std::vector<node_t> kids;
    for (const dim_t m : msbt_zero_run(k, j, n)) {
        kids.push_back(hc::flip_bit(i, m));
    }
    if (k != j) {
        // Internal node that is not the tree root also feeds the leaf
        // reached by clearing bit j.
        kids.push_back(hc::flip_bit(i, j));
    }
    return kids;
}

node_t msbt_parent(node_t i, dim_t j, node_t s, dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(j >= 0 && j < n);
    const node_t c = i ^ s;
    if (c == 0) {
        return SpanningTree::kNoParent;
    }
    if (!hc::test_bit(c, j)) {
        return hc::flip_bit(i, j);
    }
    return hc::flip_bit(i, msbt_k(c, j, n));
}

dim_t msbt_edge_label(node_t i, dim_t j, node_t s, dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    HCUBE_ENSURE(j >= 0 && j < n);
    const node_t c = i ^ s;
    HCUBE_ENSURE_MSG(c != 0, "the source has no input edge");
    if (!hc::test_bit(c, j)) {
        return j + n;
    }
    const dim_t k = msbt_k(c, j, n);
    return (k >= j) ? k : k + n;
}

SpanningTree build_ersbt(dim_t n, dim_t j, node_t s) {
    return materialize_tree(
        n, s, [=](node_t i) { return msbt_children(i, j, s, n); });
}

MsbtGraph build_msbt(dim_t n, node_t s) {
    MsbtGraph graph;
    graph.n = n;
    graph.source = s;
    graph.trees.reserve(static_cast<std::size_t>(n));
    for (dim_t j = 0; j < n; ++j) {
        graph.trees.push_back(build_ersbt(n, j, s));
    }
    return graph;
}

} // namespace hcube::trees
