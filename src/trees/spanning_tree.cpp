#include "trees/spanning_tree.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

#include <algorithm>
#include <deque>
#include <string>

namespace hcube::trees {

std::vector<std::uint64_t> SpanningTree::subtree_sizes() const {
    std::vector<std::uint64_t> sizes(static_cast<std::size_t>(n), 0);
    for (node_t i = 0; i < node_count(); ++i) {
        if (i != root) {
            ++sizes[static_cast<std::size_t>(subtree[i])];
        }
    }
    return sizes;
}

dim_t SpanningTree::subtree_height(dim_t j) const {
    dim_t h = 0;
    for (node_t i = 0; i < node_count(); ++i) {
        if (i != root && subtree[i] == j) {
            h = std::max(h, level[i]);
        }
    }
    return h;
}

std::vector<node_t> SpanningTree::bfs_order() const {
    std::vector<node_t> order;
    order.reserve(node_count());
    std::deque<node_t> queue{root};
    while (!queue.empty()) {
        const node_t i = queue.front();
        queue.pop_front();
        order.push_back(i);
        for (const node_t c : children[i]) {
            queue.push_back(c);
        }
    }
    return order;
}

std::vector<node_t> SpanningTree::subtree_preorder(dim_t j) const {
    std::vector<node_t> order;
    std::vector<node_t> stack;
    for (const node_t c : children[root]) {
        if (subtree[c] == j) {
            stack.push_back(c);
        }
    }
    while (!stack.empty()) {
        const node_t i = stack.back();
        stack.pop_back();
        order.push_back(i);
        // Push in reverse so preorder visits children in stored order.
        for (auto it = children[i].rbegin(); it != children[i].rend(); ++it) {
            stack.push_back(*it);
        }
    }
    return order;
}

SpanningTree materialize_tree(dim_t n, node_t root,
                              const ChildrenFn& children_of) {
    return materialize_partial_tree(n, root, node_t{1} << n, children_of);
}

SpanningTree materialize_partial_tree(dim_t n, node_t root,
                                      node_t expected_nodes,
                                      const ChildrenFn& children_of) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    const node_t count = node_t{1} << n;
    HCUBE_ENSURE(root < count);
    HCUBE_ENSURE(expected_nodes >= 1 && expected_nodes <= count);

    SpanningTree tree;
    tree.n = n;
    tree.root = root;
    tree.parent.assign(count, SpanningTree::kNoParent);
    tree.children.assign(count, {});
    tree.level.assign(count, -1);
    tree.subtree.assign(count, SpanningTree::kRootSubtree);

    tree.level[root] = 0;
    std::deque<node_t> queue{root};
    node_t visited = 0;
    while (!queue.empty()) {
        const node_t i = queue.front();
        queue.pop_front();
        ++visited;
        auto kids = children_of(i);
        for (const node_t c : kids) {
            HCUBE_ENSURE_MSG(c < count, "child address out of range");
            HCUBE_ENSURE_MSG(hc::hamming(i, c) == 1,
                             "tree edge is not a cube edge");
            HCUBE_ENSURE_MSG(tree.level[c] == -1 && c != root,
                             "node generated twice — not a tree");
            tree.parent[c] = i;
            tree.level[c] = tree.level[i] + 1;
            // A node inherits its subtree label from its parent; children of
            // the root start the subtree named after the first-hop port.
            tree.subtree[c] =
                (i == root) ? hc::lowest_one_bit(c ^ root) : tree.subtree[i];
            tree.height = std::max(tree.height, tree.level[c]);
            queue.push_back(c);
        }
        tree.children[i] = std::move(kids);
    }
    HCUBE_ENSURE_MSG(visited == expected_nodes,
                     expected_nodes == count
                         ? "children function does not span the cube"
                         : "children function does not span the member set");
    return tree;
}

void validate_tree(const SpanningTree& tree) {
    const node_t count = tree.node_count();
    HCUBE_ENSURE(tree.parent.size() == count);
    HCUBE_ENSURE(tree.children.size() == count);
    HCUBE_ENSURE(tree.parent[tree.root] == SpanningTree::kNoParent);

    node_t with_parent = 0;
    for (node_t i = 0; i < count; ++i) {
        if (i == tree.root) {
            continue;
        }
        const node_t p = tree.parent[i];
        HCUBE_ENSURE_MSG(p < count, "non-root node without a parent");
        HCUBE_ENSURE_MSG(hc::hamming(p, i) == 1, "tree edge not a cube edge");
        HCUBE_ENSURE_MSG(std::ranges::count(tree.children[p], i) == 1,
                         "parent does not list node exactly once as child");
        HCUBE_ENSURE_MSG(tree.level[i] == tree.level[p] + 1,
                         "level not parent level + 1");
        ++with_parent;
    }
    HCUBE_ENSURE_MSG(with_parent == count - 1, "wrong number of edges");

    std::size_t total_children = 0;
    for (node_t i = 0; i < count; ++i) {
        for (const node_t c : tree.children[i]) {
            HCUBE_ENSURE_MSG(tree.parent[c] == i,
                             "child does not point back to parent");
        }
        total_children += tree.children[i].size();
    }
    HCUBE_ENSURE(total_children == count - 1);
}

namespace {

/// AHU canonical string of the subtree rooted at `i`.
std::string canonical_shape(const SpanningTree& tree, node_t i) {
    std::vector<std::string> parts;
    parts.reserve(tree.children[i].size());
    for (const node_t c : tree.children[i]) {
        parts.push_back(canonical_shape(tree, c));
    }
    std::ranges::sort(parts);
    std::string out = "(";
    for (const auto& p : parts) {
        out += p;
    }
    out += ")";
    return out;
}

} // namespace

bool rooted_isomorphic(const SpanningTree& tree, node_t root_a, node_t root_b) {
    return canonical_shape(tree, root_a) == canonical_shape(tree, root_b);
}

} // namespace hcube::trees
