// Two-rooted Complete Binary Tree (paper §3.4 baseline; refs [2, 3]).
//
// The TCBT (a.k.a. double-rooted complete binary tree) on N = 2^n nodes is a
// complete binary tree with N-1 nodes whose root is split into two adjacent
// roots; it is a *spanning subgraph* of the n-cube (Bhatt & Ipsen 1985).
// Viewed as a tree rooted at the primary root R, R has two children: the
// secondary root R' and the root of R's half-size complete binary subtree;
// R' has one child. The tree height is n, leaves sit at depths n-1 and n.
//
// There is no simple closed-form embedding, and the constructive proofs in
// the literature thread several auxiliary lemmas; since this repository only
// needs concrete TCBT instances (the paper uses the TCBT purely as an
// analytic baseline and never runs it on hardware), we *find* an embedding
// with a deterministic randomized search (level-by-level exact bipartite
// matching with bounded backtracking), seeded for reproducibility. The
// search is fast for the cube sizes the benches simulate (n <= 8, seconds
// at n = 8); the analytic model covers all n. Embeddings are memoized per
// (n, root, seed).
#pragma once

#include "trees/spanning_tree.hpp"

#include <cstdint>

namespace hcube::trees {

/// Abstract (unembedded) TCBT shape facts for dimension n.
struct TcbtShapeInfo {
    dim_t height;          ///< n (through the secondary root)
    std::uint64_t nodes;   ///< 2^n
};

/// Shape facts without running the embedding search.
[[nodiscard]] TcbtShapeInfo tcbt_shape(dim_t n);

/// Builds a TCBT spanning tree of the n-cube rooted at `s` (the primary
/// root). The secondary root is children(s)[0]. Throws check_error if the
/// search budget is exhausted (does not happen for n <= 8; tests pin this
/// down).
[[nodiscard]] SpanningTree build_tcbt(dim_t n, node_t s,
                                      std::uint64_t seed = 1986);

} // namespace hcube::trees
