#include "trees/bst.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"
#include "hc/necklace.hpp"

namespace hcube::trees {

dim_t bst_subtree_of(node_t i, node_t s, dim_t n) {
    const node_t c = i ^ s;
    HCUBE_ENSURE_MSG(c != 0, "the root belongs to no subtree");
    return hc::base(c, n);
}

std::vector<node_t> bst_children(node_t i, node_t s, dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    const node_t c = i ^ s;
    if (c == 0) {
        std::vector<node_t> kids;
        kids.reserve(static_cast<std::size_t>(n));
        for (dim_t m = 0; m < n; ++m) {
            kids.push_back(hc::flip_bit(i, m));
        }
        return kids;
    }
    const dim_t j = hc::base(c, n);
    const dim_t k = hc::first_one_right_cyclic(c, j, n);
    std::vector<node_t> kids;
    // Candidate children set a bit of the zero run strictly between k and j
    // (cyclically); only those preserving the base stay in this subtree.
    for (dim_t m = (k + 1) % n; m != j; m = (m + 1) % n) {
        const node_t q = hc::flip_bit(i, m);
        if (hc::base(q ^ s, n) == j) {
            kids.push_back(q);
        }
    }
    return kids;
}

node_t bst_parent(node_t i, node_t s, dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    const node_t c = i ^ s;
    if (c == 0) {
        return SpanningTree::kNoParent;
    }
    const dim_t j = hc::base(c, n);
    const dim_t k = hc::first_one_right_cyclic(c, j, n);
    return hc::flip_bit(i, k);
}

SpanningTree build_bst(dim_t n, node_t s) {
    return materialize_tree(
        n, s, [=](node_t i) { return bst_children(i, s, n); });
}

} // namespace hcube::trees
