#include "trees/sbt.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

namespace hcube::trees {

std::vector<node_t> sbt_children(node_t i, node_t s, dim_t n) {
    const node_t c = i ^ s;
    const dim_t k = hc::highest_one_bit(c);
    std::vector<node_t> kids;
    kids.reserve(static_cast<std::size_t>(n - 1 - k));
    // Ascending m yields children in decreasing subtree size (the child
    // reached through port m roots 2^(n-1-m) nodes), which is the send
    // order the one-port SBT broadcast wants (largest subtree first).
    for (dim_t m = k + 1; m < n; ++m) {
        kids.push_back(hc::flip_bit(i, m));
    }
    return kids;
}

node_t sbt_parent(node_t i, node_t s, dim_t n) {
    HCUBE_ENSURE(n >= 1 && n <= hc::kMaxDimension);
    const node_t c = i ^ s;
    if (c == 0) {
        return SpanningTree::kNoParent;
    }
    return hc::flip_bit(i, hc::highest_one_bit(c));
}

SpanningTree build_sbt(dim_t n, node_t s) {
    auto tree = materialize_tree(
        n, s, [=](node_t i) { return sbt_children(i, s, n); });
    return tree;
}

} // namespace hcube::trees
