// Deterministic PRNG for reproducible randomized algorithms (TCBT embedding
// search, workload shuffles). splitmix64: tiny, fast, well-distributed.
#pragma once

#include <cstdint>
#include <utility>

namespace hcube {

/// splitmix64 generator. Deterministic for a given seed across platforms.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept
        : state_(seed) {}

    /// Next 64-bit value.
    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform value in [0, bound) for bound > 0 (modulo bias negligible for
    /// the small bounds used here).
    constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
        return next() % bound;
    }

    /// Fisher-Yates shuffle of a random-access container.
    template <typename Container>
    void shuffle(Container& items) noexcept {
        for (std::size_t i = items.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(next_below(i));
            using std::swap;
            swap(items[i - 1], items[j]);
        }
    }

private:
    std::uint64_t state_;
};

} // namespace hcube
