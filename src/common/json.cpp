#include "common/json.hpp"

#include <cinttypes>

namespace hcube {

namespace {

/// The bench schemas only carry identifier-like strings, but escape the
/// JSON specials anyway so the writer can never emit an invalid document.
std::string escaped(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c; break;
        }
    }
    return out;
}

} // namespace

JsonArrayWriter::JsonArrayWriter(const std::string& path)
    : out_(std::fopen(path.c_str(), "w")) {
    if (out_ != nullptr) {
        failed_ = std::fprintf(out_, "[") < 0;
    }
}

JsonArrayWriter::~JsonArrayWriter() {
    if (out_ != nullptr) {
        std::fclose(out_);
    }
}

void JsonArrayWriter::begin_row() {
    if (out_ == nullptr) {
        return;
    }
    failed_ |= std::fprintf(out_, "%s\n  {", any_row_ ? "," : "") < 0;
    any_row_ = true;
    any_field_ = false;
}

void JsonArrayWriter::key_prefix(const std::string& key) {
    failed_ |= std::fprintf(out_, "%s\"%s\": ", any_field_ ? ", " : "",
                            escaped(key).c_str()) < 0;
    any_field_ = true;
}

void JsonArrayWriter::field(const std::string& key,
                            const std::string& value) {
    if (out_ == nullptr) {
        return;
    }
    key_prefix(key);
    failed_ |= std::fprintf(out_, "\"%s\"", escaped(value).c_str()) < 0;
}

void JsonArrayWriter::field(const std::string& key, const char* value) {
    field(key, std::string(value));
}

void JsonArrayWriter::field(const std::string& key, std::int64_t value) {
    if (out_ == nullptr) {
        return;
    }
    key_prefix(key);
    failed_ |= std::fprintf(out_, "%" PRId64, value) < 0;
}

void JsonArrayWriter::field(const std::string& key, std::uint64_t value) {
    if (out_ == nullptr) {
        return;
    }
    key_prefix(key);
    failed_ |= std::fprintf(out_, "%" PRIu64, value) < 0;
}

void JsonArrayWriter::field(const std::string& key, std::uint32_t value) {
    field(key, std::uint64_t{value});
}

void JsonArrayWriter::field(const std::string& key, int value) {
    field(key, std::int64_t{value});
}

void JsonArrayWriter::field(const std::string& key, double value) {
    if (out_ == nullptr) {
        return;
    }
    key_prefix(key);
    failed_ |= std::fprintf(out_, "%.6g", value) < 0;
}

void JsonArrayWriter::field(const std::string& key, bool value) {
    if (out_ == nullptr) {
        return;
    }
    key_prefix(key);
    failed_ |= std::fprintf(out_, "%s", value ? "true" : "false") < 0;
}

void JsonArrayWriter::raw_field(const std::string& key,
                                const std::string& raw) {
    if (out_ == nullptr) {
        return;
    }
    key_prefix(key);
    failed_ |= std::fprintf(out_, "%s", raw.c_str()) < 0;
}

void JsonArrayWriter::end_row() {
    if (out_ == nullptr) {
        return;
    }
    failed_ |= std::fprintf(out_, "}") < 0;
}

bool JsonArrayWriter::close() {
    if (out_ == nullptr) {
        return false;
    }
    failed_ |= std::fprintf(out_, "\n]\n") < 0;
    failed_ |= std::fclose(out_) != 0;
    out_ = nullptr;
    return !failed_;
}

} // namespace hcube
