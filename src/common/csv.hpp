// Minimal CSV writer: the bench harnesses optionally dump their series as CSV
// so the figures can be re-plotted outside this repository.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hcube {

/// Streams rows of cells into a CSV file. Cells containing commas, quotes or
/// newlines are quoted per RFC 4180.
class CsvWriter {
public:
    /// Opens `path` for writing and emits the header row.
    /// Throws std::runtime_error if the file cannot be opened.
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    /// Writes one data row. The row may have any number of cells.
    void write_row(const std::vector<std::string>& cells);

private:
    std::ofstream out_;
};

} // namespace hcube
