#include "common/table.hpp"

#include "common/check.hpp"

#include <algorithm>
#include <cstdio>

namespace hcube {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    HCUBE_ENSURE_MSG(!headers_.empty(), "a table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
    HCUBE_ENSURE_MSG(cells.size() <= headers_.size(),
                     "row has more cells than the table has columns");
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += (c == 0) ? "| " : " | ";
            out += row[c];
            out.append(widths[c] - row[c].size(), ' ');
        }
        out += " |\n";
    };

    std::string out;
    emit_row(headers_, out);
    for (std::size_t c = 0; c < widths.size(); ++c) {
        out += (c == 0) ? "|-" : "-|-";
        out.append(widths[c], '-');
    }
    out += "-|\n";
    for (const auto& row : rows_) {
        emit_row(row, out);
    }
    return out;
}

std::string format_fixed(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string format_seconds(double seconds) {
    char buf[64];
    if (seconds >= 1.0) {
        std::snprintf(buf, sizeof buf, "%.3f s", seconds);
    } else if (seconds >= 1e-3) {
        std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%.3f us", seconds * 1e6);
    }
    return buf;
}

} // namespace hcube
