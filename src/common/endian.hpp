// Explicit little-endian byte codecs and the bounds-checked reader/writer
// the wire framing is built on (net/frame.hpp, net/protocol.hpp).
//
// Every multi-byte field that crosses a socket goes through these helpers,
// so the wire format is identical regardless of host byte order or
// alignment rules — a frame encoded on any peer decodes on any other.
// Doubles travel as the little-endian bytes of their IEEE-754 bit pattern
// (std::bit_cast), which round-trips every value including NaN payloads.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hcube {

inline void store_le16(std::uint8_t* p, std::uint16_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
    store_le32(p, static_cast<std::uint32_t>(v));
    store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] inline std::uint16_t load_le16(const std::uint8_t* p) noexcept {
    return static_cast<std::uint16_t>(std::uint16_t{p[0]} |
                                      (std::uint16_t{p[1]} << 8));
}

[[nodiscard]] inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
    return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
           (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

[[nodiscard]] inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
    return std::uint64_t{load_le32(p)} |
           (std::uint64_t{load_le32(p + 4)} << 32);
}

/// Appends fields to a byte vector in wire (little-endian) order.
class ByteWriter {
public:
    explicit ByteWriter(std::vector<std::uint8_t>& out) noexcept
        : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }
    void u16(std::uint16_t v) {
        std::uint8_t b[2];
        store_le16(b, v);
        out_.insert(out_.end(), b, b + 2);
    }
    void u32(std::uint32_t v) {
        std::uint8_t b[4];
        store_le32(b, v);
        out_.insert(out_.end(), b, b + 4);
    }
    void u64(std::uint64_t v) {
        std::uint8_t b[8];
        store_le64(b, v);
        out_.insert(out_.end(), b, b + 8);
    }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void bytes(std::span<const std::uint8_t> s) {
        out_.insert(out_.end(), s.begin(), s.end());
    }
    /// Length-prefixed (u32) byte string.
    void str(std::string_view s) {
        u32(static_cast<std::uint32_t>(s.size()));
        const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
        out_.insert(out_.end(), p, p + s.size());
    }
    /// Doubles as consecutive little-endian IEEE-754 words.
    void blocks(std::span<const double> b) {
        const std::size_t at = out_.size();
        out_.resize(at + b.size() * sizeof(double));
        std::uint8_t* p = out_.data() + at;
        for (const double v : b) {
            store_le64(p, std::bit_cast<std::uint64_t>(v));
            p += sizeof(double);
        }
    }

private:
    std::vector<std::uint8_t>& out_;
};

/// Consumes fields from a byte span in wire order. A read past the end
/// latches `ok() == false` and yields zeros; decoders check ok() once at
/// the end instead of after every field (torn frames decode to a clean
/// failure, never UB).
class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> in) noexcept
        : in_(in) {}

    [[nodiscard]] std::uint8_t u8() {
        const std::uint8_t* p = take(1);
        return p != nullptr ? *p : 0;
    }
    [[nodiscard]] std::uint16_t u16() {
        const std::uint8_t* p = take(2);
        return p != nullptr ? load_le16(p) : 0;
    }
    [[nodiscard]] std::uint32_t u32() {
        const std::uint8_t* p = take(4);
        return p != nullptr ? load_le32(p) : 0;
    }
    [[nodiscard]] std::uint64_t u64() {
        const std::uint8_t* p = take(8);
        return p != nullptr ? load_le64(p) : 0;
    }
    [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
    [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
        const std::uint8_t* p = take(n);
        return p != nullptr ? std::span<const std::uint8_t>{p, n}
                            : std::span<const std::uint8_t>{};
    }
    [[nodiscard]] std::string str() {
        const std::uint32_t n = u32();
        const std::uint8_t* p = take(n);
        return p != nullptr
                   ? std::string(reinterpret_cast<const char*>(p), n)
                   : std::string{};
    }
    /// Decodes `count` doubles into `out` (which must hold >= count).
    void blocks(double* out, std::size_t count) {
        const std::uint8_t* p = take(count * sizeof(double));
        if (p == nullptr) {
            return;
        }
        for (std::size_t i = 0; i < count; ++i) {
            out[i] = std::bit_cast<double>(load_le64(p + i * sizeof(double)));
        }
    }

    [[nodiscard]] bool ok() const noexcept { return ok_; }
    [[nodiscard]] std::size_t remaining() const noexcept {
        return in_.size() - pos_;
    }
    /// ok() and the input fully consumed — the strict decoder postcondition.
    [[nodiscard]] bool done() const noexcept { return ok_ && remaining() == 0; }

private:
    [[nodiscard]] const std::uint8_t* take(std::size_t n) noexcept {
        if (!ok_ || in_.size() - pos_ < n) {
            ok_ = false;
            return nullptr;
        }
        const std::uint8_t* p = in_.data() + pos_;
        pos_ += n;
        return p;
    }

    std::span<const std::uint8_t> in_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace hcube
