// Minimal machine-readable JSON emission shared by the bench binaries.
//
// Every bench records its result table as a JSON array of flat objects
// (one object per measured row, keys = column names) — the schema of
// BENCH_executor.json and BENCH_rt.json. The writer streams rows, so a
// bench can emit while measuring; close() finishes the array and reports
// whether every write succeeded.
#pragma once

#include <cstdio>
#include <string>

namespace hcube {

class JsonArrayWriter {
public:
    /// Opens `path` for writing; ok() is false if that failed.
    explicit JsonArrayWriter(const std::string& path);
    ~JsonArrayWriter();
    JsonArrayWriter(const JsonArrayWriter&) = delete;
    JsonArrayWriter& operator=(const JsonArrayWriter&) = delete;

    [[nodiscard]] bool ok() const noexcept { return out_ != nullptr; }

    /// Starts the next object in the array.
    void begin_row();

    /// Adds one key/value pair to the current row.
    void field(const std::string& key, const std::string& value);
    void field(const std::string& key, const char* value);
    void field(const std::string& key, std::int64_t value);
    void field(const std::string& key, std::uint64_t value);
    void field(const std::string& key, std::uint32_t value);
    void field(const std::string& key, int value);
    void field(const std::string& key, double value);
    void field(const std::string& key, bool value);

    /// Adds `raw` verbatim as the value of `key` — the escape hatch for
    /// nested structures (e.g. a chrome-trace counter event's "args"
    /// object). The caller is responsible for `raw` being valid JSON.
    void raw_field(const std::string& key, const std::string& raw);

    void end_row();

    /// Closes the array and the file; true if everything was written.
    bool close();

private:
    void key_prefix(const std::string& key);

    std::FILE* out_ = nullptr;
    bool any_row_ = false;
    bool any_field_ = false;
    bool failed_ = false;
};

} // namespace hcube
