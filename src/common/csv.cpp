#include "common/csv.hpp"

#include <stdexcept>

namespace hcube {

namespace {

std::string escape_cell(const std::string& cell) {
    const bool needs_quoting =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting) {
        return cell;
    }
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') {
            out += '"';
        }
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
    if (!out_) {
        throw std::runtime_error("CsvWriter: cannot open " + path);
    }
    write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c != 0) {
            out_ << ',';
        }
        out_ << escape_cell(cells[c]);
    }
    out_ << '\n';
}

} // namespace hcube
