#include "common/cli.hpp"

#include <stdexcept>

namespace hcube {

CliOptions::CliOptions(int argc, const char* const* argv) {
    for (int a = 1; a < argc; ++a) {
        std::string arg = argv[a];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        if (auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
        } else if (a + 1 < argc &&
                   std::string(argv[a + 1]).rfind("--", 0) != 0) {
            value = argv[++a];
        }
        values_[name] = std::move(value);
    }
}

bool CliOptions::has(const std::string& name) const {
    return values_.contains(name);
}

std::string CliOptions::get_string(const std::string& name,
                                   const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t CliOptions::get_int(const std::string& name,
                                 std::int64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
        return fallback;
    }
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(it->second, &pos);
    if (pos != it->second.size()) {
        throw std::invalid_argument("option --" + name +
                                    " expects an integer, got '" + it->second +
                                    "'");
    }
    return value;
}

double CliOptions::get_double(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
        return fallback;
    }
    std::size_t pos = 0;
    const double value = std::stod(it->second, &pos);
    if (pos != it->second.size()) {
        throw std::invalid_argument("option --" + name +
                                    " expects a number, got '" + it->second +
                                    "'");
    }
    return value;
}

} // namespace hcube
