// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary reprints one of the paper's tables or figure series;
// TextTable keeps the output aligned and diffable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hcube {

/// Column-aligned plain-text table. Rows are added as vectors of cells;
/// rendering pads each column to its widest cell.
class TextTable {
public:
    /// Creates a table with the given column headers.
    explicit TextTable(std::vector<std::string> headers);

    /// Appends one row. Short rows are padded with empty cells; rows longer
    /// than the header are rejected.
    void add_row(std::vector<std::string> cells);

    /// Number of data rows added so far.
    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders the table (header, separator, rows) as a single string.
    [[nodiscard]] std::string render() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming like "%.3g"
/// but keeping fixed-point form for readability in tables.
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Formats seconds as a human unit (s / ms / µs) with three decimals.
[[nodiscard]] std::string format_seconds(double seconds);

} // namespace hcube
