// Lightweight precondition / invariant checking used throughout the library.
//
// HCUBE_ENSURE is active in all build types: the library's routing schedules
// are *claims* about lower bounds, and silently producing a wrong schedule in
// Release would invalidate every measurement built on top of it.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace hcube {

/// Thrown when a precondition or internal invariant is violated.
class check_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr,
                                      const std::string& msg,
                                      const std::source_location& loc) {
    std::string what = std::string(loc.file_name()) + ":" +
                       std::to_string(loc.line()) + ": check failed: " + expr;
    if (!msg.empty()) { what += " — " + msg; }
    throw check_error(what);
}

} // namespace detail

} // namespace hcube

#define HCUBE_ENSURE(expr)                                                     \
    do {                                                                       \
        if (!(expr)) {                                                         \
            ::hcube::detail::check_failed(#expr, {},                           \
                                          std::source_location::current());    \
        }                                                                      \
    } while (false)

#define HCUBE_ENSURE_MSG(expr, msg)                                            \
    do {                                                                       \
        if (!(expr)) {                                                         \
            ::hcube::detail::check_failed(#expr, (msg),                        \
                                          std::source_location::current());    \
        }                                                                      \
    } while (false)
