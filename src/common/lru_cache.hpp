// Reader-friendly, cost-budgeted LRU cache shared by the TCBT memo and the
// service-layer plan cache.
//
// The concurrency idiom is the one the TCBT cache established: lookups take
// a shared lock and copy the value out under it (so a concurrent insert can
// never invalidate the returned object), expensive factories run with *no*
// lock held, and insertion takes the exclusive lock only for the final
// emplace — a raced duplicate build is discarded and the winner's value
// returned, which is safe whenever the factory is deterministic (both
// callers built identical values) or the value is a handle whose copies are
// interchangeable.
//
// Residency is governed by a *cost budget*, not an entry count: every entry
// carries a caller-assigned cost (default 1, which makes the budget an
// entry capacity — the memo semantics), insertion and update_cost evict
// least-recently-used entries until the total fits, and 0 means unbounded.
// The service layer charges each compiled plan its exact resident bytes, so
// one budget holds thousands of small-cube plans or a handful of huge ones.
//
// Recency is an intrusive doubly-linked list threaded through the map
// entries (std::map nodes are address-stable), guarded by a leaf spinlock-
// grade mutex taken *inside* the shared lock: a hit does one O(1) splice
// instead of stamping a clock, and eviction pops the list tail in O(1)
// instead of scanning the map for the minimum stamp. Hits serialize
// briefly on the list mutex — the price of exact LRU order and O(1)
// eviction; the splice is a handful of pointer writes, far cheaper than
// the map lookup preceding it. Lock order: map mutex, then list mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>

namespace hcube {

/// Hit/miss/eviction counters, shared across all LruCache instantiations
/// (so consumers can expose them without naming a key/value pair).
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

template <class Key, class Value>
class LruCache {
public:
    using Stats = CacheStats;

    /// `budget` is the total cost the cache may keep resident; 0 means
    /// unbounded (a pure memo). With the default unit entry cost the
    /// budget is an entry capacity. The budget is a best-effort bound: the
    /// entry being inserted or touched is never evicted, so a single entry
    /// costlier than the whole budget stays resident alone.
    explicit LruCache(std::uint64_t budget = 0) noexcept : budget_(budget) {}

    LruCache(const LruCache&) = delete;
    LruCache& operator=(const LruCache&) = delete;

    /// Copy of the cached value, promoting it to most recent; nullopt on a
    /// miss.
    [[nodiscard]] std::optional<Value> get(const Key& key) {
        const std::shared_lock lock(mutex_);
        const auto it = map_.find(key);
        if (it == map_.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        {
            const std::lock_guard list_lock(list_mutex_);
            move_to_mru(&it->second);
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.value;
    }

    /// The cached value for `key`, building it with `factory()` on a miss
    /// at the default unit cost. The factory runs without any lock held; if
    /// two threads race the same miss, one build is discarded and both
    /// return the cached winner.
    template <class Factory>
    [[nodiscard]] Value get_or_create(const Key& key, Factory&& factory) {
        return get_or_create(key, std::forward<Factory>(factory),
                             [](const Value&) { return std::uint64_t{1}; });
    }

    /// As above, charging the freshly built value `cost_fn(value)` against
    /// the budget (also evaluated without any lock held).
    template <class Factory, class CostFn>
    [[nodiscard]] Value get_or_create(const Key& key, Factory&& factory,
                                      CostFn&& cost_fn) {
        if (std::optional<Value> hit = get(key)) {
            return std::move(*hit);
        }
        Value built = factory();
        const std::uint64_t cost = cost_fn(static_cast<const Value&>(built));
        const std::unique_lock lock(mutex_);
        const auto [it, inserted] = map_.try_emplace(key, std::move(built));
        Entry& entry = it->second;
        if (inserted) {
            entry.key = &it->first;
            entry.cost = cost;
            total_cost_ += cost;
            {
                const std::lock_guard list_lock(list_mutex_);
                push_mru(&entry);
            }
            if (budget_ != 0) {
                evict_over_budget(&entry);
            }
        } else {
            const std::lock_guard list_lock(list_mutex_);
            move_to_mru(&entry);
        }
        return it->second.value;
    }

    /// Re-prices a resident entry (e.g. after lazily materializing per-
    /// entry state), evicting colder entries if the total no longer fits.
    /// The re-priced entry itself is never evicted. No-op on a miss.
    void update_cost(const Key& key, std::uint64_t cost) {
        const std::unique_lock lock(mutex_);
        const auto it = map_.find(key);
        if (it == map_.end()) {
            return;
        }
        total_cost_ += cost - it->second.cost;
        it->second.cost = cost;
        if (budget_ != 0) {
            evict_over_budget(&it->second);
        }
    }

    [[nodiscard]] std::size_t size() const {
        const std::shared_lock lock(mutex_);
        return map_.size();
    }

    /// Sum of resident entry costs (exact bytes, for the plan cache).
    [[nodiscard]] std::uint64_t total_cost() const {
        const std::shared_lock lock(mutex_);
        return total_cost_;
    }

    [[nodiscard]] std::uint64_t budget() const noexcept { return budget_; }

    [[nodiscard]] Stats stats() const noexcept {
        return {hits_.load(std::memory_order_relaxed),
                misses_.load(std::memory_order_relaxed),
                evictions_.load(std::memory_order_relaxed)};
    }

    /// True if `key` is currently resident (no recency update, no counters).
    [[nodiscard]] bool contains(const Key& key) const {
        const std::shared_lock lock(mutex_);
        return map_.find(key) != map_.end();
    }

    /// Erases every resident entry for which `pred(key, value)` holds,
    /// regardless of recency: each victim is unlinked from the recency
    /// list and its cost refunded from the total. Returns the number of
    /// entries erased (also counted as evictions). This is the surgical
    /// invalidation path — e.g. dropping exactly the plans whose member-
    /// set epoch went stale — where a budget eviction would only shed the
    /// coldest entries.
    template <class Pred>
    std::size_t erase_if(Pred&& pred) {
        const std::unique_lock lock(mutex_);
        std::size_t erased = 0;
        for (auto it = map_.begin(); it != map_.end();) {
            Entry& entry = it->second;
            if (pred(it->first, static_cast<const Value&>(entry.value))) {
                total_cost_ -= entry.cost;
                unlink(&entry);
                it = map_.erase(it);
                ++erased;
            } else {
                ++it;
            }
        }
        evictions_.fetch_add(erased, std::memory_order_relaxed);
        return erased;
    }

    void clear() {
        const std::unique_lock lock(mutex_);
        map_.clear();
        lru_ = nullptr;
        mru_ = nullptr;
        total_cost_ = 0;
    }

private:
    struct Entry {
        explicit Entry(Value v) : value(std::move(v)) {}
        Value value;
        std::uint64_t cost = 1;
        const Key* key = nullptr; ///< back-pointer for O(1) erase-by-node
        Entry* prev = nullptr;    ///< toward LRU
        Entry* next = nullptr;    ///< toward MRU
    };

    // ---- intrusive recency list (lru_ = coldest, mru_ = hottest) ------
    // Callers hold list_mutex_, or the exclusive map lock (which excludes
    // every shared-lock splicer).
    void unlink(Entry* e) noexcept {
        (e->prev != nullptr ? e->prev->next : lru_) = e->next;
        (e->next != nullptr ? e->next->prev : mru_) = e->prev;
        e->prev = nullptr;
        e->next = nullptr;
    }
    void push_mru(Entry* e) noexcept {
        e->prev = mru_;
        e->next = nullptr;
        (mru_ != nullptr ? mru_->next : lru_) = e;
        mru_ = e;
    }
    void move_to_mru(Entry* e) noexcept {
        if (e == mru_) {
            return;
        }
        unlink(e);
        push_mru(e);
    }

    /// Must hold the exclusive lock. Pops list-tail victims until the
    /// total cost fits the budget, never evicting `keep` (the entry the
    /// caller is about to return a reference to).
    void evict_over_budget(const Entry* keep) {
        while (total_cost_ > budget_) {
            Entry* victim = lru_;
            if (victim == keep) {
                victim = victim->next;
            }
            if (victim == nullptr) {
                return; // nothing evictable but `keep`
            }
            total_cost_ -= victim->cost;
            const Key* key = victim->key;
            unlink(victim);
            map_.erase(*key); // destroys *victim
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    mutable std::shared_mutex mutex_;
    mutable std::mutex list_mutex_; ///< leaf lock; taken inside mutex_
    std::map<Key, Entry> map_;
    std::uint64_t budget_;
    std::uint64_t total_cost_ = 0;
    Entry* lru_ = nullptr;
    Entry* mru_ = nullptr;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace hcube
