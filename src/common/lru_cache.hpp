// Reader-friendly LRU cache shared by the TCBT memo and the service-layer
// plan cache.
//
// The concurrency idiom is the one the TCBT cache established: lookups take
// a shared lock and copy the value out under it (so a concurrent insert can
// never invalidate the returned object), expensive factories run with *no*
// lock held, and insertion takes the exclusive lock only for the final
// emplace — a raced duplicate build is discarded and the winner's value
// returned, which is safe whenever the factory is deterministic (both
// callers built identical values) or the value is a handle whose copies are
// interchangeable.
//
// Recency is tracked with a relaxed atomic stamp per entry, updated under
// the *shared* lock: hits never serialize against each other, at the cost
// of eviction being approximate under contention (two hits racing the
// clock may swap their order — irrelevant for a cache, which only promises
// to keep hot entries resident). Eviction scans for the minimum stamp;
// capacities are small (dozens), so the scan is cheaper than maintaining
// an intrusive list under the exclusive lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>

namespace hcube {

/// Hit/miss/eviction counters, shared across all LruCache instantiations
/// (so consumers can expose them without naming a key/value pair).
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

template <class Key, class Value>
class LruCache {
public:
    using Stats = CacheStats;

    /// `capacity` resident entries; 0 means unbounded (a pure memo).
    explicit LruCache(std::size_t capacity = 0) noexcept
        : capacity_(capacity) {}

    LruCache(const LruCache&) = delete;
    LruCache& operator=(const LruCache&) = delete;

    /// Copy of the cached value, stamping its recency; nullopt on a miss.
    [[nodiscard]] std::optional<Value> get(const Key& key) {
        const std::shared_lock lock(mutex_);
        const auto it = map_.find(key);
        if (it == map_.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        touch(it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.value;
    }

    /// The cached value for `key`, building it with `factory()` on a miss.
    /// The factory runs without any lock held; if two threads race the same
    /// miss, one build is discarded and both return the cached winner.
    template <class Factory>
    [[nodiscard]] Value get_or_create(const Key& key, Factory&& factory) {
        if (std::optional<Value> hit = get(key)) {
            return std::move(*hit);
        }
        Value built = factory();
        const std::unique_lock lock(mutex_);
        const auto [it, inserted] = map_.try_emplace(
            key, std::move(built), clock_.fetch_add(1) + 1);
        if (inserted && capacity_ != 0) {
            evict_over_capacity(key);
        }
        return it->second.value;
    }

    [[nodiscard]] std::size_t size() const {
        const std::shared_lock lock(mutex_);
        return map_.size();
    }

    [[nodiscard]] Stats stats() const noexcept {
        return {hits_.load(std::memory_order_relaxed),
                misses_.load(std::memory_order_relaxed),
                evictions_.load(std::memory_order_relaxed)};
    }

    /// True if `key` is currently resident (no recency stamp, no counters).
    [[nodiscard]] bool contains(const Key& key) const {
        const std::shared_lock lock(mutex_);
        return map_.find(key) != map_.end();
    }

    void clear() {
        const std::unique_lock lock(mutex_);
        map_.clear();
    }

private:
    struct Entry {
        Entry(Value v, std::uint64_t stamp)
            : value(std::move(v)), last_used(stamp) {}
        Value value;
        std::atomic<std::uint64_t> last_used;
    };

    void touch(Entry& entry) {
        entry.last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) +
                                  1,
                              std::memory_order_relaxed);
    }

    /// Must hold the exclusive lock. Never evicts `keep` (the entry the
    /// caller is about to return a reference to).
    void evict_over_capacity(const Key& keep) {
        while (map_.size() > capacity_) {
            auto victim = map_.end();
            std::uint64_t oldest = ~std::uint64_t{0};
            for (auto it = map_.begin(); it != map_.end(); ++it) {
                if (it->first == keep) {
                    continue;
                }
                const std::uint64_t used =
                    it->second.last_used.load(std::memory_order_relaxed);
                if (used < oldest) {
                    oldest = used;
                    victim = it;
                }
            }
            if (victim == map_.end()) {
                return; // capacity 1 holding only `keep`
            }
            map_.erase(victim);
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    mutable std::shared_mutex mutex_;
    std::map<Key, Entry> map_;
    std::size_t capacity_;
    std::atomic<std::uint64_t> clock_{0};
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace hcube
