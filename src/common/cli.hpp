// Tiny command-line option parser shared by the bench and example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean flags.
// Deliberately minimal: the binaries in this repository have a handful of
// numeric knobs each (cube dimension, message size, packet size, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hcube {

/// Parsed command-line options. Construct from argc/argv, then query typed
/// values with defaults. Unknown options are collected and can be rejected.
class CliOptions {
public:
    CliOptions(int argc, const char* const* argv);

    /// True if `--name` was present (with or without a value).
    [[nodiscard]] bool has(const std::string& name) const;

    /// String value of `--name`, or `fallback` if absent.
    [[nodiscard]] std::string get_string(const std::string& name,
                                         const std::string& fallback) const;

    /// Integer value of `--name`, or `fallback` if absent.
    /// Throws std::invalid_argument on malformed numbers.
    [[nodiscard]] std::int64_t get_int(const std::string& name,
                                       std::int64_t fallback) const;

    /// Floating-point value of `--name`, or `fallback` if absent.
    [[nodiscard]] double get_double(const std::string& name,
                                    double fallback) const;

    /// Positional (non `--`) arguments in order.
    [[nodiscard]] const std::vector<std::string>& positional() const {
        return positional_;
    }

private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace hcube
