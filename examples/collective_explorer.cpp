// Collective explorer: run any of the paper's broadcast or scatter
// algorithms under any port model and print both the exact routing-step
// count (cycle simulator) and the wall-clock time on the simulated iPSC
// (event simulator).
//
// Usage:
//   collective_explorer --op broadcast --algo msbt --port full
//                       [--dim n] [--msg bytes] [--packet B] [--source s]
//                       [--tau s] [--tc s] [--overlap a]
//   --op    broadcast | scatter
//   --algo  sbt | msbt | bst | tcbt | hp   (scatter: sbt | bst | tcbt)
//   --port  half | full | all
//   --trace print a per-link Gantt chart and utilization statistics
//   --dump-schedule <path>  write the cycle schedule as CSV
//   --rt [--threads T]  additionally execute the schedule on real worker
//         threads (hcube::rt) and print measured wall clock and GB/s
#include "common/check.hpp"
#include "common/cli.hpp"
#include "routing/broadcast.hpp"
#include "routing/protocols.hpp"
#include "routing/scatter.hpp"
#include "routing/schedule_export.hpp"
#include "rt/communicator.hpp"
#include "sim/trace.hpp"
#include "trees/bst.hpp"
#include "trees/hp.hpp"
#include "trees/sbt.hpp"
#include "trees/tcbt.hpp"

#include <cmath>
#include <cstdio>
#include <string>

namespace {

using namespace hcube;

sim::PortModel parse_port(const std::string& name) {
    if (name == "half") {
        return sim::PortModel::one_port_half_duplex;
    }
    if (name == "full") {
        return sim::PortModel::one_port_full_duplex;
    }
    if (name == "all") {
        return sim::PortModel::all_port;
    }
    throw check_error("unknown --port (want half|full|all)");
}

trees::SpanningTree build(const std::string& algo, hc::dim_t n,
                          hc::node_t s) {
    if (algo == "sbt") {
        return trees::build_sbt(n, s);
    }
    if (algo == "bst") {
        return trees::build_bst(n, s);
    }
    if (algo == "tcbt") {
        return trees::build_tcbt(n, s);
    }
    if (algo == "hp") {
        return trees::build_hamiltonian_path(n, s,
                                             trees::HpVariant::source_at_end);
    }
    throw check_error("unknown --algo");
}

/// Runs one collective through the threaded runtime and prints measured
/// wall clock, delivered GB/s, and whether every block checksum-verified.
void print_rt_result(const hcube::rt::Result& result) {
    std::printf("  rt (threads=%u): %u cycles (sim makespan %u), "
                "%.3f ms, %.3f GB/s, %s\n",
                result.threads, result.rt_cycles, result.sim_makespan,
                result.seconds * 1e3, result.gbytes_per_sec(),
                result.verified ? "verified" : "VERIFICATION FAILED");
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const std::string op = options.get_string("op", "broadcast");
    const std::string algo = options.get_string("algo", "msbt");
    const sim::PortModel port = parse_port(options.get_string("port", "full"));
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 6));
    const auto s = static_cast<hc::node_t>(options.get_int("source", 0));
    const double M = options.get_double("msg", 61440);
    const double B = options.get_double("packet", 1024);

    sim::EventParams params;
    params.tau = options.get_double("tau", params.tau);
    params.tc = options.get_double("tc", params.tc);
    params.overlap = options.get_double("overlap", 0.0);
    params.model = port;

    std::printf("%s / %s / %s on a %d-cube, source %u, M = %.0f, B = %.0f\n",
                op.c_str(), algo.c_str(), std::string(to_string(port)).c_str(),
                n, s, M, B);

    if (op == "broadcast") {
        // Cycle-exact step count.
        const auto packets = static_cast<sim::packet_t>(std::ceil(M / B));
        routing::Schedule schedule;
        if (algo == "msbt") {
            const auto pps = static_cast<sim::packet_t>(
                std::ceil(M / (B * n)));
            schedule = routing::msbt_broadcast(n, s, pps, port);
        } else if (algo == "sbt" && port != sim::PortModel::all_port) {
            schedule =
                routing::port_oriented_broadcast(build(algo, n, s), packets);
        } else {
            schedule = routing::paced_broadcast(build(algo, n, s), packets,
                                                port);
        }
        const auto stats = sim::execute_schedule(schedule, port);
        std::printf("  routing steps: %u   (packets in flight at peak: "
                    "%llu)\n",
                    stats.makespan,
                    static_cast<unsigned long long>(
                        stats.max_sends_in_one_cycle));
        if (options.has("trace")) {
            const auto util = sim::link_utilization(schedule);
            std::printf("  links used: %llu / %llu, busiest link %llu "
                        "sends, busy fraction %.2f\n",
                        static_cast<unsigned long long>(
                            util.directed_links_used),
                        static_cast<unsigned long long>(
                            util.directed_links_total),
                        static_cast<unsigned long long>(
                            util.busiest_link_sends),
                        util.busy_fraction);
            std::fputs(sim::render_gantt(schedule).c_str(), stdout);
        }
        if (options.has("dump-schedule")) {
            const std::string path =
                options.get_string("dump-schedule", "schedule.csv");
            sim::schedule_to_csv(schedule, path);
            std::printf("  schedule written to %s\n", path.c_str());
        }

        // Wall clock on the simulated machine.
        sim::EventEngine engine(n, params);
        double time = 0;
        if (algo == "msbt") {
            routing::MsbtBroadcastProtocol protocol(n, s, M, B);
            time = engine.run(protocol).completion_time;
        } else {
            const trees::SpanningTree tree = build(algo, n, s);
            if (port == sim::PortModel::all_port) {
                routing::PipelinedBroadcast protocol(tree, M, B);
                time = engine.run(protocol).completion_time;
            } else {
                routing::PortOrientedBroadcast protocol(tree, M, B);
                time = engine.run(protocol).completion_time;
            }
        }
        std::printf("  simulated time: %.6f s\n", time);

        // Real data movement on worker threads, cross-checked against the
        // cycle simulator.
        if (options.has("rt")) {
            rt::Params rt_params;
            rt_params.threads = static_cast<std::uint32_t>(
                options.get_int("threads", 0));
            rt_params.model = port;
            rt::Communicator comm(n, rt_params);
            if (algo == "msbt") {
                const auto pps = static_cast<sim::packet_t>(
                    std::ceil(M / (B * n)));
                print_rt_result(comm.broadcast_msbt(
                    s, pps * static_cast<sim::packet_t>(n)));
            } else {
                const auto discipline =
                    (algo == "sbt" && port != sim::PortModel::all_port)
                        ? routing::BroadcastDiscipline::port_oriented
                        : routing::BroadcastDiscipline::paced;
                print_rt_result(
                    comm.broadcast(build(algo, n, s), discipline, packets));
            }
        }
        return 0;
    }

    if (op == "scatter") {
        const trees::SpanningTree tree = build(algo, n, s);
        const auto order =
            (algo == "bst")
                ? routing::cyclic_dest_order(
                      tree, routing::SubtreeOrder::reverse_breadth_first)
                : routing::descending_dest_order(tree);
        if (port != sim::PortModel::one_port_half_duplex) {
            const auto schedule =
                (port == sim::PortModel::all_port)
                    ? routing::scatter_all_port(
                          tree,
                          routing::per_subtree_dest_orders(
                              tree, routing::SubtreeOrder::
                                        reverse_breadth_first),
                          1)
                    : routing::scatter_one_port(tree, order, 1);
            const auto stats = sim::execute_schedule(schedule, port);
            std::printf("  routing steps (1 packet per node): %u\n",
                        stats.makespan);
        }
        sim::EventEngine engine(n, params);
        routing::ScatterProtocol protocol(tree, order, M);
        const auto stats = engine.run(protocol);
        std::printf("  simulated time: %.6f s (%zu payloads delivered)\n",
                    stats.completion_time, protocol.delivered());

        if (options.has("rt")) {
            if (port == sim::PortModel::one_port_half_duplex) {
                std::printf("  rt: half-duplex scatter has no cycle "
                            "schedule; skipped\n");
            } else {
                rt::Params rt_params;
                rt_params.threads = static_cast<std::uint32_t>(
                    options.get_int("threads", 0));
                rt_params.model = port;
                rt::Communicator comm(n, rt_params);
                const auto policy =
                    (port == sim::PortModel::all_port)
                        ? routing::ScatterPolicy::per_port
                        : (algo == "bst" ? routing::ScatterPolicy::cyclic
                                         : routing::ScatterPolicy::descending);
                print_rt_result(comm.scatter(tree, policy, 1));
            }
        }
        return 0;
    }

    std::fprintf(stderr, "unknown --op (want broadcast|scatter)\n");
    return 1;
}
