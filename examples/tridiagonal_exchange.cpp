// Tridiagonal-system data exchange — the paper's §1 points at [12]
// (Johnsson, "Solving Tridiagonal Systems on Ensemble Architectures"): the
// collection of data to a single node followed by distribution of
// personalized results is a useful primitive for tridiagonal solvers under
// suitable (τ, t_c, problem size) combinations.
//
// We simulate that primitive: every node owns `m` equations; the reduced
// system is gathered to one node (collection), "solved" there, and each
// node's personalized boundary values are scattered back. We compare the
// SBT and BST trees for the scatter leg under one-port and all-port models.
//
// Usage: tridiagonal_exchange [--dim n] [--eqs-per-node m]
#include "common/cli.hpp"
#include "routing/protocols.hpp"
#include "routing/scatter.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <cstdio>

namespace {

using namespace hcube;

double gather_time(const trees::SpanningTree& tree, double per_node,
                   sim::PortModel model) {
    sim::EventParams params;
    params.model = model;
    params.packet_capacity = 1e18;
    sim::EventEngine engine(tree.n, params);
    routing::GatherProtocol protocol(tree, per_node, /*combining=*/false);
    return engine.run(protocol).completion_time;
}

double scatter_time(const trees::SpanningTree& tree,
                    const std::vector<hc::node_t>& order, double per_node,
                    sim::PortModel model) {
    sim::EventParams params;
    params.model = model;
    params.packet_capacity = 1e18;
    sim::EventEngine engine(tree.n, params);
    routing::ScatterProtocol protocol(tree, order, per_node);
    return engine.run(protocol).completion_time;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 7));
    const double m = options.get_double("eqs-per-node", 256);
    const double boundary = 4 * 8; // two boundary pairs of doubles per node
    std::printf("tridiagonal exchange on a %d-cube: gather %g B/node of "
                "reduced equations,\nscatter %g B/node of boundary values "
                "back\n\n",
                n, m, boundary);

    const trees::SpanningTree sbt = trees::build_sbt(n, 0);
    const trees::SpanningTree bst = trees::build_bst(n, 0);

    const double collect =
        gather_time(sbt, m, sim::PortModel::one_port_full_duplex);
    std::printf("collection (SBT gather, one port): %.4f s\n\n", collect);

    struct Row {
        const char* name;
        const trees::SpanningTree* tree;
        std::vector<hc::node_t> order;
        sim::PortModel model;
    };
    std::vector<Row> rows;
    rows.push_back({"SBT scatter, one port", &sbt,
                    routing::descending_dest_order(sbt),
                    sim::PortModel::one_port_full_duplex});
    rows.push_back({"BST scatter, one port", &bst,
                    routing::cyclic_dest_order(
                        bst, routing::SubtreeOrder::depth_first),
                    sim::PortModel::one_port_full_duplex});
    rows.push_back({"SBT scatter, all ports", &sbt,
                    routing::descending_dest_order(sbt),
                    sim::PortModel::all_port});
    rows.push_back({"BST scatter, all ports", &bst,
                    routing::cyclic_dest_order(
                        bst, routing::SubtreeOrder::reverse_breadth_first),
                    sim::PortModel::all_port});

    for (const auto& row : rows) {
        std::printf("%-24s %.4f s\n", row.name,
                    scatter_time(*row.tree, row.order, boundary, row.model));
    }

    std::printf("\nWith one port the trees tie (the root is the "
                "bottleneck); with all ports the BST's\nbalanced subtrees "
                "win — §4 of the paper, applied to the tridiagonal "
                "primitive of [12].\n");
    return 0;
}
