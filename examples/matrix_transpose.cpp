// Matrix transpose — the paper's §1 names it as the canonical *all-to-all*
// personalized communication: "every node sends different data to every
// other node".
//
// An N·b x N·b matrix is distributed by block rows (node i owns block row
// i, itself split into N b x b blocks). Transposing the distribution means
// node i must send block (i, j) to node j — a complete exchange. We run the
// dimension-order recursive exchange through the data-carrying collectives,
// verify A^T element by element, and compare the measured time against the
// paper-style cost decomposition.
//
// Usage: matrix_transpose [--dim n] [--block b]
#include "common/cli.hpp"
#include "routing/collectives.hpp"

#include <cmath>
#include <cstdio>

int main(int argc, char** argv) {
    using namespace hcube;
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 6));
    const auto b = static_cast<std::size_t>(options.get_int("block", 8));
    const hc::node_t N = hc::node_t{1} << n;
    const std::size_t dim = N * b;

    std::printf("transposing a %zu x %zu matrix on a %d-cube "
                "(%u x %u grid of %zu x %zu blocks)\n\n",
                dim, dim, n, N, N, b, b);

    // Node i owns block row i: data[i] holds N blocks of b*b values in
    // row-major order; A(r, c) = r * dim + c.
    const auto value = [&](std::size_t r, std::size_t c) {
        return static_cast<double>(r) * static_cast<double>(dim) +
               static_cast<double>(c);
    };
    std::vector<routing::Buffer> rows(N);
    for (hc::node_t i = 0; i < N; ++i) {
        rows[i].resize(N * b * b);
        for (hc::node_t j = 0; j < N; ++j) {
            for (std::size_t rr = 0; rr < b; ++rr) {
                for (std::size_t cc = 0; cc < b; ++cc) {
                    rows[i][(j * b + rr) * b + cc] =
                        value(i * b + rr, j * b + cc);
                }
            }
        }
    }

    sim::EventParams params; // iPSC constants
    params.model = sim::PortModel::one_port_full_duplex;
    routing::CollectiveComm comm(n, params);
    std::vector<routing::Buffer> cols;
    const auto result = comm.alltoall(rows, cols);

    // After the exchange node j holds block (i, j) for every i: the local
    // b x b blocks still need their internal transpose; verify A^T.
    std::size_t errors = 0;
    for (hc::node_t j = 0; j < N; ++j) {
        for (hc::node_t i = 0; i < N; ++i) {
            for (std::size_t rr = 0; rr < b && errors == 0; ++rr) {
                for (std::size_t cc = 0; cc < b; ++cc) {
                    const double got = cols[j][(i * b + rr) * b + cc];
                    // A^T(j*b+cc, i*b+rr) = A(i*b+rr, j*b+cc).
                    if (got != value(i * b + rr, j * b + cc)) {
                        ++errors;
                        break;
                    }
                }
            }
        }
    }

    const double bytes_moved =
        static_cast<double>(N) * (N - 1) * static_cast<double>(b * b);
    std::printf("complete exchange: %.4f s, %zu block-placement errors\n",
                result.time, errors);
    std::printf("data crossing the network: %.0f elements; per-node "
                "per-round load N/2 blocks x log N rounds\n",
                bytes_moved);
    std::printf("model: log N (tau + N/2 b^2 t_c) = %.4f s\n",
                n * (params.tau + (static_cast<double>(N) / 2) *
                                      static_cast<double>(b * b) *
                                      params.tc));
    return errors == 0 ? 0 : 1;
}
