// Quickstart: build the paper's three spanning structures on a 5-cube,
// broadcast a message with each, and print what the library measures.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include "model/broadcast_model.hpp"
#include "routing/broadcast.hpp"
#include "routing/protocols.hpp"
#include "trees/bst.hpp"
#include "trees/msbt.hpp"
#include "trees/sbt.hpp"

#include <algorithm>
#include <cstdio>

int main() {
    using namespace hcube;
    const hc::dim_t n = 5;   // a 32-node Boolean cube
    const hc::node_t src = 0;

    // --- 1. Topologies -----------------------------------------------------
    const trees::SpanningTree sbt = trees::build_sbt(n, src);
    const trees::SpanningTree bst = trees::build_bst(n, src);
    std::printf("5-cube, source %u\n", src);
    std::printf("  SBT:  height %d, largest subtree %llu nodes\n", sbt.height,
                static_cast<unsigned long long>(sbt.subtree_sizes()[0]));
    const auto bst_sizes = bst.subtree_sizes();
    std::printf("  BST:  height %d, largest subtree %llu nodes "
                "(balanced: every subtree ~ N/log N)\n",
                bst.height,
                static_cast<unsigned long long>(*std::max_element(
                    bst_sizes.begin(), bst_sizes.end())));

    // --- 2. Cycle-level: exact routing-step counts ---------------------------
    // Broadcast 8 packets; the MSBT streams 8/5 -> 2 packets per subtree.
    const auto sbt_steps =
        sim::execute_schedule(routing::port_oriented_broadcast(sbt, 8),
                              sim::PortModel::one_port_full_duplex)
            .makespan;
    const auto msbt_steps =
        sim::execute_schedule(
            routing::msbt_broadcast(n, src, 2,
                                    sim::PortModel::one_port_full_duplex),
            sim::PortModel::one_port_full_duplex)
            .makespan;
    std::printf("\nbroadcasting ~8-10 packets, one port (send+recv):\n");
    std::printf("  SBT  port-oriented: %u routing steps (= P log N)\n",
                sbt_steps);
    std::printf("  MSBT pipelined:     %u routing steps (= P + log N)\n",
                msbt_steps);

    // --- 3. Event-level: wall-clock on the simulated iPSC -------------------
    sim::EventParams params; // iPSC defaults: tau 1.7 ms, 2.86 us/B, 1 KB
    params.model = sim::PortModel::one_port_full_duplex;
    const double message = 61440; // 60 KB

    sim::EventEngine sbt_engine(n, params);
    routing::PortOrientedBroadcast sbt_bcast(sbt, message, 1024);
    const double sbt_time = sbt_engine.run(sbt_bcast).completion_time;

    sim::EventEngine msbt_engine(n, params);
    routing::MsbtBroadcastProtocol msbt_bcast(n, src, message, 1024);
    const double msbt_time = msbt_engine.run(msbt_bcast).completion_time;

    std::printf("\n60 KB broadcast on the simulated iPSC:\n");
    std::printf("  SBT : %.3f s\n", sbt_time);
    std::printf("  MSBT: %.3f s   (speedup %.2f, log N = %d)\n", msbt_time,
                sbt_time / msbt_time, n);

    // --- 4. The model agrees -------------------------------------------------
    const auto comm = model::ipsc_params();
    std::printf("\nmodel (Table 3): SBT %.3f s, MSBT %.3f s\n",
                model::broadcast_time(model::Algorithm::sbt,
                                      sim::PortModel::one_port_half_duplex,
                                      message, 1024, n, comm),
                model::broadcast_time(model::Algorithm::msbt,
                                      sim::PortModel::one_port_full_duplex,
                                      message, 1024, n, comm));
    return 0;
}
