// Runs the collectives across *processes*: every workload is launched as
// a multi-rank net::run_job over Unix-domain sockets (plus one TCP
// loopback row), and each job's assembled final memory is byte-compared
// against an in-process rt::Player run of the identical plan — the
// differential-oracle check described in docs/NETWORK.md § Verification.
//
//   net_collectives [--dim 4] [--procs 4] [--block 256] [--tcp 1] [--exec 1]
//
// The --exec demo relaunches this binary per rank: run_job appends
// `--net-rank <r>` to the command line, and the child branch below
// rebuilds the identical JobSpec from the same flags and calls
// net::run_child.
#include "common/cli.hpp"
#include "net/job.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "svc/signature.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

namespace {

using hcube::hc::dim_t;
using hcube::hc::node_t;
using hcube::sim::packet_t;

hcube::svc::Signature make_sig(hcube::svc::Op op, hcube::svc::Family fam,
                               dim_t n, packet_t packets,
                               std::size_t block) {
    hcube::svc::Signature sig;
    sig.op = op;
    sig.family = fam;
    sig.n = n;
    sig.root = 0;
    sig.packets = packets;
    sig.block_elems = static_cast<std::uint32_t>(block);
    return sig;
}

hcube::net::JobSpec make_spec(const hcube::svc::Signature& sig,
                              std::uint32_t procs,
                              hcube::ft::TransportClass wire) {
    hcube::net::JobSpec spec;
    spec.sig = sig;
    spec.procs = std::min<std::uint32_t>(procs, 1u << sig.n);
    spec.transport = wire;
    return spec;
}

/// Byte-compares the job image against a fresh oracle run; prints a row.
bool report(const char* label, const hcube::net::JobSpec& spec,
            const hcube::net::JobResult& job) {
    using namespace hcube;
    const svc::GeneratedSchedule gen = svc::make_schedule(spec.sig);
    const rt::Plan plan = rt::compile_plan(gen.exec, gen.mode,
                                           spec.sig.block_elems, spec.procs);
    rt::Player oracle(plan);
    (void)oracle.play();

    bool match = job.ok;
    for (std::uint64_t s = 0; match && s < plan.total_slots; ++s) {
        const auto expect =
            oracle.block(plan.slot_node[s], plan.slot_packet[s]);
        const auto got =
            job.block(plan, plan.slot_node[s], plan.slot_packet[s]);
        match = got.size() == expect.size() &&
                std::memcmp(expect.data(), got.data(),
                            expect.size() * sizeof(double)) == 0;
    }
    std::printf("%-18s %-4s %5u %9.3f %10llu %9llu %6s\n", label,
                ft::to_string(spec.transport), spec.procs,
                job.seconds * 1e3,
                static_cast<unsigned long long>(job.wire.data_sent),
                static_cast<unsigned long long>(job.wire.retransmits),
                match ? "yes" : "NO");
    if (!job.error.empty()) {
        std::printf("  error: %s\n", job.error.c_str());
    }
    return match;
}

} // namespace

int main(int argc, char** argv) {
    using namespace hcube;
    const CliOptions options(argc, argv);
    const auto n = static_cast<dim_t>(options.get_int("dim", 4));
    const auto procs =
        static_cast<std::uint32_t>(options.get_int("procs", 4));
    const auto block =
        static_cast<std::size_t>(options.get_int("block", 256));
    const auto packets = static_cast<packet_t>(options.get_int("pps", 2));

    // Exec-mode child branch: run_job spawned us with `--net-rank <r>`
    // appended; rebuild the identical spec from the shared flags.
    const auto net_rank =
        static_cast<int>(options.get_int("net-rank", -1));
    if (net_rank >= 0) {
        const svc::Signature sig = make_sig(
            svc::Op::broadcast, svc::Family::sbt, n, packets, block);
        net::JobSpec spec =
            make_spec(sig, procs, ft::TransportClass::uds);
        spec.dir = options.get_string("dir", "");
        return net::run_child(spec,
                              static_cast<std::uint32_t>(net_rank));
    }

    std::printf("hcube::net collectives on a %d-cube, %u rank processes, "
                "%zu doubles per block\n\n",
                n, std::min<std::uint32_t>(procs, 1u << n), block);
    std::printf("%-18s %-4s %5s %9s %10s %9s %6s\n", "collective", "wire",
                "procs", "ms", "frames", "retrans", "ok");

    bool all_ok = true;
    const auto run = [&](const char* label, svc::Op op, svc::Family fam,
                         packet_t pk, ft::TransportClass wire) {
        const svc::Signature sig = make_sig(op, fam, n, pk, block);
        const net::JobSpec spec = make_spec(sig, procs, wire);
        all_ok = report(label, spec, net::run_job(spec)) && all_ok;
    };

    // Fork-mode sweep over Unix-domain sockets.
    run("broadcast sbt", svc::Op::broadcast, svc::Family::sbt, packets,
        ft::TransportClass::uds);
    run("broadcast msbt", svc::Op::broadcast, svc::Family::msbt,
        static_cast<packet_t>(n), ft::TransportClass::uds);
    run("scatter bst", svc::Op::scatter, svc::Family::bst, packets,
        ft::TransportClass::uds);
    run("reduce sbt", svc::Op::reduce, svc::Family::sbt, packets,
        ft::TransportClass::uds);
    run("allgather", svc::Op::allgather, svc::Family::sbt, 1,
        ft::TransportClass::uds);
    run("alltoall", svc::Op::alltoall, svc::Family::sbt, 1,
        ft::TransportClass::uds);

    // One TCP loopback row: same job, same oracle, heavier wire.
    if (options.get_int("tcp", 1) != 0) {
        run("broadcast sbt", svc::Op::broadcast, svc::Family::sbt, packets,
            ft::TransportClass::tcp);
    }

    // Exec-mode demo: relaunch this binary per rank with --net-rank.
    if (options.get_int("exec", 1) != 0) {
        const char* base = std::getenv("TMPDIR");
        std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                           "/hcnet-ex.XXXXXX";
        std::vector<char> dir(tmpl.begin(), tmpl.end());
        dir.push_back('\0');
        if (::mkdtemp(dir.data()) == nullptr) {
            std::fprintf(stderr, "mkdtemp failed\n");
            return 1;
        }
        const svc::Signature sig = make_sig(
            svc::Op::broadcast, svc::Family::sbt, n, packets, block);
        net::JobSpec spec = make_spec(sig, procs, ft::TransportClass::uds);
        spec.dir = dir.data();
        spec.exec_argv = {argv[0],
                          "--dim",     std::to_string(n),
                          "--procs",   std::to_string(procs),
                          "--block",   std::to_string(block),
                          "--pps",     std::to_string(packets),
                          "--dir",     spec.dir};
        all_ok = report("broadcast (exec)", spec, net::run_job(spec)) &&
                 all_ok;
        ::rmdir(dir.data());
    }

    std::printf("\n%s\n", all_ok
                              ? "every job image byte-matched the "
                                "in-process oracle"
                              : "MISMATCH against the in-process oracle");
    return all_ok ? 0 : 1;
}
