// mbr_elastic — an elastic collective group in action: one persistent
// svc::Session serving broadcasts while nodes leave and rejoin underneath
// it. Shows the membership machinery end to end:
//
//   * every transition is an epoch-stamped view change, printed here;
//   * the plan cache invalidates SURGICALLY — only plans whose sub-cube
//     epoch went stale are evicted, and the session reports exactly how
//     many;
//   * a broadcast at a dead root is refused with a structured rejection
//     naming the nearest live member to retarget to;
//   * every run, full or incomplete, stays byte-verified.
//
//   mbr_elastic [--n 4] [--packets 4] [--block 64]
#include "common/cli.hpp"
#include "svc/session.hpp"

#include <cstdio>

using namespace hcube::svc;
using hcube::hc::dim_t;
using hcube::hc::node_t;

namespace {

Signature broadcast_sig(dim_t n, node_t root, hcube::sim::packet_t packets,
                        std::uint32_t block) {
    Signature sig;
    sig.op = Op::broadcast;
    sig.family = Family::sbt;
    sig.n = n;
    sig.root = root;
    sig.packets = packets;
    sig.block_elems = block;
    return sig;
}

void run_and_report(Session& session, const Signature& sig,
                    const char* what) {
    const ExecStats stats = session.execute(sig);
    std::printf("  %-28s epoch=%llu members=%u %s %s (%.3f ms)\n", what,
                static_cast<unsigned long long>(stats.view_epoch),
                stats.member_count,
                stats.cache_hit ? "cache-hit" : "compiled",
                stats.verified ? "verified" : "NOT VERIFIED",
                stats.seconds * 1e3);
}

} // namespace

int main(int argc, char** argv) {
    const hcube::CliOptions options(argc, argv);
    const auto n = static_cast<dim_t>(options.get_int("n", 4));
    const auto packets =
        static_cast<hcube::sim::packet_t>(options.get_int("packets", 4));
    const auto block =
        static_cast<std::uint32_t>(options.get_int("block", 64));

    SessionParams params;
    params.threads = 2;
    params.comm = hcube::model::ipsc_params();
    Session session(n, params);
    const Signature sig = broadcast_sig(n, 0, packets, block);
    const node_t leaver = (node_t{1} << n) - 1;

    std::printf("elastic membership on the %d-cube (%u addresses)\n\n", n,
                node_t{1} << n);

    std::printf("full group:\n");
    run_and_report(session, sig, "broadcast (cold)");
    run_and_report(session, sig, "broadcast (steady)");

    std::printf("\nnode %u leaves:\n", leaver);
    const std::size_t evicted_on_leave = session.leave(leaver);
    std::printf("  view epoch -> %llu, plans invalidated: %zu\n",
                static_cast<unsigned long long>(session.view_epoch()),
                evicted_on_leave);
    run_and_report(session, sig, "broadcast (replanned)");
    run_and_report(session, sig, "broadcast (steady)");

    std::printf("\nbroadcast rooted at the dead node is refused:\n");
    const auto rejection =
        session.preflight(broadcast_sig(n, leaver, packets, block));
    if (rejection.has_value()) {
        std::printf("  reason=%s detail=\"%s\"",
                    std::string(to_string(rejection->reason)).c_str(),
                    rejection->detail.c_str());
        if (rejection->suggested_root.has_value()) {
            std::printf(" -> retarget to live member %u",
                        *rejection->suggested_root);
        }
        std::printf("\n");
    }

    std::printf("\nnode %u rejoins:\n", leaver);
    const std::size_t evicted_on_join = session.join(leaver);
    std::printf("  view epoch -> %llu, plans invalidated: %zu\n",
                static_cast<unsigned long long>(session.view_epoch()),
                evicted_on_join);
    run_and_report(session, sig, "broadcast (replanned)");
    run_and_report(session, sig, "broadcast (steady)");

    std::printf("\ntotal epoch-driven evictions: %llu\n",
                static_cast<unsigned long long>(session.epoch_evictions()));
    return 0;
}
