// Matrix multiplication on a hypercube — the paper's opening motivation for
// broadcasting ("it is used in many parallel algorithms, for instance, in
// matrix multiplication").
//
// We simulate the communication of a rank-update matrix multiply
// C = A * B on an n-cube arranged as a sqrt(N) x sqrt(N) grid (n even):
// in step k, the owner of A's column block k broadcasts it along its grid
// row and the owner of B's row block k broadcasts along its grid column —
// each grid row/column is a subcube, so the broadcast inside it is exactly
// the single-source problem the paper studies. We compare SBT-based and
// MSBT-based row/column broadcasts end to end.
//
// Usage: matmul_broadcast [--dim n] [--elements-per-block e]
#include "common/cli.hpp"
#include "routing/protocols.hpp"
#include "trees/sbt.hpp"

#include <cstdio>

namespace {

using namespace hcube;

/// Time to broadcast `elements` within a d-dimensional subcube using the
/// chosen protocol, on the simulated iPSC.
double subcube_broadcast_time(hc::dim_t d, double elements, bool use_msbt) {
    sim::EventParams params;
    params.model = sim::PortModel::one_port_full_duplex;
    if (use_msbt) {
        sim::EventEngine engine(d, params);
        routing::MsbtBroadcastProtocol protocol(d, 0, elements, 1024);
        return engine.run(protocol).completion_time;
    }
    const trees::SpanningTree tree = trees::build_sbt(d, 0);
    sim::EventEngine engine(d, params);
    routing::PortOrientedBroadcast protocol(tree, elements, 1024);
    return engine.run(protocol).completion_time;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 6));
    const double block = options.get_double("elements-per-block", 16384);
    if (n % 2 != 0) {
        std::fprintf(stderr, "need an even cube dimension for a square "
                             "processor grid\n");
        return 1;
    }
    const hc::dim_t half = n / 2;
    const int grid = 1 << half;

    std::printf("matrix multiply on a %d-cube = %d x %d processor grid\n", n,
                grid, grid);
    std::printf("per-step communication: one row broadcast + one column "
                "broadcast of %.0f B blocks\n\n",
                block);

    // Row and column of the grid are each half-dimensional subcubes; sqrt(N)
    // rank-update steps, each with two subcube broadcasts. Row and column
    // broadcasts of one step can overlap on distinct links, so we charge the
    // max of the two (they are symmetric here).
    for (const bool use_msbt : {false, true}) {
        const double per_step = subcube_broadcast_time(half, block, use_msbt);
        const double total = grid * per_step;
        std::printf("  %-5s broadcasts: %.4f s per step, %.3f s for all %d "
                    "steps\n",
                    use_msbt ? "MSBT" : "SBT", per_step, total, grid);
    }

    std::printf("\nThe MSBT's log(sqrt N) advantage compounds across the "
                "sqrt(N) update steps —\nexactly why the paper cares about "
                "single-source broadcast bandwidth.\n");
    return 0;
}
