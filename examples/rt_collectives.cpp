// Runs every collective of the threaded runtime (hcube::rt) once on real
// worker threads and prints the measured wall clock next to the cycle
// simulator's makespan — the quickest way to see schedules as actual data
// movement rather than cycle counts.
//
//   rt_collectives [--dim 5] [--threads 0=auto] [--block 512] [--pps 2]
#include "common/cli.hpp"
#include "rt/communicator.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace hcube;

    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 5));
    const auto pps = static_cast<sim::packet_t>(options.get_int("pps", 2));

    rt::Params params;
    params.threads =
        static_cast<std::uint32_t>(options.get_int("threads", 0));
    params.block_elems =
        static_cast<std::size_t>(options.get_int("block", 512));
    rt::Communicator comm(n, params);

    std::printf("hcube::rt collectives on a %d-cube, %u threads, "
                "%zu doubles per block\n\n",
                n, comm.threads(), params.block_elems);
    std::printf("%-22s %8s %9s %9s %9s %6s\n", "collective", "cycles",
                "blocks", "ms", "GB/s", "ok");

    const auto report = [](const char* name, const rt::Result& r) {
        std::printf("%-22s %8u %9llu %9.3f %9.3f %6s\n", name, r.rt_cycles,
                    static_cast<unsigned long long>(r.blocks_delivered),
                    r.seconds * 1e3, r.gbytes_per_sec(),
                    r.verified && r.rt_cycles == r.sim_makespan ? "yes"
                                                                : "NO");
    };

    const auto sbt = trees::build_sbt(n, 0);
    const auto bst = trees::build_bst(n, 0);
    const auto total =
        static_cast<sim::packet_t>(n) * pps; // same bytes for both broadcasts

    report("broadcast sbt",
           comm.broadcast(sbt, routing::BroadcastDiscipline::port_oriented,
                          total));
    report("broadcast msbt", comm.broadcast_msbt(0, total));
    report("scatter sbt",
           comm.scatter(sbt, routing::ScatterPolicy::descending, pps));
    report("scatter bst",
           comm.scatter(bst, routing::ScatterPolicy::cyclic, pps));
    report("gather bst",
           comm.gather(bst, routing::ScatterPolicy::cyclic, pps));
    report("reduce sbt", comm.reduce(sbt, pps));
    report("allgather", comm.allgather());
    report("alltoall", comm.alltoall(1));

    std::printf("\nEvery block is checksum-verified on receipt; 'cycles' "
                "must equal the CycleExecutor makespan.\n");
    return 0;
}
