// Distributed inner products — the paper's §1 names "computing inner
// products" as a canonical use of the reduction (reverse broadcast)
// operation.
//
// Every node owns a slice of two long vectors x and y; the global dot
// product needs a sum-reduction of the local partial products, and an
// iterative solver needs the result back at every node (all-reduce). We run
// the data-carrying collectives and verify the numerics, comparing the
// all-reduce against the gather-then-broadcast alternative the paper's
// primitives suggest.
//
// Usage: inner_product [--dim n] [--elements-per-node m]
#include "common/cli.hpp"
#include "routing/collectives.hpp"
#include "routing/protocols.hpp"
#include "trees/sbt.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>

int main(int argc, char** argv) {
    using namespace hcube;
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 7));
    const auto m =
        static_cast<std::size_t>(options.get_int("elements-per-node", 4096));
    const hc::node_t N = hc::node_t{1} << n;

    std::printf("dot product of two %llu-element vectors on a %d-cube "
                "(%zu elements/node)\n\n",
                static_cast<unsigned long long>(N) * m, n, m);

    // Local slices: x_i = 1/(i+1), y_i = (i+1), so x·y = total length.
    std::vector<routing::Buffer> partials(N);
    double expected = 0;
    for (hc::node_t node = 0; node < N; ++node) {
        double local = 0;
        for (std::size_t e = 0; e < m; ++e) {
            const double idx = static_cast<double>(node) *
                                   static_cast<double>(m) +
                               static_cast<double>(e) + 1.0;
            local += (1.0 / idx) * idx;
        }
        partials[node] = {local};
        expected += local;
    }

    // Variant 1: all-reduce (recursive doubling, log N exchanges of one
    // scalar).
    sim::EventParams params; // iPSC constants, full duplex
    params.model = sim::PortModel::one_port_full_duplex;
    routing::CollectiveComm comm(n, params);
    auto reduced = partials;
    const auto ar = comm.allreduce_sum(reduced);
    std::printf("all-reduce:         %.6f s, every node holds %.1f "
                "(expected %.1f)\n",
                ar.time, reduced[0][0], expected);

    // Variant 2: combining reduction up the SBT, then SBT broadcast of the
    // scalar — the paper's reduction + broadcast composition.
    const trees::SpanningTree tree = trees::build_sbt(n, 0);
    sim::EventEngine reduce_engine(n, params);
    routing::GatherProtocol reduce(tree, 1.0, /*combining=*/true);
    const double reduce_time =
        reduce_engine.run(reduce).completion_time;
    routing::CollectiveComm comm2(n, params);
    std::vector<routing::Buffer> bcast(N);
    bcast[0] = {expected};
    const auto bc = comm2.broadcast(
        bcast, 0, routing::BroadcastAlgo::sbt_port_oriented, 1024);
    std::printf("reduce + broadcast: %.6f s (reduce %.6f + broadcast %.6f)\n",
                reduce_time + bc.time, reduce_time, bc.time);

    const bool correct =
        std::abs(reduced[0][0] - expected) < 1e-6 * expected;
    std::printf("\nnumerics %s; for scalar payloads both variants cost "
                "~2 log N start-ups — the\nstart-up term the paper's "
                "optimal-packet-size analysis is built around.\n",
                correct ? "check out" : "ARE WRONG");
    return correct ? 0 : 1;
}
