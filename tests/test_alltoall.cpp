// Tests for the all-to-all extensions (routing/alltoall.hpp).
#include "routing/alltoall.hpp"

#include "sim/event.hpp"

#include <gtest/gtest.h>

namespace hcube::routing {
namespace {

struct Case {
    hc::dim_t n;
    sim::packet_t per_pair;
};

class ExchangeSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ExchangeSweep, RecursiveExchangeDeliversEverything) {
    const auto [n, Pd] = GetParam();
    const sim::Schedule schedule = alltoall_recursive_exchange(n, Pd);
    const auto stats = sim::execute_schedule(
        schedule, sim::PortModel::one_port_full_duplex);
    const hc::node_t count = hc::node_t{1} << n;
    for (hc::node_t src = 0; src < count; ++src) {
        for (hc::node_t dest = 0; dest < count; ++dest) {
            for (sim::packet_t k = 0; k < Pd; ++k) {
                EXPECT_TRUE(stats.holds(
                    dest, alltoall_packet_id(src, dest, n, Pd, k)))
                    << src << " -> " << dest;
            }
        }
    }
}

TEST_P(ExchangeSweep, RecursiveExchangeUsesNTimesHalfNCycles) {
    const auto [n, Pd] = GetParam();
    const sim::Schedule schedule = alltoall_recursive_exchange(n, Pd);
    const auto stats = sim::execute_schedule(
        schedule, sim::PortModel::one_port_full_duplex);
    // n rounds of N/2 · Pd cycles each — the classical dimension-order cost.
    EXPECT_EQ(stats.makespan,
              static_cast<std::uint32_t>(n) * ((hc::node_t{1} << n) / 2) * Pd);
}

INSTANTIATE_TEST_SUITE_P(Cases, ExchangeSweep,
                         ::testing::Values(Case{2, 1}, Case{3, 1}, Case{3, 2},
                                           Case{4, 1}, Case{5, 1},
                                           Case{6, 1}),
                         [](const auto& param_info) {
                             return "n" + std::to_string(param_info.param.n) +
                                    "_p" +
                                    std::to_string(param_info.param.per_pair);
                         });

class GossipSweep : public ::testing::TestWithParam<hc::dim_t> {};

TEST_P(GossipSweep, AllgatherDeliversEveryPacketEverywhere) {
    const hc::dim_t n = GetParam();
    const sim::Schedule schedule = allgather_recursive_doubling(n);
    const auto stats = sim::execute_schedule(
        schedule, sim::PortModel::one_port_full_duplex);
    const hc::node_t count = hc::node_t{1} << n;
    for (hc::node_t i = 0; i < count; ++i) {
        for (hc::node_t p = 0; p < count; ++p) {
            EXPECT_TRUE(stats.holds(i, p)) << "node " << i << " packet " << p;
        }
    }
}

TEST_P(GossipSweep, AllgatherHitsTheNMinus1LowerBound) {
    const hc::dim_t n = GetParam();
    const sim::Schedule schedule = allgather_recursive_doubling(n);
    const auto stats = sim::execute_schedule(
        schedule, sim::PortModel::one_port_full_duplex);
    // Every node receives N-1 packets at one per cycle: N-1 is optimal.
    EXPECT_EQ(stats.makespan, (hc::node_t{1} << n) - 1);
}

INSTANTIATE_TEST_SUITE_P(Dims, GossipSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7),
                         [](const auto& param_info) {
                             return "n" + std::to_string(param_info.param);
                         });

TEST(AllToAllBst, ConcurrentScattersDeliverAllPairs) {
    const hc::dim_t n = 4;
    sim::EventParams params;
    params.tau = 1.0;
    params.tc = 0.001;
    params.packet_capacity = 1e9;
    params.model = sim::PortModel::one_port_full_duplex;
    sim::EventEngine engine(n, params);
    AllToAllBstProtocol protocol(n, 100);
    (void)engine.run(protocol);
    const std::size_t count = std::size_t{1} << n;
    EXPECT_EQ(protocol.delivered(), count * (count - 1));
}

TEST(AllToAllBst, AllPortVariantAlsoDelivers) {
    const hc::dim_t n = 3;
    sim::EventParams params;
    params.tau = 0.5;
    params.tc = 0.01;
    params.packet_capacity = 64;
    params.model = sim::PortModel::all_port;
    sim::EventEngine engine(n, params);
    AllToAllBstProtocol protocol(n, 32);
    const auto stats = engine.run(protocol);
    const std::size_t count = std::size_t{1} << n;
    EXPECT_EQ(protocol.delivered(), count * (count - 1));
    EXPECT_GT(stats.completion_time, 0.0);
}

} // namespace
} // namespace hcube::routing
