// Tests for the runtime's SPSC ring-buffer channel bank: single-threaded
// ring semantics (capacity bound, FIFO order, wraparound) and a two-thread
// producer/consumer hammer — the test that makes the TSan preset earn its
// keep.
#include "rt/channel.hpp"
#include "rt/checksum.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hcube::rt {
namespace {

TEST(RtChannel, CapacityIsRoundedToPowerOfTwo) {
    const ChannelBank bank(3, 3, 8);
    EXPECT_EQ(bank.channel_count(), 3u);
    EXPECT_EQ(bank.capacity(), 4u);
}

TEST(RtChannel, PushPopRoundTripsBlocks) {
    ChannelBank bank(2, 2, 16);
    std::vector<double> block(16);
    fill_canonical(block, 7);
    ASSERT_TRUE(bank.try_push(0, 7, block));
    EXPECT_EQ(bank.in_flight(0), 1u);
    EXPECT_EQ(bank.in_flight(1), 0u);

    std::uint32_t packet = 0;
    const auto front = bank.front(0, packet);
    ASSERT_EQ(front.size(), 16u);
    EXPECT_EQ(packet, 7u);
    EXPECT_EQ(block_checksum(front), canonical_checksum(7, 16));
    bank.pop_front(0);
    EXPECT_EQ(bank.in_flight(0), 0u);

    std::uint32_t unused = 0;
    EXPECT_TRUE(bank.front(0, unused).empty());
}

TEST(RtChannel, RejectsPushBeyondCapacity) {
    ChannelBank bank(1, 2, 4);
    const std::vector<double> block(4, 1.0);
    EXPECT_TRUE(bank.try_push(0, 0, block));
    EXPECT_TRUE(bank.try_push(0, 1, block));
    EXPECT_FALSE(bank.try_push(0, 2, block));
    bank.pop_front(0);
    EXPECT_TRUE(bank.try_push(0, 2, block));
}

TEST(RtChannel, FifoOrderSurvivesWraparound) {
    ChannelBank bank(1, 2, 1);
    for (std::uint32_t round = 0; round < 10; ++round) {
        const std::vector<double> block(1, static_cast<double>(round));
        ASSERT_TRUE(bank.try_push(0, round, block));
        std::uint32_t packet = 0;
        const auto front = bank.front(0, packet);
        ASSERT_FALSE(front.empty());
        EXPECT_EQ(packet, round);
        EXPECT_EQ(front[0], static_cast<double>(round));
        bank.pop_front(0);
    }
}

TEST(RtChannel, SequenceStampsCountPushesPerChannel) {
    // The k-th push into a channel carries stamp k, surviving wraparound —
    // the AsyncPlayer's receive-side assertion that it is consuming
    // exactly the arrival its dependency edges promised.
    ChannelBank bank(2, 2, 4);
    const std::vector<double> block(4, 1.0);
    for (std::uint32_t round = 0; round < 6; ++round) {
        ASSERT_TRUE(bank.try_push(0, round, block));
        std::uint32_t packet = 0;
        std::uint32_t seq = 0;
        ASSERT_FALSE(bank.front(0, packet, seq).empty());
        EXPECT_EQ(seq, round);
        bank.pop_front(0);
    }
    // Stamps are per channel, not global.
    ASSERT_TRUE(bank.try_push(1, 0, block));
    std::uint32_t packet = 0;
    std::uint32_t seq = 99;
    ASSERT_FALSE(bank.front(1, packet, seq).empty());
    EXPECT_EQ(seq, 0u);
}

TEST(RtChannel, ResetReturnsEveryRingToEmptyWithFreshStamps) {
    ChannelBank bank(2, 2, 4);
    const std::vector<double> block(4, 1.0);
    ASSERT_TRUE(bank.try_push(0, 0, block));
    ASSERT_TRUE(bank.try_push(1, 1, block));
    bank.reset();
    EXPECT_EQ(bank.in_flight(0), 0u);
    EXPECT_EQ(bank.in_flight(1), 0u);
    std::uint32_t packet = 0;
    std::uint32_t seq = 99;
    EXPECT_TRUE(bank.front(0, packet, seq).empty());
    ASSERT_TRUE(bank.try_push(0, 2, block));
    ASSERT_FALSE(bank.front(0, packet, seq).empty());
    EXPECT_EQ(seq, 0u); // sequence numbering restarts after reset
}

TEST(RtChannel, ConcurrentProducerConsumerDeliversEverythingInOrder) {
    // One producer spins pushing 4096 canonical blocks through a 4-slot
    // ring while one consumer spins draining and verifying them. Under
    // -fsanitize=thread this exercises the acquire/release pairs on the
    // head/tail counters and the block copies they publish.
    constexpr std::uint32_t kBlocks = 1024;
    constexpr std::size_t kElems = 32;
    ChannelBank bank(1, 4, kElems);

    std::thread producer([&bank] {
        std::vector<double> block(kElems);
        for (std::uint32_t p = 0; p < kBlocks; ++p) {
            fill_canonical(block, p);
            while (!bank.try_push(0, p, block)) {
                std::this_thread::yield(); // single-core friendliness
            }
        }
    });

    std::uint64_t mismatches = 0;
    for (std::uint32_t expected = 0; expected < kBlocks; ++expected) {
        std::uint32_t packet = 0;
        std::span<const double> front;
        while ((front = bank.front(0, packet)).empty()) {
            std::this_thread::yield();
        }
        mismatches += packet != expected;
        mismatches +=
            block_checksum(front) != canonical_checksum(packet, kElems);
        bank.pop_front(0);
    }
    producer.join();
    EXPECT_EQ(mismatches, 0u);
    EXPECT_EQ(bank.in_flight(0), 0u);
}

} // namespace
} // namespace hcube::rt
