// mbr::build_member_tree — the incomplete-cube spanning tree. The
// cornerstone claim: on a full view the member tree IS the SBT, structure
// and children order, for every root — which is what makes every member
// schedule byte-identical to its full-cube counterpart there. On partial
// views the tree spans exactly the live members, routing around holes.
#include "mbr/tree.hpp"

#include "common/check.hpp"
#include "mbr/view.hpp"
#include "trees/sbt.hpp"
#include "trees/spanning_tree.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hcube::mbr {
namespace {

using trees::SpanningTree;

void expect_same_tree(const SpanningTree& a, const SpanningTree& b) {
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.root, b.root);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.children, b.children); // including per-node send order
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.subtree, b.subtree);
    EXPECT_EQ(a.height, b.height);
}

TEST(MbrTree, FullViewReproducesTheSbtAtEveryRoot) {
    for (dim_t n = 1; n <= 5; ++n) {
        const View view(n);
        for (node_t root = 0; root < (node_t{1} << n); ++root) {
            const SpanningTree member = build_member_tree(view, root);
            expect_same_tree(member, trees::build_sbt(n, root));
            validate_member_tree(view, member);
        }
    }
}

TEST(MbrTree, PartialViewSpansExactlyTheLiveMembers) {
    View view(4);
    view.leave(3);
    view.leave(10);
    view.leave(12);
    const SpanningTree tree = build_member_tree(view, 5);
    validate_member_tree(view, tree);

    // Dead addresses are fully isolated.
    for (const node_t dead : {3u, 10u, 12u}) {
        EXPECT_EQ(tree.parent[dead], SpanningTree::kNoParent);
        EXPECT_TRUE(tree.children[dead].empty());
    }
    // Live members all reach the root.
    std::size_t edges = 0;
    for (const node_t v : view.members()) {
        if (v == tree.root) {
            EXPECT_EQ(tree.parent[v], SpanningTree::kNoParent);
            continue;
        }
        ++edges;
        EXPECT_TRUE(view.contains(tree.parent[v]));
    }
    EXPECT_EQ(edges, static_cast<std::size_t>(view.count()) - 1);
}

TEST(MbrTree, RelaysRouteAroundAHole) {
    // n=3, root 0, node 1 dead: 3, 5 (whose SBT parents were 1) must be
    // re-parented through live relays, and the tree still spans.
    View view(3);
    view.leave(1);
    const SpanningTree tree = build_member_tree(view, 0);
    validate_member_tree(view, tree);
    EXPECT_NE(tree.parent[3], 1u);
    EXPECT_NE(tree.parent[5], 1u);
    EXPECT_TRUE(view.contains(tree.parent[3]));
    EXPECT_TRUE(view.contains(tree.parent[5]));
}

TEST(MbrTree, RootMustBeLive) {
    View view(3);
    view.leave(2);
    EXPECT_THROW((void)build_member_tree(view, 2), check_error);
}

TEST(MbrTree, DisconnectedMemberSetThrows) {
    // {0, 3} in a 2-cube differ in both bits and have no live relay.
    const View view = View::of(2, std::vector<node_t>{0, 3});
    EXPECT_THROW((void)build_member_tree(view, 0), check_error);
}

TEST(MbrTree, AvoidedLinksAreRespected) {
    const View view(3);
    const std::vector<trees::Link> avoid{trees::make_link(0, 1)};
    const SpanningTree tree = build_member_tree(view, 0, avoid);
    validate_member_tree(view, tree);
    EXPECT_NE(tree.parent[1], 0u); // 1 must arrive through a relay
    // Avoiding every link of a node disconnects it.
    const std::vector<trees::Link> seal{trees::make_link(0, 1),
                                        trees::make_link(1, 3),
                                        trees::make_link(1, 5)};
    EXPECT_THROW((void)build_member_tree(view, 0, seal), check_error);
}

} // namespace
} // namespace hcube::mbr
