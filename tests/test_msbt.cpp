// Tests for the Multiple Spanning Binomial Trees (paper §3.2-3.3.2):
// spanning-ness of every ERSBT, pairwise edge-disjointness, and the three
// conditions on the labelling f.
#include "trees/msbt.hpp"

#include "hc/bits.hpp"
#include "trees/spanning_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <map>
#include <set>

namespace hcube::trees {
namespace {

struct MsbtCase {
    dim_t n;
    node_t source;
};

class MsbtSweep : public ::testing::TestWithParam<MsbtCase> {};

TEST_P(MsbtSweep, EveryErsbtIsAValidSpanningTree) {
    const auto [n, s] = GetParam();
    for (dim_t j = 0; j < n; ++j) {
        const SpanningTree tree = build_ersbt(n, j, s);
        EXPECT_NO_THROW(validate_tree(tree));
        EXPECT_EQ(tree.root, s);
        // The source's only edge goes to the tree root s ^ 2^j; the graph
        // height is log N + 1 (paper: the MSBT diameter).
        ASSERT_EQ(tree.children[s].size(), 1u);
        EXPECT_EQ(tree.children[s][0], hc::flip_bit(s, j));
        EXPECT_LE(tree.height, n + 1);
    }
}

TEST_P(MsbtSweep, TreesAreEdgeDisjoint) {
    const auto [n, s] = GetParam();
    const MsbtGraph graph = build_msbt(n, s);
    std::set<std::pair<node_t, node_t>> edges;
    std::size_t total = 0;
    for (const auto& tree : graph.trees) {
        for (node_t i = 0; i < tree.node_count(); ++i) {
            if (i == s) {
                continue;
            }
            EXPECT_TRUE(edges.emplace(tree.parent[i], i).second)
                << "edge " << tree.parent[i] << "->" << i
                << " used by two ERSBTs";
            ++total;
        }
    }
    // n spanning trees of N-1 edges each = n(N-1) = all nN directed edges
    // except the n edges pointing back into the source (paper §3.2).
    EXPECT_EQ(total, static_cast<std::size_t>(n) *
                         ((std::size_t{1} << n) - 1));
    for (dim_t j = 0; j < n; ++j) {
        EXPECT_FALSE(edges.contains({hc::flip_bit(s, j), s}));
    }
}

TEST_P(MsbtSweep, InternalNodesAreExactlyThoseWithBitJSet) {
    const auto [n, s] = GetParam();
    if (n == 1) {
        GTEST_SKIP() << "the 1-cube ERSBT root has no children";
    }
    for (dim_t j = 0; j < n; ++j) {
        const SpanningTree tree = build_ersbt(n, j, s);
        for (node_t i = 0; i < tree.node_count(); ++i) {
            if (i == s) {
                continue;
            }
            const bool internal = !tree.children[i].empty();
            EXPECT_EQ(internal, hc::test_bit(i ^ s, j))
                << "node " << i << " tree " << j;
        }
    }
}

TEST_P(MsbtSweep, LabelConditionOneOutputsExceedInput) {
    const auto [n, s] = GetParam();
    for (dim_t j = 0; j < n; ++j) {
        const SpanningTree tree = build_ersbt(n, j, s);
        for (node_t i = 0; i < tree.node_count(); ++i) {
            if (i == s) {
                continue;
            }
            const dim_t in_label = msbt_edge_label(i, j, s, n);
            EXPECT_GE(in_label, 0);
            EXPECT_LE(in_label, 2 * n - 1); // largest label is 2n-1
            for (const node_t c : tree.children[i]) {
                EXPECT_GT(msbt_edge_label(c, j, s, n), in_label)
                    << "tree " << j << ": " << i << " -> " << c;
            }
        }
    }
}

TEST_P(MsbtSweep, LabelConditionTwoInputLabelsDistinctModN) {
    const auto [n, s] = GetParam();
    for (node_t i = 0; i < (node_t{1} << n); ++i) {
        if (i == s) {
            continue;
        }
        std::set<dim_t> classes;
        for (dim_t j = 0; j < n; ++j) {
            classes.insert(msbt_edge_label(i, j, s, n) % n);
        }
        EXPECT_EQ(classes.size(), static_cast<std::size_t>(n))
            << "node " << i;
    }
}

TEST_P(MsbtSweep, LabelConditionThreeOutputLabelsDistinctModN) {
    const auto [n, s] = GetParam();
    const MsbtGraph graph = build_msbt(n, s);
    std::map<node_t, std::multiset<dim_t>> out_labels;
    for (dim_t j = 0; j < n; ++j) {
        const auto& tree = graph.trees[static_cast<std::size_t>(j)];
        for (node_t i = 0; i < tree.node_count(); ++i) {
            for (const node_t c : tree.children[i]) {
                out_labels[i].insert(msbt_edge_label(c, j, s, n) % n);
            }
        }
    }
    for (const auto& [node, labels] : out_labels) {
        std::set<dim_t> unique(labels.begin(), labels.end());
        EXPECT_EQ(unique.size(), labels.size())
            << "node " << node << " repeats an output label class";
    }
}

TEST_P(MsbtSweep, ParentChildrenConsistent) {
    const auto [n, s] = GetParam();
    for (dim_t j = 0; j < n; ++j) {
        for (node_t i = 0; i < (node_t{1} << n); ++i) {
            for (const node_t c : msbt_children(i, j, s, n)) {
                EXPECT_EQ(msbt_parent(c, j, s, n), i)
                    << "tree " << j << " node " << i << " child " << c;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    DimensionsAndSources, MsbtSweep,
    ::testing::Values(MsbtCase{1, 0}, MsbtCase{2, 0}, MsbtCase{3, 0},
                      MsbtCase{3, 5}, MsbtCase{4, 0b1001}, MsbtCase{5, 0},
                      MsbtCase{6, 0b110110}, MsbtCase{7, 0b1111111},
                      MsbtCase{8, 0b10000001}),
    [](const auto& param_info) {
        return "n" + std::to_string(param_info.param.n) + "_s" +
               std::to_string(param_info.param.source);
    });

// Figure 2/3 spot checks: the 3-cube MSBT with source 0.
TEST(Msbt, ThreeCubeRootsAndLabels) {
    const dim_t n = 3;
    // Root of tree j is 2^j, reached at cycle j.
    for (dim_t j = 0; j < n; ++j) {
        EXPECT_EQ(msbt_parent(node_t{1} << j, j, 0, n), 0u);
        EXPECT_EQ(msbt_edge_label(node_t{1} << j, j, 0, n), j);
    }
    // Node 0's children: exactly one per tree.
    for (dim_t j = 0; j < n; ++j) {
        EXPECT_EQ(msbt_children(0, j, 0, n),
                  (std::vector<node_t>{node_t{1} << j}));
    }
}

} // namespace
} // namespace hcube::trees
