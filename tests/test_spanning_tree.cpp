// Tests for the generic SpanningTree machinery (trees/spanning_tree.hpp):
// materialization errors, traversals, subtree accessors, isomorphism.
#include "trees/spanning_tree.hpp"

#include "common/check.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hcube::trees {
namespace {

TEST(Materialize, RejectsNonCubeEdges) {
    // Children function pointing two bits away.
    EXPECT_THROW((void)materialize_tree(
                     2, 0,
                     [](node_t i) {
                         return i == 0 ? std::vector<node_t>{3}
                                       : std::vector<node_t>{};
                     }),
                 check_error);
}

TEST(Materialize, RejectsDoubleGeneration) {
    // Node 3 generated from both 1 and 2.
    EXPECT_THROW((void)materialize_tree(
                     2, 0,
                     [](node_t i) -> std::vector<node_t> {
                         if (i == 0) {
                             return {1, 2};
                         }
                         if (i == 1 || i == 2) {
                             return {3};
                         }
                         return {};
                     }),
                 check_error);
}

TEST(Materialize, RejectsNonSpanningFunctions) {
    // Nothing below the root: nodes unreachable.
    EXPECT_THROW((void)materialize_tree(
                     2, 0, [](node_t) { return std::vector<node_t>{}; }),
                 check_error);
}

TEST(SpanningTree, BfsOrderStartsAtRootAndCoversAll) {
    const SpanningTree tree = build_sbt(5, 7);
    const auto order = tree.bfs_order();
    ASSERT_EQ(order.size(), tree.node_count());
    EXPECT_EQ(order.front(), tree.root);
    std::set<node_t> seen;
    for (std::size_t i = 0; i < order.size(); ++i) {
        EXPECT_TRUE(seen.insert(order[i]).second);
        // Levels are non-decreasing along BFS order.
        if (i > 0) {
            EXPECT_GE(tree.level[order[i]], tree.level[order[i - 1]]);
        }
    }
}

TEST(SpanningTree, SubtreePreorderVisitsParentsBeforeChildren) {
    const SpanningTree tree = build_sbt(5, 0);
    for (dim_t j = 0; j < 5; ++j) {
        const auto order = tree.subtree_preorder(j);
        std::set<node_t> visited;
        for (const node_t u : order) {
            EXPECT_EQ(tree.subtree[u], j);
            const node_t p = tree.parent[u];
            if (p != tree.root) {
                EXPECT_TRUE(visited.contains(p))
                    << "child " << u << " before parent " << p;
            }
            visited.insert(u);
        }
    }
}

TEST(SpanningTree, SubtreeSizesSumToNMinus1) {
    const SpanningTree tree = build_sbt(6, 11);
    const auto sizes = tree.subtree_sizes();
    std::uint64_t total = 0;
    for (const auto size : sizes) {
        total += size;
    }
    EXPECT_EQ(total, tree.node_count() - 1);
}

TEST(SpanningTree, SubtreeHeightOfEmptySubtreeIsZero) {
    // A path tree has only one root subtree; the others are empty.
    SpanningTree tree = materialize_tree(2, 0, [](node_t i) {
        switch (i) {
        case 0: return std::vector<node_t>{1};
        case 1: return std::vector<node_t>{3};
        case 3: return std::vector<node_t>{2};
        default: return std::vector<node_t>{};
        }
    });
    EXPECT_EQ(tree.subtree_height(0), 3);
    EXPECT_EQ(tree.subtree_height(1), 0);
}

TEST(RootedIsomorphism, DistinguishesShapes) {
    const SpanningTree tree = build_sbt(4, 0);
    // Subtrees of the SBT root have sizes 8, 4, 2, 1 — pairwise
    // non-isomorphic.
    const auto& roots = tree.children[0];
    for (std::size_t a = 0; a < roots.size(); ++a) {
        for (std::size_t b = a + 1; b < roots.size(); ++b) {
            EXPECT_FALSE(rooted_isomorphic(tree, roots[a], roots[b]));
        }
    }
    // But each subtree of node 1 mirrors the same-size subtree of the root:
    // children of 1 are 3, 5, 9 rooting SBTs of 4, 2, 1 nodes.
    EXPECT_TRUE(rooted_isomorphic(tree, 2, 3));
    EXPECT_TRUE(rooted_isomorphic(tree, 4, 5));
    EXPECT_TRUE(rooted_isomorphic(tree, 8, 9));
}

TEST(ValidateTree, CatchesTamperedStructures) {
    SpanningTree tree = build_sbt(3, 0);
    EXPECT_NO_THROW(validate_tree(tree));

    SpanningTree broken = tree;
    broken.parent[5] = 2; // 5's parent is really 1
    EXPECT_THROW(validate_tree(broken), check_error);

    broken = tree;
    broken.level[7] = 1;
    EXPECT_THROW(validate_tree(broken), check_error);

    broken = tree;
    broken.children[0].pop_back();
    EXPECT_THROW(validate_tree(broken), check_error);
}

} // namespace
} // namespace hcube::trees
