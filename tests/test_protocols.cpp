// Tests for the event-engine protocols (routing/protocols.hpp): correctness
// of delivery and agreement of measured times with the Table 3 / Table 6
// formulas for uniform packet sizes.
#include "routing/protocols.hpp"

#include "model/broadcast_model.hpp"
#include "model/personalized_model.hpp"
#include "routing/scatter.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hcube::routing {
namespace {

using sim::EventEngine;
using sim::EventParams;
using sim::EventStats;
using sim::PortModel;
using trees::SpanningTree;

EventParams unit_params(PortModel model) {
    EventParams p;
    p.tau = 1.0;
    p.tc = 0.001;
    p.packet_capacity = 1000;
    p.overlap = 0;
    p.model = model;
    return p;
}

TEST(PortOrientedBroadcast, SbtOnePortMatchesCeilMOverBTimesLogN) {
    const hc::dim_t n = 5;
    const double M = 6000; // 6 external packets of 1000 elements
    const double B = 1000;
    const SpanningTree tree = trees::build_sbt(n, 0);
    EventParams params = unit_params(PortModel::one_port_full_duplex);
    EventEngine engine(n, params);
    PortOrientedBroadcast protocol(tree, M, B);
    const EventStats stats = engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
    // T = ceil(M/B) log N (τ + B t_c) — Table 3, SBT 1 port.
    const double expected = model::broadcast_time(
        model::Algorithm::sbt, PortModel::one_port_half_duplex, M, B, n,
        {params.tau, params.tc});
    EXPECT_NEAR(stats.completion_time, expected, 1e-6);
}

TEST(PipelinedBroadcast, SbtAllPortMatchesPipelineFormula) {
    const hc::dim_t n = 5;
    const double M = 6000;
    const double B = 1000;
    const SpanningTree tree = trees::build_sbt(n, 0);
    EventParams params = unit_params(PortModel::all_port);
    EventEngine engine(n, params);
    PipelinedBroadcast protocol(tree, M, B);
    const EventStats stats = engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
    // T = (ceil(M/B) + log N - 1)(τ + B t_c) — Table 3, SBT log N ports.
    const double expected =
        model::broadcast_time(model::Algorithm::sbt, PortModel::all_port, M,
                              B, n, {params.tau, params.tc});
    EXPECT_NEAR(stats.completion_time, expected, 1e-6);
}

TEST(MsbtBroadcast, FullDuplexMatchesCeilMOverBPlusLogN) {
    const hc::dim_t n = 4;
    const double B = 1000;
    const double M = B * n * 3; // 3 packets per subtree
    EventParams params = unit_params(PortModel::one_port_full_duplex);
    EventEngine engine(n, params);
    MsbtBroadcastProtocol protocol(n, 0, M, B);
    const EventStats stats = engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
    // T = (ceil(M/B) + log N)(τ + B t_c) — Table 3, MSBT 1 s and r.
    const double expected = model::broadcast_time(
        model::Algorithm::msbt, PortModel::one_port_full_duplex, M, B, n,
        {params.tau, params.tc});
    EXPECT_NEAR(stats.completion_time, expected, 1e-6);
}

TEST(MsbtBroadcast, AllPortMatchesTable3) {
    const hc::dim_t n = 4;
    const double B = 1000;
    const double M = B * n * 2;
    EventParams params = unit_params(PortModel::all_port);
    EventEngine engine(n, params);
    MsbtBroadcastProtocol protocol(n, 0, M, B);
    const EventStats stats = engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
    const double expected =
        model::broadcast_time(model::Algorithm::msbt, PortModel::all_port, M,
                              B, n, {params.tau, params.tc});
    EXPECT_NEAR(stats.completion_time, expected, 1e-6);
}

TEST(MsbtBroadcast, BeatsSbtByAboutLogNFullDuplex) {
    // Figure 7's headline: speedup ≈ log N for M/B >> log N.
    const hc::dim_t n = 5;
    const double B = 1000;
    const double M = 60 * B;
    EventParams params = unit_params(PortModel::one_port_full_duplex);

    EventEngine sbt_engine(n, params);
    const SpanningTree tree = trees::build_sbt(n, 0);
    PortOrientedBroadcast sbt(tree, M, B);
    const double sbt_time = sbt_engine.run(sbt).completion_time;

    EventEngine msbt_engine(n, params);
    MsbtBroadcastProtocol msbt(n, 0, M, B);
    const double msbt_time = msbt_engine.run(msbt).completion_time;

    const double speedup = sbt_time / msbt_time;
    EXPECT_GT(speedup, 0.75 * n);
    EXPECT_LT(speedup, 1.05 * n);
}

TEST(ScatterProtocol, DeliversEveryPayload) {
    const hc::dim_t n = 4;
    const SpanningTree tree = trees::build_bst(n, 3);
    EventEngine engine(n, unit_params(PortModel::one_port_full_duplex));
    ScatterProtocol protocol(
        tree, cyclic_dest_order(tree, SubtreeOrder::depth_first), 500);
    const EventStats stats = engine.run(protocol);
    EXPECT_EQ(protocol.delivered(), (std::size_t{1} << n) - 1);
    EXPECT_GT(stats.completion_time, 0);
}

TEST(ScatterProtocol, OnePortTimeTracksRootEmission) {
    // B = M regime: T ≈ (N-1)(τ + M t_c) for both SBT and BST (§4.2.2).
    const hc::dim_t n = 5;
    const double M = 1000;
    EventParams params = unit_params(PortModel::one_port_full_duplex);
    const double step = params.tau + M * params.tc;
    for (const bool use_bst : {false, true}) {
        const SpanningTree tree =
            use_bst ? trees::build_bst(n, 0) : trees::build_sbt(n, 0);
        const auto order =
            use_bst ? cyclic_dest_order(tree,
                                        SubtreeOrder::reverse_breadth_first)
                    : descending_dest_order(tree);
        EventEngine engine(n, params);
        ScatterProtocol protocol(tree, order, M);
        const EventStats stats = engine.run(protocol);
        const double root_time = ((1 << n) - 1) * step;
        EXPECT_GE(stats.completion_time, root_time - 1e-9);
        EXPECT_LE(stats.completion_time, root_time + (n + 1) * step);
    }
}

TEST(MergedScatter, SbtOnePortMatchesTable6) {
    // B unbounded: T = (N-1) M t_c + log N τ (Table 6, SBT 1 port).
    const hc::dim_t n = 5;
    const double M = 1000;
    EventParams params = unit_params(PortModel::one_port_full_duplex);
    params.packet_capacity = 1e9; // merged messages stay whole
    const SpanningTree tree = trees::build_sbt(n, 0);
    EventEngine engine(n, params);
    MergedScatterProtocol protocol(tree, M);
    const EventStats stats = engine.run(protocol);
    EXPECT_EQ(protocol.delivered(), (std::size_t{1} << n) - 1);
    const double expected = model::personalized_tmin(
        model::Algorithm::sbt, false, M, n, {params.tau, params.tc});
    // The root finishes at exactly the Table 6 value; the last short hops
    // add a lower-order tail.
    EXPECT_GE(stats.completion_time, expected - 1e-9);
    EXPECT_LE(stats.completion_time, expected * 1.10);
}

TEST(MergedScatter, DeliversOnBst) {
    const hc::dim_t n = 6;
    EventParams params = unit_params(PortModel::all_port);
    params.packet_capacity = 1e9;
    const SpanningTree tree = trees::build_bst(n, 0);
    EventEngine engine(n, params);
    MergedScatterProtocol protocol(tree, 100);
    (void)engine.run(protocol);
    EXPECT_EQ(protocol.delivered(), (std::size_t{1} << n) - 1);
}

TEST(MergedScatter, BstAllPortApproachesBalancedBound) {
    // Table 6, BST log N ports: T ≈ (N-1)/log N · M t_c + log N τ.
    const hc::dim_t n = 6;
    const double M = 1000;
    EventParams params = unit_params(PortModel::all_port);
    params.packet_capacity = 1e9;
    const SpanningTree tree = trees::build_bst(n, 0);
    EventEngine engine(n, params);
    MergedScatterProtocol protocol(tree, M);
    const EventStats stats = engine.run(protocol);
    const double bound = model::personalized_tmin(
        model::Algorithm::bst, true, M, n, {params.tau, params.tc});
    EXPECT_GE(stats.completion_time, 0.9 * bound);
    // The fully-merged recursive algorithm pays the whole deep-subtree chain
    // sum (≈ 2x the subtree load) on its critical path; the lemma-4.2
    // level-by-level schedule that actually attains the Table 6 bound is
    // exercised at cycle level in test_scatter_schedules
    // (BstAllPortHitsTheBalancedLowerBound).
    EXPECT_LE(stats.completion_time, 3.0 * bound);
}

TEST(Gather, ReductionCostsLogNStepsOnSbt) {
    // Reverse operation (§1): combining reduction up the SBT needs log N
    // sequential (τ + M t_c) steps on the critical path.
    const hc::dim_t n = 5;
    const double M = 1000;
    EventParams params = unit_params(PortModel::all_port);
    const SpanningTree tree = trees::build_sbt(n, 0);
    EventEngine engine(n, params);
    GatherProtocol protocol(tree, M, /*combining=*/true);
    const EventStats stats = engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
    const double step = params.tau + M * params.tc;
    EXPECT_NEAR(stats.completion_time, n * step, n * step * 0.5);
}

TEST(Gather, CollectionGrowsMessagesUpTheTree) {
    const hc::dim_t n = 4;
    const double M = 100;
    EventParams params = unit_params(PortModel::all_port);
    params.packet_capacity = 1e9;
    const SpanningTree tree = trees::build_sbt(n, 0);
    EventEngine engine(n, params);
    GatherProtocol protocol(tree, M, /*combining=*/false);
    const EventStats stats = engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
    // The last hop into the root carries half the cube's data: the total
    // time exceeds (N/2) M t_c.
    EXPECT_GT(stats.completion_time, (1 << (n - 1)) * M * params.tc);
}

} // namespace
} // namespace hcube::routing
