// Observability of the service layer: Service counters re-based on obs
// cells (wait-free counters(), parity with registry mirrors), per-tenant
// latency keyed by Request::client_id, queue instrumentation, Session
// plan-cache metrics, and the engines' run aggregates. The registry is
// process-wide and other suites record into it too, so every assertion is
// delta-based against a snapshot taken at test start.
#include "obs/metrics.hpp"
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

namespace hcube::svc {
namespace {

using model::CommParams;

constexpr CommParams synthetic{1.0, 1e-6};

Signature sig_of(Op op, Family family, dim_t n, node_t root,
                 sim::packet_t packets, std::uint32_t block) {
    Signature s;
    s.op = op;
    s.family = family;
    s.n = n;
    s.root = root;
    s.packets = packets;
    s.block_elems = block;
    return s;
}

ServiceParams fast_service() {
    ServiceParams p;
    p.session.threads = 2;
    p.session.comm = synthetic;
    return p;
}

/// Counter delta between two registry snapshots.
std::uint64_t delta(const obs::RegistrySnapshot& now,
                    const obs::RegistrySnapshot& base,
                    const std::string& name) {
    return now.counter(name) - base.counter(name);
}

TEST(ObsSvc, CountersMatchRegistryMirrors) {
    const obs::RegistrySnapshot base = obs::registry().snapshot();
    Service service(3, fast_service());
    const Signature sig =
        sig_of(Op::broadcast, Family::sbt, 3, 0, 3, 32);
    for (int i = 0; i < 4; ++i) {
        const Response r = service.run(sig);
        EXPECT_EQ(r.status, Status::ok);
        EXPECT_TRUE(r.stats.verified);
    }
    const Service::Counters c = service.counters();
    EXPECT_EQ(c.submitted, 4u);
    EXPECT_EQ(c.executed, 4u);
    EXPECT_EQ(c.rejected, 0u);
    EXPECT_EQ(c.failed, 0u);

    const obs::RegistrySnapshot now = obs::registry().snapshot();
    EXPECT_GE(delta(now, base, "svc.submitted"), c.submitted);
    EXPECT_GE(delta(now, base, "svc.executed"), c.executed);
    // This service's plan compiled once and replayed three times.
    EXPECT_GE(delta(now, base, "svc.plan_cache.misses"), 1u);
    EXPECT_GE(delta(now, base, "svc.plan_cache.hits"), 3u);
    // The queue drained: depth gauge is back to zero.
    EXPECT_EQ(now.gauge("svc.queue_depth"), 0);
    // Queue wait and execute latency recorded one sample per request.
    EXPECT_GE(now.find("svc.queue_wait_ns")->hist.count -
                  (base.find("svc.queue_wait_ns") != nullptr
                       ? base.find("svc.queue_wait_ns")->hist.count
                       : 0),
              4u);
}

TEST(ObsSvc, PerTenantLatencyKeyedByClientId) {
    const obs::RegistrySnapshot base = obs::registry().snapshot();
    Service service(3, fast_service());
    const Signature sig =
        sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 32);
    // Three tenants, different request counts — and tenant identity must
    // not defeat batching or fragment the plan cache.
    const std::vector<std::uint32_t> counts = {3, 2, 1};
    for (std::uint32_t tenant = 0; tenant < counts.size(); ++tenant) {
        for (std::uint32_t i = 0; i < counts[tenant]; ++i) {
            const Response r = service.run(Request{sig, 101 + tenant});
            EXPECT_EQ(r.status, Status::ok);
        }
    }
    const obs::RegistrySnapshot now = obs::registry().snapshot();
    for (std::uint32_t tenant = 0; tenant < counts.size(); ++tenant) {
        const std::string name =
            "svc.tenant." + std::to_string(101 + tenant) + ".op_ns";
        const obs::MetricSnapshot* m = now.find(name);
        ASSERT_NE(m, nullptr) << name;
        const std::uint64_t before =
            base.find(name) != nullptr ? base.find(name)->hist.count : 0;
        EXPECT_EQ(m->hist.count - before, counts[tenant]) << name;
        EXPECT_GT(m->hist.percentile(0.99), 0u);
    }
    // One signature → one plan entry, regardless of tenant.
    EXPECT_EQ(service.session().cached_plans(), 1u);
}

TEST(ObsSvc, WaitFreeCountersWhilePaused) {
    // counters() must answer without the admission mutex: readable while
    // the dispatcher is gated and the queue holds pending work.
    Service service(3, fast_service());
    service.pause();
    const Signature sig =
        sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 32);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 3; ++i) {
        futures.push_back(service.submit(Request{sig, 7}));
    }
    const Service::Counters c = service.counters();
    EXPECT_EQ(c.submitted, 3u);
    EXPECT_EQ(c.executed, 0u);
    EXPECT_GE(obs::registry().snapshot().gauge("svc.queue_depth"), 3);
    service.resume();
    for (std::future<Response>& f : futures) {
        EXPECT_EQ(f.get().status, Status::ok);
    }
    EXPECT_EQ(service.counters().executed, 1u); // head + 2 riders batched
    EXPECT_EQ(service.counters().batched, 2u);
}

TEST(ObsSvc, AdmissionRejectCounts) {
    ServiceParams params = fast_service();
    params.queue_depth = 1;
    params.admission = Admission::reject;
    const obs::RegistrySnapshot base = obs::registry().snapshot();
    Service service(3, params);
    service.pause();
    const Signature sig =
        sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 32);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(service.submit(Request{sig, 9}));
    }
    service.resume();
    std::uint32_t rejected = 0;
    for (std::future<Response>& f : futures) {
        rejected += f.get().status == Status::rejected ? 1u : 0u;
    }
    EXPECT_EQ(rejected, 3u);
    EXPECT_EQ(service.counters().rejected, 3u);
    const obs::RegistrySnapshot now = obs::registry().snapshot();
    EXPECT_GE(delta(now, base, "svc.rejected"), 3u);
}

TEST(ObsSvc, SessionCacheMetricsTrackEvictions) {
    const obs::RegistrySnapshot base = obs::registry().snapshot();
    SessionParams params;
    params.threads = 2;
    params.comm = synthetic;
    params.plan_cache_capacity = 2;
    Session session(3, params);
    // Three distinct signatures through a 2-entry cache: at least one
    // eviction, all misses.
    for (const node_t root : {0u, 1u, 2u}) {
        const ExecStats stats = session.execute(
            sig_of(Op::broadcast, Family::sbt, 3, root, 2, 32));
        EXPECT_TRUE(stats.verified);
    }
    const obs::RegistrySnapshot now = obs::registry().snapshot();
    EXPECT_GE(delta(now, base, "svc.plan_cache.misses"), 3u);
    EXPECT_GE(delta(now, base, "svc.plan_cache.evictions"), 1u);
    EXPECT_GT(now.gauge("svc.plan_cache.resident_bytes"), 0);

    // A membership transition evicts by epoch and lands on both counters.
    const std::size_t evicted = session.leave(7);
    const obs::RegistrySnapshot after = obs::registry().snapshot();
    EXPECT_EQ(delta(after, now, "svc.plan_cache.epoch_evictions"), evicted);
}

TEST(ObsSvc, RuntimeAggregatesAdvance) {
    const obs::RegistrySnapshot base = obs::registry().snapshot();
    Service service(3, fast_service());
    const Response r = service.run(
        sig_of(Op::broadcast, Family::sbt, 3, 0, 3, 64));
    EXPECT_EQ(r.status, Status::ok);
    const obs::RegistrySnapshot now = obs::registry().snapshot();
    // The async engine (and its barrier oracle on the first pass) ran at
    // least once each; cycle and byte aggregates moved.
    EXPECT_GE(delta(now, base, "rt.plays_barrier") +
                  delta(now, base, "rt.plays_serial") +
                  delta(now, base, "rt.plays_stealing"),
              2u);
    EXPECT_GE(delta(now, base, "rt.cycles"), 1u);
    EXPECT_GE(delta(now, base, "rt.checksum_bytes"), r.stats.payload_bytes);
    const obs::MetricSnapshot* play = now.find("rt.play_ns");
    ASSERT_NE(play, nullptr);
    EXPECT_GT(play->hist.count, 0u);
}

} // namespace
} // namespace hcube::svc
