// Focused tests for DeliveryMap's sparse open-addressing mode — growth and
// rehash under collision-heavy key streams, overwrite semantics, and the
// executor's duplicate-delivery detection under both tracking layouts.
#include "sim/delivery_map.hpp"

#include "common/check.hpp"
#include "sim/cycle.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace hcube::sim {
namespace {

TEST(DeliveryMapSparse, GrowsPastItsInitialSizingWithoutLosingEntries) {
    // Sized for 4 entries, then fed 4096: forces many doubling rehashes.
    DeliveryMap map = DeliveryMap::sparse(1u << 12, 4096, 4);
    ASSERT_TRUE(map.is_sparse());
    for (std::uint32_t i = 0; i < 4096; ++i) {
        map.set(static_cast<node_t>(i), static_cast<packet_t>(i), i + 1);
    }
    EXPECT_EQ(map.entry_count(), 4096u);
    for (std::uint32_t i = 0; i < 4096; ++i) {
        EXPECT_EQ(map.get(static_cast<node_t>(i),
                          static_cast<packet_t>(i)),
                  i + 1);
    }
    // Pairs never set still read back as never-delivered.
    EXPECT_EQ(map.get(0, 1), DeliveryMap::kNever);
    EXPECT_EQ(map.get(4095, 0), DeliveryMap::kNever);
}

TEST(DeliveryMapSparse, CollisionHeavyKeysSurviveRehash) {
    // All keys share one node so the low 32 key bits are identical; the
    // Fibonacci probe must still spread them and the rehash preserve them.
    constexpr packet_t kPackets = 1024;
    DeliveryMap map = DeliveryMap::sparse(8, kPackets, 2);
    for (packet_t p = 0; p < kPackets; ++p) {
        map.set(5, p, 100 + p);
    }
    EXPECT_EQ(map.entry_count(), kPackets);
    for (packet_t p = 0; p < kPackets; ++p) {
        EXPECT_EQ(map.get(5, p), 100 + p);
    }
    for (packet_t p = 0; p < kPackets; ++p) {
        EXPECT_EQ(map.get(4, p), DeliveryMap::kNever);
    }
}

TEST(DeliveryMapSparse, OverwritingAKeyDoesNotGrowTheEntryCount) {
    DeliveryMap map = DeliveryMap::sparse(16, 16, 8);
    map.set(3, 2, 10);
    EXPECT_EQ(map.entry_count(), 1u);
    map.set(3, 2, 4); // earlier delivery recorded later: last write wins
    EXPECT_EQ(map.entry_count(), 1u);
    EXPECT_EQ(map.get(3, 2), 4u);
    map.set(3, 3, 10);
    EXPECT_EQ(map.entry_count(), 2u);
}

TEST(DeliveryMapDense, EntryCountTracksDistinctCellsWritten) {
    DeliveryMap map = DeliveryMap::dense(4, 4);
    ASSERT_FALSE(map.is_sparse());
    EXPECT_EQ(map.entry_count(), 0u);
    map.set(1, 1, 7);
    map.set(1, 1, 9); // overwrite: still one distinct cell
    map.set(2, 1, 7);
    EXPECT_EQ(map.entry_count(), 2u);
    EXPECT_EQ(map.get(1, 1), 9u);
    EXPECT_EQ(map[1][1], 9u); // row-view indexing agrees
    EXPECT_EQ(map.get(0, 0), DeliveryMap::kNever);
}

TEST(DeliveryMapDense, RejectsMatricesBeyondTheDenseCellBudget) {
    // 2^26 nodes x 2^7 packets = 2^33 cells > the 2^32 dense budget.
    EXPECT_THROW((void)DeliveryMap::dense(1u << 26, 1u << 7), check_error);
}

/// A two-send schedule delivering the same packet to the same node twice —
/// the executor must reject it regardless of the tracking layout.
[[nodiscard]] Schedule duplicate_delivery_schedule() {
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 0, 1, 0}, {1, 0, 1, 0}};
    return s;
}

TEST(DeliveryMapExecutor, DuplicateDeliveryIsRejectedUnderDenseTracking) {
    EXPECT_THROW((void)execute_schedule(duplicate_delivery_schedule(),
                                        PortModel::one_port_full_duplex,
                                        DeliveryTracking::dense),
                 check_error);
}

TEST(DeliveryMapExecutor, DuplicateDeliveryIsRejectedUnderSparseTracking) {
    EXPECT_THROW((void)execute_schedule(duplicate_delivery_schedule(),
                                        PortModel::one_port_full_duplex,
                                        DeliveryTracking::sparse),
                 check_error);
}

TEST(DeliveryMapExecutor, DenseAndSparseAgreeOnAValidSchedule) {
    Schedule s;
    s.n = 3;
    s.packet_count = 2;
    s.initial_holder = {0, 0};
    s.sends = {{0, 0, 1, 0}, {1, 1, 3, 0}, {1, 0, 2, 1}, {2, 3, 7, 0}};
    const auto dense =
        execute_schedule(s, PortModel::one_port_full_duplex,
                         DeliveryTracking::dense);
    const auto sparse =
        execute_schedule(s, PortModel::one_port_full_duplex,
                         DeliveryTracking::sparse);
    EXPECT_EQ(dense.makespan, sparse.makespan);
    EXPECT_EQ(dense.total_sends, sparse.total_sends);
    for (node_t node = 0; node < 8; ++node) {
        for (packet_t packet = 0; packet < 2; ++packet) {
            EXPECT_EQ(dense.delivery_cycle.get(node, packet),
                      sparse.delivery_cycle.get(node, packet));
        }
    }
}

} // namespace
} // namespace hcube::sim
