// Unit tests for hc/paths.hpp — the log N node-disjoint paths (paper §1).
#include "hc/paths.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <set>

namespace hcube::hc {
namespace {

void check_paths(node_t a, node_t b, dim_t n) {
    const auto paths = disjoint_paths(a, b, n);
    const auto d = static_cast<std::size_t>(hamming(a, b));
    ASSERT_EQ(paths.size(), static_cast<std::size_t>(n));

    std::set<node_t> interior_nodes;
    for (std::size_t p = 0; p < paths.size(); ++p) {
        const auto& path = paths[p];
        ASSERT_GE(path.size(), 2u);
        EXPECT_EQ(path.front(), a);
        EXPECT_EQ(path.back(), b);
        // Lengths: d short paths, n - d paths of length d + 2 (paper §1,
        // citing Saad & Schultz).
        const std::size_t expected_len = (p < d) ? d : d + 2;
        EXPECT_EQ(path.size() - 1, expected_len);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            EXPECT_EQ(hamming(path[i], path[i + 1]), 1);
        }
        for (std::size_t i = 1; i + 1 < path.size(); ++i) {
            EXPECT_TRUE(interior_nodes.insert(path[i]).second)
                << "interior node " << path[i] << " shared between paths";
            EXPECT_NE(path[i], a);
            EXPECT_NE(path[i], b);
        }
    }
}

TEST(DisjointPaths, AdjacentNodes) { check_paths(0b0000, 0b0001, 4); }

TEST(DisjointPaths, AntipodalNodes) { check_paths(0b00000, 0b11111, 5); }

TEST(DisjointPaths, ExhaustiveSmallCube) {
    const dim_t n = 4;
    for (node_t a = 0; a < (node_t{1} << n); ++a) {
        for (node_t b = 0; b < (node_t{1} << n); ++b) {
            if (a != b) {
                check_paths(a, b, n);
            }
        }
    }
}

TEST(DisjointPaths, SampledLargerCube) {
    const dim_t n = 9;
    for (node_t a : {node_t{0}, node_t{0b101010101}, node_t{0b111000111}}) {
        for (node_t b : {node_t{1}, node_t{0b010101010}, node_t{0b111111111},
                         node_t{0b100000000}}) {
            if (a != b) {
                check_paths(a, b, n);
            }
        }
    }
}

TEST(DisjointPaths, RejectsEqualEndpoints) {
    EXPECT_THROW((void)disjoint_paths(3, 3, 4), check_error);
}

} // namespace
} // namespace hcube::hc
