// Tests for the multipath point-to-point transfer (routing/multipath.hpp):
// delivery completeness and the ~log N bandwidth aggregation over the
// node-disjoint paths.
#include "routing/multipath.hpp"

#include "common/check.hpp"

#include <gtest/gtest.h>

namespace hcube::routing {
namespace {

double run_transfer(hc::dim_t n, hc::node_t src, hc::node_t dst, double M,
                    double chunk, std::size_t paths) {
    sim::EventParams params;
    params.tau = 1.0;
    params.tc = 0.001;
    params.packet_capacity = 1e9;
    params.model = sim::PortModel::all_port;
    sim::EventEngine engine(n, params);
    MultipathTransfer protocol(n, src, dst, M, chunk, paths);
    const auto stats = engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
    EXPECT_NEAR(protocol.received(), M, 1e-6);
    return stats.completion_time;
}

TEST(Multipath, DeliversOverEveryPathCount) {
    const hc::dim_t n = 4;
    for (std::size_t paths = 1; paths <= 4; ++paths) {
        (void)run_transfer(n, 0b0000, 0b0110, 8000, 1000, paths);
    }
}

TEST(Multipath, WorksBetweenAdjacentAndAntipodalNodes) {
    (void)run_transfer(5, 0, 1, 4000, 500, 5);
    (void)run_transfer(5, 0, 31, 4000, 500, 5);
}

TEST(Multipath, BandwidthAggregatesAcrossPaths) {
    // Transfer-dominated: chunked pipelining across k short paths cuts the
    // time roughly by k (hop penalty is sub-linear).
    const hc::dim_t n = 5;
    const double M = 200000;
    const double t1 = run_transfer(n, 0, 0b11111, M, 1000, 1);
    const double t5 = run_transfer(n, 0, 0b11111, M, 1000, 5);
    EXPECT_GT(t1 / t5, 3.5);
    EXPECT_LT(t1 / t5, 5.5);
}

TEST(Multipath, ShortPathsPreferredAtLowPathCounts) {
    // With Hamming distance 1 and path_count 1, the route is the direct
    // link: time = per-chunk pipeline on one hop.
    sim::EventParams params;
    params.tau = 1.0;
    params.tc = 0.001;
    params.packet_capacity = 1e9;
    params.model = sim::PortModel::all_port;
    sim::EventEngine engine(4, params);
    MultipathTransfer protocol(4, 0, 1, 3000, 1000, 1);
    const auto stats = engine.run(protocol);
    // 3 chunks of 1000 over one link: 3 (τ + 1) = 6.
    EXPECT_NEAR(stats.completion_time, 6.0, 1e-9);
}

TEST(Multipath, RejectsBadArguments) {
    EXPECT_THROW((MultipathTransfer{4, 0, 5, 100, 10, 9}), check_error);
    EXPECT_THROW((MultipathTransfer{4, 0, 5, 100, 10, 0}), check_error);
    EXPECT_THROW((MultipathTransfer{4, 3, 3, 100, 10, 1}), check_error);
}

} // namespace
} // namespace hcube::routing
