// Tests for schedule tracing (sim/trace.hpp).
#include "sim/trace.hpp"

#include "routing/broadcast.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace hcube::sim {
namespace {

Schedule tiny_schedule() {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {0, 0};
    s.sends = {{0, 0, 1, 0}, {1, 0, 2, 1}, {1, 1, 3, 0}, {2, 2, 3, 1}};
    return s;
}

TEST(LinkUtilization, CountsLinksAndSends) {
    const auto util = link_utilization(tiny_schedule());
    EXPECT_EQ(util.directed_links_total, 8u); // N * n = 4 * 2
    EXPECT_EQ(util.directed_links_used, 4u);
    EXPECT_EQ(util.busiest_link_sends, 1u);
    EXPECT_DOUBLE_EQ(util.mean_sends_per_used_link, 1.0);
    // 4 sends / (4 links * 3 cycles).
    EXPECT_NEAR(util.busy_fraction, 4.0 / 12.0, 1e-12);
}

TEST(LinkUtilization, MsbtUsesAlmostEveryLink) {
    // The MSBT's point: n(N-1) of the nN directed links carry data.
    const hc::dim_t n = 4;
    const auto schedule = routing::msbt_broadcast(
        n, 0, 2, PortModel::one_port_full_duplex);
    const auto util = link_utilization(schedule);
    EXPECT_EQ(util.directed_links_used,
              static_cast<std::uint64_t>(n) * ((1u << n) - 1));
    EXPECT_EQ(util.directed_links_total,
              static_cast<std::uint64_t>(n) * (1u << n));
}

TEST(LinkUtilization, SbtPortOrientedUsesOnlyTreeLinks) {
    const hc::dim_t n = 4;
    const auto tree = trees::build_sbt(n, 0);
    const auto schedule = routing::port_oriented_broadcast(tree, 2);
    const auto util = link_utilization(schedule);
    EXPECT_EQ(util.directed_links_used, (1u << n) - 1); // N-1 tree edges
}

TEST(RenderGantt, ShowsBusyCells) {
    const std::string gantt = render_gantt(tiny_schedule());
    // Link 0->1 active in cycle 0 only.
    EXPECT_NE(gantt.find("   0->1       #.."), std::string::npos) << gantt;
    // Link 1->3 active in cycle 1.
    EXPECT_NE(gantt.find("   1->3       .#."), std::string::npos) << gantt;
}

TEST(RenderGantt, TruncatesLongSchedules) {
    const auto schedule = routing::msbt_broadcast(
        5, 0, 4, PortModel::one_port_full_duplex);
    const std::string gantt = render_gantt(schedule, 8, 20);
    EXPECT_NE(gantt.find("more links"), std::string::npos);
}

TEST(ScheduleCsv, WritesOneRowPerSend) {
    const std::string path = "/tmp/hypercoll_schedule.csv";
    schedule_to_csv(tiny_schedule(), path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "cycle,from,to,packet");
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
    }
    EXPECT_EQ(rows, tiny_schedule().sends.size());
    std::remove(path.c_str());
}

} // namespace
} // namespace hcube::sim
