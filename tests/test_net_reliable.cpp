// Tests of the reliability sublayer (net/reliable.hpp): ack-priority
// queueing, bounded duplicate suppression, the wire-fault verdict
// machinery, the ack/retransmit state machine over a real socketpair —
// and the per-transport detection-timeout defaults (the ft knob this
// subsystem made transport-aware, with a regression pin on the original
// in-process value).
#include "net/reliable.hpp"

#include "ft/resilient.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "rt/plan.hpp"
#include "svc/signature.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace hcube::net {
namespace {

using hc::dim_t;

svc::Signature broadcast_sig(dim_t n) {
    svc::Signature s;
    s.op = svc::Op::broadcast;
    s.family = svc::Family::sbt;
    s.n = n;
    s.root = 0;
    s.packets = 2;
    s.block_elems = 8;
    return s;
}

rt::Plan small_plan(dim_t n = 3, std::uint32_t workers = 1) {
    const svc::GeneratedSchedule gen = svc::make_schedule(broadcast_sig(n));
    return rt::compile_plan(gen.exec, gen.mode, 8, workers);
}

struct SocketPair {
    int fd[2] = {-1, -1};
    SocketPair() {
        EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fd));
    }
    ~SocketPair() {
        for (const int f : fd) {
            if (f >= 0) {
                ::close(f);
            }
        }
    }
};

// --------------------------------------------------------------- OutQueue

TEST(NetReliable, AcksDrainBeforeData) {
    OutQueue q;
    q.push_data({1});
    q.push_ack({2});
    q.push_data({3});
    q.push_ack({4});
    std::vector<std::uint8_t> f;
    ASSERT_TRUE(q.pop(f));
    EXPECT_EQ(f[0], 2);
    ASSERT_TRUE(q.pop(f));
    EXPECT_EQ(f[0], 4);
    ASSERT_TRUE(q.pop(f));
    EXPECT_EQ(f[0], 1);
    ASSERT_TRUE(q.pop(f));
    EXPECT_EQ(f[0], 3);
    EXPECT_FALSE(q.pop(f));
    EXPECT_TRUE(q.empty());
}

// -------------------------------------------------------------- RecentSet

TEST(NetReliable, RecentSetSuppressesAndEvictsFifo) {
    RecentSet recent(3);
    EXPECT_TRUE(recent.insert(RecentSet::key(0, 1)));
    EXPECT_TRUE(recent.insert(RecentSet::key(0, 2)));
    EXPECT_TRUE(recent.insert(RecentSet::key(1, 1)));
    EXPECT_FALSE(recent.insert(RecentSet::key(0, 1))); // duplicate
    EXPECT_TRUE(recent.insert(RecentSet::key(2, 9))); // evicts (0,1)
    EXPECT_TRUE(recent.insert(RecentSet::key(0, 1))); // forgotten again
}

TEST(NetReliable, RecentSetKeySeparatesChannels) {
    EXPECT_NE(RecentSet::key(1, 0), RecentSet::key(0, 1));
    EXPECT_EQ(RecentSet::key(3, 7), (std::uint64_t{3} << 32) | 7);
}

// ------------------------------------------------------------- WireFaults

TEST(NetReliable, WireFaultsMapLinkSpecsToChannels) {
    const rt::Plan plan = small_plan();
    ASSERT_GT(plan.channel_count, 0u);
    const auto [from, to] = plan.channel_endpoints(0);

    ft::FaultPlan fp;
    fp.drop(from, to, /*at_push=*/0, /*pushes=*/1);
    WireFaults faults(plan, {fp, /*duplicate_percent=*/0, /*seed=*/1});
    ASSERT_TRUE(faults.armed());

    std::vector<std::uint8_t> payload(16, 0);
    EXPECT_EQ(faults.on_first_send(0, payload), WireFaults::Verdict::drop);
    EXPECT_EQ(faults.on_first_send(0, payload),
              WireFaults::Verdict::deliver); // window of one push expired
}

TEST(NetReliable, WireFaultsCorruptPerturbsPayload) {
    const rt::Plan plan = small_plan();
    const auto [from, to] = plan.channel_endpoints(0);
    ft::FaultPlan fp;
    fp.corrupt(from, to, 0, 1, /*salt=*/3);
    WireFaults faults(plan, {fp, 0, 1});

    std::vector<std::uint8_t> payload(16, 0);
    const std::vector<std::uint8_t> before = payload;
    EXPECT_EQ(faults.on_first_send(0, payload),
              WireFaults::Verdict::corrupt);
    EXPECT_NE(payload, before);
}

TEST(NetReliable, WireFaultsKillIsForever) {
    const rt::Plan plan = small_plan();
    const auto [from, to] = plan.channel_endpoints(0);
    ft::FaultPlan fp;
    fp.kill_link(from, to, /*at_push=*/1);
    WireFaults faults(plan, {fp, 0, 1});

    std::vector<std::uint8_t> payload(8, 0);
    EXPECT_EQ(faults.on_first_send(0, payload),
              WireFaults::Verdict::deliver); // push 0 precedes the kill
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(faults.on_first_send(0, payload),
                  WireFaults::Verdict::kill);
    }
}

TEST(NetReliable, WireFaultsDuplicatePercentIsDeterministic) {
    const rt::Plan plan = small_plan();
    WireFaults a(plan, {{}, /*duplicate_percent=*/100, /*seed=*/7});
    WireFaults b(plan, {{}, /*duplicate_percent=*/100, /*seed=*/7});
    std::vector<std::uint8_t> payload(8, 0);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(a.on_first_send(0, payload),
                  WireFaults::Verdict::duplicate);
        EXPECT_EQ(b.on_first_send(0, payload),
                  WireFaults::Verdict::duplicate);
    }
}

// ----------------------------------------------------------- ReliableLink

ReliableConfig fast_cfg() {
    ReliableConfig cfg;
    cfg.window = 4;
    cfg.max_attempts = 3;
    cfg.backoff_base_us = 1'000;
    cfg.backoff_cap_us = 8'000;
    return cfg;
}

TEST(NetReliable, SendThenAckDrains) {
    SocketPair sp;
    ReliableLink link(sp.fd[0], fast_cfg(), nullptr);
    const double block[2] = {1.0, 2.0};
    ASSERT_TRUE(link.send_data(7, /*channel=*/0, /*seq=*/0, /*packet=*/0,
                               /*checksum=*/5, {block, 2}));
    EXPECT_FALSE(link.drained());

    std::vector<std::uint8_t> frame;
    ASSERT_EQ(read_frame(sp.fd[1], frame), IoStatus::ok);
    DataView v;
    ASSERT_TRUE(decode_data(frame, v));
    EXPECT_EQ(v.plan_fp, 7u);
    EXPECT_EQ(v.seq, 0u);

    link.on_ack({0, 0});
    EXPECT_TRUE(link.drained());
    const WireCounters c = link.counters();
    EXPECT_EQ(c.data_sent, 1u);
    EXPECT_EQ(c.acks_received, 1u);
    EXPECT_EQ(c.retransmits, 0u);
}

TEST(NetReliable, UnackedFrameRetransmitsCleanThenLinkFails) {
    SocketPair sp;
    const ReliableConfig cfg = fast_cfg(); // 3 attempts total
    ReliableLink link(sp.fd[0], cfg, nullptr);
    const double block[2] = {4.0, 8.0};
    ASSERT_TRUE(link.send_data(1, 0, 0, 0, 2, {block, 2}));

    // Never ack; march time far past every deadline. Each tick may fire
    // at most one retransmit per pending frame.
    auto now = ReliableLink::clock::now();
    int guard = 0;
    while (!link.failed() && ++guard < 100) {
        now += std::chrono::milliseconds(100); // >> backoff cap
        link.tick(now);
    }
    EXPECT_TRUE(link.failed());

    const WireCounters c = link.counters();
    EXPECT_EQ(c.data_sent, 1u);
    EXPECT_EQ(c.retransmits, cfg.max_attempts - 1);
    EXPECT_EQ(c.link_failures, 1u);

    // Every wire copy is the identical clean frame.
    std::vector<std::uint8_t> first;
    ASSERT_EQ(read_frame(sp.fd[1], first), IoStatus::ok);
    for (std::uint32_t i = 1; i < cfg.max_attempts; ++i) {
        std::vector<std::uint8_t> again;
        ASSERT_EQ(read_frame(sp.fd[1], again), IoStatus::ok);
        EXPECT_EQ(again, first);
    }

    // A failed link rejects new work instead of blocking forever.
    EXPECT_FALSE(link.send_data(1, 0, 1, 0, 2, {block, 2}));
}

TEST(NetReliable, BackoffDeadlinesAreBoundedAndGrow) {
    SocketPair sp;
    ReliableConfig cfg = fast_cfg();
    cfg.max_attempts = 10;
    ReliableLink link(sp.fd[0], cfg, nullptr);
    const double block[1] = {1.0};
    const auto t0 = ReliableLink::clock::now();
    ASSERT_TRUE(link.send_data(1, 0, 0, 0, 0, {block, 1}));

    // attempt k's deadline gap is base*2^(k-1)+jitter, capped at 2*cap:
    // every observed gap must stay under that bound.
    auto now = t0;
    for (int i = 0; i < 6; ++i) {
        const auto deadline = link.next_deadline();
        ASSERT_NE(deadline, ReliableLink::clock::time_point::max());
        const auto gap =
            std::chrono::duration_cast<std::chrono::microseconds>(deadline -
                                                                  now);
        EXPECT_GT(gap.count(), 0);
        EXPECT_LE(gap.count(), 2 * std::int64_t{cfg.backoff_cap_us});
        now = deadline;
        link.tick(deadline); // fire exactly this retransmit
    }
    EXPECT_FALSE(link.failed());
}

TEST(NetReliable, WindowBlocksUntilAcked) {
    SocketPair sp;
    ReliableConfig cfg = fast_cfg();
    cfg.window = 2;
    ReliableLink link(sp.fd[0], cfg, nullptr);
    const double block[1] = {0.5};
    ASSERT_TRUE(link.send_data(1, 0, 0, 0, 0, {block, 1}));
    ASSERT_TRUE(link.send_data(1, 0, 1, 0, 0, {block, 1}));

    // Window full: the third send must block until an ack opens it.
    std::atomic<bool> sent{false};
    std::thread sender([&] {
        EXPECT_TRUE(link.send_data(1, 0, 2, 0, 0, {block, 1}));
        sent.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(sent.load());
    link.on_ack({0, 0});
    sender.join();
    EXPECT_TRUE(sent.load());
}

TEST(NetReliable, KillVerdictBlackholesRetransmits) {
    const rt::Plan plan = small_plan();
    const auto [from, to] = plan.channel_endpoints(0);
    ft::FaultPlan fp;
    fp.kill_link(from, to);
    WireFaults faults(plan, {fp, 0, 1});

    SocketPair sp;
    ReliableLink link(sp.fd[0], fast_cfg(), &faults);
    const double block[1] = {9.0};
    ASSERT_TRUE(link.send_data(1, 0, 0, 0, 0, {block, 1}));

    auto now = ReliableLink::clock::now();
    int guard = 0;
    while (!link.failed() && ++guard < 100) {
        now += std::chrono::milliseconds(100);
        link.tick(now);
    }
    EXPECT_TRUE(link.failed());

    // Nothing ever reached the wire: the peer-side socket is empty.
    ::close(sp.fd[0]);
    sp.fd[0] = -1;
    std::vector<std::uint8_t> frame;
    EXPECT_EQ(read_frame(sp.fd[1], frame), IoStatus::closed);
    const WireCounters c = link.counters();
    EXPECT_EQ(c.injected_drop, 1u);
    EXPECT_EQ(c.link_failures, 1u);
}

// ------------------------------------------------- per-transport timeouts

TEST(NetReliable, DetectTimeoutScalesWithTransportClass) {
    // Regression pin: the in-process default predates this subsystem and
    // must not move underneath the thread-backend tests.
    EXPECT_EQ(ft::DetectConfig::default_arrival_timeout_us(
                  ft::TransportClass::ring),
              2'000u);
    EXPECT_EQ(ft::DetectConfig::default_arrival_timeout_us(
                  ft::TransportClass::uds),
              500'000u);
    EXPECT_EQ(ft::DetectConfig::default_arrival_timeout_us(
                  ft::TransportClass::tcp),
              2'000'000u);
    EXPECT_LT(ft::DetectConfig::default_arrival_timeout_us(
                  ft::TransportClass::ring),
              ft::DetectConfig::default_arrival_timeout_us(
                  ft::TransportClass::uds));
    EXPECT_LT(ft::DetectConfig::default_arrival_timeout_us(
                  ft::TransportClass::uds),
              ft::DetectConfig::default_arrival_timeout_us(
                  ft::TransportClass::tcp));

    const ft::DetectConfig uds =
        ft::DetectConfig::for_transport(ft::TransportClass::uds);
    EXPECT_EQ(uds.arrival_timeout_us, 500'000u);
    EXPECT_TRUE(uds.abort_on_fault);

    // The resilient communicator keeps the ring-class default.
    const ft::ResilientParams params;
    EXPECT_EQ(params.detect.arrival_timeout_us,
              ft::DetectConfig::default_arrival_timeout_us(
                  ft::TransportClass::ring));
}

} // namespace
} // namespace hcube::net
