// Unit tests for hc/rotate.hpp — R^j, periods, cyclic strings (paper §2).
#include "hc/rotate.hpp"

#include "hc/bits.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hcube::hc {
namespace {

TEST(Rotate, SingleStepMovesLowBitToTop) {
    // R(a_{n-1} ... a_1 a_0) = (a_0 a_{n-1} ... a_1).
    EXPECT_EQ(rotate_right(0b011010, 6), 0b001101u);
    EXPECT_EQ(rotate_right(0b000001, 6), 0b100000u);
    EXPECT_EQ(rotate_right(0b100000, 6), 0b010000u);
}

TEST(Rotate, MultiStepMatchesIteratedSingleStep) {
    const dim_t n = 7;
    for (node_t x : {node_t{0b1011001}, node_t{0}, node_t{0b1111111}}) {
        node_t iterated = x;
        for (dim_t j = 0; j <= 2 * n; ++j) {
            EXPECT_EQ(rotate_right(x, j, n), iterated) << "j=" << j;
            iterated = rotate_right(iterated, n);
        }
    }
}

TEST(Rotate, LeftInvertsRight) {
    const dim_t n = 9;
    for (node_t x = 0; x < (node_t{1} << n); x += 7) {
        for (dim_t j = 0; j < n; ++j) {
            EXPECT_EQ(rotate_left(rotate_right(x, j, n), j, n), x);
        }
    }
}

TEST(Rotate, RotationPreservesWeight) {
    const dim_t n = 8;
    for (node_t x = 0; x < (node_t{1} << n); ++x) {
        EXPECT_EQ(weight(rotate_right(x, 3, n)), weight(x));
    }
}

TEST(Rotate, PaperPeriodExample) {
    // "the period of (011011) is 3" (paper §2).
    EXPECT_EQ(period(0b011011, 6), 3);
    // (110110) also has period 3 (§4.1 example).
    EXPECT_EQ(period(0b110110, 6), 3);
    // (011010) has period 6 (§4.1 example).
    EXPECT_EQ(period(0b011010, 6), 6);
}

TEST(Rotate, PeriodDividesLength) {
    const dim_t n = 12;
    for (node_t x = 0; x < (node_t{1} << n); x += 11) {
        EXPECT_EQ(n % period(x, n), 0);
    }
}

TEST(Rotate, PeriodIsMinimal) {
    const dim_t n = 10;
    for (node_t x = 0; x < (node_t{1} << n); x += 3) {
        const dim_t p = period(x, n);
        EXPECT_EQ(rotate_right(x, p, n), x);
        for (dim_t q = 1; q < p; ++q) {
            EXPECT_NE(rotate_right(x, q, n), x) << "x=" << x << " q=" << q;
        }
    }
}

TEST(Rotate, CyclicMeansPeriodBelowLength) {
    EXPECT_TRUE(is_cyclic(0b0101, 4));
    EXPECT_TRUE(is_cyclic(0b1111, 4));
    EXPECT_TRUE(is_cyclic(0, 4));
    EXPECT_FALSE(is_cyclic(0b0001, 4));
    EXPECT_FALSE(is_cyclic(0b0111, 4));
}

TEST(Rotate, AllOnesAndZeroHavePeriodOne) {
    for (dim_t n = 1; n <= 16; ++n) {
        EXPECT_EQ(period(0, n), 1);
        EXPECT_EQ(period(low_mask(n), n), 1);
    }
}

} // namespace
} // namespace hcube::hc
