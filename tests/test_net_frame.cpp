// Tests of the net transport's wire basement: little-endian primitives
// and the bounds-checked ByteWriter/ByteReader (common/endian.hpp), the
// length-prefixed frame reader/writer with its short-read/short-write and
// EINTR discipline (net/frame.hpp), and every protocol codec
// (net/protocol.hpp) — round trips plus truncation/garbage rejection.
#include "net/frame.hpp"

#include "common/endian.hpp"
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace hcube::net {
namespace {

// ---------------------------------------------------------------- endian

TEST(NetFrame, ScalarLittleEndianRoundTrip) {
    std::uint8_t buf[8];
    store_le16(buf, 0xbeef);
    EXPECT_EQ(load_le16(buf), 0xbeef);
    EXPECT_EQ(buf[0], 0xef); // low byte first: the format, not the host
    store_le32(buf, 0xdead'beef);
    EXPECT_EQ(load_le32(buf), 0xdead'beef);
    store_le64(buf, 0x0123'4567'89ab'cdefULL);
    EXPECT_EQ(load_le64(buf), 0x0123'4567'89ab'cdefULL);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[7], 0x01);
}

TEST(NetFrame, WriterReaderRoundTrip) {
    std::vector<std::uint8_t> buf;
    ByteWriter w(buf);
    w.u8(7);
    w.u16(513);
    w.u32(70'000);
    w.u64(1ULL << 40);
    w.f64(-2.5);
    w.str("hello");
    const double blocks[3] = {1.0, -0.0, 3.25};
    w.blocks({blocks, 3});

    ByteReader r(buf);
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u16(), 513);
    EXPECT_EQ(r.u32(), 70'000u);
    EXPECT_EQ(r.u64(), 1ULL << 40);
    EXPECT_EQ(r.f64(), -2.5);
    EXPECT_EQ(r.str(), "hello");
    double out[3] = {};
    r.blocks(out, 3);
    EXPECT_EQ(0, std::memcmp(blocks, out, sizeof(blocks)));
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.done());
}

TEST(NetFrame, ReaderLatchesOnOverrun) {
    std::vector<std::uint8_t> buf;
    ByteWriter w(buf);
    w.u16(99);
    ByteReader r(buf);
    (void)r.u32(); // asks for more than the buffer holds
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u8(), 0); // latched: every later read is a safe zero
    EXPECT_FALSE(r.ok());
}

TEST(NetFrame, ReaderRejectsOversizeString) {
    std::vector<std::uint8_t> buf(4);
    store_le32(buf.data(), 0xffff'ffff); // length prefix >> buffer
    ByteReader r(buf);
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------- frames

struct SocketPair {
    int fd[2] = {-1, -1};
    SocketPair() {
        EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fd));
    }
    ~SocketPair() {
        for (const int f : fd) {
            if (f >= 0) {
                ::close(f);
            }
        }
    }
};

TEST(NetFrame, FrameRoundTripOverSocketpair) {
    SocketPair sp;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    ASSERT_EQ(write_frame(sp.fd[0], payload), IoStatus::ok);
    std::vector<std::uint8_t> got;
    ASSERT_EQ(read_frame(sp.fd[1], got), IoStatus::ok);
    EXPECT_EQ(got, payload);
}

TEST(NetFrame, EmptyFrameRoundTrips) {
    SocketPair sp;
    ASSERT_EQ(write_frame(sp.fd[0], {}), IoStatus::ok);
    std::vector<std::uint8_t> got = {9, 9};
    ASSERT_EQ(read_frame(sp.fd[1], got), IoStatus::ok);
    EXPECT_TRUE(got.empty());
}

TEST(NetFrame, LargeFrameCrossesShortWrites) {
    // A tiny send buffer forces write_frame through many partial writes
    // while the reader drains concurrently — the short-write loop.
    SocketPair sp;
    const int small = 4096;
    (void)::setsockopt(sp.fd[0], SOL_SOCKET, SO_SNDBUF, &small,
                       sizeof(small));
    std::vector<std::uint8_t> payload(1u << 20);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
    }
    std::vector<std::uint8_t> got;
    IoStatus read_status = IoStatus::failed;
    std::thread reader(
        [&] {
            read_status = read_frame(
                sp.fd[1], got,
                static_cast<std::uint32_t>(payload.size()));
        });
    EXPECT_EQ(write_frame(sp.fd[0], payload), IoStatus::ok);
    reader.join();
    ASSERT_EQ(read_status, IoStatus::ok);
    EXPECT_EQ(got, payload);
}

TEST(NetFrame, CleanEofIsClosedMidFrameIsFailed) {
    {
        SocketPair sp;
        ::close(sp.fd[0]);
        sp.fd[0] = -1;
        std::vector<std::uint8_t> got;
        EXPECT_EQ(read_frame(sp.fd[1], got), IoStatus::closed);
    }
    {
        SocketPair sp;
        const std::uint8_t half_prefix[2] = {42, 0}; // 2 of 4 length bytes
        ASSERT_EQ(2, ::write(sp.fd[0], half_prefix, 2));
        ::close(sp.fd[0]);
        sp.fd[0] = -1;
        std::vector<std::uint8_t> got;
        EXPECT_EQ(read_frame(sp.fd[1], got), IoStatus::failed);
    }
    {
        SocketPair sp;
        std::uint8_t prefix[4];
        store_le32(prefix, 100); // promises 100 bytes, delivers none
        ASSERT_EQ(4, ::write(sp.fd[0], prefix, 4));
        ::close(sp.fd[0]);
        sp.fd[0] = -1;
        std::vector<std::uint8_t> got;
        EXPECT_EQ(read_frame(sp.fd[1], got), IoStatus::failed);
    }
}

TEST(NetFrame, OversizePrefixRejectedWithoutAllocating) {
    SocketPair sp;
    std::uint8_t prefix[4];
    store_le32(prefix, 1u << 30);
    ASSERT_EQ(4, ::write(sp.fd[0], prefix, 4));
    std::vector<std::uint8_t> got;
    EXPECT_EQ(read_frame(sp.fd[1], got, /*max_payload=*/1u << 16),
              IoStatus::failed);
}

// -------------------------------------------------------------- protocol

TEST(NetProtocol, DataRoundTripAndHeaderLayout) {
    const double block[4] = {1.5, -2.0, 0.0, 1e300};
    std::vector<std::uint8_t> frame;
    encode_data(frame, 0xfeed'f00d'dead'beefULL, 17, 99, 3,
                0xabcdef01'23456789ULL, {block, 4});
    ASSERT_EQ(frame.size(), kDataHeaderBytes + 4 * sizeof(double));
    EXPECT_EQ(frame_type(frame), MsgType::data);

    DataView v;
    ASSERT_TRUE(decode_data(frame, v));
    EXPECT_EQ(v.plan_fp, 0xfeed'f00d'dead'beefULL);
    EXPECT_EQ(v.channel, 17u);
    EXPECT_EQ(v.seq, 99u);
    EXPECT_EQ(v.packet, 3u);
    EXPECT_EQ(v.checksum, 0xabcdef01'23456789ULL);
    ASSERT_EQ(v.payload.size(), 4 * sizeof(double));
    double out[4] = {};
    ByteReader r(v.payload);
    r.blocks(out, 4);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(0, std::memcmp(block, out, sizeof(block)));
}

TEST(NetProtocol, DataRejectsRaggedPayload) {
    const double block[2] = {1.0, 2.0};
    std::vector<std::uint8_t> frame;
    encode_data(frame, 1, 0, 0, 0, 2, {block, 2});
    frame.pop_back(); // payload no longer a multiple of sizeof(double)
    DataView v;
    EXPECT_FALSE(decode_data(frame, v));
}

TEST(NetProtocol, SmallMessagesRoundTrip) {
    std::vector<std::uint8_t> frame;
    encode_ack(frame, {5, 1234});
    EXPECT_EQ(frame_type(frame), MsgType::ack);
    AckMsg ack;
    ASSERT_TRUE(decode_ack(frame, ack));
    EXPECT_EQ(ack.channel, 5u);
    EXPECT_EQ(ack.seq, 1234u);

    encode_hello(frame, {3, 0x1122'3344'5566'7788ULL});
    EXPECT_EQ(frame_type(frame), MsgType::hello);
    HelloMsg hello;
    ASSERT_TRUE(decode_hello(frame, hello));
    EXPECT_EQ(hello.rank, 3u);
    EXPECT_EQ(hello.plan_fp, 0x1122'3344'5566'7788ULL);

    encode_bare(frame, MsgType::go);
    EXPECT_EQ(frame_type(frame), MsgType::go);
    EXPECT_EQ(frame.size(), 1u);

    const double block[2] = {4.5, 6.5};
    encode_dump(frame, 77, {block, 2});
    DumpView dump;
    ASSERT_TRUE(decode_dump(frame, dump));
    EXPECT_EQ(dump.slot, 77u);
    EXPECT_EQ(dump.payload.size(), 2 * sizeof(double));
}

TEST(NetProtocol, HelloRejectsWrongMagic) {
    std::vector<std::uint8_t> frame;
    encode_hello(frame, {0, 1});
    frame[1] ^= 0xff; // the magic lives right after the type byte
    HelloMsg hello;
    EXPECT_FALSE(decode_hello(frame, hello));
}

TEST(NetProtocol, ReportRoundTrip) {
    ReportMsg msg;
    msg.rank = 2;
    msg.play.cycles = 9;
    msg.play.blocks_delivered = 31;
    msg.play.payload_bytes = 31 * 64;
    msg.play.bytes_copied = 1984;
    msg.play.checksum_failures = 1;
    msg.play.channel_faults = 2;
    msg.play.timeouts = 3;
    msg.play.seconds = 0.125;
    msg.play.mode = rt::ExecMode::barrier;
    msg.play.transport = ft::TransportClass::uds;
    msg.wire.data_sent = 10;
    msg.wire.retransmits = 4;
    msg.wire.dup_suppressed = 2;
    msg.wire.link_failures = 1;
    msg.fault.cls = ft::DetectClass::arrival_timeout;
    msg.fault.from = 1;
    msg.fault.to = 3;
    msg.fault.cycle = 5;
    msg.fault.packet = 7;

    std::vector<std::uint8_t> frame;
    encode_report(frame, msg);
    EXPECT_EQ(frame_type(frame), MsgType::report);
    ReportMsg got;
    ASSERT_TRUE(decode_report(frame, got));
    EXPECT_EQ(got.rank, 2u);
    EXPECT_EQ(got.play.cycles, 9u);
    EXPECT_EQ(got.play.blocks_delivered, 31u);
    EXPECT_EQ(got.play.seconds, 0.125);
    EXPECT_EQ(got.play.mode, rt::ExecMode::barrier);
    EXPECT_EQ(got.play.transport, ft::TransportClass::uds);
    EXPECT_EQ(got.wire.data_sent, 10u);
    EXPECT_EQ(got.wire.retransmits, 4u);
    EXPECT_EQ(got.wire.link_failures, 1u);
    EXPECT_EQ(got.fault.cls, ft::DetectClass::arrival_timeout);
    EXPECT_EQ(got.fault.from, 1u);
    EXPECT_EQ(got.fault.to, 3u);
}

TEST(NetProtocol, OpMessagesRoundTrip) {
    OpRequestMsg req;
    req.req_id = 41;
    req.sig.op = svc::Op::reduce;
    req.sig.family = svc::Family::sbt;
    req.sig.n = 4;
    req.sig.root = 6;
    req.sig.packets = 2;
    req.sig.block_elems = 32;
    std::vector<std::uint8_t> frame;
    encode_op_request(frame, req);
    EXPECT_EQ(frame_type(frame), MsgType::op_request);
    OpRequestMsg rgot;
    ASSERT_TRUE(decode_op_request(frame, rgot));
    EXPECT_EQ(rgot.req_id, 41u);
    EXPECT_EQ(rgot.sig.op, svc::Op::reduce);
    EXPECT_EQ(rgot.sig.n, 4);
    EXPECT_EQ(rgot.sig.root, 6u);
    EXPECT_EQ(rgot.sig.block_elems, 32u);

    OpResponseMsg resp;
    resp.req_id = 41;
    resp.status = 0;
    resp.verified = true;
    resp.cache_hit = true;
    resp.rt_cycles = 12;
    resp.blocks_delivered = 99;
    resp.seconds = 0.5;
    resp.transport = static_cast<std::uint8_t>(ft::TransportClass::tcp);
    resp.error = "";
    encode_op_response(frame, resp);
    OpResponseMsg pgot;
    ASSERT_TRUE(decode_op_response(frame, pgot));
    EXPECT_EQ(pgot.req_id, 41u);
    EXPECT_TRUE(pgot.verified);
    EXPECT_TRUE(pgot.cache_hit);
    EXPECT_EQ(pgot.rt_cycles, 12u);
    EXPECT_EQ(pgot.blocks_delivered, 99u);
    EXPECT_EQ(pgot.transport,
              static_cast<std::uint8_t>(ft::TransportClass::tcp));
}

TEST(NetProtocol, DecodersRejectTruncationEverywhere) {
    // Every codec must refuse every strict prefix of its encoding —
    // a mid-frame cut can never produce a "valid" message.
    const double block[2] = {1.0, 2.0};
    std::vector<std::vector<std::uint8_t>> frames;
    frames.emplace_back();
    encode_data(frames.back(), 1, 2, 3, 4, 5, {block, 2});
    frames.emplace_back();
    encode_ack(frames.back(), {1, 2});
    frames.emplace_back();
    encode_hello(frames.back(), {1, 2});
    frames.emplace_back();
    encode_dump(frames.back(), 3, {block, 2});
    frames.emplace_back();
    encode_report(frames.back(), ReportMsg{});
    frames.emplace_back();
    encode_op_request(frames.back(), OpRequestMsg{});
    frames.emplace_back();
    encode_op_response(frames.back(), OpResponseMsg{});

    for (const auto& full : frames) {
        for (std::size_t cut = 1; cut + 1 < full.size(); ++cut) {
            const std::span<const std::uint8_t> part{full.data(), cut};
            DataView dv;
            AckMsg am;
            HelloMsg hm;
            DumpView du;
            ReportMsg rm;
            OpRequestMsg qm;
            OpResponseMsg pm;
            switch (*frame_type(full)) {
            case MsgType::data:
                // The payload is "rest of frame": a cut landing on an
                // 8-byte payload boundary is still shape-valid (the bus
                // cross-checks the size against block_elems) — every
                // other cut must be rejected.
                if (cut < kDataHeaderBytes ||
                    (cut - kDataHeaderBytes) % sizeof(double) != 0) {
                    EXPECT_FALSE(decode_data(part, dv));
                } else {
                    EXPECT_TRUE(decode_data(part, dv));
                    EXPECT_EQ(dv.payload.size(), cut - kDataHeaderBytes);
                }
                break;
            case MsgType::ack: EXPECT_FALSE(decode_ack(part, am)); break;
            case MsgType::hello:
                EXPECT_FALSE(decode_hello(part, hm));
                break;
            case MsgType::dump: {
                const std::size_t header = 1 + sizeof(std::uint64_t);
                if (cut < header || (cut - header) % sizeof(double) != 0) {
                    EXPECT_FALSE(decode_dump(part, du));
                } else {
                    EXPECT_TRUE(decode_dump(part, du));
                }
                break;
            }
            case MsgType::report:
                EXPECT_FALSE(decode_report(part, rm));
                break;
            case MsgType::op_request:
                EXPECT_FALSE(decode_op_request(part, qm));
                break;
            case MsgType::op_response:
                EXPECT_FALSE(decode_op_response(part, pm));
                break;
            default: break;
            }
        }
    }
}

} // namespace
} // namespace hcube::net
