// Tests for the data-carrying collectives (routing/collectives.hpp):
// element-by-element value correctness plus timing agreement with the
// underlying algorithms.
#include "routing/collectives.hpp"

#include "common/check.hpp"
#include "model/broadcast_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace hcube::routing {
namespace {

using sim::EventParams;
using sim::PortModel;

EventParams unit_params(PortModel model) {
    EventParams p;
    p.tau = 1.0;
    p.tc = 0.001;
    p.packet_capacity = 1000;
    p.model = model;
    return p;
}

/// A recognizable value per (node, element).
double pattern(hc::node_t node, std::size_t element) {
    return static_cast<double>(node) * 1000.0 +
           static_cast<double>(element);
}

std::vector<Buffer> patterned_data(hc::dim_t n, std::size_t elements) {
    std::vector<Buffer> data(std::size_t{1} << n);
    for (hc::node_t i = 0; i < (hc::node_t{1} << n); ++i) {
        data[i].resize(elements);
        for (std::size_t e = 0; e < elements; ++e) {
            data[i][e] = pattern(i, e);
        }
    }
    return data;
}

struct Case {
    hc::dim_t n;
    hc::node_t root;
    std::size_t elements;
};

class CollectiveSweep : public ::testing::TestWithParam<Case> {};

TEST_P(CollectiveSweep, BroadcastSbtReplicatesTheRootBuffer) {
    const auto [n, root, elements] = GetParam();
    CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
    std::vector<Buffer> data(comm.node_count());
    data[root].resize(elements);
    for (std::size_t e = 0; e < elements; ++e) {
        data[root][e] = pattern(root, e);
    }
    const auto result =
        comm.broadcast(data, root, BroadcastAlgo::sbt_port_oriented, 500);
    EXPECT_GT(result.time, 0);
    for (hc::node_t i = 0; i < comm.node_count(); ++i) {
        ASSERT_EQ(data[i].size(), elements) << "node " << i;
        for (std::size_t e = 0; e < elements; ++e) {
            EXPECT_EQ(data[i][e], pattern(root, e))
                << "node " << i << " element " << e;
        }
    }
}

TEST_P(CollectiveSweep, BroadcastMsbtReplicatesTheRootBuffer) {
    const auto [n, root, elements] = GetParam();
    CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
    std::vector<Buffer> data(comm.node_count());
    data[root].resize(elements);
    for (std::size_t e = 0; e < elements; ++e) {
        data[root][e] = pattern(root, e);
    }
    const auto result =
        comm.broadcast(data, root, BroadcastAlgo::msbt_streams, 500);
    EXPECT_GT(result.time, 0);
    for (hc::node_t i = 0; i < comm.node_count(); ++i) {
        ASSERT_EQ(data[i].size(), elements);
        for (std::size_t e = 0; e < elements; ++e) {
            EXPECT_EQ(data[i][e], pattern(root, e))
                << "node " << i << " element " << e;
        }
    }
}

TEST(Collectives, MsbtBroadcastBeatsSbtOnBigMessages) {
    // M/B = 20 packets >> log N = 5: expect speedup nP/(P+n) = 4.
    const hc::dim_t n = 5;
    const std::size_t elements = 20000;
    CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
    auto data_a = patterned_data(n, elements);
    auto data_b = data_a;
    const double sbt =
        comm.broadcast(data_a, 0, BroadcastAlgo::sbt_port_oriented, 1000)
            .time;
    CollectiveComm comm2(n, unit_params(PortModel::one_port_full_duplex));
    const double msbt =
        comm2.broadcast(data_b, 0, BroadcastAlgo::msbt_streams, 1000).time;
    EXPECT_GT(sbt / msbt, 0.7 * n);
}

TEST_P(CollectiveSweep, ScatterDeliversPersonalizedSlices) {
    const auto [n, root, elements] = GetParam();
    for (const auto algo :
         {ScatterAlgo::sbt_descending, ScatterAlgo::bst_cyclic}) {
        CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
        const std::vector<Buffer> slices = patterned_data(n, elements);
        std::vector<Buffer> data(comm.node_count());
        const auto result = comm.scatter(slices, data, root, algo);
        EXPECT_GT(result.time, 0);
        for (hc::node_t i = 0; i < comm.node_count(); ++i) {
            ASSERT_EQ(data[i].size(), elements) << "node " << i;
            for (std::size_t e = 0; e < elements; ++e) {
                EXPECT_EQ(data[i][e], pattern(i, e));
            }
        }
    }
}

TEST_P(CollectiveSweep, GatherCollectsEveryBuffer) {
    const auto [n, root, elements] = GetParam();
    for (const auto algo :
         {ScatterAlgo::sbt_descending, ScatterAlgo::bst_cyclic}) {
        CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
        const std::vector<Buffer> data = patterned_data(n, elements);
        std::vector<Buffer> gathered;
        const auto result = comm.gather(data, gathered, root, algo);
        EXPECT_GT(result.time, 0);
        ASSERT_EQ(gathered.size(), comm.node_count());
        for (hc::node_t src = 0; src < comm.node_count(); ++src) {
            ASSERT_EQ(gathered[src].size(), elements) << "source " << src;
            for (std::size_t e = 0; e < elements; ++e) {
                EXPECT_EQ(gathered[src][e], pattern(src, e));
            }
        }
    }
}

TEST_P(CollectiveSweep, AllreduceSumsEverywhere) {
    const auto [n, root, elements] = GetParam();
    (void)root;
    CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
    std::vector<Buffer> data = patterned_data(n, elements);
    const auto result = comm.allreduce_sum(data);
    EXPECT_GT(result.time, 0);
    const double count = std::ldexp(1.0, n);
    for (hc::node_t i = 0; i < comm.node_count(); ++i) {
        for (std::size_t e = 0; e < elements; ++e) {
            // sum over nodes of (node*1000 + e).
            const double expected =
                1000.0 * (count * (count - 1) / 2) +
                count * static_cast<double>(e);
            EXPECT_NEAR(data[i][e], expected, 1e-6)
                << "node " << i << " element " << e;
        }
    }
}

TEST_P(CollectiveSweep, AllgatherConcatenatesInNodeOrder) {
    const auto [n, root, elements] = GetParam();
    (void)root;
    CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
    const std::vector<Buffer> data = patterned_data(n, elements);
    std::vector<Buffer> out;
    const auto result = comm.allgather(data, out);
    EXPECT_GT(result.time, 0);
    for (hc::node_t i = 0; i < comm.node_count(); ++i) {
        ASSERT_EQ(out[i].size(), comm.node_count() * elements);
        for (hc::node_t src = 0; src < comm.node_count(); ++src) {
            for (std::size_t e = 0; e < elements; ++e) {
                EXPECT_EQ(out[i][src * elements + e], pattern(src, e))
                    << "node " << i << " block " << src << " element " << e;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CollectiveSweep,
    ::testing::Values(Case{1, 0, 8}, Case{2, 3, 16}, Case{3, 0, 64},
                      Case{4, 9, 100}, Case{5, 0, 600}, Case{6, 21, 32}),
    [](const auto& param_info) {
        return "n" + std::to_string(param_info.param.n) + "_r" +
               std::to_string(param_info.param.root) + "_m" +
               std::to_string(param_info.param.elements);
    });

TEST(Collectives, AllreduceTimeIsLogNRounds) {
    // Recursive doubling: log N rounds of fixed-size pairwise exchange.
    const hc::dim_t n = 5;
    const std::size_t M = 500;
    const auto params = unit_params(PortModel::one_port_full_duplex);
    CollectiveComm comm(n, params);
    std::vector<Buffer> data = patterned_data(n, M);
    const auto result = comm.allreduce_sum(data);
    const double per_round =
        params.tau + static_cast<double>(M) * params.tc;
    EXPECT_NEAR(result.time, n * per_round, 1e-6);
}

TEST(Collectives, AllgatherTimeSumsDoublingBlocks) {
    // Round d exchanges 2^d blocks: sum_d (tau + 2^d M t_c), with each
    // payload split into internal packets as needed.
    const hc::dim_t n = 4;
    const std::size_t M = 100;
    auto params = unit_params(PortModel::one_port_full_duplex);
    params.packet_capacity = 1e9; // keep each round one transfer
    CollectiveComm comm(n, params);
    const std::vector<Buffer> data = patterned_data(n, M);
    std::vector<Buffer> out;
    const auto result = comm.allgather(data, out);
    double expected = 0;
    for (hc::dim_t d = 0; d < n; ++d) {
        expected += params.tau +
                    std::ldexp(static_cast<double>(M), d) * params.tc;
    }
    EXPECT_NEAR(result.time, expected, 1e-6);
}

TEST_P(CollectiveSweep, ReduceScatterSumsPerBlock) {
    const auto [n, root, elements] = GetParam();
    (void)root;
    if (elements > 1000) {
        GTEST_SKIP() << "N^2-sized inputs kept small";
    }
    CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
    const hc::node_t N = comm.node_count();
    const std::size_t block = 4;
    // data[i] = N blocks; block b element e = pattern(i, b) + e.
    std::vector<Buffer> data(N);
    for (hc::node_t i = 0; i < N; ++i) {
        data[i].resize(N * block);
        for (hc::node_t b = 0; b < N; ++b) {
            for (std::size_t e = 0; e < block; ++e) {
                data[i][b * block + e] =
                    pattern(i, b) + static_cast<double>(e);
            }
        }
    }
    std::vector<Buffer> out;
    const auto result = comm.reduce_scatter_sum(data, out);
    EXPECT_GT(result.time, 0);
    const double count = std::ldexp(1.0, n);
    for (hc::node_t b = 0; b < N; ++b) {
        ASSERT_EQ(out[b].size(), block);
        for (std::size_t e = 0; e < block; ++e) {
            // sum over i of (i*1000 + b + e).
            const double expected = 1000.0 * (count * (count - 1) / 2) +
                                    count * (static_cast<double>(b) +
                                             static_cast<double>(e));
            EXPECT_NEAR(out[b][e], expected, 1e-6)
                << "block " << b << " element " << e;
        }
    }
}

TEST(Collectives, ReduceScatterTimeIsBandwidthOptimal) {
    // Recursive halving: sum_d (tau + (N M / 2^(d+1)) t_c) — the N M t_c
    // transfer term does not multiply by log N.
    const hc::dim_t n = 4;
    const std::size_t block = 50;
    auto params = unit_params(PortModel::one_port_full_duplex);
    params.packet_capacity = 1e9;
    CollectiveComm comm(n, params);
    const hc::node_t N = 1 << n;
    std::vector<Buffer> data(N, Buffer(N * block, 1.0));
    std::vector<Buffer> out;
    const auto result = comm.reduce_scatter_sum(data, out);
    double expected = 0;
    for (hc::dim_t d = 0; d < n; ++d) {
        expected += params.tau +
                    static_cast<double>(N) * static_cast<double>(block) /
                        std::ldexp(2.0, d) * params.tc;
    }
    EXPECT_NEAR(result.time, expected, 1e-6);
}

TEST(Collectives, ReduceScatterPlusAllgatherEqualsAllreduce) {
    // The classic identity — and a cross-check between three independent
    // implementations.
    const hc::dim_t n = 3;
    const std::size_t block = 8;
    const hc::node_t N = 1 << n;
    std::vector<Buffer> data(N);
    for (hc::node_t i = 0; i < N; ++i) {
        data[i].resize(N * block);
        for (std::size_t e = 0; e < N * block; ++e) {
            data[i][e] = pattern(i, e);
        }
    }
    // reduce-scatter then allgather.
    CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
    std::vector<Buffer> reduced;
    (void)comm.reduce_scatter_sum(data, reduced);
    CollectiveComm comm2(n, unit_params(PortModel::one_port_full_duplex));
    std::vector<Buffer> gathered;
    (void)comm2.allgather(reduced, gathered);
    // direct allreduce.
    CollectiveComm comm3(n, unit_params(PortModel::one_port_full_duplex));
    auto direct = data;
    (void)comm3.allreduce_sum(direct);
    for (hc::node_t i = 0; i < N; ++i) {
        ASSERT_EQ(gathered[i].size(), direct[i].size());
        for (std::size_t e = 0; e < direct[i].size(); ++e) {
            EXPECT_NEAR(gathered[i][e], direct[i][e], 1e-6)
                << "node " << i << " element " << e;
        }
    }
}

TEST_P(CollectiveSweep, AllToAllTransposesBlocks) {
    const auto [n, root, elements] = GetParam();
    (void)root;
    if (elements > 1000) {
        GTEST_SKIP() << "N^2-sized inputs kept small";
    }
    CollectiveComm comm(n, unit_params(PortModel::one_port_full_duplex));
    const hc::node_t N = comm.node_count();
    const std::size_t block = 3;
    // data[i] block b element e = i*1e6 + b*1e3 + e.
    std::vector<Buffer> data(N);
    for (hc::node_t i = 0; i < N; ++i) {
        data[i].resize(N * block);
        for (hc::node_t b = 0; b < N; ++b) {
            for (std::size_t e = 0; e < block; ++e) {
                data[i][b * block + e] = 1e6 * i + 1e3 * b +
                                         static_cast<double>(e);
            }
        }
    }
    std::vector<Buffer> out;
    const auto result = comm.alltoall(data, out);
    EXPECT_GT(result.time, 0);
    for (hc::node_t i = 0; i < N; ++i) {
        ASSERT_EQ(out[i].size(), N * block);
        for (hc::node_t src = 0; src < N; ++src) {
            for (std::size_t e = 0; e < block; ++e) {
                // out[i] block src == data[src] block i.
                EXPECT_EQ(out[i][src * block + e],
                          1e6 * src + 1e3 * i + static_cast<double>(e))
                    << "node " << i << " src " << src << " element " << e;
            }
        }
    }
}

TEST(Collectives, AllToAllTimeMatchesRecursiveExchange) {
    // Each round ships N/2 blocks: sum over rounds of
    // (tau + (N/2) * block * t_c).
    const hc::dim_t n = 4;
    const std::size_t block = 64;
    auto params = unit_params(PortModel::one_port_full_duplex);
    params.packet_capacity = 1e9;
    CollectiveComm comm(n, params);
    const hc::node_t N = 1 << n;
    std::vector<Buffer> data(N, Buffer(N * block, 1.0));
    std::vector<Buffer> out;
    const auto result = comm.alltoall(data, out);
    const double per_round =
        params.tau +
        (static_cast<double>(N) / 2) * static_cast<double>(block) * params.tc;
    EXPECT_NEAR(result.time, n * per_round, 1e-6);
}

TEST(Collectives, RejectsWrongBufferCounts) {
    CollectiveComm comm(3, unit_params(PortModel::all_port));
    std::vector<Buffer> wrong(3); // needs 8
    EXPECT_THROW((void)comm.allreduce_sum(wrong), check_error);
}

} // namespace
} // namespace hcube::routing
