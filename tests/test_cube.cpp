// Unit tests for hc/cube.hpp — the Boolean n-cube description.
#include "hc/cube.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <set>

namespace hcube::hc {
namespace {

TEST(Cube, BasicShape) {
    const Cube cube(5);
    EXPECT_EQ(cube.dimension(), 5);
    EXPECT_EQ(cube.node_count(), 32u);
    EXPECT_TRUE(cube.contains(31));
    EXPECT_FALSE(cube.contains(32));
}

TEST(Cube, RejectsBadDimension) {
    EXPECT_THROW(Cube(0), check_error);
    EXPECT_THROW(Cube(kMaxDimension + 1), check_error);
}

TEST(Cube, NeighborFlipsExactlyOneBit) {
    const Cube cube(6);
    for (node_t i = 0; i < cube.node_count(); ++i) {
        std::set<node_t> nbrs;
        for (dim_t j = 0; j < 6; ++j) {
            const node_t k = cube.neighbor(i, j);
            EXPECT_TRUE(cube.adjacent(i, k));
            EXPECT_EQ(i ^ k, node_t{1} << j);
            nbrs.insert(k);
        }
        EXPECT_EQ(nbrs.size(), 6u); // fanout log N (paper §1)
    }
}

TEST(Cube, DirectedEdgeCountIsNLogN) {
    // Total communication links: (1/2) N log N, i.e. N log N directed edges.
    for (dim_t n = 1; n <= 8; ++n) {
        const Cube cube(n);
        const auto edges = cube.directed_edges();
        EXPECT_EQ(edges.size(), (std::size_t{1} << n) *
                                    static_cast<std::size_t>(n));
        std::set<std::pair<node_t, node_t>> unique;
        for (const auto& e : edges) {
            EXPECT_EQ(e.to, flip_bit(e.from, e.dim));
            unique.emplace(e.from, e.to);
        }
        EXPECT_EQ(unique.size(), edges.size());
    }
}

TEST(Cube, DistanceDistributionIsBinomial) {
    // C(log N, i) nodes at distance i from any node (paper §1).
    const Cube cube(7);
    for (node_t center : {node_t{0}, node_t{0b1010101}}) {
        std::vector<std::uint64_t> histogram(8, 0);
        for (node_t i = 0; i < cube.node_count(); ++i) {
            ++histogram[static_cast<std::size_t>(hamming(center, i))];
        }
        for (dim_t d = 0; d <= 7; ++d) {
            EXPECT_EQ(histogram[static_cast<std::size_t>(d)],
                      cube.nodes_at_distance(d));
        }
    }
}

TEST(Cube, BinomialKnownValues) {
    EXPECT_EQ(binomial(0, 0), 1u);
    EXPECT_EQ(binomial(5, 2), 10u);
    EXPECT_EQ(binomial(20, 10), 184756u);
    EXPECT_EQ(binomial(7, -1), 0u);
    EXPECT_EQ(binomial(7, 8), 0u);
}

TEST(Cube, BinomialRowSumsToPowerOfTwo) {
    for (dim_t n = 1; n <= 20; ++n) {
        std::uint64_t sum = 0;
        for (dim_t k = 0; k <= n; ++k) {
            sum += binomial(n, k);
        }
        EXPECT_EQ(sum, std::uint64_t{1} << n);
    }
}

} // namespace
} // namespace hcube::hc
