// Tests for the continuous-time event engine (sim/event.hpp): transfer
// costs, internal packetization, port-model resource semantics, FIFO
// draining, back-pressure and the cross-port overlap credit.
#include "sim/event.hpp"

#include "common/check.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hcube::sim {
namespace {

constexpr double kEps = 1e-9;

/// Sends a fixed list of messages from given nodes at time 0; counts
/// deliveries.
class ScriptedProtocol final : public Protocol {
public:
    struct Step {
        node_t from;
        node_t to;
        double size;
    };

    explicit ScriptedProtocol(std::vector<Step> steps)
        : steps_(std::move(steps)) {}

    void on_start(NodeContext& ctx) override {
        for (const auto& step : steps_) {
            if (step.from == ctx.self()) {
                ctx.send(step.to, Message{step.to, step.size, 0});
            }
        }
    }

    void on_receive(NodeContext& ctx, const Message& message) override {
        (void)ctx;
        (void)message;
    }

private:
    std::vector<Step> steps_;
};

/// Forwards once: 0 -> 1 -> 3 (used for store-and-forward timing).
class RelayProtocol final : public Protocol {
public:
    explicit RelayProtocol(double size) : size_(size) {}

    void on_start(NodeContext& ctx) override {
        if (ctx.self() == 0) {
            ctx.send(1, Message{3, size_, 0});
        }
    }

    void on_receive(NodeContext& ctx, const Message& message) override {
        if (ctx.self() == 1) {
            ctx.send(3, message);
        }
    }

private:
    double size_;
};

EventParams base_params(PortModel model, double overlap = 0.0) {
    EventParams p;
    p.tau = 1.0;
    p.tc = 0.01;
    p.packet_capacity = 1024;
    p.overlap = overlap;
    p.model = model;
    return p;
}

TEST(EventEngine, SingleTransferCostsTauPlusSizeTc) {
    EventEngine engine(2, base_params(PortModel::one_port_full_duplex));
    ScriptedProtocol protocol({{0, 1, 100}});
    const auto stats = engine.run(protocol);
    EXPECT_NEAR(stats.completion_time, 1.0 + 100 * 0.01, kEps);
    EXPECT_EQ(stats.transfers, 1u);
    EXPECT_EQ(stats.messages, 1u);
}

TEST(EventEngine, InternalPacketizationPaysTauPerPacket) {
    auto params = base_params(PortModel::one_port_full_duplex);
    params.packet_capacity = 100;
    EventEngine engine(2, params);
    ScriptedProtocol protocol({{0, 1, 250}}); // 3 internal packets
    const auto stats = engine.run(protocol);
    EXPECT_EQ(stats.transfers, 3u);
    EXPECT_NEAR(stats.completion_time, 3 * 1.0 + 250 * 0.01, kEps);
}

TEST(EventEngine, SenderSerializesItsQueueFifo) {
    EventEngine engine(2, base_params(PortModel::one_port_full_duplex));
    ScriptedProtocol protocol({{0, 1, 100}, {0, 2, 100}});
    const auto stats = engine.run(protocol);
    // Two sends back to back on the one-port sender: 2 * (τ + 100 t_c).
    EXPECT_NEAR(stats.completion_time, 2 * (1.0 + 1.0), kEps);
}

TEST(EventEngine, AllPortSendsConcurrently) {
    EventEngine engine(2, base_params(PortModel::all_port));
    ScriptedProtocol protocol({{0, 1, 100}, {0, 2, 100}});
    const auto stats = engine.run(protocol);
    EXPECT_NEAR(stats.completion_time, 1.0 + 1.0, kEps);
}

TEST(EventEngine, StoreAndForwardAddsUp) {
    EventEngine engine(2, base_params(PortModel::one_port_full_duplex));
    RelayProtocol protocol(100);
    const auto stats = engine.run(protocol);
    EXPECT_NEAR(stats.completion_time, 2 * (1.0 + 1.0), kEps);
    EXPECT_EQ(stats.messages, 2u);
}

TEST(EventEngine, FullDuplexReceiveDoesNotBlockSend) {
    // Node 1 receives from 0 while sending to 3: full duplex overlaps them.
    EventEngine engine(2, base_params(PortModel::one_port_full_duplex));
    ScriptedProtocol protocol({{0, 1, 100}, {1, 3, 100}});
    const auto stats = engine.run(protocol);
    EXPECT_NEAR(stats.completion_time, 2.0, kEps);
}

TEST(EventEngine, HalfDuplexReceiveBlocksSend) {
    // Same scenario under half duplex: node 1's operations serialize.
    EventEngine engine(2, base_params(PortModel::one_port_half_duplex));
    ScriptedProtocol protocol({{0, 1, 100}, {1, 3, 100}});
    const auto stats = engine.run(protocol);
    EXPECT_NEAR(stats.completion_time, 4.0, kEps);
}

TEST(EventEngine, HalfDuplexBusyReceiverDelaysTheSender) {
    // Node 1 first sends a long message; node 0's transfer into node 1 must
    // wait for the receiver — the back-pressure cascade of Figure 8.
    EventEngine engine(2, base_params(PortModel::one_port_half_duplex));
    ScriptedProtocol protocol({{1, 3, 300}, {0, 1, 100}});
    const auto stats = engine.run(protocol);
    // 1 -> 3 takes τ + 3 = 4; then 0 -> 1 runs [4, 6].
    EXPECT_NEAR(stats.completion_time, 6.0, kEps);
}

TEST(EventEngine, CrossPortOverlapShortensBackToBackSends) {
    const double alpha = 0.2;
    EventEngine engine(2, base_params(PortModel::one_port_full_duplex, alpha));
    // Two sends on different ports: the second starts alpha early.
    ScriptedProtocol protocol({{0, 1, 100}, {0, 2, 100}});
    const auto stats = engine.run(protocol);
    EXPECT_NEAR(stats.completion_time, 2.0 + (1 - alpha) * 2.0, kEps);
}

TEST(EventEngine, SamePortGetsNoOverlapCredit) {
    const double alpha = 0.2;
    EventEngine engine(2, base_params(PortModel::one_port_full_duplex, alpha));
    // Two messages to the same neighbor (same port): strict serialization.
    ScriptedProtocol protocol({{0, 1, 100}, {0, 1, 100}});
    const auto stats = engine.run(protocol);
    EXPECT_NEAR(stats.completion_time, 4.0, kEps);
}

TEST(EventEngine, LinkBusyDelaysSecondTransfer) {
    // Under all-port, two messages on the same link still serialize on it.
    EventEngine engine(2, base_params(PortModel::all_port));
    ScriptedProtocol protocol({{0, 1, 100}, {0, 1, 100}});
    const auto stats = engine.run(protocol);
    EXPECT_NEAR(stats.completion_time, 4.0, kEps);
    EXPECT_NEAR(stats.total_busy_time, 4.0, kEps);
}

TEST(EventEngine, TraceRecordsCommittedTransfers) {
    auto params = base_params(PortModel::one_port_full_duplex);
    params.packet_capacity = 100;
    params.record_trace = true;
    EventEngine engine(2, params);
    ScriptedProtocol protocol({{0, 1, 250}}); // 3 internal packets
    const auto stats = engine.run(protocol);
    ASSERT_EQ(stats.trace.size(), 3u);
    double prev_end = 0;
    double total = 0;
    for (const auto& rec : stats.trace) {
        EXPECT_EQ(rec.from, 0u);
        EXPECT_EQ(rec.to, 1u);
        EXPECT_GE(rec.start, prev_end - 1e-12); // same port: serialized
        EXPECT_NEAR(rec.end - rec.start, 1.0 + rec.size * 0.01, kEps);
        prev_end = rec.end;
        total += rec.size;
    }
    EXPECT_NEAR(total, 250, kEps);
    EXPECT_NEAR(stats.trace.back().end, stats.completion_time, kEps);
}

TEST(EventEngine, TraceIsEmptyByDefault) {
    EventEngine engine(2, base_params(PortModel::all_port));
    ScriptedProtocol protocol({{0, 1, 10}});
    EXPECT_TRUE(engine.run(protocol).trace.empty());
}

TEST(EventEngine, RejectsNonNeighborSend) {
    EventEngine engine(2, base_params(PortModel::all_port));
    ScriptedProtocol protocol({{0, 3, 10}});
    EXPECT_THROW((void)engine.run(protocol), check_error);
}

TEST(EventEngine, RunIsSingleShot) {
    EventEngine engine(2, base_params(PortModel::all_port));
    ScriptedProtocol protocol({{0, 1, 10}});
    (void)engine.run(protocol);
    EXPECT_THROW((void)engine.run(protocol), check_error);
}

TEST(EventEngine, RejectsBadParameters) {
    auto params = base_params(PortModel::all_port);
    params.overlap = 1.0;
    EXPECT_THROW(EventEngine(2, params), check_error);
    params.overlap = 0;
    params.packet_capacity = 0;
    EXPECT_THROW(EventEngine(2, params), check_error);
}

} // namespace
} // namespace hcube::sim
