// hcube::obs core invariants: bucket geometry, percentile recovery against
// an exact sorted-vector reference on heavy-tailed samples, shard-merge
// associativity, snapshot subtraction, and a multi-threaded recording
// hammer (the TSan leg runs every Obs* suite).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

namespace hcube::obs {
namespace {

TEST(ObsCounter, IncrementsAndResets) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, GaugeSetAddAndNegative) {
    Gauge g;
    g.set(7);
    EXPECT_EQ(g.value(), 7);
    g.add(-10);
    EXPECT_EQ(g.value(), -3);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketGeometryInvariants) {
    // Identity below the sub-bucket count.
    for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
        EXPECT_EQ(Histogram::bucket_of(v), v);
        EXPECT_EQ(Histogram::bucket_upper(v), v);
    }
    // Every bucket index maps back to itself through its upper bound, and
    // the upper bounds strictly increase — the two facts percentile
    // recovery rests on.
    for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
        EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(b)), b)
            << "bucket " << b;
        EXPECT_LT(Histogram::bucket_upper(b), Histogram::bucket_upper(b + 1));
    }
    // Bucket width is bounded by 1/32 of the lower bound: the upper bound
    // of v's bucket is at most v * 33/32 + 1.
    std::mt19937_64 rng(7);
    for (int i = 0; i < 100'000; ++i) {
        const std::uint64_t v = rng() % Histogram::kMaxValue;
        const std::uint64_t up =
            Histogram::bucket_upper(Histogram::bucket_of(v));
        EXPECT_GE(up, v);
        EXPECT_LE(up, v + v / Histogram::kSubBuckets + 1);
    }
    // Values beyond the tracked range clamp into the top bucket.
    EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}),
              Histogram::bucket_of(Histogram::kMaxValue));
}

/// Reference percentile: nearest-rank on the exact sorted sample.
std::uint64_t ref_percentile(std::vector<std::uint64_t> sorted, double p) {
    std::sort(sorted.begin(), sorted.end());
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(p * static_cast<double>(sorted.size()))));
    return sorted[std::min(rank, sorted.size()) - 1];
}

TEST(ObsHistogram, PercentileRecoveryHeavyTailed) {
    // Log-normal-ish heavy tail: most samples near 1µs, tail into seconds
    // — the tenant latency shape bench_obs replays.
    std::mt19937_64 rng(42);
    std::lognormal_distribution<double> dist(std::log(1000.0), 2.0);
    Histogram h;
    std::vector<std::uint64_t> samples;
    samples.reserve(50'000);
    for (int i = 0; i < 50'000; ++i) {
        const auto v = static_cast<std::uint64_t>(dist(rng));
        samples.push_back(v);
        h.record(v);
    }
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, samples.size());
    EXPECT_EQ(snap.max, *std::max_element(samples.begin(), samples.end()));

    for (const double p : {0.50, 0.90, 0.95, 0.99, 0.999, 1.0}) {
        const std::uint64_t ref = ref_percentile(samples, p);
        const std::uint64_t got = snap.percentile(p);
        // Recovered value sits in the reference's bucket: never below the
        // exact answer, above it by at most the bucket width (1/32).
        EXPECT_GE(got, ref) << "p=" << p;
        EXPECT_LE(got, ref + ref / Histogram::kSubBuckets + 1) << "p=" << p;
    }
    EXPECT_EQ(snap.percentile(1.0), snap.max);
    EXPECT_EQ(HistogramSnapshot{}.percentile(0.5), 0u);
}

TEST(ObsHistogram, MergeIsAssociativeAndExact) {
    std::mt19937_64 rng(3);
    Histogram a, b, c;
    std::vector<std::uint64_t> all;
    for (int i = 0; i < 3'000; ++i) {
        const std::uint64_t v = rng() % 1'000'000;
        all.push_back(v);
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
    }
    // (a + b) + c == a + (b + c), field by field.
    HistogramSnapshot left = a.snapshot();
    left.merge(b.snapshot());
    left.merge(c.snapshot());
    HistogramSnapshot bc = b.snapshot();
    bc.merge(c.snapshot());
    HistogramSnapshot right = a.snapshot();
    right.merge(bc);
    EXPECT_EQ(left.count, right.count);
    EXPECT_EQ(left.sum, right.sum);
    EXPECT_EQ(left.max, right.max);
    EXPECT_EQ(left.counts, right.counts);

    // And the merged view answers exactly like one recorder seeing all.
    Histogram whole;
    for (const std::uint64_t v : all) {
        whole.record(v);
    }
    const HistogramSnapshot ref = whole.snapshot();
    EXPECT_EQ(left.count, ref.count);
    EXPECT_EQ(left.sum, ref.sum);
    for (const double p : {0.5, 0.95, 0.99}) {
        EXPECT_EQ(left.percentile(p), ref.percentile(p));
    }
}

TEST(ObsHistogram, SubtractRecoversDelta) {
    Histogram h;
    for (int i = 0; i < 100; ++i) {
        h.record(10);
    }
    const HistogramSnapshot base = h.snapshot();
    for (int i = 0; i < 50; ++i) {
        h.record(1'000);
    }
    HistogramSnapshot delta = h.snapshot();
    delta.subtract(base);
    EXPECT_EQ(delta.count, 50u);
    EXPECT_EQ(delta.sum, 50u * 1'000u);
    EXPECT_EQ(delta.percentile(0.5), 1'000u);
}

TEST(ObsHistogram, ConcurrentHammerExactTotals) {
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20'000;
    Histogram h;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&h, t] {
            std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 1);
            for (int i = 0; i < kPerThread; ++i) {
                h.record(rng() % 1'000'000);
            }
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, std::uint64_t{kThreads} * kPerThread);
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : snap.counts) {
        bucket_total += c;
    }
    EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsRegistry, StableReferencesAndSnapshot) {
    Registry reg;
    Counter& c = reg.counter("a.count");
    Gauge& g = reg.gauge("b.level");
    Histogram& h = reg.histogram("c.lat_ns");
    EXPECT_EQ(&c, &reg.counter("a.count"));
    EXPECT_EQ(&g, &reg.gauge("b.level"));
    EXPECT_EQ(&h, &reg.histogram("c.lat_ns"));

    c.inc(5);
    g.set(-2);
    h.record(100);
    const RegistrySnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.metrics.size(), 3u);
    EXPECT_TRUE(std::is_sorted(
        snap.metrics.begin(), snap.metrics.end(),
        [](const MetricSnapshot& x, const MetricSnapshot& y) {
            return x.name < y.name;
        }));
    EXPECT_EQ(snap.counter("a.count"), 5u);
    EXPECT_EQ(snap.gauge("b.level"), -2);
    const MetricSnapshot* m = snap.find("c.lat_ns");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->hist.count, 1u);
    EXPECT_EQ(snap.counter("nope"), 0u);
    EXPECT_EQ(snap.find("nope"), nullptr);
}

TEST(ObsRegistry, ConcurrentLookupAndRecord) {
    Registry reg;
    constexpr int kThreads = 8;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&reg] {
            for (int i = 0; i < 2'000; ++i) {
                reg.counter("shared").inc();
                reg.histogram("lat").record(
                    static_cast<std::uint64_t>(i));
                reg.gauge("depth").set(i);
            }
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }
    const RegistrySnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("shared"), std::uint64_t{kThreads} * 2'000);
    EXPECT_EQ(snap.find("lat")->hist.count, std::uint64_t{kThreads} * 2'000);
}

TEST(ObsRegistry, SnapshotMergeAndSubtract) {
    Registry a, b;
    a.counter("x").inc(10);
    a.histogram("h").record(5);
    b.counter("x").inc(32);
    b.counter("y").inc(1);
    b.histogram("h").record(500);

    RegistrySnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.counter("x"), 42u);
    EXPECT_EQ(merged.counter("y"), 1u);
    EXPECT_EQ(merged.find("h")->hist.count, 2u);

    // Delta against an earlier baseline of the same registry.
    const RegistrySnapshot base = a.snapshot();
    a.counter("x").inc(8);
    a.histogram("h").record(7);
    RegistrySnapshot delta = a.snapshot();
    delta.subtract(base);
    EXPECT_EQ(delta.counter("x"), 8u);
    EXPECT_EQ(delta.find("h")->hist.count, 1u);
}

TEST(ObsTimer, RecordsScopeAndNullIsNoop) {
    Histogram h;
    {
        const ScopedTimer t(&h);
    }
    EXPECT_EQ(h.snapshot().count, 1u);
    {
        const ScopedTimer t(nullptr); // must not crash
    }
    EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(ObsTimer, GlobalRegistryIsProcessWide) {
    Counter& c = registry().counter("obs.test.global");
    const std::uint64_t before = c.value();
    c.inc();
    EXPECT_EQ(registry().counter("obs.test.global").value(), before + 1);
}

} // namespace
} // namespace hcube::obs
