// End-to-end tests of the threaded runtime: every Communicator collective
// moves real blocks through SPSC channels on worker threads, every
// delivered block is checksum-verified, and the runtime's cycle count must
// equal the CycleExecutor makespan of the same schedule exactly (the
// uniform-packet equivalence the subsystem is built around).
#include "rt/communicator.hpp"

#include "common/check.hpp"
#include "model/broadcast_model.hpp"
#include "rt/async_player.hpp"
#include "rt/checksum.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "rt/pool.hpp"
#include "routing/schedule_export.hpp"
#include "sim/cycle.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"
#include "trees/tcbt.hpp"

#include <atomic>
#include <gtest/gtest.h>

namespace hcube::rt {
namespace {

using routing::BroadcastDiscipline;
using routing::ScatterPolicy;
using sim::packet_t;
using sim::PortModel;

Params small_params(std::uint32_t threads,
                    PortModel model = PortModel::one_port_full_duplex) {
    Params p;
    p.threads = threads;
    p.block_elems = 32;
    p.model = model;
    return p;
}

TEST(RtRuntime, SbtBroadcastDeliversAndMatchesMakespan) {
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
        Communicator comm(4, small_params(threads));
        const auto tree = trees::build_sbt(4, 0);
        const Result r =
            comm.broadcast(tree, BroadcastDiscipline::port_oriented, 6);
        EXPECT_TRUE(r.verified) << "threads=" << threads;
        EXPECT_EQ(r.rt_cycles, r.sim_makespan);
        EXPECT_EQ(r.rt_cycles, 4u * 6u); // n * P, Table 3
        EXPECT_EQ(r.blocks_delivered, std::uint64_t{15} * 6);
        EXPECT_EQ(r.payload_bytes,
                  r.blocks_delivered * 32 * sizeof(double));
    }
}

TEST(RtRuntime, MsbtBroadcastMatchesTable3Makespan) {
    constexpr hc::dim_t n = 4;
    constexpr packet_t P = 12; // 3 packets per ERSBT stream
    Communicator comm(n, small_params(3));
    const Result r = comm.broadcast_msbt(0, P);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.rt_cycles, r.sim_makespan);
    EXPECT_EQ(r.rt_cycles, P + static_cast<std::uint32_t>(n));
    // ...and agrees with the closed-form model.
    EXPECT_EQ(static_cast<double>(r.rt_cycles),
              model::broadcast_steps(model::Algorithm::msbt,
                                     PortModel::one_port_full_duplex,
                                     P * 32, 32, n));
}

TEST(RtRuntime, MsbtBroadcastRunsStretchedUnderHalfDuplex) {
    constexpr hc::dim_t n = 4;
    constexpr packet_t P = 8;
    Communicator comm(
        n, small_params(2, PortModel::one_port_half_duplex));
    const Result r = comm.broadcast_msbt(1, P);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.rt_cycles, r.sim_makespan);
    EXPECT_EQ(r.rt_cycles, 2 * P + static_cast<std::uint32_t>(n) - 1);
}

TEST(RtRuntime, PacedBroadcastOnTcbtAllPorts) {
    Communicator comm(4, small_params(2, PortModel::all_port));
    const auto tree = trees::build_tcbt(4, 0);
    const Result r = comm.broadcast(tree, BroadcastDiscipline::paced, 5);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.rt_cycles, r.sim_makespan);
}

TEST(RtRuntime, ScatterSbtAndBstDeliverEveryDestination) {
    for (const ScatterPolicy policy :
         {ScatterPolicy::descending, ScatterPolicy::cyclic}) {
        Communicator comm(4, small_params(2));
        const auto tree = policy == ScatterPolicy::cyclic
                              ? trees::build_bst(4, 0)
                              : trees::build_sbt(4, 0);
        const Result r = comm.scatter(tree, policy, 2);
        EXPECT_TRUE(r.verified);
        EXPECT_EQ(r.rt_cycles, r.sim_makespan);
    }
}

TEST(RtRuntime, AllPortScatterRequiresAllPortModel) {
    Communicator full(3, small_params(2));
    const auto tree = trees::build_sbt(3, 0);
    EXPECT_THROW((void)full.scatter(tree, ScatterPolicy::per_port, 1),
                 check_error);
    Communicator all(3, small_params(2, PortModel::all_port));
    const Result r = all.scatter(tree, ScatterPolicy::per_port, 2);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.rt_cycles, r.sim_makespan);
}

TEST(RtRuntime, GatherCollectsEveryBlockAtRoot) {
    Communicator comm(4, small_params(3));
    const auto tree = trees::build_bst(4, 0);
    const Result r = comm.gather(tree, ScatterPolicy::cyclic, 2);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.rt_cycles, r.sim_makespan);
}

TEST(RtRuntime, AllgatherAndAlltoallVerify) {
    Communicator comm(3, small_params(2));
    const Result ag = comm.allgather();
    EXPECT_TRUE(ag.verified);
    EXPECT_EQ(ag.rt_cycles, ag.sim_makespan);
    EXPECT_EQ(ag.rt_cycles, (1u << 3) - 1); // N - 1, the lower bound

    const Result a2a = comm.alltoall(1);
    EXPECT_TRUE(a2a.verified);
    EXPECT_EQ(a2a.rt_cycles, a2a.sim_makespan);
}

TEST(RtRuntime, ReduceSumsEveryContributionExactly) {
    for (const std::uint32_t threads : {1u, 3u}) {
        Communicator comm(4, small_params(threads));
        const auto tree = trees::build_sbt(4, 2);
        const Result r = comm.reduce(tree, 3);
        EXPECT_TRUE(r.verified) << "threads=" << threads;
        // Reversal preserves the forward port-oriented makespan n * P.
        EXPECT_EQ(r.rt_cycles, r.sim_makespan);
        EXPECT_EQ(r.rt_cycles, 4u * 3u);
    }
}

TEST(RtRuntime, NonRootSourceBroadcast) {
    Communicator comm(5, small_params(4));
    const auto tree = trees::build_sbt(5, 13);
    const Result r =
        comm.broadcast(tree, BroadcastDiscipline::port_oriented, 2);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.rt_cycles, r.sim_makespan);
}

TEST(RtRuntime, PlayerIsReusableAcrossRuns) {
    const sim::Schedule schedule = routing::make_msbt_broadcast(
        3, 0, 6, PortModel::one_port_full_duplex);
    const Plan plan = compile_plan(schedule, DataMode::move, 16, 2);
    Player player(plan);
    const PlayStats first = player.play();
    const PlayStats second = player.play();
    EXPECT_TRUE(first.clean());
    EXPECT_TRUE(second.clean());
    EXPECT_EQ(first.blocks_delivered, second.blocks_delivered);
    EXPECT_EQ(first.cycles, second.cycles);
}

TEST(RtRuntime, CleanRunReportsZeroFaultsInEveryCounter) {
    sim::Schedule s;
    s.n = 1;
    s.packet_count = 2;
    s.initial_holder = {0, 0};
    s.sends = {{0, 0, 1, 0}};
    const Plan plan = compile_plan(s, DataMode::move, 8, 1);
    Player player(plan);
    const PlayStats stats = player.play();
    EXPECT_EQ(stats.checksum_failures, 0u);
    EXPECT_EQ(stats.channel_faults, 0u);
    EXPECT_EQ(stats.blocks_delivered, 1u);
    EXPECT_EQ(stats.blocks_sent, 1u);
    EXPECT_TRUE(stats.clean());
    // The delivered block at node 1 carries packet 0's canonical data.
    const auto delivered = player.block(1, 0);
    ASSERT_EQ(delivered.size(), 8u);
    EXPECT_EQ(block_checksum(delivered), canonical_checksum(0, 8));
}

TEST(RtPool, RunsJobsOnResidentThreads) {
    WorkerPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<std::uint32_t> mask{0};
    pool.run(4, [&](std::uint32_t w) {
        mask.fetch_or(std::uint32_t{1} << w);
    });
    EXPECT_EQ(mask.load(), 0b1111u);
    // A narrower run only activates the first `workers` threads.
    mask.store(0);
    pool.run(2, [&](std::uint32_t w) {
        mask.fetch_or(std::uint32_t{1} << w);
    });
    EXPECT_EQ(mask.load(), 0b11u);
    EXPECT_EQ(pool.jobs_run(), 2u);
}

TEST(RtPool, PlayOnPoolMatchesSpawnedThreads) {
    const sim::Schedule schedule = routing::make_msbt_broadcast(
        3, 0, 6, PortModel::one_port_full_duplex);
    const Plan plan = compile_plan(schedule, DataMode::move, 16, 2);
    WorkerPool pool(2);
    Player player(plan);
    const PlayStats pooled = player.play(&pool);
    const PlayStats spawned = player.play();
    EXPECT_TRUE(pooled.clean());
    EXPECT_EQ(pooled.blocks_delivered, spawned.blocks_delivered);
    EXPECT_EQ(pooled.cycles, spawned.cycles);
    AsyncPlayer dut(plan);
    const PlayStats async_pooled = dut.play(&pool);
    EXPECT_TRUE(async_pooled.clean());
    EXPECT_EQ(async_pooled.blocks_delivered, pooled.blocks_delivered);
    EXPECT_EQ(pool.jobs_run(), 2u);
}

TEST(RtVerify, CommunicatorReportsPoolReuse) {
    for (const std::uint32_t threads : {1u, 3u}) {
        Communicator comm(3, small_params(threads));
        const auto tree = trees::build_sbt(3, 0);
        const Result r =
            comm.broadcast(tree, BroadcastDiscipline::port_oriented, 2);
        EXPECT_TRUE(r.verified);
        EXPECT_TRUE(r.pool_reused) << "threads=" << threads;
        EXPECT_TRUE(r.oracle_checked); // Verify::always is the default
    }
}

TEST(RtVerify, FirstPolicyChecksEachScheduleOnce) {
    Params p = small_params(2);
    p.verify = Verify::first;
    Communicator comm(3, p);
    const auto tree = trees::build_sbt(3, 0);
    const Result first =
        comm.broadcast(tree, BroadcastDiscipline::port_oriented, 2);
    EXPECT_TRUE(first.verified);
    EXPECT_TRUE(first.oracle_checked);
    const Result repeat =
        comm.broadcast(tree, BroadcastDiscipline::port_oriented, 2);
    EXPECT_TRUE(repeat.verified);
    EXPECT_FALSE(repeat.oracle_checked);
    // A different schedule (other packet count) gets its own first check.
    const Result other =
        comm.broadcast(tree, BroadcastDiscipline::port_oriented, 3);
    EXPECT_TRUE(other.verified);
    EXPECT_TRUE(other.oracle_checked);
}

TEST(RtVerify, NeverPolicySkipsOracleButStillVerifies) {
    Params p = small_params(2);
    p.verify = Verify::never;
    Communicator comm(3, p);
    const auto tree = trees::build_sbt(3, 0);
    const Result move =
        comm.broadcast(tree, BroadcastDiscipline::port_oriented, 2);
    EXPECT_TRUE(move.verified);
    EXPECT_FALSE(move.oracle_checked);
    const Result combine = comm.reduce(tree, 2);
    EXPECT_TRUE(combine.verified);
    EXPECT_FALSE(combine.oracle_checked);
}

} // namespace
} // namespace hcube::rt
