// Membership-aware self-healing (ft::ResilientComm member ops): a fault is
// a node death, not a wire break — the victim leaves the view, the tree,
// contract and oracle are rebuilt over the survivors, and the healed run
// must byte-match the survivor-set oracle.
#include "ft/resilient.hpp"

#include "common/check.hpp"
#include "routing/schedule_export.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hcube::ft {
namespace {

using routing::BroadcastDiscipline;
using sim::PortModel;
using sim::Schedule;

ResilientParams params_for(rt::Engine engine) {
    ResilientParams p;
    p.threads = 2;
    p.block_elems = 16;
    p.engine = engine;
    p.detect.arrival_timeout_us = 500;
    return p;
}

bool touches(const Schedule& schedule, node_t v) {
    return std::any_of(schedule.sends.begin(), schedule.sends.end(),
                       [v](const sim::ScheduledSend& send) {
                           return send.from == v || send.to == v;
                       });
}

TEST(MbrFt, CleanFullViewRunIsTheSbtBroadcast) {
    ResilientComm comm(3, params_for(rt::Engine::async));
    const RecoveryResult result = comm.broadcast_members(0, 4, FaultPlan{});
    EXPECT_TRUE(result.delivered);
    EXPECT_FALSE(result.recovered);
    EXPECT_EQ(result.attempts, 1u);
    EXPECT_EQ(result.view_epoch, 0u);
    EXPECT_TRUE(result.dead_nodes.empty());
    const Schedule sbt = routing::make_tree_broadcast(
        trees::build_sbt(3, 0), BroadcastDiscipline::paced, 4,
        PortModel::one_port_full_duplex);
    EXPECT_EQ(result.final_schedule.sends, sbt.sends);
    EXPECT_EQ(result.final_schedule.initial_holder, sbt.initial_holder);
}

TEST(MbrFt, NodeDeathHealsBroadcastOnBothEngines) {
    for (const rt::Engine engine : {rt::Engine::async, rt::Engine::barrier}) {
        ResilientComm comm(4, params_for(engine));
        FaultPlan faults;
        faults.kill_link(0, 8); // root 0's port-3 child dies
        const RecoveryResult result = comm.broadcast_members(0, 3, faults);
        EXPECT_TRUE(result.delivered);
        EXPECT_TRUE(result.recovered);
        EXPECT_EQ(result.attempts, 2u);
        EXPECT_EQ(result.dead_nodes, (std::vector<node_t>{8}));
        EXPECT_EQ(result.view_epoch, 1u);
        EXPECT_EQ(comm.view().count(), 15u);
        EXPECT_FALSE(comm.view().contains(8));
        EXPECT_FALSE(touches(result.final_schedule, 8));
    }
}

TEST(MbrFt, RelayDeathReparentsItsSubtree) {
    // Node 1 relays to 3 and 5 in the SBT at root 0; killing 1 must leave
    // 3 and 5 reachable through live relays in the healed schedule.
    ResilientComm comm(3, params_for(rt::Engine::async));
    FaultPlan faults;
    faults.kill_link(0, 1);
    const RecoveryResult result = comm.broadcast_members(0, 2, faults);
    EXPECT_TRUE(result.delivered);
    EXPECT_EQ(result.dead_nodes, (std::vector<node_t>{1}));
    EXPECT_FALSE(touches(result.final_schedule, 1));
    EXPECT_TRUE(touches(result.final_schedule, 3));
    EXPECT_TRUE(touches(result.final_schedule, 5));
}

TEST(MbrFt, NodeDeathShrinksTheScatterContract) {
    ResilientComm comm(3, params_for(rt::Engine::async));
    FaultPlan faults;
    faults.kill_link(0, 4);
    const RecoveryResult result = comm.scatter_members(0, 2, faults);
    EXPECT_TRUE(result.delivered);
    EXPECT_TRUE(result.recovered);
    EXPECT_EQ(result.dead_nodes, (std::vector<node_t>{4}));
    // 6 surviving destinations x 2 packets: the dead node's blocks left
    // the contract with it.
    EXPECT_EQ(result.final_schedule.packet_count, 12u);
    EXPECT_FALSE(touches(result.final_schedule, 4));
}

TEST(MbrFt, NonRootEndpointIsTheVictimWhenTheRootSends) {
    // The failed link's non-root endpoint dies — never the root.
    ResilientComm comm(3, params_for(rt::Engine::async));
    FaultPlan faults;
    faults.kill_link(1, 3); // a relay edge away from the root
    const RecoveryResult result = comm.broadcast_members(0, 2, faults);
    EXPECT_TRUE(result.delivered);
    EXPECT_EQ(result.dead_nodes, (std::vector<node_t>{3}));
    EXPECT_TRUE(comm.view().contains(0));
    EXPECT_TRUE(comm.view().contains(1));
}

TEST(MbrFt, TwoDeathsAccumulateAcrossAttempts) {
    ResilientComm comm(3, params_for(rt::Engine::async));
    FaultPlan faults;
    faults.kill_link(0, 1);
    faults.kill_link(0, 2);
    const RecoveryResult result = comm.broadcast_members(0, 2, faults);
    EXPECT_TRUE(result.delivered);
    EXPECT_EQ(result.attempts, 3u);
    std::vector<node_t> dead = result.dead_nodes;
    std::sort(dead.begin(), dead.end());
    EXPECT_EQ(dead, (std::vector<node_t>{1, 2}));
    EXPECT_EQ(result.view_epoch, 2u);
    EXPECT_EQ(comm.view().count(), 6u);
}

TEST(MbrFt, ProactiveTransitionsShapeTheNextOperation) {
    ResilientComm comm(3, params_for(rt::Engine::async));
    comm.mark_dead(5);
    const RecoveryResult degraded =
        comm.broadcast_members(0, 2, FaultPlan{});
    EXPECT_TRUE(degraded.delivered);
    EXPECT_EQ(degraded.view_epoch, 1u);
    EXPECT_FALSE(touches(degraded.final_schedule, 5));

    comm.readmit(5);
    const RecoveryResult restored =
        comm.broadcast_members(0, 2, FaultPlan{});
    EXPECT_TRUE(restored.delivered);
    EXPECT_EQ(restored.view_epoch, 2u);
    EXPECT_TRUE(touches(restored.final_schedule, 5));
}

TEST(MbrFt, DeadRootIsRefused) {
    ResilientComm comm(3, params_for(rt::Engine::async));
    comm.mark_dead(2);
    EXPECT_THROW((void)comm.broadcast_members(2, 2, FaultPlan{}),
                 check_error);
    EXPECT_THROW((void)comm.scatter_members(2, 1, FaultPlan{}), check_error);
}

} // namespace
} // namespace hcube::ft
